//! `appfl-cli` — run a federated job from a JSON config file, the way the
//! reference framework is driven by its config + run scripts.
//!
//! ```sh
//! appfl-cli init-config job.json            # write a default config
//! appfl-cli run --config job.json --dataset mnist --clients 4 \
//!               --train 2000 --test 500 --model mlp \
//!               --history history.json --checkpoint final.json
//! ```

use appfl::core::algorithms::build_federation;
use appfl::core::checkpoint::Checkpoint;
use appfl::core::config::{AlgorithmConfig, FedConfig};
use appfl::core::runner::serial::SerialRunner;
use appfl::data::federated::{build_benchmark, Benchmark};
use appfl::nn::models::{cnn_classifier, mlp_classifier, InputSpec};
use appfl::nn::module::Module;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  appfl-cli init-config <path>\n  appfl-cli run --config <path> [--dataset mnist|cifar10|femnist|coronahack]\n                [--clients N] [--train N] [--test N] [--model mlp|cnn]\n                [--history <path>] [--checkpoint <path>] [--participation F]"
    );
    ExitCode::FAILURE
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("init-config") => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let config = FedConfig::paper_defaults(
                AlgorithmConfig::IiAdmm {
                    rho: 10.0,
                    zeta: 10.0,
                },
                10.0,
            );
            if let Err(e) = config.to_json_file(path) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote default config to {path}");
            ExitCode::SUCCESS
        }
        Some("run") => run(&args[1..]),
        _ => usage(),
    }
}

fn run(args: &[String]) -> ExitCode {
    let Some(config_path) = arg_value(args, "--config") else {
        return usage();
    };
    let config = match FedConfig::from_json_file(&config_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error loading config: {e}");
            return ExitCode::FAILURE;
        }
    };
    let dataset = arg_value(args, "--dataset").unwrap_or_else(|| "mnist".into());
    let benchmark = match dataset.to_lowercase().as_str() {
        "mnist" => Benchmark::Mnist,
        "cifar10" => Benchmark::Cifar10,
        "femnist" => Benchmark::Femnist,
        "coronahack" => Benchmark::CoronaHack,
        other => {
            eprintln!("unknown dataset `{other}`");
            return ExitCode::FAILURE;
        }
    };
    let parse_num = |flag: &str, default: usize| -> usize {
        arg_value(args, flag)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let clients = parse_num("--clients", if benchmark == Benchmark::Femnist { 203 } else { 4 });
    let train = parse_num("--train", 2000);
    let test = parse_num("--test", 500);
    let model = arg_value(args, "--model").unwrap_or_else(|| "mlp".into());
    let participation: f32 = arg_value(args, "--participation")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);

    let data = match build_benchmark(benchmark, clients, train, test, config.seed) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error building dataset: {e}");
            return ExitCode::FAILURE;
        }
    };
    let spec = InputSpec {
        channels: data.spec.channels,
        height: data.spec.height,
        width: data.spec.width,
        classes: data.spec.classes,
    };
    let model_kind = model.clone();
    let test_set = data.test.clone();
    let fed = build_federation(config, &data, move |rng| -> Box<dyn Module> {
        match model_kind.as_str() {
            "cnn" => Box::new(cnn_classifier(spec, 8, 16, 64, rng)),
            _ => Box::new(mlp_classifier(spec, 64, rng)),
        }
    });

    eprintln!(
        "running {} on {} ({} clients, {} train samples, {} rounds, eps={}, participation={})",
        config.algorithm.name(),
        benchmark.name(),
        data.num_clients(),
        data.total_train(),
        config.rounds,
        if config.privacy.epsilon.is_finite() {
            config.privacy.epsilon.to_string()
        } else {
            "inf".into()
        },
        participation,
    );

    let mut runner = SerialRunner::new(fed, test_set, benchmark.name());
    runner.participation = participation;
    let history = match runner.run() {
        Ok(h) => h,
        Err(e) => {
            eprintln!("run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for r in &history.rounds {
        println!(
            "round {:>3}: accuracy {:.4}  test-loss {:.4}  train-loss {:.4}  upload {} B",
            r.round, r.accuracy, r.test_loss, r.train_loss, r.upload_bytes
        );
    }
    println!("final accuracy: {:.4}", history.final_accuracy());

    if let Some(path) = arg_value(args, "--history") {
        match serde_json::to_string_pretty(&history) {
            Ok(json) => {
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("error writing history: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote history to {path}");
            }
            Err(e) => {
                eprintln!("error encoding history: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = arg_value(args, "--checkpoint") {
        let rounds_done = history.rounds.len();
        let cp = Checkpoint::new(rounds_done, runner.global_model(), history);
        if let Err(e) = cp.save(&path) {
            eprintln!("error writing checkpoint: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote checkpoint to {path}");
    }
    ExitCode::SUCCESS
}
