//! # appfl — Rust reproduction of the APPFL privacy-preserving FL framework
//!
//! Facade crate that re-exports the whole workspace under one name:
//!
//! * [`tensor`] — dense CPU tensors, conv/matmul kernels, flat-vector ops
//! * [`nn`] — neural-network modules, losses, optimizers
//! * [`data`] — datasets, synthetic generators, partitioners, loaders
//! * [`privacy`] — differential-privacy mechanisms and accounting
//! * [`comm`] — wire codec, transports, network simulator, cluster models
//! * [`core`] — FL algorithms (FedAvg, ICEADMM, IIADMM), runners, metrics
//! * [`telemetry`] — structured tracing: event sinks, spans, phase metrics
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the experiment map.

pub use appfl_comm as comm;
pub use appfl_core as core;
pub use appfl_data as data;
pub use appfl_nn as nn;
pub use appfl_privacy as privacy;
pub use appfl_telemetry as telemetry;
pub use appfl_tensor as tensor;
