//! Server-side validation (§II-A.5).
//!
//! "When testing data is available at a server, APPFL provides a validation
//! routine that evaluates the accuracy of the current global model."

use appfl_data::{DataLoader, Dataset};
use appfl_nn::loss::{Loss, Targets};
use appfl_nn::metrics::{accuracy, RunningMean};
use appfl_nn::module::{set_params, Module};
use appfl_nn::CrossEntropyLoss;
use appfl_tensor::Result;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Evaluation result of a global model on the server's test set.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Evaluation {
    /// Top-1 accuracy in `[0, 1]`.
    pub accuracy: f32,
    /// Mean cross-entropy loss.
    pub loss: f32,
}

/// A `classes × classes` confusion matrix: `matrix[true][predicted]`.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ConfusionMatrix {
    /// Row-major counts, `matrix[t * classes + p]`.
    pub counts: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
}

impl ConfusionMatrix {
    /// Count of samples with true class `t` predicted as `p`.
    pub fn at(&self, true_class: usize, predicted: usize) -> usize {
        self.counts[true_class * self.classes + predicted]
    }

    /// Per-class recall (correct / total of that true class; `NaN`-free:
    /// classes with no samples report 0).
    pub fn per_class_recall(&self) -> Vec<f32> {
        (0..self.classes)
            .map(|t| {
                let total: usize = (0..self.classes).map(|p| self.at(t, p)).sum();
                if total == 0 {
                    0.0
                } else {
                    self.at(t, t) as f32 / total as f32
                }
            })
            .collect()
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f32 {
        let correct: usize = (0..self.classes).map(|c| self.at(c, c)).sum();
        let total: usize = self.counts.iter().sum();
        if total == 0 {
            0.0
        } else {
            correct as f32 / total as f32
        }
    }

    /// Balanced accuracy (mean per-class recall) — the right headline for
    /// imbalanced tasks like the CoronaHack benchmark.
    pub fn balanced_accuracy(&self) -> f32 {
        let recalls = self.per_class_recall();
        let populated = (0..self.classes)
            .filter(|&t| (0..self.classes).map(|p| self.at(t, p)).sum::<usize>() > 0)
            .count();
        if populated == 0 {
            0.0
        } else {
            recalls.iter().sum::<f32>() / populated as f32
        }
    }
}

/// Evaluates a global model and also returns the confusion matrix (needed
/// for imbalanced benchmarks where plain accuracy is misleading).
pub fn evaluate_with_confusion(
    template: &mut dyn Module,
    global: &[f32],
    test: &dyn Dataset,
    batch_size: usize,
) -> Result<(Evaluation, ConfusionMatrix)> {
    set_params(template, global)?;
    let classes = test.spec().classes;
    let loader = DataLoader::new(test, batch_size.max(1), false);
    let mut rng = StdRng::seed_from_u64(0);
    let mut acc = RunningMean::new();
    let mut loss = RunningMean::new();
    let mut counts = vec![0usize; classes * classes];
    for (x, y) in loader.epoch(&mut rng)? {
        let out = template.forward(&x)?;
        let (l, _) = CrossEntropyLoss.forward(&out, &Targets::Classes(y.clone()))?;
        let preds = appfl_tensor::ops::argmax_rows(&out)?;
        for (&t, &p) in y.iter().zip(preds.iter()) {
            counts[t * classes + p] += 1;
        }
        let a = accuracy(&out, &y)?;
        acc.add(a, y.len());
        loss.add(l, y.len());
    }
    Ok((
        Evaluation {
            accuracy: acc.mean(),
            loss: loss.mean(),
        },
        ConfusionMatrix { counts, classes },
    ))
}

/// Loads `global` into `template` and evaluates on `test`, batched to bound
/// peak memory.
pub fn evaluate(
    template: &mut dyn Module,
    global: &[f32],
    test: &dyn Dataset,
    batch_size: usize,
) -> Result<Evaluation> {
    set_params(template, global)?;
    let loader = DataLoader::new(test, batch_size.max(1), false);
    // Shuffle is off, so the RNG is inert; any seed works.
    let mut rng = StdRng::seed_from_u64(0);
    let mut acc = RunningMean::new();
    let mut loss = RunningMean::new();
    for (x, y) in loader.epoch(&mut rng)? {
        let out = template.forward(&x)?;
        let (l, _) = CrossEntropyLoss.forward(&out, &Targets::Classes(y.clone()))?;
        let a = accuracy(&out, &y)?;
        let n = y.len();
        acc.add(a, n);
        loss.add(l, n);
    }
    Ok(Evaluation {
        accuracy: acc.mean(),
        loss: loss.mean(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::tiny_shard;
    use appfl_nn::models::{linear_classifier, InputSpec};
    use appfl_nn::module::flatten_params;

    #[test]
    fn evaluation_runs_on_untrained_model() {
        let (_, test) = tiny_shard(0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = linear_classifier(
            InputSpec {
                channels: 1,
                height: 2,
                width: 2,
                classes: 2,
            },
            &mut rng,
        );
        let w = flatten_params(&model);
        let e = evaluate(&mut model, &w, &test, 5).unwrap();
        assert!((0.0..=1.0).contains(&e.accuracy));
        assert!(e.loss.is_finite());
    }

    #[test]
    fn better_weights_score_better() {
        let (_, test) = tiny_shard(0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = linear_classifier(
            InputSpec {
                channels: 1,
                height: 2,
                width: 2,
                classes: 2,
            },
            &mut rng,
        );
        // Hand-crafted weights: class 0 fires on +features, class 1 on −.
        // Layout: Linear [out=2, in=4] weights then bias.
        let good = vec![1.0, 1.0, 1.0, 1.0, -1.0, -1.0, -1.0, -1.0, 0.0, 0.0];
        let e_good = evaluate(&mut model, &good, &test, 4).unwrap();
        let zero = vec![0.0; 10];
        let e_zero = evaluate(&mut model, &zero, &test, 4).unwrap();
        assert!(e_good.accuracy > 0.9, "accuracy {}", e_good.accuracy);
        assert!(e_good.loss < e_zero.loss);
    }

    #[test]
    fn confusion_matrix_diagonal_and_metrics() {
        let (_, test) = tiny_shard(0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = linear_classifier(
            InputSpec {
                channels: 1,
                height: 2,
                width: 2,
                classes: 2,
            },
            &mut rng,
        );
        let good = vec![1.0, 1.0, 1.0, 1.0, -1.0, -1.0, -1.0, -1.0, 0.0, 0.0];
        let (eval, cm) = evaluate_with_confusion(&mut model, &good, &test, 4).unwrap();
        assert_eq!(cm.counts.iter().sum::<usize>(), test.len());
        assert!((cm.accuracy() - eval.accuracy).abs() < 1e-6);
        // Perfect classifier: off-diagonal is empty.
        assert_eq!(cm.at(0, 1) + cm.at(1, 0), 0);
        assert!(cm
            .per_class_recall()
            .iter()
            .all(|&r| (r - 1.0).abs() < 1e-6));
        assert!((cm.balanced_accuracy() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn balanced_accuracy_penalises_majority_guessing() {
        // 9 of class 0, 1 of class 1, everything predicted 0.
        let cm = ConfusionMatrix {
            counts: vec![9, 0, 1, 0],
            classes: 2,
        };
        assert!((cm.accuracy() - 0.9).abs() < 1e-6);
        assert!((cm.balanced_accuracy() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn empty_classes_do_not_poison_balanced_accuracy() {
        let cm = ConfusionMatrix {
            counts: vec![3, 0, 0, 0], // class 1 unpopulated
            classes: 2,
        };
        assert!((cm.balanced_accuracy() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn rejects_wrong_dimension() {
        let (_, test) = tiny_shard(0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = linear_classifier(
            InputSpec {
                channels: 1,
                height: 2,
                width: 2,
                classes: 2,
            },
            &mut rng,
        );
        assert!(evaluate(&mut model, &[0.0; 3], &test, 4).is_err());
    }
}
