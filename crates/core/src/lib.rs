//! # appfl-core
//!
//! The federated-learning heart of appfl-rs: the server/client algorithm
//! traits (mirroring APPFL's `BaseServer`/`BaseClient` with their virtual
//! `update()` methods, §II-A.1), the three algorithms the paper implements —
//! **FedAvg** \[10\], **ICEADMM** \[8\] and the paper's new **IIADMM**
//! (Algorithm 1) — and runners that execute a federation serially, in
//! parallel threads over a [`appfl_comm::transport::Communicator`], or
//! asynchronously (the §V future-work extension).
//!
//! ## Algorithm cheat-sheet
//!
//! | | server update | client update | uploads/round |
//! |---|---|---|---|
//! | FedAvg | `w ← Σ (I_p/I) z_p` | L epochs of minibatch SGD+momentum | `z_p` (m floats) |
//! | ICEADMM | `w ← (1/P) Σ (z_p − λ_p/ρ)` | L × {full-gradient inexact step (4) + dual step (3c)} | `z_p, λ_p` (2m floats) |
//! | IIADMM | `w ← (1/P) Σ (z_p − λ_p/ρ)`, duals mirrored server-side | L epochs of minibatch inexact steps, dual step once | `z_p` (m floats) |
//!
//! IIADMM's halved upload traffic versus ICEADMM is the paper's headline
//! communication saving; the dual-mirroring that enables it is asserted by
//! tests in [`algorithms::iiadmm`].

pub mod adaptive;
pub mod algorithms;
pub mod api;
pub mod checkpoint;
pub mod config;
pub mod defense;
pub mod diagnostics;
pub mod error;
pub mod federation;
pub mod gossip;
pub mod metrics;
pub mod prelude;
pub mod runner;
pub mod schedule;
pub mod store;
#[cfg(test)]
pub(crate) mod test_support;
pub mod trainer;
pub mod validation;

pub use algorithms::{build_federation, FederationSetup};
pub use api::{ClientAlgorithm, ClientUpload, ConvergenceDiagnostics, ServerAlgorithm};
pub use config::{AlgorithmConfig, FaultToleranceConfig, FedConfig};
pub use defense::{
    Attack, PoisonedClient, RobustAggregator, RobustServer, UpdateGuard, UpdateGuardConfig,
};
pub use diagnostics::RoundDiagnostics;
pub use error::Error;
pub use federation::{
    ConfigError, ConfiguredFederation, Federation, FederationConfig, Observe, Participants,
    Resilience, Topology,
};
pub use metrics::{History, RoundRecord};
pub use runner::control::{RoundControlConfig, RoundController, RoundPlan};
pub use runner::federation::FederationOutcome;
pub use runner::phases::{CohortReport, PhaseEvent, PhaseKind, PhaseMachine, UploadVerdict};
pub use runner::serial::SerialRunner;
pub use runner::simulate::{SimConfig, SimEngine, SimReport};
pub use store::{
    AsyncState, CoordinatorState, CoordinatorStore, CrashPhase, CrashPoint, DurableCoordinator,
    MemoryStore, PendingRound, RosterState, SnapshotWalStore, StoreEvent, WalStore,
};

/// Re-export of the telemetry substrate so `appfl_core` users can build
/// sinks without naming the `appfl-telemetry` crate directly.
pub use appfl_telemetry as telemetry;
