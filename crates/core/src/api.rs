//! The plug-and-play algorithm API.
//!
//! §II-A.1: "Additional user-defined FL algorithms can be implemented by
//! inheriting our Python class `BaseServer` and implementing the virtual
//! function `update()`. … This additional work can be customized as well by
//! inheriting our `BaseClient` class and implementing the virtual function
//! `update()`." These two traits are the Rust rendition of that contract;
//! everything else in the framework (runners, transports, privacy, metrics)
//! is generic over them.

use appfl_tensor::Result;
use serde::{Deserialize, Serialize};

/// What a client transmits to the server each round.
///
/// Serializable so the durable coordinator ([`crate::store`]) can persist
/// accepted uploads as part of a round's partial state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientUpload {
    /// Client identifier `p ∈ [P]`.
    pub client_id: usize,
    /// Local primal parameters `z_p^{t+1}` (flat, m floats).
    pub primal: Vec<f32>,
    /// Local dual parameters `λ_p^{t+1}` — `Some` only for algorithms that
    /// must communicate duals (ICEADMM). IIADMM's `None` here *is* the
    /// paper's communication saving.
    pub dual: Option<Vec<f32>>,
    /// Number of local samples `I_p` (for weighted aggregation).
    pub num_samples: usize,
    /// Mean training loss over this round's local steps (diagnostics).
    pub local_loss: f32,
}

impl ClientUpload {
    /// Bytes this upload occupies as raw `f32` payload (4 bytes/value) —
    /// the quantity the communication ablation accounts.
    pub fn payload_bytes(&self) -> usize {
        4 * (self.primal.len() + self.dual.as_ref().map_or(0, Vec::len))
    }
}

/// Per-round convergence diagnostics an ADMM-family server can report.
///
/// `primal_residual` is `Σ_p ‖w^{t+1} − z_p^{t+1}‖` (how far clients are
/// from consensus), `dual_residual` is `ρ‖w^{t+1} − w^t‖` (how much the
/// consensus point itself still moves — the standard ADMM dual residual
/// with the consensus constraint's identity coupling), and `rho` is the
/// current penalty. Both residuals shrinking together is the textbook
/// ADMM convergence signal; a large ratio between them is what adaptive-ρ
/// schemes react to.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ConvergenceDiagnostics {
    /// `Σ_p ‖w − z_p‖` after the round's aggregation.
    pub primal_residual: f64,
    /// `ρ‖w^{t+1} − w^t‖` for the round's global-model step.
    pub dual_residual: f64,
    /// Penalty parameter ρ in effect for the round.
    pub rho: f64,
}

/// Server-side half of an FL algorithm (the `BaseServer` analogue).
pub trait ServerAlgorithm: Send {
    /// The current global model `w^{t+1}`, computed from server state.
    /// Called at the top of each round; the result is broadcast to clients.
    fn global_model(&self) -> Vec<f32>;

    /// Aggregates one round of client uploads into server state (the
    /// virtual `update()` of `BaseServer`).
    fn update(&mut self, uploads: &[ClientUpload]) -> Result<()>;

    /// Aggregates a *degraded* round in which only a quorum of clients
    /// reported (the rest timed out or dropped). Sample-weighted averagers
    /// like FedAvg already reweight over whatever arrived, so the default
    /// simply delegates to [`ServerAlgorithm::update`]; stateful algorithms
    /// with strict-arity `update` contracts (IIADMM) override this to
    /// advance only the reporting clients' state.
    fn update_degraded(&mut self, uploads: &[ClientUpload]) -> Result<()> {
        self.update(uploads)
    }

    /// Algorithm name for logs and experiment records.
    fn name(&self) -> &'static str;

    /// Model dimension m.
    fn dim(&self) -> usize;

    /// Convergence diagnostics for the most recent `update`, when the
    /// algorithm tracks them (the ADMM family does; averaging algorithms
    /// return `None` and the runners fall back to model-level norms).
    fn diagnostics(&self) -> Option<ConvergenceDiagnostics> {
        None
    }

    /// Restores server state from a persisted global model `w`, used by
    /// the durable coordinator when resuming a crashed run. Algorithms
    /// whose server state *is* the global model (the averaging family)
    /// implement this; algorithms with additional server-side state not
    /// derivable from `w` alone (the ADMM family's mirrored duals) keep
    /// the rejecting default, making an unsound resume a hard error
    /// instead of a silent divergence.
    fn restore(&mut self, w: &[f32]) -> Result<()> {
        let _ = w;
        Err(appfl_tensor::TensorError::InvalidArgument(format!(
            "{} cannot restore from a bare global model: server-side \
             state (e.g. ADMM duals) is not derivable from w",
            self.name()
        )))
    }
}

/// Client-side half of an FL algorithm (the `BaseClient` analogue).
pub trait ClientAlgorithm: Send {
    /// Runs one round of local training from the broadcast global model and
    /// returns the upload (the virtual `update()` of `BaseClient`).
    fn update(&mut self, global: &[f32]) -> Result<ClientUpload>;

    /// This client's id `p`.
    fn id(&self) -> usize;

    /// Number of local samples `I_p`.
    fn num_samples(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upload_payload_accounting() {
        let primal_only = ClientUpload {
            client_id: 0,
            primal: vec![0.0; 100],
            dual: None,
            num_samples: 10,
            local_loss: 0.5,
        };
        assert_eq!(primal_only.payload_bytes(), 400);
        let with_dual = ClientUpload {
            dual: Some(vec![0.0; 100]),
            ..primal_only
        };
        assert_eq!(with_dual.payload_bytes(), 800);
    }
}
