//! The plug-and-play algorithm API.
//!
//! §II-A.1: "Additional user-defined FL algorithms can be implemented by
//! inheriting our Python class `BaseServer` and implementing the virtual
//! function `update()`. … This additional work can be customized as well by
//! inheriting our `BaseClient` class and implementing the virtual function
//! `update()`." These two traits are the Rust rendition of that contract;
//! everything else in the framework (runners, transports, privacy, metrics)
//! is generic over them.

use appfl_tensor::Result;

/// What a client transmits to the server each round.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientUpload {
    /// Client identifier `p ∈ [P]`.
    pub client_id: usize,
    /// Local primal parameters `z_p^{t+1}` (flat, m floats).
    pub primal: Vec<f32>,
    /// Local dual parameters `λ_p^{t+1}` — `Some` only for algorithms that
    /// must communicate duals (ICEADMM). IIADMM's `None` here *is* the
    /// paper's communication saving.
    pub dual: Option<Vec<f32>>,
    /// Number of local samples `I_p` (for weighted aggregation).
    pub num_samples: usize,
    /// Mean training loss over this round's local steps (diagnostics).
    pub local_loss: f32,
}

impl ClientUpload {
    /// Bytes this upload occupies as raw `f32` payload (4 bytes/value) —
    /// the quantity the communication ablation accounts.
    pub fn payload_bytes(&self) -> usize {
        4 * (self.primal.len() + self.dual.as_ref().map_or(0, Vec::len))
    }
}

/// Server-side half of an FL algorithm (the `BaseServer` analogue).
pub trait ServerAlgorithm: Send {
    /// The current global model `w^{t+1}`, computed from server state.
    /// Called at the top of each round; the result is broadcast to clients.
    fn global_model(&self) -> Vec<f32>;

    /// Aggregates one round of client uploads into server state (the
    /// virtual `update()` of `BaseServer`).
    fn update(&mut self, uploads: &[ClientUpload]) -> Result<()>;

    /// Aggregates a *degraded* round in which only a quorum of clients
    /// reported (the rest timed out or dropped). Sample-weighted averagers
    /// like FedAvg already reweight over whatever arrived, so the default
    /// simply delegates to [`ServerAlgorithm::update`]; stateful algorithms
    /// with strict-arity `update` contracts (IIADMM) override this to
    /// advance only the reporting clients' state.
    fn update_degraded(&mut self, uploads: &[ClientUpload]) -> Result<()> {
        self.update(uploads)
    }

    /// Algorithm name for logs and experiment records.
    fn name(&self) -> &'static str;

    /// Model dimension m.
    fn dim(&self) -> usize;
}

/// Client-side half of an FL algorithm (the `BaseClient` analogue).
pub trait ClientAlgorithm: Send {
    /// Runs one round of local training from the broadcast global model and
    /// returns the upload (the virtual `update()` of `BaseClient`).
    fn update(&mut self, global: &[f32]) -> Result<ClientUpload>;

    /// This client's id `p`.
    fn id(&self) -> usize;

    /// Number of local samples `I_p`.
    fn num_samples(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upload_payload_accounting() {
        let primal_only = ClientUpload {
            client_id: 0,
            primal: vec![0.0; 100],
            dual: None,
            num_samples: 10,
            local_loss: 0.5,
        };
        assert_eq!(primal_only.payload_bytes(), 400);
        let with_dual = ClientUpload {
            dual: Some(vec![0.0; 100]),
            ..primal_only
        };
        assert_eq!(with_dual.payload_bytes(), 800);
    }
}
