//! Byzantine-robust aggregation rules and the server that carries them.
//!
//! Each rule trades accuracy or compute for resistance to a different
//! attack class (see DESIGN.md §8 for the threat model):
//!
//! * [`RobustAggregator::WeightedMean`] — the paper's FedAvg rule; no
//!   defense, the baseline the others are measured against.
//! * [`RobustAggregator::CoordMedian`] — coordinate-wise median. Immune
//!   to any minority of arbitrarily-scaled coordinates; O(n log n) per
//!   coordinate; ignores sample weights.
//! * [`RobustAggregator::TrimmedMean`] — per coordinate, drop the `trim`
//!   largest and `trim` smallest values and average the rest. Tolerates
//!   up to `trim` Byzantine clients; smoother than the median when most
//!   clients are honest.
//! * [`RobustAggregator::Krum`] / [`RobustAggregator::MultiKrum`] —
//!   pairwise-distance scoring (Blanchard et al., NeurIPS 2017): each
//!   update is scored by the summed squared distance to its `n − f − 2`
//!   nearest neighbours; outliers score badly because their neighbours
//!   are far. Krum selects the single best-scored update; Multi-Krum
//!   averages the `m` best. O(n²·d) — the priciest rule here, but the
//!   only one with a selection guarantee when `f < (n − 2) / 2`.

use crate::api::{ClientUpload, ServerAlgorithm};
use appfl_tensor::vecops::weighted_sum;
use appfl_tensor::{Result, TensorError};

/// A pluggable aggregation rule for one round of client primals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RobustAggregator {
    /// Sample-weighted average — FedAvg's `w ← Σ (I_p/I)·z_p`, undefended.
    WeightedMean,
    /// Coordinate-wise median across clients (unweighted).
    CoordMedian,
    /// Coordinate-wise trimmed mean: drop the `trim` highest and lowest
    /// values per coordinate, average the remainder (unweighted).
    TrimmedMean {
        /// Values trimmed from each end per coordinate; requires
        /// `2·trim < n` clients.
        trim: usize,
    },
    /// Krum: select the single update closest to its `n − f − 2` nearest
    /// neighbours.
    Krum {
        /// Assumed upper bound on Byzantine clients.
        f: usize,
    },
    /// Multi-Krum: average the `m` best Krum-scored updates.
    MultiKrum {
        /// Assumed upper bound on Byzantine clients.
        f: usize,
        /// Updates averaged (the `m` lowest scores); requires `m ≥ 1`.
        m: usize,
    },
}

impl RobustAggregator {
    /// Stable display name (History/experiment labelling).
    pub fn name(&self) -> &'static str {
        match self {
            RobustAggregator::WeightedMean => "WeightedMean",
            RobustAggregator::CoordMedian => "CoordMedian",
            RobustAggregator::TrimmedMean { .. } => "TrimmedMean",
            RobustAggregator::Krum { .. } => "Krum",
            RobustAggregator::MultiKrum { .. } => "MultiKrum",
        }
    }

    /// Aggregates one round of uploads into a new global model.
    ///
    /// Errors on an empty round, mismatched dimensions across uploads, or
    /// a rule whose arity requirement the cohort cannot meet (e.g.
    /// `2·trim ≥ n`).
    pub fn aggregate(&self, uploads: &[ClientUpload]) -> Result<Vec<f32>> {
        if uploads.is_empty() {
            return Err(TensorError::InvalidArgument(
                "robust aggregation with no uploads".into(),
            ));
        }
        let dim = uploads[0].primal.len();
        if uploads.iter().any(|u| u.primal.len() != dim) {
            return Err(TensorError::InvalidArgument(
                "robust aggregation over mismatched dimensions".into(),
            ));
        }
        match *self {
            RobustAggregator::WeightedMean => weighted_mean(uploads),
            RobustAggregator::CoordMedian => Ok(coordinate_sorted(uploads, |sorted| {
                let mid = sorted.len() / 2;
                if sorted.len() % 2 == 0 {
                    (sorted[mid - 1] + sorted[mid]) / 2.0
                } else {
                    sorted[mid]
                }
            })),
            RobustAggregator::TrimmedMean { trim } => {
                let n = uploads.len();
                if 2 * trim >= n {
                    return Err(TensorError::InvalidArgument(format!(
                        "trimmed mean needs 2·trim < n, got trim {trim} with {n} uploads"
                    )));
                }
                Ok(coordinate_sorted(uploads, move |sorted| {
                    let kept = &sorted[trim..sorted.len() - trim];
                    kept.iter().sum::<f32>() / kept.len() as f32
                }))
            }
            RobustAggregator::Krum { f } => {
                let scores = krum_scores(uploads, f)?;
                let best = scores
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .expect("non-empty scores");
                Ok(uploads[best].primal.clone())
            }
            RobustAggregator::MultiKrum { f, m } => {
                if m == 0 {
                    return Err(TensorError::InvalidArgument(
                        "Multi-Krum needs m >= 1".into(),
                    ));
                }
                let scores = krum_scores(uploads, f)?;
                let mut order: Vec<usize> = (0..uploads.len()).collect();
                order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
                let m = m.min(uploads.len());
                let selected: Vec<&[f32]> = order[..m]
                    .iter()
                    .map(|&i| uploads[i].primal.as_slice())
                    .collect();
                let weights = vec![1.0 / m as f32; m];
                Ok(weighted_sum(&selected, &weights))
            }
        }
    }
}

fn weighted_mean(uploads: &[ClientUpload]) -> Result<Vec<f32>> {
    let total: usize = uploads.iter().map(|u| u.num_samples).sum();
    if total == 0 {
        return Err(TensorError::InvalidArgument(
            "weighted mean with zero total samples".into(),
        ));
    }
    let weights: Vec<f32> = uploads
        .iter()
        .map(|u| u.num_samples as f32 / total as f32)
        .collect();
    let vectors: Vec<&[f32]> = uploads.iter().map(|u| u.primal.as_slice()).collect();
    Ok(weighted_sum(&vectors, &weights))
}

/// Applies `fold` to the sorted per-coordinate column of client values.
fn coordinate_sorted(uploads: &[ClientUpload], fold: impl Fn(&[f32]) -> f32) -> Vec<f32> {
    let dim = uploads[0].primal.len();
    let mut out = Vec::with_capacity(dim);
    let mut column = vec![0.0f32; uploads.len()];
    for j in 0..dim {
        for (slot, u) in column.iter_mut().zip(uploads.iter()) {
            *slot = u.primal[j];
        }
        column.sort_by(f32::total_cmp);
        out.push(fold(&column));
    }
    out
}

/// Krum scores: for each update, the summed squared distance to its
/// `n − f − 2` nearest neighbours (clamped to at least one neighbour).
fn krum_scores(uploads: &[ClientUpload], f: usize) -> Result<Vec<f64>> {
    let n = uploads.len();
    if n < 3 {
        return Err(TensorError::InvalidArgument(format!(
            "Krum needs at least 3 uploads, got {n}"
        )));
    }
    // Pairwise squared distances.
    let mut dist = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d: f64 = uploads[i]
                .primal
                .iter()
                .zip(uploads[j].primal.iter())
                .map(|(&a, &b)| {
                    let diff = f64::from(a) - f64::from(b);
                    diff * diff
                })
                .sum();
            dist[i * n + j] = d;
            dist[j * n + i] = d;
        }
    }
    let neighbours = n.saturating_sub(f + 2).max(1);
    let mut scores = Vec::with_capacity(n);
    for i in 0..n {
        let mut row: Vec<f64> = (0..n)
            .filter(|&j| j != i)
            .map(|j| dist[i * n + j])
            .collect();
        row.sort_by(f64::total_cmp);
        scores.push(row[..neighbours.min(row.len())].iter().sum());
    }
    Ok(scores)
}

/// A [`ServerAlgorithm`] whose round update is a [`RobustAggregator`] —
/// the defended drop-in for [`crate::algorithms::FedAvgServer`]. Wrap an
/// existing server with [`RobustServer::wrap`] (inherits its current
/// global model) or start fresh with [`RobustServer::new`].
///
/// Degraded rounds delegate to the same rule: every aggregator here is
/// arity-flexible (unlike the ADMM servers), so a partial cohort merely
/// tightens the effective Byzantine budget for that round.
pub struct RobustServer {
    global: Vec<f32>,
    aggregator: RobustAggregator,
}

impl RobustServer {
    /// Starts from an initial global model.
    pub fn new(initial: Vec<f32>, aggregator: RobustAggregator) -> Self {
        RobustServer {
            global: initial,
            aggregator,
        }
    }

    /// Takes over an existing server's current global model. The inner
    /// algorithm's server-side state (e.g. ADMM duals) is discarded —
    /// robust aggregation is defined for FedAvg-style averaging servers.
    pub fn wrap(inner: Box<dyn ServerAlgorithm>, aggregator: RobustAggregator) -> Self {
        RobustServer::new(inner.global_model(), aggregator)
    }

    /// The active aggregation rule.
    pub fn aggregator(&self) -> RobustAggregator {
        self.aggregator
    }
}

impl ServerAlgorithm for RobustServer {
    fn global_model(&self) -> Vec<f32> {
        self.global.clone()
    }

    fn update(&mut self, uploads: &[ClientUpload]) -> Result<()> {
        self.global = self.aggregator.aggregate(uploads)?;
        Ok(())
    }

    fn name(&self) -> &'static str {
        self.aggregator.name()
    }

    fn dim(&self) -> usize {
        self.global.len()
    }

    /// Like FedAvg, a robust averaging server's state is exactly its
    /// global model, so crash-recovery restore is exact.
    fn restore(&mut self, w: &[f32]) -> Result<()> {
        if w.len() != self.global.len() {
            return Err(appfl_tensor::TensorError::ShapeDataMismatch {
                expected: self.global.len(),
                actual: w.len(),
            });
        }
        self.global.copy_from_slice(w);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upload(id: usize, primal: Vec<f32>, n: usize) -> ClientUpload {
        ClientUpload {
            client_id: id,
            primal,
            dual: None,
            num_samples: n,
            local_loss: 0.0,
        }
    }

    fn honest_cohort() -> Vec<ClientUpload> {
        vec![
            upload(0, vec![1.0, 2.0, 3.0], 10),
            upload(1, vec![1.1, 1.9, 3.1], 10),
            upload(2, vec![0.9, 2.1, 2.9], 10),
            upload(3, vec![1.0, 2.0, 3.0], 10),
            upload(4, vec![1.05, 2.05, 3.05], 10),
        ]
    }

    #[test]
    fn weighted_mean_matches_fedavg_rule() {
        let uploads = vec![upload(0, vec![1.0], 30), upload(1, vec![4.0], 10)];
        let w = RobustAggregator::WeightedMean.aggregate(&uploads).unwrap();
        assert!((w[0] - 1.75).abs() < 1e-6);
    }

    #[test]
    fn median_ignores_a_wild_minority() {
        let mut uploads = honest_cohort();
        uploads[0].primal = vec![1e9, -1e9, 1e9];
        let w = RobustAggregator::CoordMedian.aggregate(&uploads).unwrap();
        for (j, &x) in w.iter().enumerate() {
            assert!(
                (x - [1.0, 2.0, 3.0][j]).abs() < 0.2,
                "coord {j} dragged to {x}"
            );
        }
    }

    #[test]
    fn median_is_bounded_by_coordinate_extremes() {
        let uploads = honest_cohort();
        let w = RobustAggregator::CoordMedian.aggregate(&uploads).unwrap();
        for j in 0..3 {
            let column: Vec<f32> = uploads.iter().map(|u| u.primal[j]).collect();
            let min = column.iter().copied().fold(f32::INFINITY, f32::min);
            let max = column.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            assert!(w[j] >= min && w[j] <= max);
        }
    }

    #[test]
    fn trimmed_mean_with_zero_trim_is_the_plain_mean() {
        let uploads = honest_cohort();
        let w = RobustAggregator::TrimmedMean { trim: 0 }
            .aggregate(&uploads)
            .unwrap();
        // Equal sample counts: the weighted mean IS the plain mean.
        let mean = RobustAggregator::WeightedMean.aggregate(&uploads).unwrap();
        for (a, b) in w.iter().zip(mean.iter()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn trimmed_mean_drops_the_outlier() {
        let mut uploads = honest_cohort();
        uploads[2].primal = vec![1e6, 1e6, 1e6];
        let w = RobustAggregator::TrimmedMean { trim: 1 }
            .aggregate(&uploads)
            .unwrap();
        assert!(w.iter().all(|&x| x < 10.0), "outlier survived: {w:?}");
    }

    #[test]
    fn trimmed_mean_arity_is_checked() {
        let uploads = honest_cohort();
        assert!(RobustAggregator::TrimmedMean { trim: 3 }
            .aggregate(&uploads)
            .is_err());
    }

    #[test]
    fn krum_selects_an_honest_update_under_attack() {
        let mut uploads = honest_cohort();
        uploads[1].primal = vec![500.0, -500.0, 500.0]; // f = 1 < (5-2)/2
        let w = RobustAggregator::Krum { f: 1 }.aggregate(&uploads).unwrap();
        // The winner is one of the honest primals verbatim.
        assert!(
            uploads
                .iter()
                .filter(|u| u.client_id != 1)
                .any(|u| u.primal == w),
            "krum picked {w:?}"
        );
    }

    #[test]
    fn multi_krum_averages_the_selected_set() {
        let mut uploads = honest_cohort();
        uploads[4].primal = vec![-400.0, 400.0, -400.0];
        let w = RobustAggregator::MultiKrum { f: 1, m: 3 }
            .aggregate(&uploads)
            .unwrap();
        for (j, &x) in w.iter().enumerate() {
            assert!(
                (x - [1.0, 2.0, 3.0][j]).abs() < 0.2,
                "coord {j} dragged to {x}"
            );
        }
    }

    #[test]
    fn aggregators_are_permutation_invariant() {
        let uploads = honest_cohort();
        let mut reversed = uploads.clone();
        reversed.reverse();
        for agg in [
            RobustAggregator::WeightedMean,
            RobustAggregator::CoordMedian,
            RobustAggregator::TrimmedMean { trim: 1 },
            RobustAggregator::MultiKrum { f: 1, m: 3 },
        ] {
            let a = agg.aggregate(&uploads).unwrap();
            let b = agg.aggregate(&reversed).unwrap();
            for (x, y) in a.iter().zip(b.iter()) {
                assert!((x - y).abs() < 1e-5, "{agg:?} not permutation invariant");
            }
        }
        // Krum returns a member vector, so invariance is exact.
        let a = RobustAggregator::Krum { f: 1 }.aggregate(&uploads).unwrap();
        let b = RobustAggregator::Krum { f: 1 }
            .aggregate(&reversed)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_cohorts_error_cleanly() {
        assert!(RobustAggregator::CoordMedian.aggregate(&[]).is_err());
        let mismatched = vec![upload(0, vec![1.0], 1), upload(1, vec![1.0, 2.0], 1)];
        assert!(RobustAggregator::CoordMedian
            .aggregate(&mismatched)
            .is_err());
        let two = vec![upload(0, vec![1.0], 1), upload(1, vec![2.0], 1)];
        assert!(RobustAggregator::Krum { f: 0 }.aggregate(&two).is_err());
        assert!(RobustAggregator::MultiKrum { f: 0, m: 0 }
            .aggregate(&honest_cohort())
            .is_err());
    }

    #[test]
    fn robust_server_implements_server_algorithm() {
        let mut s = RobustServer::new(vec![0.0; 3], RobustAggregator::CoordMedian);
        assert_eq!(s.name(), "CoordMedian");
        assert_eq!(s.dim(), 3);
        let mut uploads = honest_cohort();
        uploads[0].primal = vec![1e9, 1e9, 1e9];
        s.update(&uploads).unwrap();
        assert!(s.global_model().iter().all(|&x| x < 10.0));
    }

    #[test]
    fn wrap_inherits_the_inner_model() {
        let inner = crate::algorithms::FedAvgServer::new(vec![7.0, 8.0]);
        let s = RobustServer::wrap(Box::new(inner), RobustAggregator::Krum { f: 0 });
        assert_eq!(s.global_model(), vec![7.0, 8.0]);
        assert_eq!(s.aggregator(), RobustAggregator::Krum { f: 0 });
    }
}
