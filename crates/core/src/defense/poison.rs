//! Deterministic poisoning adversaries for end-to-end defense tests.
//!
//! Where [`appfl_comm::transport::FaultPlan`] attacks the *wire* (drops,
//! delays, bit-flips), [`PoisonedClient`] attacks the *content*: it wraps
//! an honest [`ClientAlgorithm`], lets it train normally, then mutates
//! the resulting upload before it leaves the client. Every mutation is
//! derived from `(seed, client id, round index)` with the same
//! splitmix64 scheme the fault plan uses, so a given attack replays
//! identically across runs — the property the e2e assertions
//! ("defended run within 5 points of honest baseline") depend on.

use crate::api::{ClientAlgorithm, ClientUpload};
use appfl_tensor::Result;

/// A model-poisoning strategy applied to an honest client's upload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Attack {
    /// Reflect the update through the broadcast global model:
    /// `p' = g − scale·(p − g)`. With `scale = 1` the client reports the
    /// exact opposite of what it learned — the classic sign-flip attack.
    SignFlip {
        /// Reflection magnitude (1.0 = pure sign flip of the delta).
        scale: f32,
    },
    /// Scale the update delta away from the global model:
    /// `p' = g + factor·(p − g)`. Large factors drag a mean-based
    /// aggregate arbitrarily far; norm clipping or trimming defeats it.
    Scale {
        /// Delta amplification factor λ.
        factor: f32,
    },
    /// Add i.i.d. Gaussian noise `N(0, sigma²)` to every parameter.
    GaussianNoise {
        /// Noise standard deviation.
        sigma: f32,
    },
    /// Replace a deterministic subset of parameters with NaN — the
    /// "crashed accelerator" failure an [`super::UpdateGuard`] must stop
    /// before it reaches any aggregator (NaN propagates through every
    /// mean *and* through sort-based rules' comparisons).
    NanInject,
}

impl Attack {
    /// Stable display name for test output and telemetry detail strings.
    pub fn name(&self) -> &'static str {
        match self {
            Attack::SignFlip { .. } => "sign_flip",
            Attack::Scale { .. } => "scale",
            Attack::GaussianNoise { .. } => "gaussian_noise",
            Attack::NanInject => "nan_inject",
        }
    }
}

/// A Byzantine client: an honest [`ClientAlgorithm`] whose uploads are
/// deterministically poisoned on the way out.
///
/// The wrapper is transparent to every runner — same id, same sample
/// count, same trait — so tests build an `n`-client federation and swap
/// `f` clients for poisoned ones without touching runner code.
pub struct PoisonedClient {
    inner: Box<dyn ClientAlgorithm>,
    attack: Attack,
    seed: u64,
    round: usize,
}

impl PoisonedClient {
    /// Wraps `inner` with `attack`, seeding the noise/NaN schedules.
    pub fn new(inner: Box<dyn ClientAlgorithm>, attack: Attack, seed: u64) -> Self {
        PoisonedClient {
            inner,
            attack,
            seed,
            round: 0,
        }
    }

    /// The active attack.
    pub fn attack(&self) -> Attack {
        self.attack
    }

    /// A uniform draw in `[0, 1)` from `(seed, client, round, index, salt)`
    /// — splitmix64, matching the transport fault plan's determinism scheme.
    fn draw(&self, index: usize, salt: u64) -> f64 {
        let mut x = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((self.inner.id() as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add((self.round as u64).wrapping_mul(0x94D0_49BB_1331_11EB))
            .wrapping_add((index as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93))
            .wrapping_add(salt);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A standard-normal draw via Box–Muller over two uniform draws.
    fn normal(&self, index: usize) -> f32 {
        let u1 = self.draw(index, 11).max(f64::MIN_POSITIVE);
        let u2 = self.draw(index, 13);
        ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
    }

    fn poison(&self, global: &[f32], primal: &mut [f32]) {
        match self.attack {
            Attack::SignFlip { scale } => {
                for (p, &g) in primal.iter_mut().zip(global.iter()) {
                    *p = g - scale * (*p - g);
                }
            }
            Attack::Scale { factor } => {
                for (p, &g) in primal.iter_mut().zip(global.iter()) {
                    *p = g + factor * (*p - g);
                }
            }
            Attack::GaussianNoise { sigma } => {
                for (i, p) in primal.iter_mut().enumerate() {
                    *p += sigma * self.normal(i);
                }
            }
            Attack::NanInject => {
                // Corrupt ~1/8 of coordinates (at least one), seeded.
                for (i, p) in primal.iter_mut().enumerate() {
                    if i == 0 || self.draw(i, 17) < 0.125 {
                        *p = f32::NAN;
                    }
                }
            }
        }
    }
}

impl ClientAlgorithm for PoisonedClient {
    fn update(&mut self, global: &[f32]) -> Result<ClientUpload> {
        let mut upload = self.inner.update(global)?;
        self.poison(global, &mut upload.primal);
        if let Some(dual) = upload.dual.as_mut() {
            // Duals have no "global" reference point; attack them relative
            // to zero so ADMM-family uploads are poisoned too.
            let zeros = vec![0.0f32; dual.len()];
            self.poison(&zeros, dual);
        }
        self.round += 1;
        Ok(upload)
    }

    fn id(&self) -> usize {
        self.inner.id()
    }

    fn num_samples(&self) -> usize {
        self.inner.num_samples()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An honest client that reports `global + 1` everywhere.
    struct StepClient {
        id: usize,
    }

    impl ClientAlgorithm for StepClient {
        fn update(&mut self, global: &[f32]) -> Result<ClientUpload> {
            Ok(ClientUpload {
                client_id: self.id,
                primal: global.iter().map(|&g| g + 1.0).collect(),
                dual: None,
                num_samples: 10,
                local_loss: 0.1,
            })
        }
        fn id(&self) -> usize {
            self.id
        }
        fn num_samples(&self) -> usize {
            10
        }
    }

    fn poisoned(attack: Attack, seed: u64) -> PoisonedClient {
        PoisonedClient::new(Box::new(StepClient { id: 3 }), attack, seed)
    }

    #[test]
    fn sign_flip_reflects_the_delta() {
        let mut c = poisoned(Attack::SignFlip { scale: 1.0 }, 1);
        let up = c.update(&[2.0, 2.0]).unwrap();
        // Honest delta is +1; reflected is −1.
        assert_eq!(up.primal, vec![1.0, 1.0]);
        assert_eq!(up.client_id, 3);
        assert_eq!(c.num_samples(), 10);
    }

    #[test]
    fn scale_amplifies_the_delta() {
        let mut c = poisoned(Attack::Scale { factor: 100.0 }, 1);
        let up = c.update(&[0.0, 5.0]).unwrap();
        assert_eq!(up.primal, vec![100.0, 105.0]);
    }

    #[test]
    fn gaussian_noise_is_seeded_and_replayable() {
        let run = |seed: u64| {
            let mut c = poisoned(Attack::GaussianNoise { sigma: 1.0 }, seed);
            c.update(&[0.0; 16]).unwrap().primal
        };
        let a = run(7);
        assert_eq!(a, run(7), "same seed must replay identically");
        assert_ne!(a, run(8), "different seed, different noise");
        // Noise actually perturbed the honest value.
        assert!(a.iter().any(|&x| (x - 1.0).abs() > 1e-3));
        assert!(a.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn nan_inject_corrupts_at_least_one_coordinate() {
        let mut c = poisoned(Attack::NanInject, 5);
        let up = c.update(&[0.0; 32]).unwrap();
        assert!(up.primal.iter().any(|x| x.is_nan()));
        // ...but not all of them (it should look plausibly partial).
        assert!(up.primal.iter().any(|x| x.is_finite()));
    }

    #[test]
    fn rounds_advance_the_schedule() {
        let mut c = poisoned(Attack::GaussianNoise { sigma: 1.0 }, 7);
        let r0 = c.update(&[0.0; 8]).unwrap().primal;
        let r1 = c.update(&[0.0; 8]).unwrap().primal;
        assert_ne!(r0, r1, "per-round draws must differ");
    }

    #[test]
    fn duals_are_poisoned_too() {
        struct DualClient;
        impl ClientAlgorithm for DualClient {
            fn update(&mut self, global: &[f32]) -> Result<ClientUpload> {
                Ok(ClientUpload {
                    client_id: 0,
                    primal: global.to_vec(),
                    dual: Some(vec![1.0; global.len()]),
                    num_samples: 1,
                    local_loss: 0.0,
                })
            }
            fn id(&self) -> usize {
                0
            }
            fn num_samples(&self) -> usize {
                1
            }
        }
        let mut c = PoisonedClient::new(Box::new(DualClient), Attack::SignFlip { scale: 1.0 }, 1);
        let up = c.update(&[0.0; 4]).unwrap();
        assert_eq!(up.dual.unwrap(), vec![-1.0; 4]);
    }
}
