//! Byzantine-robust aggregation: the model-layer defense subsystem.
//!
//! The transport-layer fault tolerance of [`crate::runner`] defends the
//! *delivery* of client updates — drops, timeouts, corruption on the wire.
//! Nothing there defends their *content*: the paper's server aggregates
//! with a plain sample-weighted average (`w ← Σ (I_p/I)·z_p`), so a single
//! NaN-laden, scaled or sign-flipped upload silently poisons the global
//! model. This module closes that gap with three layers, mirroring the
//! pluggable-aggregator extension point of the follow-up "Advances in
//! APPFL" framework paper (arXiv:2409.11585):
//!
//! 1. **Sanitization** — [`UpdateGuard`] screens every incoming parameter
//!    vector before aggregation: NaN/Inf rejection, dimension checks and
//!    L2-norm clipping/rejection against a running median-of-norms
//!    baseline. Rejections feed the [`crate::runner::ClientRoster`]
//!    suspect/exclude machinery and emit `update_rejected` /
//!    `update_clipped` telemetry.
//! 2. **Robust aggregators** — [`RobustAggregator`] implements
//!    coordinate-wise median, trimmed mean and Krum / Multi-Krum beside
//!    the sample-weighted mean; [`RobustServer`] carries any of them
//!    through the [`crate::api::ServerAlgorithm`] trait so every runner
//!    (serial, comm, rpc, async) can run defended. Select one with
//!    [`crate::federation::Resilience::robust`].
//! 3. **Adversary simulation** — [`PoisonedClient`] wraps an honest
//!    [`crate::api::ClientAlgorithm`] with deterministic seeded attacks
//!    (sign-flip, scaling, Gaussian noise, NaN injection) so end-to-end
//!    tests can pit `f` Byzantine clients against `n − f` honest ones.

pub mod guard;
pub mod poison;
pub mod robust;

pub use guard::{
    screen_and_report, GuardVerdict, RejectReason, ScreenedRound, UpdateGuard, UpdateGuardConfig,
};
pub use poison::{Attack, PoisonedClient};
pub use robust::{RobustAggregator, RobustServer};
