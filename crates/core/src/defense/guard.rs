//! Update sanitization: screen every client upload before it can touch
//! the aggregate.
//!
//! The guard runs three checks, cheapest first:
//!
//! 1. **Dimension** — a mis-sized primal (or dual) can only come from a
//!    confused or malicious client; it is rejected outright.
//! 2. **Finiteness** — one NaN coordinate propagates through any linear
//!    aggregation and bricks the global model; any non-finite value
//!    rejects the upload.
//! 3. **Norm** — honest updates cluster around the global model's scale,
//!    so the guard keeps a running window of accepted L2 norms and flags
//!    uploads beyond `norm_multiplier ×` the window median. Flagged
//!    uploads are rescaled down to the limit (`clip = true`, the default
//!    — a gentle defense that keeps the client's direction) or rejected
//!    (`clip = false`). Until `warmup` norms have been observed the
//!    baseline is considered unreliable and only the optional
//!    `absolute_max_norm` cap applies, so early-round variance never
//!    causes spurious rejections.

use crate::api::ClientUpload;
use appfl_telemetry::Telemetry;
use std::collections::{BTreeMap, VecDeque};

/// EWMA smoothing for client health: `h ← (1−α)·h + α·outcome`.
const HEALTH_ALPHA: f64 = 0.2;

/// Knobs for [`UpdateGuard`]. The defaults are deliberately permissive:
/// a 4× median budget with clipping tames scaled attacks without touching
/// honest heterogeneous clients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateGuardConfig {
    /// Norm budget as a multiple of the running median of accepted norms.
    pub norm_multiplier: f32,
    /// `true`: rescale over-budget uploads down to the budget (keeps the
    /// client's direction). `false`: reject them outright.
    pub clip: bool,
    /// Hard L2-norm cap applied regardless of the baseline (`None` = no
    /// absolute cap). Over-cap uploads follow the same clip/reject policy.
    pub absolute_max_norm: Option<f32>,
    /// Accepted norms required before the median baseline activates.
    pub warmup: usize,
    /// Norms retained for the running median (older ones roll off).
    pub window: usize,
}

impl Default for UpdateGuardConfig {
    fn default() -> Self {
        UpdateGuardConfig {
            norm_multiplier: 4.0,
            clip: true,
            absolute_max_norm: None,
            warmup: 4,
            window: 64,
        }
    }
}

/// Why an upload was refused.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RejectReason {
    /// The primal (or dual) vector length does not match the model.
    DimMismatch {
        /// Model dimension the server expects.
        expected: usize,
        /// Length the client sent.
        actual: usize,
    },
    /// A NaN or ±Inf coordinate.
    NonFinite,
    /// L2 norm beyond the active budget, with clipping disabled.
    NormOutlier {
        /// The upload's L2 norm.
        norm: f32,
        /// The budget it exceeded.
        limit: f32,
    },
}

impl RejectReason {
    /// Short stable label for telemetry `detail` fields.
    pub fn as_str(&self) -> &'static str {
        match self {
            RejectReason::DimMismatch { .. } => "dim_mismatch",
            RejectReason::NonFinite => "non_finite",
            RejectReason::NormOutlier { .. } => "norm_outlier",
        }
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::DimMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            RejectReason::NonFinite => write!(f, "non-finite coordinate"),
            RejectReason::NormOutlier { norm, limit } => {
                write!(f, "norm {norm:.3} exceeds budget {limit:.3}")
            }
        }
    }
}

/// Outcome of screening one upload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GuardVerdict {
    /// Clean: aggregate as-is.
    Accepted {
        /// The upload's L2 norm (also recorded into the baseline window).
        norm: f32,
    },
    /// Over the norm budget; the primal was rescaled down to `limit`.
    Clipped {
        /// The norm before rescaling.
        norm: f32,
        /// The budget it was rescaled to.
        limit: f32,
    },
    /// Refused; the upload must not reach the aggregate.
    Rejected(RejectReason),
}

/// Screening results for a whole round's uploads.
#[derive(Debug, Default)]
pub struct ScreenedRound {
    /// Uploads cleared for aggregation (clipped ones already rescaled).
    pub accepted: Vec<ClientUpload>,
    /// `(client_id, reason)` per refused upload.
    pub rejected: Vec<(usize, RejectReason)>,
    /// Client ids whose uploads were norm-clipped.
    pub clipped: Vec<usize>,
    /// `(client_id, pre-screening L2 norm)` for every upload that passed
    /// the finiteness check — the per-client norm gauge feed.
    pub norms: Vec<(usize, f32)>,
}

/// Stateful update screen: dimension and finiteness checks plus L2-norm
/// policing against a running median-of-norms baseline.
#[derive(Debug, Clone)]
pub struct UpdateGuard {
    dim: usize,
    config: UpdateGuardConfig,
    norms: VecDeque<f32>,
    rejected_total: usize,
    clipped_total: usize,
    health: BTreeMap<usize, f64>,
}

impl UpdateGuard {
    /// A guard for model dimension `dim`.
    pub fn new(dim: usize, config: UpdateGuardConfig) -> Self {
        UpdateGuard {
            dim,
            config,
            norms: VecDeque::with_capacity(config.window.max(1)),
            rejected_total: 0,
            clipped_total: 0,
            health: BTreeMap::new(),
        }
    }

    /// The active norm budget: `norm_multiplier ×` the window median once
    /// warmed up, intersected with `absolute_max_norm`. `None` while no
    /// budget applies.
    pub fn norm_budget(&self) -> Option<f32> {
        let from_baseline = if self.norms.len() >= self.config.warmup.max(1) {
            let mut sorted: Vec<f32> = self.norms.iter().copied().collect();
            sorted.sort_by(f32::total_cmp);
            let mid = sorted.len() / 2;
            let median = if sorted.len() % 2 == 0 {
                (sorted[mid - 1] + sorted[mid]) / 2.0
            } else {
                sorted[mid]
            };
            Some(median * self.config.norm_multiplier)
        } else {
            None
        };
        match (from_baseline, self.config.absolute_max_norm) {
            (Some(b), Some(a)) => Some(b.min(a)),
            (Some(b), None) => Some(b),
            (None, a) => a,
        }
    }

    /// Uploads refused since construction.
    pub fn rejected_total(&self) -> usize {
        self.rejected_total
    }

    /// Uploads norm-clipped since construction.
    pub fn clipped_total(&self) -> usize {
        self.clipped_total
    }

    /// This client's health score in `[0, 1]` — an EWMA over screening
    /// outcomes (accepted = 1, clipped = 0.5, rejected = 0) starting at
    /// 1. A persistently misbehaving client decays toward 0; a client
    /// never seen scores a clean 1.
    pub fn health_score(&self, client: usize) -> f64 {
        self.health.get(&client).copied().unwrap_or(1.0)
    }

    /// Every screened client's health score, keyed by client id.
    pub fn health_scores(&self) -> &BTreeMap<usize, f64> {
        &self.health
    }

    fn note_health(&mut self, client: usize, verdict: &GuardVerdict) {
        let outcome = match verdict {
            GuardVerdict::Accepted { .. } => 1.0,
            GuardVerdict::Clipped { .. } => 0.5,
            GuardVerdict::Rejected(_) => 0.0,
        };
        let h = self.health.entry(client).or_insert(1.0);
        *h = (1.0 - HEALTH_ALPHA) * *h + HEALTH_ALPHA * outcome;
    }

    /// Screens one upload in place. Clipping rescales `upload.primal`
    /// (and the dual, if present, by the same factor); acceptance records
    /// the norm into the baseline window. Every verdict also feeds the
    /// client's [`UpdateGuard::health_score`].
    pub fn screen(&mut self, upload: &mut ClientUpload) -> GuardVerdict {
        let verdict = self.screen_inner(upload);
        self.note_health(upload.client_id, &verdict);
        verdict
    }

    fn screen_inner(&mut self, upload: &mut ClientUpload) -> GuardVerdict {
        if upload.primal.len() != self.dim {
            self.rejected_total += 1;
            return GuardVerdict::Rejected(RejectReason::DimMismatch {
                expected: self.dim,
                actual: upload.primal.len(),
            });
        }
        if let Some(dual) = &upload.dual {
            if dual.len() != self.dim {
                self.rejected_total += 1;
                return GuardVerdict::Rejected(RejectReason::DimMismatch {
                    expected: self.dim,
                    actual: dual.len(),
                });
            }
        }
        let finite = upload.primal.iter().all(|x| x.is_finite())
            && upload
                .dual
                .as_ref()
                .is_none_or(|d| d.iter().all(|x| x.is_finite()));
        if !finite {
            self.rejected_total += 1;
            return GuardVerdict::Rejected(RejectReason::NonFinite);
        }
        let norm = l2_norm(&upload.primal);
        if let Some(limit) = self.norm_budget() {
            if norm > limit {
                if !self.config.clip {
                    self.rejected_total += 1;
                    return GuardVerdict::Rejected(RejectReason::NormOutlier { norm, limit });
                }
                let scale = limit / norm.max(f32::MIN_POSITIVE);
                for x in &mut upload.primal {
                    *x *= scale;
                }
                if let Some(dual) = &mut upload.dual {
                    for x in dual {
                        *x *= scale;
                    }
                }
                self.clipped_total += 1;
                self.record_norm(limit);
                return GuardVerdict::Clipped { norm, limit };
            }
        }
        self.record_norm(norm);
        GuardVerdict::Accepted { norm }
    }

    /// Screens a whole round of uploads, partitioning them into accepted
    /// (clipped in place) and rejected.
    pub fn screen_round(&mut self, uploads: Vec<ClientUpload>) -> ScreenedRound {
        let mut out = ScreenedRound::default();
        for mut upload in uploads {
            let id = upload.client_id;
            match self.screen(&mut upload) {
                GuardVerdict::Accepted { norm } => {
                    out.norms.push((id, norm));
                    out.accepted.push(upload);
                }
                GuardVerdict::Clipped { norm, .. } => {
                    out.norms.push((id, norm));
                    out.clipped.push(id);
                    out.accepted.push(upload);
                }
                GuardVerdict::Rejected(reason) => out.rejected.push((id, reason)),
            }
        }
        out
    }

    fn record_norm(&mut self, norm: f32) {
        if self.norms.len() >= self.config.window.max(1) {
            self.norms.pop_front();
        }
        self.norms.push_back(norm);
    }
}

fn l2_norm(v: &[f32]) -> f32 {
    (v.iter().map(|&x| f64::from(x) * f64::from(x)).sum::<f64>()).sqrt() as f32
}

/// Screens a round's uploads and narrates the outcome on `telemetry`:
/// one `update_norm` gauge per finite upload (tagged with the client as
/// peer), one `update_rejected` mark per refusal (reason in the detail),
/// one `update_clipped` mark per rescale, and one `client_health` gauge
/// per screened client (the guard's EWMA health score after this round's
/// verdicts). This is the helper every runner calls so the event
/// vocabulary stays identical across entry points.
pub fn screen_and_report(
    guard: &mut UpdateGuard,
    uploads: Vec<ClientUpload>,
    round: Option<u64>,
    telemetry: &Telemetry,
) -> ScreenedRound {
    let clients: Vec<usize> = uploads.iter().map(|u| u.client_id).collect();
    let screened = guard.screen_round(uploads);
    for &(client, norm) in &screened.norms {
        telemetry.gauge("update_norm", f64::from(norm), round, Some(client as u64));
    }
    for &(client, reason) in &screened.rejected {
        telemetry.mark(
            "update_rejected",
            round,
            Some(client as u64),
            Some(reason.as_str()),
        );
    }
    for &client in &screened.clipped {
        telemetry.mark("update_clipped", round, Some(client as u64), None);
    }
    for client in clients {
        telemetry.gauge(
            "client_health",
            guard.health_score(client),
            round,
            Some(client as u64),
        );
    }
    screened
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upload(id: usize, primal: Vec<f32>) -> ClientUpload {
        ClientUpload {
            client_id: id,
            primal,
            dual: None,
            num_samples: 10,
            local_loss: 0.1,
        }
    }

    #[test]
    fn clean_uploads_are_accepted_and_build_the_baseline() {
        let mut g = UpdateGuard::new(3, UpdateGuardConfig::default());
        for i in 0..5 {
            let mut u = upload(i, vec![1.0, 0.0, 0.0]);
            assert!(matches!(g.screen(&mut u), GuardVerdict::Accepted { .. }));
        }
        // Five accepted unit norms: budget is 4 × median(1.0) = 4.
        let budget = g.norm_budget().expect("baseline warmed up");
        assert!((budget - 4.0).abs() < 1e-6, "budget {budget}");
        assert_eq!(g.rejected_total(), 0);
    }

    #[test]
    fn nan_and_inf_are_rejected() {
        let mut g = UpdateGuard::new(2, UpdateGuardConfig::default());
        let mut u = upload(0, vec![f32::NAN, 1.0]);
        assert_eq!(
            g.screen(&mut u),
            GuardVerdict::Rejected(RejectReason::NonFinite)
        );
        let mut u = upload(0, vec![1.0, f32::INFINITY]);
        assert!(matches!(g.screen(&mut u), GuardVerdict::Rejected(_)));
        // A NaN dual is just as fatal as a NaN primal.
        let mut u = upload(0, vec![1.0, 1.0]);
        u.dual = Some(vec![f32::NAN, 0.0]);
        assert!(matches!(g.screen(&mut u), GuardVerdict::Rejected(_)));
        assert_eq!(g.rejected_total(), 3);
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let mut g = UpdateGuard::new(3, UpdateGuardConfig::default());
        let mut u = upload(0, vec![1.0, 2.0]);
        assert_eq!(
            g.screen(&mut u),
            GuardVerdict::Rejected(RejectReason::DimMismatch {
                expected: 3,
                actual: 2
            })
        );
    }

    #[test]
    fn scaled_attack_is_clipped_back_to_the_budget() {
        let mut g = UpdateGuard::new(2, UpdateGuardConfig::default());
        for _ in 0..4 {
            g.screen(&mut upload(0, vec![3.0, 4.0])); // norm 5
        }
        // A 100× blow-up: norm 500 ≫ 4 × 5 = 20 → rescaled to 20.
        let mut evil = upload(1, vec![300.0, 400.0]);
        match g.screen(&mut evil) {
            GuardVerdict::Clipped { norm, limit } => {
                assert!((norm - 500.0).abs() < 1e-3);
                assert!((limit - 20.0).abs() < 1e-3);
            }
            other => panic!("expected clip, got {other:?}"),
        }
        let clipped_norm = l2_norm(&evil.primal);
        assert!((clipped_norm - 20.0).abs() < 1e-3, "norm {clipped_norm}");
        assert_eq!(g.clipped_total(), 1);
    }

    #[test]
    fn reject_policy_refuses_instead_of_clipping() {
        let cfg = UpdateGuardConfig {
            clip: false,
            ..UpdateGuardConfig::default()
        };
        let mut g = UpdateGuard::new(1, cfg);
        for _ in 0..4 {
            g.screen(&mut upload(0, vec![1.0]));
        }
        let mut evil = upload(1, vec![1000.0]);
        assert!(matches!(
            g.screen(&mut evil),
            GuardVerdict::Rejected(RejectReason::NormOutlier { .. })
        ));
        // The rejected upload is untouched.
        assert_eq!(evil.primal, vec![1000.0]);
    }

    #[test]
    fn no_norm_policing_before_warmup() {
        let mut g = UpdateGuard::new(1, UpdateGuardConfig::default());
        // First upload is huge, but the baseline is cold: accepted.
        let mut u = upload(0, vec![1e6]);
        assert!(matches!(g.screen(&mut u), GuardVerdict::Accepted { .. }));
    }

    #[test]
    fn absolute_cap_applies_even_during_warmup() {
        let cfg = UpdateGuardConfig {
            absolute_max_norm: Some(10.0),
            ..UpdateGuardConfig::default()
        };
        let mut g = UpdateGuard::new(1, cfg);
        let mut u = upload(0, vec![100.0]);
        assert!(matches!(g.screen(&mut u), GuardVerdict::Clipped { .. }));
        assert!((u.primal[0] - 10.0).abs() < 1e-4);
    }

    #[test]
    fn screen_round_partitions_accept_reject_clip() {
        let mut g = UpdateGuard::new(2, UpdateGuardConfig::default());
        for _ in 0..4 {
            g.screen(&mut upload(9, vec![1.0, 0.0]));
        }
        let round = vec![
            upload(0, vec![0.9, 0.1]),      // accepted
            upload(1, vec![f32::NAN, 0.0]), // rejected
            upload(2, vec![500.0, 0.0]),    // clipped
        ];
        let s = g.screen_round(round);
        assert_eq!(s.accepted.len(), 2);
        assert_eq!(s.rejected.len(), 1);
        assert_eq!(s.rejected[0].0, 1);
        assert_eq!(s.clipped, vec![2]);
        assert_eq!(s.norms.len(), 2, "norm gauges for all finite uploads");
    }

    #[test]
    fn health_scores_track_screening_outcomes() {
        let mut g = UpdateGuard::new(2, UpdateGuardConfig::default());
        assert_eq!(
            g.health_score(7),
            1.0,
            "unseen clients are presumed healthy"
        );
        // Client 0 behaves; client 1 sends NaN every round.
        for _ in 0..10 {
            g.screen(&mut upload(0, vec![1.0, 0.0]));
            g.screen(&mut upload(1, vec![f32::NAN, 0.0]));
        }
        assert_eq!(g.health_score(0), 1.0);
        let bad = g.health_score(1);
        assert!(bad < 0.2, "ten straight rejections decay health: {bad}");
        assert!(bad > 0.0, "EWMA never quite reaches zero");
        assert_eq!(g.health_scores().len(), 2);
        // A clip hurts less than a reject.
        let mut h = UpdateGuard::new(2, UpdateGuardConfig::default());
        for _ in 0..4 {
            h.screen(&mut upload(2, vec![1.0, 0.0]));
        }
        h.screen(&mut upload(3, vec![500.0, 0.0]));
        let clipped = h.health_score(3);
        assert!(
            (clipped - 0.9).abs() < 1e-9,
            "one clip: 0.8·1 + 0.2·0.5 = 0.9"
        );
    }

    #[test]
    fn window_rolls_old_norms_off() {
        let cfg = UpdateGuardConfig {
            window: 4,
            warmup: 2,
            ..UpdateGuardConfig::default()
        };
        let mut g = UpdateGuard::new(1, cfg);
        for _ in 0..4 {
            g.screen(&mut upload(0, vec![1.0]));
        }
        // Four larger norms push the old regime out of the window.
        for _ in 0..4 {
            g.screen(&mut upload(0, vec![3.0]));
        }
        let budget = g.norm_budget().unwrap();
        assert!(
            (budget - 12.0).abs() < 1e-4,
            "budget tracks drift: {budget}"
        );
    }
}
