//! Model-level convergence diagnostics shared by every runner.
//!
//! The ADMM servers report their own primal/dual residuals through
//! [`crate::api::ServerAlgorithm::diagnostics`]; the quantities here are
//! algorithm-agnostic and computed from what every round already has in
//! hand — the broadcast model `w^t`, the aggregated model `w^{t+1}` and
//! the client uploads:
//!
//! * **update norm** `‖w^{t+1} − w^t‖` — how far the global model moved.
//!   A run that has converged shows this decaying toward zero.
//! * **cosine alignment** — mean cosine similarity between each client's
//!   update direction `z_p − w^t` and the cohort's mean direction. Near 1
//!   means clients agree on where the model should go; near 0 means their
//!   gradients are pulling in unrelated directions (heterogeneous shards,
//!   or a poisoned cohort — the defense layer's reject counters and this
//!   gauge tend to move together).
//!
//! [`RoundDiagnostics::collect`] folds both plus the server's ADMM
//! residuals into one struct; [`RoundDiagnostics::emit`] publishes them
//! as round-tagged telemetry gauges, and [`RoundDiagnostics::stamp`]
//! copies them onto a [`crate::metrics::RoundRecord`].

use crate::api::{ClientUpload, ConvergenceDiagnostics, ServerAlgorithm};
use crate::metrics::RoundRecord;
use appfl_telemetry::Telemetry;
use appfl_tensor::vecops::{dot, l2_norm, sq_dist};

/// One round's convergence diagnostics, ready to emit and record.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RoundDiagnostics {
    /// ADMM residuals + ρ, if the algorithm reports them.
    pub admm: Option<ConvergenceDiagnostics>,
    /// `‖w^{t+1} − w^t‖`.
    pub update_norm: f64,
    /// Mean client-update cosine alignment (0 when fewer than two
    /// clients reported or every delta is zero).
    pub cosine_alignment: f64,
}

impl RoundDiagnostics {
    /// Computes diagnostics for a round from the broadcast model
    /// (`before`), the uploads that reached the aggregator, and the
    /// server that just aggregated them.
    pub fn collect(server: &dyn ServerAlgorithm, before: &[f32], uploads: &[ClientUpload]) -> Self {
        let after = server.global_model();
        RoundDiagnostics {
            admm: server.diagnostics(),
            update_norm: sq_dist(&after, before).sqrt(),
            cosine_alignment: cosine_alignment(before, uploads),
        }
    }

    /// Publishes the diagnostics as round-tagged gauges on `telemetry`.
    pub fn emit(&self, telemetry: &Telemetry, round: u64) {
        telemetry.gauge("update_norm", self.update_norm, Some(round), None);
        telemetry.gauge("cosine_alignment", self.cosine_alignment, Some(round), None);
        if let Some(d) = self.admm {
            telemetry.gauge("primal_residual", d.primal_residual, Some(round), None);
            telemetry.gauge("dual_residual", d.dual_residual, Some(round), None);
            telemetry.gauge("rho", d.rho, Some(round), None);
        }
    }

    /// Copies the diagnostics onto a round record.
    pub fn stamp(&self, record: &mut RoundRecord) {
        record.update_norm = self.update_norm;
        record.cosine_alignment = self.cosine_alignment;
        if let Some(d) = self.admm {
            record.primal_residual = d.primal_residual;
            record.dual_residual = d.dual_residual;
            record.rho = d.rho;
        }
    }
}

/// Mean cosine similarity between each client's update direction
/// `z_p − w` and the cohort's mean direction.
///
/// Returns 0 when fewer than two uploads arrived (alignment of a single
/// client with itself is vacuous), when an upload's length mismatches
/// `before` (defensive — the guard rejects those earlier), or when the
/// mean delta is numerically zero.
pub fn cosine_alignment(before: &[f32], uploads: &[ClientUpload]) -> f64 {
    if uploads.len() < 2 {
        return 0.0;
    }
    let dim = before.len();
    if uploads.iter().any(|u| u.primal.len() != dim) {
        return 0.0;
    }
    let mut mean = vec![0.0f32; dim];
    let deltas: Vec<Vec<f32>> = uploads
        .iter()
        .map(|u| {
            let d: Vec<f32> = u
                .primal
                .iter()
                .zip(before.iter())
                .map(|(&z, &w)| z - w)
                .collect();
            for (m, &v) in mean.iter_mut().zip(d.iter()) {
                *m += v;
            }
            d
        })
        .collect();
    let inv = 1.0 / deltas.len() as f32;
    for m in mean.iter_mut() {
        *m *= inv;
    }
    let mean_norm = l2_norm(&mean);
    if mean_norm <= f64::EPSILON {
        return 0.0;
    }
    let mut sum = 0.0;
    let mut counted = 0usize;
    for d in &deltas {
        let n = l2_norm(d);
        if n <= f64::EPSILON {
            continue;
        }
        sum += dot(d, &mean) / (n * mean_norm);
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        sum / counted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upload(id: usize, primal: Vec<f32>) -> ClientUpload {
        ClientUpload {
            client_id: id,
            primal,
            dual: None,
            num_samples: 1,
            local_loss: 0.0,
        }
    }

    #[test]
    fn aligned_clients_score_one() {
        let before = vec![0.0; 3];
        let ups = vec![
            upload(0, vec![1.0, 0.0, 0.0]),
            upload(1, vec![2.0, 0.0, 0.0]),
        ];
        let c = cosine_alignment(&before, &ups);
        assert!((c - 1.0).abs() < 1e-6, "parallel deltas: {c}");
    }

    #[test]
    fn opposed_clients_cancel_out() {
        let before = vec![0.0; 2];
        // Mean delta is (0.5, 0) — one client along it, one mostly against.
        let ups = vec![upload(0, vec![2.0, 0.0]), upload(1, vec![-1.0, 0.0])];
        let c = cosine_alignment(&before, &ups);
        assert!((c - 0.0).abs() < 1e-6, "opposite deltas average to 0: {c}");
    }

    #[test]
    fn degenerate_cohorts_score_zero() {
        let before = vec![0.0; 2];
        assert_eq!(cosine_alignment(&before, &[]), 0.0);
        assert_eq!(
            cosine_alignment(&before, &[upload(0, vec![1.0, 1.0])]),
            0.0,
            "single client is vacuous"
        );
        let stationary = vec![upload(0, vec![0.0, 0.0]), upload(1, vec![0.0, 0.0])];
        assert_eq!(cosine_alignment(&before, &stationary), 0.0);
        let ragged = vec![upload(0, vec![1.0]), upload(1, vec![1.0, 1.0])];
        assert_eq!(cosine_alignment(&before, &ragged), 0.0);
    }

    #[test]
    fn stamp_fills_the_record() {
        let diag = RoundDiagnostics {
            admm: Some(ConvergenceDiagnostics {
                primal_residual: 3.0,
                dual_residual: 0.5,
                rho: 2.0,
            }),
            update_norm: 0.25,
            cosine_alignment: 0.9,
        };
        let mut rec = RoundRecord::default();
        diag.stamp(&mut rec);
        assert_eq!(rec.primal_residual, 3.0);
        assert_eq!(rec.dual_residual, 0.5);
        assert_eq!(rec.rho, 2.0);
        assert_eq!(rec.update_norm, 0.25);
        assert_eq!(rec.cosine_alignment, 0.9);
        let mut plain = RoundRecord::default();
        RoundDiagnostics {
            admm: None,
            update_norm: 0.1,
            cosine_alignment: 0.2,
        }
        .stamp(&mut plain);
        assert_eq!(plain.rho, 0.0, "non-ADMM leaves residual fields zero");
    }
}
