//! Adaptive penalty ρᵗ — future-work item 2 of §V.
//!
//! "We will enhance the learning performance of IIADMM by adaptively
//! updating algorithm parameters such as penalty ρᵗ and proximity ζᵗ."
//! This module implements the classical **residual-balancing** rule of Xu
//! et al. \[23\] (the paper's own citation for the idea): after each round,
//! compare the primal residual `r = Σ_p ‖w − z_p‖` against the dual
//! residual `s = ρ Σ_p ‖z_p^{t+1} − z_p^t‖`; whichever dominates by more
//! than a factor μ has its penalty adjusted by τ to re-balance.
//!
//! ρ changes must be mirrored by every client (the IIADMM dual mirror
//! depends on both sides using the same ρ), so the controller emits the new
//! value and the runner distributes it with the next broadcast.

use serde::{Deserialize, Serialize};

/// Residual-balancing controller state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveRho {
    /// Current penalty ρ.
    pub rho: f32,
    /// Dominance threshold μ (classically 10).
    pub mu: f32,
    /// Adjustment factor τ (classically 2).
    pub tau: f32,
    /// Lower clamp for ρ.
    pub rho_min: f32,
    /// Upper clamp for ρ.
    pub rho_max: f32,
}

impl AdaptiveRho {
    /// A controller with the classical (μ=10, τ=2) settings.
    pub fn new(rho: f32) -> Self {
        assert!(rho > 0.0, "ρ must be positive");
        AdaptiveRho {
            rho,
            mu: 10.0,
            tau: 2.0,
            rho_min: 1e-3,
            rho_max: 1e4,
        }
    }

    /// Applies one residual-balancing step. Returns the (possibly changed)
    /// new ρ.
    pub fn step(&mut self, primal_residual: f64, dual_residual: f64) -> f32 {
        let r = primal_residual as f32;
        let s = dual_residual as f32;
        if r > self.mu * s {
            // Consensus lagging: increase the penalty.
            self.rho = (self.rho * self.tau).min(self.rho_max);
        } else if s > self.mu * r {
            // Over-penalised: relax.
            self.rho = (self.rho / self.tau).max(self.rho_min);
        }
        self.rho
    }
}

/// Dual residual helper: `ρ · Σ_p ‖z_p^{t+1} − z_p^t‖`.
pub fn dual_residual(rho: f32, prev: &[Vec<f32>], curr: &[Vec<f32>]) -> f64 {
    assert_eq!(prev.len(), curr.len(), "client count mismatch");
    rho as f64
        * prev
            .iter()
            .zip(curr.iter())
            .map(|(a, b)| appfl_tensor::vecops::sq_dist(a, b).sqrt())
            .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_primal_residual_raises_rho() {
        let mut a = AdaptiveRho::new(1.0);
        let new = a.step(100.0, 1.0);
        assert_eq!(new, 2.0);
    }

    #[test]
    fn large_dual_residual_lowers_rho() {
        let mut a = AdaptiveRho::new(1.0);
        let new = a.step(1.0, 100.0);
        assert_eq!(new, 0.5);
    }

    #[test]
    fn balanced_residuals_leave_rho_unchanged() {
        let mut a = AdaptiveRho::new(1.0);
        assert_eq!(a.step(5.0, 5.0), 1.0);
        assert_eq!(a.step(9.0, 1.0), 1.0); // under the μ=10 threshold
    }

    #[test]
    fn rho_is_clamped() {
        let mut a = AdaptiveRho::new(1.0);
        a.rho_max = 4.0;
        for _ in 0..10 {
            a.step(1e9, 1.0);
        }
        assert_eq!(a.rho, 4.0);
        a.rho_min = 0.25;
        for _ in 0..10 {
            a.step(1.0, 1e9);
        }
        assert_eq!(a.rho, 0.25);
    }

    #[test]
    fn dual_residual_formula() {
        let prev = vec![vec![0.0f32, 0.0], vec![1.0, 1.0]];
        let curr = vec![vec![3.0f32, 4.0], vec![1.0, 1.0]];
        let s = dual_residual(2.0, &prev, &curr);
        assert!((s - 10.0).abs() < 1e-9); // 2 × (5 + 0)
    }
}
