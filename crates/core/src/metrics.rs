//! Per-round experiment records.

use serde::{Deserialize, Serialize};

/// One communication round's measurements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct RoundRecord {
    /// Round index t (1-based, as in the paper's Algorithm 1).
    pub round: usize,
    /// Server-side test accuracy of `w^{t+1}` (Fig. 2's y-axis).
    pub accuracy: f32,
    /// Server-side test loss.
    pub test_loss: f32,
    /// Mean client-reported training loss.
    pub train_loss: f32,
    /// Upload payload this round (bytes, raw f32 accounting).
    pub upload_bytes: usize,
    /// Wall-clock seconds this round spent on anything other than blocking
    /// transport (client updates, codec work, aggregation, evaluation).
    pub compute_secs: f64,
    /// Wall-clock seconds spent blocked on the transport this round (real
    /// transport runs) or modelled comm time (simulated runs).
    pub comm_secs: f64,
    /// Active clients whose upload never arrived this round (degraded-round
    /// aggregation proceeded without them). Absent in pre-fault-tolerance
    /// histories, hence the serde default.
    #[serde(default)]
    pub dropped_clients: usize,
    /// Transport-level retries performed by clients this round.
    #[serde(default)]
    pub retries: usize,
    /// Receive operations that hit the round deadline this round.
    #[serde(default)]
    pub timed_out: usize,
    /// Seconds of client-side local training this round (the maximum
    /// across participating clients — the round's critical path). Absent
    /// in pre-telemetry histories, hence the serde default.
    #[serde(default)]
    pub local_update_secs: f64,
    /// Seconds encoding/decoding model payloads this round.
    #[serde(default)]
    pub serialize_secs: f64,
    /// Seconds of server-side aggregation plus evaluation this round.
    #[serde(default)]
    pub aggregate_secs: f64,
    /// Uploads the [`crate::defense::UpdateGuard`] rejected outright this
    /// round (NaN/Inf payloads, dimension mismatches, norm outliers under
    /// a reject policy). Rejected uploads never reach the aggregator.
    /// Absent in pre-defense histories, hence the serde default.
    #[serde(default)]
    pub rejected_clients: usize,
    /// Uploads whose norm the guard clipped back to budget this round
    /// (they still reach the aggregator, rescaled).
    #[serde(default)]
    pub clipped_clients: usize,
    /// ADMM primal residual `Σ_p ‖w − z_p‖` after aggregation. Zero for
    /// non-ADMM algorithms and pre-diagnostics histories, hence the serde
    /// default.
    #[serde(default)]
    pub primal_residual: f64,
    /// ADMM dual residual `ρ‖w^{t+1} − w^t‖`. Zero for non-ADMM
    /// algorithms and pre-diagnostics histories.
    #[serde(default)]
    pub dual_residual: f64,
    /// ADMM penalty ρ in effect for the round (0 for non-ADMM).
    #[serde(default)]
    pub rho: f64,
    /// `‖w^{t+1} − w^t‖` — how far the global model moved this round.
    /// Emitted for every algorithm.
    #[serde(default)]
    pub update_norm: f64,
    /// Mean cosine similarity between each client's update direction and
    /// the mean update direction (1 = perfectly aligned cohort, near 0 =
    /// clients pulling in unrelated directions).
    #[serde(default)]
    pub cosine_alignment: f64,
    /// Clients selected into this round's cohort: the partial-participation
    /// sample in simulated runs, the active broadcast set in transport
    /// runs. Absent in pre-cohort histories, hence the serde default.
    #[serde(default)]
    pub cohort_size: usize,
    /// Selection draws rejected because the candidate was offline at round
    /// start (cohort-sampling accounting; zero for transport runs, which
    /// have no availability traces).
    #[serde(default)]
    pub cohort_offline: usize,
    /// Selection draws rejected by the eligibility predicate (for
    /// simulated runs, the min-battery check).
    #[serde(default)]
    pub cohort_ineligible: usize,
}

impl RoundRecord {
    /// Sum of the four phase timings (the paper's Table IV columns).
    /// Zero for records written before phase accounting existed.
    pub fn phase_secs(&self) -> f64 {
        self.local_update_secs + self.serialize_secs + self.comm_secs + self.aggregate_secs
    }

    /// Total recorded wall time for the round.
    pub fn wall_secs(&self) -> f64 {
        self.compute_secs + self.comm_secs
    }
}

/// Serde adapter for the privacy budget ε̄: `f64::INFINITY` encodes the
/// non-private run, and JSON has no number for it — a bare `f64` field
/// would *serialise* it as `null` and then fail to deserialise its own
/// output. This adapter round-trips every non-finite ε̄ as `null` and
/// decodes `null` (or an absent field, via `#[serde(default)]`) back to
/// `f64::INFINITY`.
pub mod epsilon_serde {
    use serde::{Deserialize, Deserializer, Serializer};

    /// `null` for non-finite ε̄, the number otherwise.
    pub fn serialize<S: Serializer>(v: &f64, s: S) -> Result<S::Ok, S::Error> {
        if v.is_finite() {
            s.serialize_f64(*v)
        } else {
            s.serialize_none()
        }
    }

    /// `null` (and absent, with `default`) decode to `f64::INFINITY`.
    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<f64, D::Error> {
        Ok(Option::<f64>::deserialize(d)?.unwrap_or(f64::INFINITY))
    }
}

/// A full run's history plus identifying metadata.
#[derive(Debug, Clone, Serialize, Deserialize, Default, PartialEq)]
pub struct History {
    /// Algorithm name.
    pub algorithm: String,
    /// Dataset name.
    pub dataset: String,
    /// Privacy budget ε̄ (`f64::INFINITY` encodes the non-private run; it
    /// round-trips as `null` in JSON via [`epsilon_serde`]).
    #[serde(with = "epsilon_serde")]
    pub epsilon: f64,
    /// Per-round records.
    pub rounds: Vec<RoundRecord>,
}

impl History {
    /// Creates an empty history with metadata.
    pub fn new(algorithm: impl Into<String>, dataset: impl Into<String>, epsilon: f64) -> Self {
        History {
            algorithm: algorithm.into(),
            dataset: dataset.into(),
            epsilon,
            rounds: Vec::new(),
        }
    }

    /// Final-round accuracy (0 if empty).
    pub fn final_accuracy(&self) -> f32 {
        self.rounds.last().map_or(0.0, |r| r.accuracy)
    }

    /// Best accuracy across rounds (0 if empty).
    pub fn best_accuracy(&self) -> f32 {
        self.rounds.iter().map(|r| r.accuracy).fold(0.0, f32::max)
    }

    /// Total uploaded bytes across rounds.
    pub fn total_upload_bytes(&self) -> usize {
        self.rounds.iter().map(|r| r.upload_bytes).sum()
    }

    /// Cumulative communication seconds.
    pub fn total_comm_secs(&self) -> f64 {
        self.rounds.iter().map(|r| r.comm_secs).sum()
    }

    /// Cumulative client local-training seconds (critical path per round).
    pub fn total_local_update_secs(&self) -> f64 {
        self.rounds.iter().map(|r| r.local_update_secs).sum()
    }

    /// Cumulative serialization seconds.
    pub fn total_serialize_secs(&self) -> f64 {
        self.rounds.iter().map(|r| r.serialize_secs).sum()
    }

    /// Cumulative aggregation + evaluation seconds.
    pub fn total_aggregate_secs(&self) -> f64 {
        self.rounds.iter().map(|r| r.aggregate_secs).sum()
    }

    /// Total client-rounds lost to drops/timeouts across the run.
    pub fn total_dropped_clients(&self) -> usize {
        self.rounds.iter().map(|r| r.dropped_clients).sum()
    }

    /// Total transport retries across the run.
    pub fn total_retries(&self) -> usize {
        self.rounds.iter().map(|r| r.retries).sum()
    }

    /// Rounds that aggregated a degraded (partial) cohort.
    pub fn degraded_rounds(&self) -> usize {
        self.rounds.iter().filter(|r| r.dropped_clients > 0).count()
    }

    /// Total uploads rejected by the update guard across the run.
    pub fn total_rejected_clients(&self) -> usize {
        self.rounds.iter().map(|r| r.rejected_clients).sum()
    }

    /// Total uploads norm-clipped by the update guard across the run.
    pub fn total_clipped_clients(&self) -> usize {
        self.rounds.iter().map(|r| r.clipped_clients).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(round: usize, acc: f32, bytes: usize) -> RoundRecord {
        RoundRecord {
            round,
            accuracy: acc,
            test_loss: 1.0,
            train_loss: 1.0,
            upload_bytes: bytes,
            compute_secs: 0.1,
            comm_secs: 0.01,
            ..RoundRecord::default()
        }
    }

    #[test]
    fn summaries() {
        let mut h = History::new("IIADMM", "MNIST", 5.0);
        h.rounds.push(rec(1, 0.5, 100));
        h.rounds.push(rec(2, 0.8, 100));
        h.rounds.push(rec(3, 0.7, 100));
        assert_eq!(h.final_accuracy(), 0.7);
        assert_eq!(h.best_accuracy(), 0.8);
        assert_eq!(h.total_upload_bytes(), 300);
        assert!((h.total_comm_secs() - 0.03).abs() < 1e-12);
    }

    #[test]
    fn empty_history_defaults() {
        let h = History::new("FedAvg", "CIFAR10", f64::INFINITY);
        assert_eq!(h.final_accuracy(), 0.0);
        assert_eq!(h.best_accuracy(), 0.0);
        assert_eq!(h.total_upload_bytes(), 0);
    }

    #[test]
    fn json_roundtrip() {
        let mut h = History::new("FedAvg", "MNIST", 3.0);
        h.rounds.push(rec(1, 0.9, 42));
        let s = serde_json::to_string(&h).unwrap();
        let back: History = serde_json::from_str(&s).unwrap();
        assert_eq!(back.rounds.len(), 1);
        assert_eq!(back.algorithm, "FedAvg");
    }

    #[test]
    fn fault_counters_sum_and_old_json_still_loads() {
        let mut h = History::new("FedAvg", "MNIST", f64::INFINITY);
        h.rounds.push(RoundRecord {
            dropped_clients: 2,
            retries: 3,
            timed_out: 1,
            ..rec(1, 0.9, 10)
        });
        h.rounds.push(rec(2, 0.91, 10));
        assert_eq!(h.total_dropped_clients(), 2);
        assert_eq!(h.total_retries(), 3);
        assert_eq!(h.degraded_rounds(), 1);
        // Records written before the fault-tolerance fields existed must
        // still deserialize, defaulting the new counters to zero.
        let legacy = r#"{"round":1,"accuracy":0.5,"test_loss":1.0,
            "train_loss":1.0,"upload_bytes":7,"compute_secs":0.1,
            "comm_secs":0.01}"#;
        let r: RoundRecord = serde_json::from_str(legacy).unwrap();
        assert_eq!(r.dropped_clients, 0);
        assert_eq!(r.retries, 0);
        assert_eq!(r.timed_out, 0);
        assert_eq!(r.local_update_secs, 0.0);
        assert_eq!(r.serialize_secs, 0.0);
        assert_eq!(r.aggregate_secs, 0.0);
        assert_eq!(r.rejected_clients, 0);
        assert_eq!(r.clipped_clients, 0);
        assert_eq!(r.primal_residual, 0.0);
        assert_eq!(r.dual_residual, 0.0);
        assert_eq!(r.rho, 0.0);
        assert_eq!(r.update_norm, 0.0);
        assert_eq!(r.cosine_alignment, 0.0);
    }

    #[test]
    fn diagnostics_fields_roundtrip() {
        let r = RoundRecord {
            primal_residual: 1.5,
            dual_residual: 0.25,
            rho: 2.0,
            update_norm: 0.125,
            cosine_alignment: 0.875,
            ..rec(1, 0.9, 10)
        };
        let back: RoundRecord = serde_json::from_str(&serde_json::to_string(&r).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn defense_counters_sum() {
        let mut h = History::new("CoordMedian", "MNIST", f64::INFINITY);
        h.rounds.push(RoundRecord {
            rejected_clients: 2,
            clipped_clients: 1,
            ..rec(1, 0.9, 10)
        });
        h.rounds.push(RoundRecord {
            clipped_clients: 3,
            ..rec(2, 0.91, 10)
        });
        assert_eq!(h.total_rejected_clients(), 2);
        assert_eq!(h.total_clipped_clients(), 4);
    }

    #[test]
    fn phase_fields_roundtrip_and_sum() {
        let r = RoundRecord {
            local_update_secs: 0.4,
            serialize_secs: 0.05,
            aggregate_secs: 0.2,
            ..rec(1, 0.9, 10)
        };
        assert!((r.phase_secs() - (0.4 + 0.05 + 0.01 + 0.2)).abs() < 1e-12);
        assert!((r.wall_secs() - 0.11).abs() < 1e-12);
        let back: RoundRecord = serde_json::from_str(&serde_json::to_string(&r).unwrap()).unwrap();
        assert_eq!(back, r);
        let mut h = History::new("FedAvg", "MNIST", f64::INFINITY);
        h.rounds.push(r);
        h.rounds.push(rec(2, 0.9, 10));
        assert!((h.total_local_update_secs() - 0.4).abs() < 1e-12);
        assert!((h.total_serialize_secs() - 0.05).abs() < 1e-12);
        assert!((h.total_aggregate_secs() - 0.2).abs() < 1e-12);
    }
}
