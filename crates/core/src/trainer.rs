//! Shared local-training machinery.
//!
//! Every client algorithm needs the same inner loop: load the global vector
//! into a model, walk mini-batches, and obtain flat gradients (optionally
//! clipped for DP). `LocalTrainer` packages that, so the algorithm files
//! contain only their distinctive update rules.

use appfl_data::{DataLoader, Dataset, InMemoryDataset};
use appfl_nn::loss::{Loss, Targets};
use appfl_nn::module::{flatten_grads, set_params, Module};
use appfl_nn::CrossEntropyLoss;
use appfl_tensor::vecops::clip_norm;
use appfl_tensor::{Result, Tensor};
use rand::rngs::StdRng;

/// A client's local training context: its model replica, data shard and
/// batch configuration.
pub struct LocalTrainer {
    model: Box<dyn Module>,
    data: InMemoryDataset,
    loss: CrossEntropyLoss,
    batch_size: usize,
}

impl LocalTrainer {
    /// Builds a trainer over a model replica and a data shard.
    pub fn new(model: Box<dyn Module>, data: InMemoryDataset, batch_size: usize) -> Self {
        LocalTrainer {
            model,
            data,
            loss: CrossEntropyLoss,
            batch_size: batch_size.max(1),
        }
    }

    /// Model dimension m.
    pub fn dim(&self) -> usize {
        self.model.num_params()
    }

    /// Number of local samples `I_p`.
    pub fn num_samples(&self) -> usize {
        self.data.len()
    }

    /// Number of batches per epoch `B_p`.
    pub fn num_batches(&self) -> usize {
        DataLoader::new(&self.data, self.batch_size, false).num_batches()
    }

    /// One epoch of shuffled batches.
    pub fn batches(&self, rng: &mut StdRng) -> Result<Vec<(Tensor, Vec<usize>)>> {
        DataLoader::new(&self.data, self.batch_size, true).epoch(rng)
    }

    /// The whole shard as a single batch (ICEADMM's full-gradient mode:
    /// "all data points are used for calculating a gradient in ICEADMM").
    pub fn full_batch(&self) -> Result<(Tensor, Vec<usize>)> {
        self.data.full_batch()
    }

    /// Mean gradient of the loss at `params` over `batch`, flattened.
    /// When `clip` is finite the gradient is clipped to `‖g‖ ≤ clip`,
    /// establishing the DP sensitivity bound of §III-B. Returns
    /// `(gradient, loss)`.
    pub fn grad_at(
        &mut self,
        params: &[f32],
        batch: &(Tensor, Vec<usize>),
        clip: f64,
    ) -> Result<(Vec<f32>, f32)> {
        set_params(self.model.as_mut(), params)?;
        self.model.zero_grad();
        let output = self.model.forward(&batch.0)?;
        let (loss, grad_out) = self
            .loss
            .forward(&output, &Targets::Classes(batch.1.clone()))?;
        self.model.backward(&grad_out)?;
        let mut grad = flatten_grads(self.model.as_ref());
        if clip.is_finite() {
            clip_norm(&mut grad, clip);
        }
        Ok((grad, loss))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use appfl_data::DataSpec;
    use appfl_nn::models::{linear_classifier, InputSpec};
    use appfl_tensor::vecops::l2_norm;
    use rand::SeedableRng;

    fn trainer(n: usize) -> LocalTrainer {
        let spec = DataSpec {
            channels: 1,
            height: 2,
            width: 2,
            classes: 2,
        };
        let data: Vec<f32> = (0..n * 4).map(|i| (i % 7) as f32 - 3.0).collect();
        let labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
        let ds = InMemoryDataset::new(spec, data, labels).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let model = linear_classifier(
            InputSpec {
                channels: 1,
                height: 2,
                width: 2,
                classes: 2,
            },
            &mut rng,
        );
        LocalTrainer::new(Box::new(model), ds, 4)
    }

    #[test]
    fn dimensions_and_counts() {
        let t = trainer(10);
        assert_eq!(t.dim(), 4 * 2 + 2);
        assert_eq!(t.num_samples(), 10);
        assert_eq!(t.num_batches(), 3); // ceil(10/4)
    }

    #[test]
    fn gradient_is_clipped_when_requested() {
        let mut t = trainer(8);
        let params = vec![0.5; t.dim()];
        let (batch, _) = (t.full_batch().unwrap(), ());
        let (g_unclipped, _) = t.grad_at(&params, &batch, f64::INFINITY).unwrap();
        let clip = l2_norm(&g_unclipped) / 2.0;
        let (g_clipped, _) = t.grad_at(&params, &batch, clip).unwrap();
        assert!(l2_norm(&g_clipped) <= clip * 1.0001);
        // Direction is preserved (positive scalar multiple).
        let ratio = g_unclipped[0] / g_clipped[0];
        for (u, c) in g_unclipped.iter().zip(g_clipped.iter()) {
            if c.abs() > 1e-7 {
                assert!((u / c - ratio).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn gradient_descends_the_loss() {
        let mut t = trainer(16);
        let params = vec![0.1; t.dim()];
        let batch = t.full_batch().unwrap();
        let (g, loss0) = t.grad_at(&params, &batch, f64::INFINITY).unwrap();
        let stepped: Vec<f32> = params
            .iter()
            .zip(g.iter())
            .map(|(p, g)| p - 0.1 * g)
            .collect();
        let (_, loss1) = t.grad_at(&stepped, &batch, f64::INFINITY).unwrap();
        assert!(loss1 < loss0, "{loss0} -> {loss1}");
    }

    #[test]
    fn epoch_batches_cover_shard() {
        let t = trainer(10);
        let mut rng = StdRng::seed_from_u64(1);
        let batches = t.batches(&mut rng).unwrap();
        let total: usize = batches.iter().map(|(x, _)| x.dims()[0]).sum();
        assert_eq!(total, 10);
    }
}
