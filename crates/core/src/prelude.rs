//! One-line import for the common surface: `use appfl_core::prelude::*;`.
//!
//! Pulls in the types that virtually every federation — serial,
//! transport-backed or simulated — touches: the [`Federation`] run API
//! and its four stage types, the assembly layer
//! ([`build_federation`]/[`FederationSetup`] + [`FedConfig`]), the
//! algorithm traits, the result types, and the million-client simulation
//! engine. Specialised surfaces (defense, store, gossip, adaptive
//! schedules) stay behind their modules.

pub use crate::algorithms::{build_federation, FederationSetup};
pub use crate::api::{ClientAlgorithm, ClientUpload, ServerAlgorithm};
pub use crate::config::{AlgorithmConfig, FaultToleranceConfig, FedConfig};
pub use crate::error::Error;
pub use crate::federation::{ConfigError, Federation, Observe, Participants, Resilience, Topology};
pub use crate::metrics::{History, RoundRecord};
pub use crate::runner::control::RoundControlConfig;
pub use crate::runner::federation::FederationOutcome;
pub use crate::runner::serial::SerialRunner;
pub use crate::runner::simulate::{SimConfig, SimEngine, SimReport};
pub use appfl_telemetry::Telemetry;

#[cfg(test)]
mod tests {
    #[test]
    fn the_prelude_glob_resolves_the_common_surface() {
        #[allow(unused_imports)]
        use crate::prelude::*;
        // Names from every layer must resolve through the glob.
        let _ = Topology::Serial;
        let _ = SimConfig::default();
        let _ = Resilience::none();
        let _ = Observe::none();
        let _: fn() -> Telemetry = Telemetry::disabled;
    }
}
