//! The coordinator phase state machine.
//!
//! Every synchronous server loop in this crate walks the same circuit —
//! pick a cohort, broadcast, collect uploads, screen and aggregate,
//! publish the round — but before this module the circuit existed only
//! implicitly, as the control flow of `run_server`/`run_server_ft`.
//! [`PhaseMachine`] makes it explicit, in the shape of xaynet's
//! `state_machine/phases/`:
//!
//! ```text
//! Idle ──BeginRound──▶ Select ──BeginCollect──▶ Collect ─┐ Upload,
//!  ▲                                               ▲─────┘ ExpectUpload (self)
//!  │                                          CloseCollection
//!  │                                               ▼
//!  └──Published── Publish ◀──Aggregated── Aggregate
//!  Idle ──FinishRun──▶ Done
//! ```
//!
//! `ExpectUpload` self-loops on Collect as well as Select: hedged
//! re-dispatch ([`crate::runner::control`]) widens the cohort mid-gather
//! when the arrival projection falls short, and the machine must account
//! for the extra broadcasts without leaving the phase. Over-selection
//! enters through [`PhaseMachine::set_collect_target`]: once the target
//! count of uploads is in, surplus arrivals are [`UploadVerdict::Late`] —
//! counted as over-selection waste, never folded, never persisted.
//!
//! Each transition is a typed method that (a) rejects out-of-phase events
//! with [`Error::InvalidTransition`] — the full `(phase, event)` table is
//! pinned by a test, no silent fallthrough — (b) commits the transition
//! write-ahead through an attached [`DurableCoordinator`] (so the crash /
//! recovery points of the store are exactly the machine's edges), (c)
//! emits a `phase/…` telemetry span covering the segment just closed, and
//! (d) hands off to the defense layer at one seam
//! ([`PhaseMachine::close_collection`] screens through the
//! [`UpdateGuard`]) so quorum and Byzantine filtering are per-cohort
//! concerns of the Collect→Aggregate edge.
//!
//! The machine is clock-agnostic: real runners leave it on the wall
//! clock, while the event-driven simulator ([`crate::runner::simulate`])
//! switches it to a virtual clock and drives a million-client federation
//! through the *same* transitions in simulated time.

use crate::api::ClientUpload;
use crate::defense::{screen_and_report, RejectReason, UpdateGuard};
use crate::error::{Error, Result};
use crate::metrics::RoundRecord;
use crate::store::{DurableCoordinator, PendingRound, RosterState};
use appfl_telemetry::{RoundSnapshot, RunObserver, Telemetry};
use std::time::Instant;

/// The coordinator's current position in the round circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseKind {
    /// Between rounds (and before the first one).
    Idle,
    /// A cohort is being selected and broadcast to.
    Select,
    /// Uploads are being gathered.
    Collect,
    /// The screened cohort is being folded into the global model.
    Aggregate,
    /// The round result is being recorded and committed.
    Publish,
    /// The run is over; no further event is accepted.
    Done,
}

impl PhaseKind {
    /// Phase label for error messages, telemetry spans and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            PhaseKind::Idle => "idle",
            PhaseKind::Select => "select",
            PhaseKind::Collect => "collect",
            PhaseKind::Aggregate => "aggregate",
            PhaseKind::Publish => "publish",
            PhaseKind::Done => "done",
        }
    }

    /// The transition table: whether this phase accepts `event`. This is
    /// the single source of truth every typed method guards through, and
    /// the property the transition-table test enumerates exhaustively.
    pub fn accepts(self, event: PhaseEvent) -> bool {
        matches!(
            (self, event),
            (PhaseKind::Idle, PhaseEvent::RunStarted)
                | (PhaseKind::Idle, PhaseEvent::BeginRound)
                | (PhaseKind::Idle, PhaseEvent::FinishRun)
                | (PhaseKind::Select, PhaseEvent::ExpectUpload)
                | (PhaseKind::Select, PhaseEvent::BeginCollect)
                | (PhaseKind::Collect, PhaseEvent::ExpectUpload)
                | (PhaseKind::Collect, PhaseEvent::Upload)
                | (PhaseKind::Collect, PhaseEvent::CloseCollection)
                | (PhaseKind::Aggregate, PhaseEvent::Aggregated)
                | (PhaseKind::Publish, PhaseEvent::Published)
        )
    }

    /// Every phase, for exhaustive table enumeration.
    pub const ALL: [PhaseKind; 6] = [
        PhaseKind::Idle,
        PhaseKind::Select,
        PhaseKind::Collect,
        PhaseKind::Aggregate,
        PhaseKind::Publish,
        PhaseKind::Done,
    ];
}

/// An event offered to the machine (the column axis of the transition
/// table; each typed method fires exactly one of these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseEvent {
    /// The run's header is being committed ([`PhaseMachine::run_started`]).
    RunStarted,
    /// A round opens ([`PhaseMachine::begin_round`]).
    BeginRound,
    /// A broadcast reached a client ([`PhaseMachine::expect_upload`]).
    ExpectUpload,
    /// Broadcasting is over; gathering starts
    /// ([`PhaseMachine::begin_collect`]).
    BeginCollect,
    /// An upload arrived ([`PhaseMachine::offer_upload`]).
    Upload,
    /// Gathering is over — deadline or full cohort
    /// ([`PhaseMachine::close_collection`]).
    CloseCollection,
    /// The global model was (or could not be) updated
    /// ([`PhaseMachine::aggregated`]).
    Aggregated,
    /// The round record is final ([`PhaseMachine::published`]).
    Published,
    /// The run is over ([`PhaseMachine::finish_run`]).
    FinishRun,
}

impl PhaseEvent {
    /// Event label for error messages.
    pub fn as_str(self) -> &'static str {
        match self {
            PhaseEvent::RunStarted => "run_started",
            PhaseEvent::BeginRound => "begin_round",
            PhaseEvent::ExpectUpload => "expect_upload",
            PhaseEvent::BeginCollect => "begin_collect",
            PhaseEvent::Upload => "upload",
            PhaseEvent::CloseCollection => "close_collection",
            PhaseEvent::Aggregated => "aggregated",
            PhaseEvent::Published => "published",
            PhaseEvent::FinishRun => "finish_run",
        }
    }

    /// Every event, for exhaustive table enumeration.
    pub const ALL: [PhaseEvent; 9] = [
        PhaseEvent::RunStarted,
        PhaseEvent::BeginRound,
        PhaseEvent::ExpectUpload,
        PhaseEvent::BeginCollect,
        PhaseEvent::Upload,
        PhaseEvent::CloseCollection,
        PhaseEvent::Aggregated,
        PhaseEvent::Published,
        PhaseEvent::FinishRun,
    ];
}

/// What became of an upload offered during Collect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UploadVerdict {
    /// Fresh and counted toward the cohort.
    Accepted,
    /// A resubmission of an already-counted `(round, client)` key —
    /// deduplicated (and, with a durable store, refused write-ahead).
    Duplicate,
    /// A fresh upload arriving after the over-selection collect target
    /// was already met: surplus straggler work, dropped before the
    /// durable write-ahead so it is never persisted or folded.
    Late,
    /// Stale round tag, unsolicited sender, or a client-id forgery:
    /// discarded without touching round state.
    Discarded,
}

/// The Collect→Aggregate handoff: the screened cohort plus its accounting.
#[derive(Debug)]
pub struct CohortReport {
    /// Accepted uploads, sorted by client id (so the aggregation fold is
    /// reproducible regardless of arrival order).
    pub uploads: Vec<ClientUpload>,
    /// Uploads that arrived before screening.
    pub arrived: usize,
    /// Guard rejections, `(client, reason)`.
    pub rejected: Vec<(usize, RejectReason)>,
    /// Clients whose uploads were norm-clipped (accepted, flagged).
    pub clipped: usize,
}

/// Wall or virtual time — the machine only ever needs "seconds since the
/// last transition".
enum PhaseClock {
    Wall { mark: Instant },
    Virtual { now: f64, mark: f64 },
}

impl PhaseClock {
    fn lap(&mut self) -> f64 {
        match self {
            PhaseClock::Wall { mark } => {
                let secs = mark.elapsed().as_secs_f64();
                *mark = Instant::now();
                secs
            }
            PhaseClock::Virtual { now, mark } => {
                let secs = (*now - *mark).max(0.0);
                *mark = *now;
                secs
            }
        }
    }
}

/// The coordinator phase state machine (see the module docs for the
/// transition diagram and the guarantees each edge carries).
pub struct PhaseMachine<'d> {
    phase: PhaseKind,
    num_clients: usize,
    telemetry: Telemetry,
    durable: Option<&'d mut DurableCoordinator>,
    clock: PhaseClock,
    round: usize,
    expected: Vec<bool>,
    got: Vec<bool>,
    uploads: Vec<ClientUpload>,
    preseeded: usize,
    expected_new: usize,
    /// Over-selection close target: Collect completes at this many
    /// uploads even while more are expected. `None` = wait for everyone.
    collect_target: Option<usize>,
    /// Fresh uploads turned away with [`UploadVerdict::Late`] this round.
    late: usize,
    observer: Option<RunObserver>,
}

impl<'d> PhaseMachine<'d> {
    /// A machine in `Idle`, on the wall clock, coordinating `num_clients`
    /// clients. `durable` (if any) must already be recovered by the
    /// caller; the machine then commits every transition through it.
    pub fn new(
        num_clients: usize,
        telemetry: &Telemetry,
        durable: Option<&'d mut DurableCoordinator>,
    ) -> Self {
        PhaseMachine {
            phase: PhaseKind::Idle,
            num_clients,
            telemetry: telemetry.clone(),
            durable,
            clock: PhaseClock::Wall {
                mark: Instant::now(),
            },
            round: 0,
            expected: vec![false; num_clients],
            got: vec![false; num_clients],
            uploads: Vec::new(),
            preseeded: 0,
            expected_new: 0,
            collect_target: None,
            late: 0,
            observer: None,
        }
    }

    /// Attaches a [`RunObserver`]: every `published` transition streams
    /// that round's [`RoundSnapshot`] through it (series capture, anomaly
    /// detection, SLO evaluation).
    pub fn with_observer(mut self, observer: RunObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// The attached observer, if any.
    pub fn observer(&self) -> Option<&RunObserver> {
        self.observer.as_ref()
    }

    /// Detaches and returns the observer (end-of-run inspection).
    pub fn take_observer(&mut self) -> Option<RunObserver> {
        self.observer.take()
    }

    /// Switches the machine to a virtual clock starting at `now` seconds.
    /// The simulator advances it with [`PhaseMachine::advance_to`]; phase
    /// spans then carry simulated durations.
    pub fn virtual_clock(mut self, now: f64) -> Self {
        self.clock = PhaseClock::Virtual { now, mark: now };
        self
    }

    /// Moves the virtual clock forward (no-op on the wall clock: real
    /// time advances itself).
    pub fn advance_to(&mut self, t: f64) {
        if let PhaseClock::Virtual { now, .. } = &mut self.clock {
            *now = now.max(t);
        }
    }

    /// The current phase.
    pub fn phase(&self) -> PhaseKind {
        self.phase
    }

    /// The round the machine is inside (0 while `Idle` before round 1).
    pub fn round(&self) -> usize {
        self.round
    }

    /// Rejects `event` unless the current phase accepts it.
    fn guard(&self, event: PhaseEvent) -> Result<()> {
        if self.phase.accepts(event) {
            Ok(())
        } else {
            Err(Error::InvalidTransition {
                phase: self.phase.as_str(),
                event: event.as_str(),
            })
        }
    }

    /// Closes the current phase's span segment and moves to `next`.
    fn transition(&mut self, next: PhaseKind) {
        let secs = self.clock.lap();
        // Idle and Done gaps are not a round's work; only the four round
        // phases are worth a span.
        if !matches!(self.phase, PhaseKind::Idle | PhaseKind::Done) {
            let name = match self.phase {
                PhaseKind::Select => "phase/select",
                PhaseKind::Collect => "phase/collect",
                PhaseKind::Aggregate => "phase/aggregate",
                PhaseKind::Publish => "phase/publish",
                _ => unreachable!(),
            };
            self.telemetry
                .phase_span_secs(name, secs, self.round as u64);
        }
        self.phase = next;
    }

    /// `Idle`: commits the run header. Stays `Idle` — the first
    /// `BeginRound` is what opens the circuit.
    pub fn run_started(
        &mut self,
        algorithm: &str,
        dataset: &str,
        epsilon: f64,
        rounds: usize,
    ) -> Result<()> {
        self.guard(PhaseEvent::RunStarted)?;
        if let Some(d) = self.durable.as_deref_mut() {
            d.run_started(algorithm, dataset, epsilon, self.num_clients, rounds)?;
        }
        Ok(())
    }

    /// `Idle → Select`: opens `round` with cohort `active` and broadcast
    /// model `model`. With a durable store the round-start commits
    /// write-ahead — unless `pending` resumes this exact round, in which
    /// case the already-persisted partial state substitutes for the
    /// commit (re-committing would wipe the persisted uploads from the
    /// fold) and the machine preseeds its cohort from it: preseeded
    /// clients are already `got` and will be neither re-broadcast to nor
    /// waited for.
    pub fn begin_round(
        &mut self,
        round: usize,
        active: &[usize],
        model: &[f32],
        pending: Option<&PendingRound>,
    ) -> Result<()> {
        self.guard(PhaseEvent::BeginRound)?;
        let pending = pending.filter(|p| p.round == round);
        self.round = round;
        self.expected.iter_mut().for_each(|e| *e = false);
        self.got.iter_mut().for_each(|g| *g = false);
        self.uploads.clear();
        self.expected_new = 0;
        self.collect_target = None;
        self.late = 0;
        if pending.is_none() {
            if let Some(d) = self.durable.as_deref_mut() {
                d.round_started(round, model, active)?;
            }
        }
        if let Some(p) = pending {
            for u in &p.uploads {
                if u.client_id < self.num_clients && !self.got[u.client_id] {
                    self.got[u.client_id] = true;
                    self.expected[u.client_id] = true;
                    self.uploads.push(u.clone());
                }
            }
        }
        self.preseeded = self.uploads.len();
        self.clock.lap(); // the Select span starts here
        self.transition(PhaseKind::Select);
        Ok(())
    }

    /// `Select` or `Collect` (self-loop): records that the broadcast
    /// reached client `p`, whose upload the Collect phase will wait for.
    /// Legal mid-Collect so hedged re-dispatch can widen the cohort
    /// without leaving the phase.
    pub fn expect_upload(&mut self, p: usize) -> Result<()> {
        self.guard(PhaseEvent::ExpectUpload)?;
        if p < self.num_clients && !self.expected[p] {
            self.expected[p] = true;
            self.expected_new += 1;
        }
        Ok(())
    }

    /// Whether client `p`'s upload is already counted (preseeded from a
    /// resumed round, or gathered this life). Callers skip broadcasting
    /// to these.
    pub fn already_received(&self, p: usize) -> bool {
        p < self.num_clients && self.got[p]
    }

    /// Whether client `p` was expected to report this round (preseeded or
    /// reached by the broadcast). Valid until the next `begin_round`, so
    /// post-collection roster bookkeeping can still consult it.
    pub fn was_expected(&self, p: usize) -> bool {
        p < self.num_clients && self.expected[p]
    }

    /// `Select → Collect`: broadcasting is over, gathering starts.
    pub fn begin_collect(&mut self) -> Result<()> {
        self.guard(PhaseEvent::BeginCollect)?;
        self.transition(PhaseKind::Collect);
        Ok(())
    }

    /// Sets the over-selection close target: Collect completes at
    /// `target` counted uploads (preseeded included) even while more are
    /// expected, and fresh arrivals beyond it are [`UploadVerdict::Late`].
    /// Cleared by the next `begin_round`.
    pub fn set_collect_target(&mut self, target: usize) {
        self.collect_target = Some(target.max(1));
    }

    /// Whether the over-selection target (if any) has been met.
    fn target_reached(&self) -> bool {
        self.collect_target.is_some_and(|t| self.uploads.len() >= t)
    }

    /// `Collect` (self-loop): offers the upload claimed to come from
    /// `from_client` carrying `round_tag`. Stale, unsolicited and forged
    /// uploads are [`UploadVerdict::Discarded`]; resubmissions of an
    /// already-counted key are [`UploadVerdict::Duplicate`] (refused
    /// write-ahead by the durable store, with a `duplicate_upload` mark).
    pub fn offer_upload(
        &mut self,
        from_client: usize,
        round_tag: usize,
        upload: ClientUpload,
    ) -> Result<UploadVerdict> {
        self.guard(PhaseEvent::Upload)?;
        if round_tag != self.round
            || from_client >= self.num_clients
            || !self.expected[from_client]
            || upload.client_id != from_client
        {
            return Ok(UploadVerdict::Discarded);
        }
        // Over-selection: once the target is met, fresh stragglers are
        // turned away *before* the durable write-ahead, so surplus
        // uploads are never persisted (a crash-resume would otherwise
        // fold more than the target).
        if self.target_reached() && !self.got[from_client] {
            self.late += 1;
            return Ok(UploadVerdict::Late);
        }
        // The durable dedup key is (round, client): a resubmission of a
        // persisted upload is dropped exactly once, not re-persisted.
        let fresh = match self.durable.as_deref_mut() {
            Some(d) => {
                let fresh = d.update_received(self.round, &upload)?;
                if !fresh {
                    self.telemetry.mark(
                        "duplicate_upload",
                        Some(self.round as u64),
                        Some(from_client as u64),
                        None,
                    );
                }
                fresh
            }
            None => !self.got[from_client],
        };
        if fresh && !self.got[from_client] {
            self.got[from_client] = true;
            self.uploads.push(upload);
            Ok(UploadVerdict::Accepted)
        } else {
            Ok(UploadVerdict::Duplicate)
        }
    }

    /// Whether Collect can stop waiting: every expected upload
    /// (preseeded + broadcast-reached) has arrived, or the over-selection
    /// target — whichever is smaller — has been met.
    pub fn collect_complete(&self) -> bool {
        let everyone = self.preseeded + self.expected_new;
        let goal = match self.collect_target {
            Some(t) => t.min(everyone),
            None => everyone,
        };
        self.uploads.len() >= goal
    }

    /// Uploads counted so far this round.
    pub fn arrived(&self) -> usize {
        self.uploads.len()
    }

    /// Fresh uploads turned away as [`UploadVerdict::Late`] this round —
    /// the round's over-selection waste.
    pub fn late_count(&self) -> usize {
        self.late
    }

    /// `Collect → Aggregate`: the gather window is over. Uploads are
    /// sorted by client id (reproducible floating-point fold regardless
    /// of arrival order or the persisted/re-gathered split of a resumed
    /// round), screened through `guard` if one is attached — the defense
    /// seam — and handed to the caller as a [`CohortReport`].
    pub fn close_collection(&mut self, guard: Option<&mut UpdateGuard>) -> Result<CohortReport> {
        self.guard(PhaseEvent::CloseCollection)?;
        let mut uploads = std::mem::take(&mut self.uploads);
        uploads.sort_by_key(|u| u.client_id);
        let arrived = uploads.len();
        let (uploads, rejected, clipped) = match guard {
            Some(g) => {
                let s = screen_and_report(g, uploads, Some(self.round as u64), &self.telemetry);
                (s.accepted, s.rejected, s.clipped.len())
            }
            None => (uploads, Vec::new(), 0),
        };
        self.transition(PhaseKind::Aggregate);
        Ok(CohortReport {
            uploads,
            arrived,
            rejected,
            clipped,
        })
    }

    /// `Aggregate → Publish`: the aggregation outcome. `Some(model)`
    /// commits the new global model write-ahead; `None` records that the
    /// round was skipped (below quorum, or a fully rejected cohort) and
    /// the model carries over uncommitted.
    pub fn aggregated(&mut self, model: Option<&[f32]>) -> Result<()> {
        self.guard(PhaseEvent::Aggregated)?;
        if let (Some(d), Some(model)) = (self.durable.as_deref_mut(), model) {
            d.round_aggregated(self.round, model)?;
        }
        self.transition(PhaseKind::Publish);
        Ok(())
    }

    /// `Publish → Idle`: the round's record is final. With a durable
    /// store this is the round's last commit; after it the round is
    /// replayed as history, never re-run.
    pub fn published(
        &mut self,
        record: &RoundRecord,
        roster: &[RosterState],
        participants: &[usize],
    ) -> Result<()> {
        self.guard(PhaseEvent::Published)?;
        if let Some(d) = self.durable.as_deref_mut() {
            d.round_published(self.round, record, roster, participants)?;
        }
        if let Some(d) = self.durable.as_deref() {
            // The WAL position lands on the round-indexed timeline so a
            // post-mortem can correlate "how far had the log advanced"
            // with the round-control decisions around a crash.
            self.telemetry.gauge(
                "wal_position",
                d.state().applied_events as f64,
                Some(self.round as u64),
                None,
            );
        }
        if let Some(obs) = self.observer.as_mut() {
            let snap = RoundSnapshot {
                round: self.round as u64,
                wall_secs: record.wall_secs(),
                local_update_secs: record.local_update_secs,
                serialize_secs: record.serialize_secs,
                comm_secs: record.comm_secs,
                aggregate_secs: record.aggregate_secs,
                accepted: participants.len() as u64,
                late: self.late as u64,
                rejected: record.rejected_clients as u64,
                dropped: record.dropped_clients as u64,
                compression_ratio: self
                    .telemetry
                    .registry()
                    .map(|r| r.gauge("compression_ratio").last())
                    .unwrap_or(0.0),
                primal_residual: record.primal_residual,
                dual_residual: record.dual_residual,
                update_norm: record.update_norm,
                train_loss: record.train_loss as f64,
            };
            let recoveries = self
                .telemetry
                .registry()
                .map(|r| r.counter("coordinator_recoveries").get())
                .unwrap_or(0);
            obs.observe_round(snap, recoveries, &self.telemetry);
        }
        self.transition(PhaseKind::Idle);
        Ok(())
    }

    /// `Idle → Done`: commits run completion; no further event is
    /// accepted.
    pub fn finish_run(&mut self) -> Result<()> {
        self.guard(PhaseEvent::FinishRun)?;
        if let Some(d) = self.durable.as_deref_mut() {
            d.run_completed()?;
        }
        self.transition(PhaseKind::Done);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use appfl_telemetry::MemorySink;
    use std::sync::Arc;

    fn upload(id: usize) -> ClientUpload {
        ClientUpload {
            client_id: id,
            primal: vec![1.0, 2.0],
            dual: None,
            num_samples: 4,
            local_loss: 0.5,
        }
    }

    /// Drives a fresh machine to `phase` through the only legal path.
    fn machine_in(phase: PhaseKind, telemetry: &Telemetry) -> PhaseMachine<'static> {
        let mut m = PhaseMachine::new(2, telemetry, None);
        let steps: &[PhaseEvent] = match phase {
            PhaseKind::Idle => &[],
            PhaseKind::Select => &[PhaseEvent::BeginRound],
            PhaseKind::Collect => &[PhaseEvent::BeginRound, PhaseEvent::BeginCollect],
            PhaseKind::Aggregate => &[
                PhaseEvent::BeginRound,
                PhaseEvent::BeginCollect,
                PhaseEvent::CloseCollection,
            ],
            PhaseKind::Publish => &[
                PhaseEvent::BeginRound,
                PhaseEvent::BeginCollect,
                PhaseEvent::CloseCollection,
                PhaseEvent::Aggregated,
            ],
            PhaseKind::Done => &[PhaseEvent::FinishRun],
        };
        for &e in steps {
            apply(&mut m, e).unwrap();
        }
        assert_eq!(m.phase(), phase, "setup must land in {phase:?}");
        m
    }

    /// Fires `event` on the machine with placeholder payloads.
    fn apply(m: &mut PhaseMachine<'_>, event: PhaseEvent) -> Result<()> {
        match event {
            PhaseEvent::RunStarted => m.run_started("FedAvg", "MNIST", f64::INFINITY, 3),
            PhaseEvent::BeginRound => m.begin_round(1, &[0, 1], &[0.0, 0.0], None),
            PhaseEvent::ExpectUpload => m.expect_upload(0),
            PhaseEvent::BeginCollect => m.begin_collect(),
            PhaseEvent::Upload => m.offer_upload(0, 1, upload(0)).map(|_| ()),
            PhaseEvent::CloseCollection => m.close_collection(None).map(|_| ()),
            PhaseEvent::Aggregated => m.aggregated(Some(&[0.0, 0.0])),
            PhaseEvent::Published => m.published(&RoundRecord::default(), &[], &[]),
            PhaseEvent::FinishRun => m.finish_run(),
        }
    }

    #[test]
    fn transition_table_is_total_no_silent_fallthrough() {
        // Every (phase, event) pair is either handled or rejected with
        // InvalidTransition — exhaustively, 6 × 9 pairs.
        let telemetry = Telemetry::disabled();
        for phase in PhaseKind::ALL {
            for event in PhaseEvent::ALL {
                let mut m = machine_in(phase, &telemetry);
                let outcome = apply(&mut m, event);
                if phase.accepts(event) {
                    assert!(outcome.is_ok(), "{phase:?} must accept {event:?}");
                } else {
                    match outcome {
                        Err(Error::InvalidTransition { phase: p, event: e }) => {
                            assert_eq!(p, phase.as_str());
                            assert_eq!(e, event.as_str());
                        }
                        other => {
                            panic!("{phase:?} + {event:?}: expected rejection, got {other:?}")
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn accepted_event_count_matches_the_diagram() {
        // 10 legal edges total: 3 from Idle, 2 from Select, 3 from
        // Collect (Upload, hedged ExpectUpload, CloseCollection), 1 each
        // from Aggregate and Publish, 0 from Done.
        let legal: usize = PhaseKind::ALL
            .iter()
            .flat_map(|&p| PhaseEvent::ALL.iter().map(move |&e| p.accepts(e)))
            .filter(|&ok| ok)
            .count();
        assert_eq!(legal, 10);
        assert!(PhaseEvent::ALL.iter().all(|&e| !PhaseKind::Done.accepts(e)));
    }

    #[test]
    fn collect_target_closes_early_and_marks_stragglers_late() {
        let telemetry = Telemetry::disabled();
        let mut m = PhaseMachine::new(4, &telemetry, None);
        m.begin_round(1, &[0, 1, 2, 3], &[0.0; 2], None).unwrap();
        for p in 0..4 {
            m.expect_upload(p).unwrap(); // over-selected: 4 dispatched...
        }
        m.begin_collect().unwrap();
        m.set_collect_target(2); // ...but 2 close the round
        assert_eq!(
            m.offer_upload(3, 1, upload(3)).unwrap(),
            UploadVerdict::Accepted
        );
        assert!(!m.collect_complete());
        assert_eq!(
            m.offer_upload(1, 1, upload(1)).unwrap(),
            UploadVerdict::Accepted
        );
        assert!(m.collect_complete(), "target met while 2 still expected");
        // Surplus stragglers are Late, not folded; a resubmission of a
        // counted client is still Duplicate, not Late.
        assert_eq!(
            m.offer_upload(0, 1, upload(0)).unwrap(),
            UploadVerdict::Late
        );
        assert_eq!(
            m.offer_upload(1, 1, upload(1)).unwrap(),
            UploadVerdict::Duplicate
        );
        assert_eq!(m.late_count(), 1);
        let report = m.close_collection(None).unwrap();
        assert_eq!(report.arrived, 2);
        let ids: Vec<usize> = report.uploads.iter().map(|u| u.client_id).collect();
        assert_eq!(ids, vec![1, 3], "only the first-to-target pair folds");
    }

    #[test]
    fn hedged_expect_widens_the_cohort_mid_collect() {
        let telemetry = Telemetry::disabled();
        let mut m = PhaseMachine::new(3, &telemetry, None);
        m.begin_round(1, &[0, 1, 2], &[0.0; 2], None).unwrap();
        m.expect_upload(0).unwrap();
        m.begin_collect().unwrap();
        // Client 2 is unsolicited until the hedge dispatches to it.
        assert_eq!(
            m.offer_upload(2, 1, upload(2)).unwrap(),
            UploadVerdict::Discarded
        );
        m.expect_upload(2).unwrap(); // hedge: ExpectUpload inside Collect
        assert_eq!(
            m.offer_upload(2, 1, upload(2)).unwrap(),
            UploadVerdict::Accepted
        );
        assert!(!m.collect_complete(), "client 0 is still owed");
        m.offer_upload(0, 1, upload(0)).unwrap();
        assert!(m.collect_complete());
        // The target resets with the round.
        m.close_collection(None).unwrap();
        m.aggregated(None).unwrap();
        m.published(&RoundRecord::default(), &[], &[]).unwrap();
        m.begin_round(2, &[0], &[0.0; 2], None).unwrap();
        assert_eq!(m.late_count(), 0);
    }

    #[test]
    fn full_round_walks_the_circuit_and_counts_uploads() {
        let telemetry = Telemetry::disabled();
        let mut m = PhaseMachine::new(3, &telemetry, None);
        m.run_started("FedAvg", "MNIST", f64::INFINITY, 1).unwrap();
        m.begin_round(1, &[0, 1, 2], &[0.0; 2], None).unwrap();
        for p in 0..3 {
            m.expect_upload(p).unwrap();
        }
        m.begin_collect().unwrap();
        assert!(!m.collect_complete());
        assert_eq!(
            m.offer_upload(0, 1, upload(0)).unwrap(),
            UploadVerdict::Accepted
        );
        // Wrong round tag, unsolicited sender and forged id are discarded.
        assert_eq!(
            m.offer_upload(1, 2, upload(1)).unwrap(),
            UploadVerdict::Discarded
        );
        assert_eq!(
            m.offer_upload(9, 1, upload(9)).unwrap(),
            UploadVerdict::Discarded
        );
        assert_eq!(
            m.offer_upload(1, 1, upload(2)).unwrap(),
            UploadVerdict::Discarded
        );
        // A resubmission is a duplicate, counted once.
        assert_eq!(
            m.offer_upload(0, 1, upload(0)).unwrap(),
            UploadVerdict::Duplicate
        );
        assert_eq!(
            m.offer_upload(2, 1, upload(2)).unwrap(),
            UploadVerdict::Accepted
        );
        assert_eq!(
            m.offer_upload(1, 1, upload(1)).unwrap(),
            UploadVerdict::Accepted
        );
        assert!(m.collect_complete());
        let report = m.close_collection(None).unwrap();
        assert_eq!(report.arrived, 3);
        // Arrival order was 0, 2, 1; the fold order must be 0, 1, 2.
        let ids: Vec<usize> = report.uploads.iter().map(|u| u.client_id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        m.aggregated(Some(&[1.0, 1.0])).unwrap();
        m.published(&RoundRecord::default(), &[], &[]).unwrap();
        assert_eq!(m.phase(), PhaseKind::Idle);
        m.finish_run().unwrap();
        assert_eq!(m.phase(), PhaseKind::Done);
    }

    #[test]
    fn virtual_clock_spans_carry_simulated_durations() {
        let sink = Arc::new(MemorySink::new());
        let telemetry = Telemetry::new(sink.clone());
        let mut m = PhaseMachine::new(1, &telemetry, None).virtual_clock(0.0);
        m.begin_round(1, &[0], &[0.0], None).unwrap();
        m.expect_upload(0).unwrap();
        m.advance_to(2.0);
        m.begin_collect().unwrap();
        m.offer_upload(0, 1, upload(0)).unwrap();
        m.advance_to(7.0);
        m.close_collection(None).unwrap();
        m.advance_to(7.5);
        m.aggregated(None).unwrap();
        m.advance_to(8.0);
        m.published(&RoundRecord::default(), &[], &[]).unwrap();
        let events = sink.events();
        let span = |name: &str| {
            events
                .iter()
                .find(|e| e.name == name)
                .unwrap_or_else(|| panic!("missing {name}"))
                .secs
                .unwrap()
        };
        assert_eq!(span("phase/select"), 2.0);
        assert_eq!(span("phase/collect"), 5.0);
        assert_eq!(span("phase/aggregate"), 0.5);
        assert_eq!(span("phase/publish"), 0.5);
    }

    #[test]
    fn resumed_round_preseeds_without_recommitting() {
        let pending = PendingRound {
            round: 2,
            broadcast: vec![0.5, 0.5],
            active: vec![0, 1, 2],
            uploads: vec![upload(1)],
            aggregated: None,
        };
        let telemetry = Telemetry::disabled();
        let mut m = PhaseMachine::new(3, &telemetry, None);
        m.begin_round(2, &[0, 1, 2], &[0.5, 0.5], Some(&pending))
            .unwrap();
        assert!(m.already_received(1), "preseeded client is already counted");
        assert!(!m.already_received(0));
        m.expect_upload(0).unwrap();
        m.expect_upload(2).unwrap();
        m.begin_collect().unwrap();
        assert_eq!(m.arrived(), 1);
        assert!(!m.collect_complete(), "still waiting on 0 and 2");
        m.offer_upload(0, 2, upload(0)).unwrap();
        m.offer_upload(2, 2, upload(2)).unwrap();
        assert!(m.collect_complete());
        let report = m.close_collection(None).unwrap();
        assert_eq!(report.arrived, 3);
    }

    #[test]
    fn pending_for_a_different_round_is_ignored() {
        let pending = PendingRound {
            round: 5,
            broadcast: vec![],
            active: vec![0],
            uploads: vec![upload(0)],
            aggregated: None,
        };
        let telemetry = Telemetry::disabled();
        let mut m = PhaseMachine::new(2, &telemetry, None);
        m.begin_round(1, &[0, 1], &[0.0], Some(&pending)).unwrap();
        assert!(!m.already_received(0), "stale pending must not preseed");
    }
}
