//! Wire-codec link layer for the transport runners.
//!
//! Wraps a [`Communicator`] pair with the negotiated codec pipeline from
//! [`appfl_comm::wire`]: every logical message is framed
//! ([`Frame`]) and chunk-streamed, the server opens each connection with
//! a [`CodecHello`] offer, and clients answer with a [`CodecAck`] before
//! (optionally) switching their uploads to coded residual blobs. All of
//! it is strictly additive — a runner built without a [`WireConfig`]
//! sends exactly the bytes it always did, which is what keeps the
//! gRPC-vs-MPI transparency tests byte-identical.
//!
//! ## Negotiation is loss-tolerant
//!
//! Frames are self-describing, so negotiation state can never wedge a
//! link: a client that missed the hello simply keeps uploading `Plain`
//! frames (which the server accepts forever), and the server sniffs the
//! frame kind of every upload instead of trusting per-client negotiation
//! state. On a reliable (non-fault-tolerant) run the handshake is
//! strict; under fault injection it is fire-and-forget.
//!
//! ## Reference-delta uploads
//!
//! Coded uploads carry the residual `update − broadcast` (plus the
//! error-feedback carry) against the round's broadcast, which both ends
//! already hold. That makes a stale coded upload undecodable against the
//! current round's reference — so it is dropped *before* aggregation,
//! which is exactly what the phase machine would do with a stale plain
//! upload anyway. A lost coded upload also loses the carry mass it
//! drained; error feedback guards against *compression* loss, not
//! transport loss.

use crate::api::ClientUpload;
use crate::error::Error;
use crate::runner::comm::{decode_upload, encode_upload};
use appfl_comm::transport::{CommError, Communicator};
use appfl_comm::wire::{
    recv_chunked, send_chunked, ChunkDemux, CodecAck, CodecHello, CodedUpload, Frame, FrameKind,
    Reassembler, StackDecoder, StackEncoder, WireConfig, CODEC_VERSION,
};
use appfl_telemetry::Telemetry;
use std::time::Instant;

/// What one raw transport buffer produced once the wire layer chewed on
/// it: a complete, decoded upload — or nothing foldable (an ack, a
/// mid-stream chunk, garbage that was dropped on the floor).
pub(crate) enum Incoming {
    /// A decoded upload with its round tag.
    Upload(usize, ClientUpload),
    /// Nothing to fold yet.
    None,
}

// ---------------------------------------------------------------------
// Server side
// ---------------------------------------------------------------------

/// Server half of the link: plain passthrough, or the codec pipeline.
pub(crate) enum ServerLink {
    /// No wire config: bytes move exactly as before.
    Plain,
    /// Framed + chunked + codec-negotiated.
    Wire(ServerWire),
}

/// Server-side wire state: the chunk demultiplexer, stream ids, and the
/// per-round byte accounting behind the `wire_bytes_*` counters.
pub(crate) struct ServerWire {
    config: WireConfig,
    demux: ChunkDemux,
    stream: u64,
    /// Framed bytes sent (broadcasts + hellos) this round.
    sent: u64,
    /// Framed bytes received (uploads + acks) this round.
    received: u64,
    /// What the received uploads would have cost uncompressed (their raw
    /// f32 payload), for the savings counter.
    baseline: u64,
}

impl ServerLink {
    pub(crate) fn new(wire: Option<WireConfig>) -> Self {
        match wire {
            None => ServerLink::Plain,
            Some(config) => ServerLink::Wire(ServerWire {
                config,
                demux: ChunkDemux::new(),
                stream: 0,
                sent: 0,
                received: 0,
                baseline: 0,
            }),
        }
    }

    /// Opens every connection with the codec offer. `strict` (reliable
    /// transports) also waits for each client's ack; otherwise the hello
    /// is fire-and-forget and the ack — if it ever arrives — is consumed
    /// opportunistically during the gather.
    pub(crate) fn greet<C: Communicator>(
        &mut self,
        comm: &C,
        num_clients: usize,
        strict: bool,
    ) -> Result<(), Error> {
        let ServerLink::Wire(w) = self else {
            return Ok(());
        };
        let hello = CodecHello {
            version: CODEC_VERSION,
            stacks: vec![w.config.stack.clone()],
        }
        .encode();
        let framed = Frame::encode(FrameKind::Hello, &hello);
        for rank in 1..=num_clients {
            w.stream += 1;
            let sent = send_chunked(comm, rank, &framed, w.config.chunk_bytes, w.stream);
            match sent {
                Ok(n) => w.sent += n as u64,
                Err(e) if strict => return Err(e.into()),
                Err(_) => {} // lossy link: the client stays on Plain frames
            }
        }
        if strict {
            for rank in 1..=num_clients {
                loop {
                    let buf = comm.recv(rank)?;
                    w.received += buf.len() as u64;
                    if let Some(msg) = w.demux.push(rank, &buf)? {
                        let frame = Frame::decode(&msg).map_err(frame_err)?;
                        if frame.kind != FrameKind::Ack {
                            return Err(CommError::Frame(format!(
                                "expected codec ack from rank {rank}, got {:?}",
                                frame.kind
                            ))
                            .into());
                        }
                        CodecAck::decode(frame.body).map_err(frame_err)?;
                        break;
                    }
                }
            }
        }
        Ok(())
    }

    /// Sends one logical payload (a broadcast) to `rank`.
    pub(crate) fn send_payload<C: Communicator>(
        &mut self,
        comm: &C,
        rank: usize,
        body: &[u8],
    ) -> Result<(), CommError> {
        match self {
            ServerLink::Plain => comm.send(rank, body.to_vec()),
            ServerLink::Wire(w) => {
                let framed = Frame::encode(FrameKind::Plain, body);
                w.stream += 1;
                let sent = send_chunked(comm, rank, &framed, w.config.chunk_bytes, w.stream)?;
                w.sent += sent as u64;
                Ok(())
            }
        }
    }

    /// Receives one complete upload from `rank`, blocking — the reliable
    /// (non-fault-tolerant) gather. Acks are consumed silently; anything
    /// undecodable is an error, exactly like a corrupt plain upload.
    /// The third element is the time spent *decoding* (as opposed to
    /// waiting), so the caller can keep its serialize/comm phase split.
    pub(crate) fn recv_upload<C: Communicator>(
        &mut self,
        comm: &C,
        rank: usize,
        round: usize,
        reference: &[f32],
        num_samples: usize,
    ) -> Result<(usize, ClientUpload, f64), Error> {
        match self {
            ServerLink::Plain => {
                let buf = comm.recv(rank)?;
                let t = Instant::now();
                let (r, upload) = decode_upload(&buf, num_samples)?;
                Ok((r, upload, t.elapsed().as_secs_f64()))
            }
            ServerLink::Wire(w) => loop {
                let buf = comm.recv(rank)?;
                w.received += buf.len() as u64;
                let t = Instant::now();
                let Some(msg) = w.demux.push(rank, &buf)? else {
                    continue;
                };
                let frame = Frame::decode(&msg).map_err(frame_err)?;
                match frame.kind {
                    FrameKind::Ack | FrameKind::Hello => continue,
                    FrameKind::Plain => {
                        let (r, upload) = decode_upload(frame.body, num_samples)?;
                        w.baseline += upload.payload_bytes() as u64;
                        return Ok((r, upload, t.elapsed().as_secs_f64()));
                    }
                    FrameKind::Coded => {
                        let coded = CodedUpload::decode(frame.body).map_err(frame_err)?;
                        if coded.round as usize != round {
                            return Err(CommError::Frame(format!(
                                "coded upload for round {} against round {round}'s reference",
                                coded.round
                            ))
                            .into());
                        }
                        let primal =
                            StackDecoder::decode(&coded.blob, reference).map_err(frame_err)?;
                        let upload = ClientUpload {
                            client_id: coded.client_id as usize,
                            primal,
                            dual: None,
                            num_samples,
                            local_loss: coded.loss as f32,
                        };
                        w.baseline += upload.payload_bytes() as u64;
                        return Ok((round, upload, t.elapsed().as_secs_f64()));
                    }
                }
            },
        }
    }

    /// Feeds one raw buffer that `recv_any` attributed to `peer` (a
    /// 0-based client index) — the fault-tolerant gather. Never errors:
    /// garbage, acks and stale coded uploads are dropped on the floor,
    /// exactly like an undecodable plain upload.
    pub(crate) fn process(
        &mut self,
        peer: usize,
        buf: &[u8],
        round: usize,
        reference: &[f32],
        num_samples: usize,
    ) -> Incoming {
        match self {
            ServerLink::Plain => match decode_upload(buf, num_samples) {
                Ok((r, upload)) => Incoming::Upload(r, upload),
                Err(_) => Incoming::None,
            },
            ServerLink::Wire(w) => {
                w.received += buf.len() as u64;
                let Ok(Some(msg)) = w.demux.push(peer, buf) else {
                    return Incoming::None;
                };
                let Ok(frame) = Frame::decode(&msg) else {
                    return Incoming::None;
                };
                match frame.kind {
                    FrameKind::Ack | FrameKind::Hello => Incoming::None,
                    FrameKind::Plain => match decode_upload(frame.body, num_samples) {
                        Ok((r, upload)) => {
                            w.baseline += upload.payload_bytes() as u64;
                            Incoming::Upload(r, upload)
                        }
                        Err(_) => Incoming::None,
                    },
                    FrameKind::Coded => {
                        let Ok(coded) = CodedUpload::decode(frame.body) else {
                            return Incoming::None;
                        };
                        // A stale coded upload was encoded against an
                        // older broadcast: undecodable here, and the
                        // machine would discard it anyway.
                        if coded.round as usize != round {
                            return Incoming::None;
                        }
                        let Ok(primal) = StackDecoder::decode(&coded.blob, reference) else {
                            return Incoming::None;
                        };
                        let upload = ClientUpload {
                            client_id: coded.client_id as usize,
                            primal,
                            dual: None,
                            num_samples,
                            local_loss: coded.loss as f32,
                        };
                        w.baseline += upload.payload_bytes() as u64;
                        Incoming::Upload(round, upload)
                    }
                }
            }
        }
    }

    /// Emits the round's wire counters (`wire_bytes_sent`,
    /// `wire_bytes_saved`, `compression_ratio`) tagged with the codec
    /// stack label, and resets the accounting for the next round.
    pub(crate) fn emit_round(&mut self, telemetry: &Telemetry, round: usize) {
        let ServerLink::Wire(w) = self else { return };
        let r = Some(round as u64);
        let label = w.config.stack.label();
        telemetry.count("wire_bytes_sent", w.sent + w.received, r, Some(&label));
        telemetry.count(
            "wire_bytes_saved",
            w.baseline.saturating_sub(w.received),
            r,
            Some(&label),
        );
        if w.received > 0 {
            telemetry.gauge(
                "compression_ratio",
                w.baseline as f64 / w.received as f64,
                r,
                None,
            );
        }
        w.sent = 0;
        w.received = 0;
        w.baseline = 0;
    }
}

// ---------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------

/// Client half of the link.
pub(crate) enum ClientLink {
    /// No wire config: bytes move exactly as before.
    Plain,
    /// Framed + chunked, coding uploads once negotiated.
    Wire(ClientWire),
}

/// Client-side wire state: the negotiated encoder (absent until a hello
/// arrives — un-negotiated clients upload `Plain` frames) and the
/// reassembler for inbound broadcasts.
pub(crate) struct ClientWire {
    config: WireConfig,
    encoder: Option<StackEncoder>,
    reassembler: Reassembler,
    stream: u64,
}

impl ClientLink {
    pub(crate) fn new(wire: Option<WireConfig>) -> Self {
        match wire {
            None => ClientLink::Plain,
            Some(config) => ClientLink::Wire(ClientWire {
                config,
                encoder: None,
                reassembler: Reassembler::new(),
                stream: 0,
            }),
        }
    }

    /// Strict handshake for reliable transports: the first inbound
    /// message must be the server's codec offer, answered before any
    /// round traffic.
    pub(crate) fn handshake<C: Communicator>(&mut self, comm: &C) -> Result<(), Error> {
        let ClientLink::Wire(w) = self else {
            return Ok(());
        };
        let msg = recv_chunked(comm, 0, &mut w.reassembler)?;
        let frame = Frame::decode(&msg).map_err(frame_err)?;
        if frame.kind != FrameKind::Hello {
            return Err(CommError::Frame(format!(
                "expected codec hello, got {:?}",
                frame.kind
            ))
            .into());
        }
        w.negotiate(comm, frame.body).map_err(Error::from)
    }

    /// Receives one complete broadcast body, blocking (reliable mode).
    pub(crate) fn recv_broadcast<C: Communicator>(
        &mut self,
        comm: &C,
    ) -> Result<Vec<u8>, CommError> {
        match self {
            ClientLink::Plain => comm.recv(0),
            ClientLink::Wire(w) => loop {
                let msg = recv_chunked(comm, 0, &mut w.reassembler)?;
                let frame = Frame::decode(&msg).map_err(frame_err)?;
                match frame.kind {
                    FrameKind::Hello => w.negotiate(comm, frame.body)?,
                    FrameKind::Plain => return Ok(frame.body.to_vec()),
                    kind => {
                        return Err(CommError::Frame(format!(
                            "unexpected {kind:?} frame on the broadcast path"
                        )))
                    }
                }
            },
        }
    }

    /// Feeds one raw inbound buffer (fault-tolerant mode, where the
    /// retry policy owns the actual `recv`). Returns a complete
    /// broadcast body once one reassembles; hellos are negotiated and
    /// acked inline; garbage resynchronises and yields nothing.
    pub(crate) fn accept<C: Communicator>(&mut self, comm: &C, buf: Vec<u8>) -> Option<Vec<u8>> {
        match self {
            ClientLink::Plain => Some(buf),
            ClientLink::Wire(w) => {
                let chunk = appfl_comm::wire::Chunk::decode(&buf).ok().or_else(|| {
                    w.reassembler.reset();
                    None
                })?;
                let pushed = match w.reassembler.push(chunk) {
                    Ok(done) => done,
                    Err(_) if chunk.seq == 0 => {
                        // The in-flight stream lost a chunk; this one
                        // opens the next.
                        w.reassembler.reset();
                        w.reassembler.push(chunk).ok().flatten()
                    }
                    Err(_) => {
                        w.reassembler.reset();
                        None
                    }
                };
                let msg = pushed?;
                let frame = Frame::decode(&msg).ok()?;
                match frame.kind {
                    FrameKind::Hello => {
                        // Best-effort ack: on a lossy link the server
                        // never waits for it anyway.
                        let _ = w.negotiate(comm, frame.body);
                        None
                    }
                    FrameKind::Plain => Some(frame.body.to_vec()),
                    _ => None,
                }
            }
        }
    }

    /// Sends one upload to the server: a coded residual blob when a
    /// lossy stack is negotiated and the upload is primal-only, a plain
    /// frame otherwise. Dual-carrying uploads (IIADMM) always go plain —
    /// the residual transform is defined on the primal vector.
    pub(crate) fn send_upload<C: Communicator>(
        &mut self,
        comm: &C,
        round: usize,
        upload: &ClientUpload,
        reference: &[f32],
    ) -> Result<(), CommError> {
        match self {
            ClientLink::Plain => comm.send(0, encode_upload(round, upload)),
            ClientLink::Wire(w) => {
                let codable = upload.dual.is_none() && upload.primal.len() == reference.len();
                let framed = match (w.encoder.as_mut(), codable) {
                    (Some(enc), true) if !enc.stack().is_identity() => {
                        let blob = enc
                            .encode(&upload.primal, reference)
                            .map_err(|e| CommError::Frame(e.to_string()))?;
                        let body = CodedUpload {
                            client_id: upload.client_id as u32,
                            round: round as u32,
                            loss: f64::from(upload.local_loss),
                            blob,
                        }
                        .encode();
                        Frame::encode(FrameKind::Coded, &body)
                    }
                    _ => Frame::encode(FrameKind::Plain, &encode_upload(round, upload)),
                };
                w.stream += 1;
                send_chunked(comm, 0, &framed, w.config.chunk_bytes, w.stream)?;
                Ok(())
            }
        }
    }
}

impl ClientWire {
    /// Handles a [`CodecHello`]: picks the first offered stack this
    /// build supports, arms the encoder, and acks.
    fn negotiate<C: Communicator>(&mut self, comm: &C, body: &[u8]) -> Result<(), CommError> {
        let hello = CodecHello::decode(body).map_err(frame_err)?;
        if hello.version != CODEC_VERSION {
            // Future server: stay on Plain frames, which it must accept.
            return Ok(());
        }
        let Some(stack) = hello.stacks.into_iter().find(|s| s.validate().is_ok()) else {
            return Ok(()); // nothing we support: stay plain
        };
        let ack = CodecAck {
            version: CODEC_VERSION,
            stack: stack.clone(),
        }
        .encode();
        let framed = Frame::encode(FrameKind::Ack, &ack);
        self.stream += 1;
        send_chunked(comm, 0, &framed, self.config.chunk_bytes, self.stream)?;
        self.encoder = Some(StackEncoder::new(stack, self.config.error_feedback));
        Ok(())
    }
}

fn frame_err(e: appfl_comm::wire::WireError) -> CommError {
    CommError::Frame(e.to_string())
}
