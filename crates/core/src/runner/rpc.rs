//! Pull-based federation over the RPC service layer — the flow of a real
//! APPFL gRPC deployment: the server is passive; clients call `GetWeight`,
//! train, call `SendResults`, and poll until the round advances.

use crate::api::{ClientAlgorithm, ClientUpload, ServerAlgorithm};
use crate::config::FaultToleranceConfig;
use appfl_comm::retry::RetryPolicy;
use appfl_comm::rpc::{call, call_with_retry, serve, serve_ft, FlService, Request, Response};
use appfl_comm::transport::Communicator;
use appfl_comm::wire::messages::GlobalWeights;
use appfl_comm::wire::{JobDone, LearningResults, TensorMsg, WeightRequest};
use appfl_tensor::TensorError;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Synchronous-round FL service over any [`ServerAlgorithm`].
///
/// `GetWeight` returns `(round, w^{round})`; `SendResults` buffers uploads
/// tagged with the current round and aggregates when all `num_clients` have
/// reported, advancing the round; after `rounds` aggregations the service
/// reports `finished` and clients stop.
pub struct SyncRoundService {
    server: Box<dyn ServerAlgorithm>,
    num_clients: usize,
    rounds: usize,
    round: usize,
    pending: Vec<ClientUpload>,
    sample_counts: Vec<usize>,
    rejected: usize,
    quorum: usize,
}

impl SyncRoundService {
    /// Wraps a server algorithm for `num_clients` clients and `rounds`
    /// rounds. `sample_counts[p]` is client `p`'s `I_p`.
    pub fn new(
        server: Box<dyn ServerAlgorithm>,
        num_clients: usize,
        rounds: usize,
        sample_counts: Vec<usize>,
    ) -> Self {
        assert_eq!(sample_counts.len(), num_clients);
        SyncRoundService {
            server,
            num_clients,
            rounds,
            round: 1,
            pending: Vec::new(),
            sample_counts,
            rejected: 0,
            quorum: num_clients,
        }
    }

    /// Straggler tolerance: aggregate as soon as `quorum ≤ num_clients`
    /// uploads arrive instead of waiting for every client — the mitigation
    /// §IV-E's load imbalance calls for when full asynchrony is not wanted.
    /// Late uploads for a closed round are rejected (clients simply rejoin
    /// at the next round). Only meaningful for FedAvg-style servers; the
    /// ADMM servers require full participation and will reject partial
    /// batches.
    pub fn with_quorum(mut self, quorum: usize) -> Result<Self, TensorError> {
        if quorum < 1 || quorum > self.num_clients {
            return Err(TensorError::InvalidArgument(format!(
                "quorum {quorum} outside 1..={} clients",
                self.num_clients
            )));
        }
        self.quorum = quorum;
        Ok(self)
    }

    /// Completed aggregations so far.
    pub fn completed_rounds(&self) -> usize {
        self.round - 1
    }

    /// Uploads refused (stale round or malformed).
    pub fn rejected(&self) -> usize {
        self.rejected
    }

    /// The served algorithm (for final-model extraction).
    pub fn into_server(self) -> Box<dyn ServerAlgorithm> {
        self.server
    }
}

impl FlService for SyncRoundService {
    fn get_weight(&mut self, _request: &WeightRequest) -> GlobalWeights {
        GlobalWeights {
            round: self.round as u32,
            finished: self.finished(),
            tensors: vec![TensorMsg::flat("global", self.server.global_model())],
        }
    }

    fn send_results(&mut self, results: LearningResults) -> bool {
        if self.finished() || results.round as usize != self.round {
            self.rejected += 1;
            return false;
        }
        let Some(primal) = results.primal.into_iter().next() else {
            self.rejected += 1;
            return false;
        };
        let client_id = results.client_id as usize;
        if client_id >= self.num_clients
            || self.pending.iter().any(|u| u.client_id == client_id)
        {
            self.rejected += 1;
            return false;
        }
        self.pending.push(ClientUpload {
            client_id,
            primal: primal.data,
            dual: results.dual.into_iter().next().map(|t| t.data),
            num_samples: self.sample_counts[client_id],
            local_loss: results.penalty as f32,
        });
        if self.pending.len() >= self.quorum {
            let uploads = std::mem::take(&mut self.pending);
            if self.server.update(&uploads).is_err() {
                self.rejected += uploads.len();
                return false;
            }
            self.round += 1;
        }
        true
    }

    fn done(&mut self, _done: &JobDone) -> bool {
        true
    }

    fn finished(&self) -> bool {
        self.round > self.rounds
    }
}

/// Drives one client against the service until it reports `finished`.
/// Returns the number of rounds this client contributed to.
pub fn run_rpc_client<C: Communicator>(
    mut client: Box<dyn ClientAlgorithm>,
    comm: &C,
) -> Result<usize, TensorError> {
    let id = client.id() as u32;
    let mut contributed = 0usize;
    let mut last_round_seen = 0u32;
    loop {
        let weights = match call(
            comm,
            &Request::GetWeight(WeightRequest {
                client_id: id,
                round: last_round_seen,
            }),
        )
        .map_err(|e| TensorError::InvalidArgument(format!("rpc: {e}")))?
        {
            Response::Weights(w) => w,
            other => {
                return Err(TensorError::InvalidArgument(format!(
                    "unexpected response {other:?}"
                )))
            }
        };
        if weights.finished {
            break;
        }
        if weights.round == last_round_seen {
            // Round not advanced yet (peers still training): poll again.
            // In-process channels make this cheap; a real deployment would
            // back off here.
            std::thread::yield_now();
            continue;
        }
        last_round_seen = weights.round;
        let w = &weights.tensors[0].data;
        let upload = client.update(w)?;
        let results = LearningResults {
            client_id: id,
            round: weights.round,
            penalty: f64::from(upload.local_loss),
            primal: vec![TensorMsg::flat("primal", upload.primal)],
            dual: upload
                .dual
                .map(|d| vec![TensorMsg::flat("dual", d)])
                .unwrap_or_default(),
        };
        call(comm, &Request::SendResults(Box::new(results)))
            .map_err(|e| TensorError::InvalidArgument(format!("rpc: {e}")))?;
        contributed += 1;
    }
    call(comm, &Request::Done(JobDone { client_id: id }))
        .map_err(|e| TensorError::InvalidArgument(format!("rpc: {e}")))?;
    Ok(contributed)
}

/// Runs a whole federation in the pull-based mode; returns the final global
/// model and the number of completed rounds.
pub fn run_rpc_federation<C: Communicator + 'static>(
    server: Box<dyn ServerAlgorithm>,
    clients: Vec<Box<dyn ClientAlgorithm>>,
    mut endpoints: Vec<C>,
    rounds: usize,
) -> Result<(Vec<f32>, usize), TensorError> {
    assert_eq!(endpoints.len(), clients.len() + 1);
    let sample_counts: Vec<usize> = clients.iter().map(|c| c.num_samples()).collect();
    let num_clients = clients.len();
    let server_ep = endpoints.remove(0);
    let mut service = SyncRoundService::new(server, num_clients, rounds, sample_counts);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (client, ep) in clients.into_iter().zip(endpoints) {
            handles.push(scope.spawn(move || run_rpc_client(client, &ep)));
        }
        serve(&mut service, &server_ep, num_clients)
            .map_err(|e| TensorError::InvalidArgument(format!("serve: {e}")))?;
        for h in handles {
            h.join().expect("client thread panicked")?;
        }
        let completed = service.completed_rounds();
        Ok((service.into_server().global_model(), completed))
    })
}

/// Fault-tolerant variant of [`run_rpc_client`]: every call goes through
/// [`call_with_retry`] with a per-attempt `timeout`. A client that cannot
/// reach the server after exhausting its retries — or whose local update
/// fails — *leaves the federation* instead of erroring the whole run; the
/// quorum service aggregates without it. Returns the rounds contributed.
pub fn run_rpc_client_ft<C: Communicator>(
    mut client: Box<dyn ClientAlgorithm>,
    comm: &C,
    policy: &RetryPolicy,
    timeout: Duration,
    retries: Option<&AtomicUsize>,
) -> Result<usize, TensorError> {
    let id = client.id() as u32;
    let mut contributed = 0usize;
    let mut last_round_seen = 0u32;
    loop {
        let weights = match call_with_retry(
            comm,
            &Request::GetWeight(WeightRequest {
                client_id: id,
                round: last_round_seen,
            }),
            policy,
            timeout,
            retries,
        ) {
            Ok(Response::Weights(w)) => w,
            Ok(other) => {
                return Err(TensorError::InvalidArgument(format!(
                    "unexpected response {other:?}"
                )))
            }
            Err(_) => break, // server unreachable: give up, don't wedge
        };
        if weights.finished {
            break;
        }
        if weights.round == last_round_seen {
            std::thread::yield_now();
            continue;
        }
        last_round_seen = weights.round;
        let w = &weights.tensors[0].data;
        let upload = match client.update(w) {
            Ok(u) => u,
            Err(_) => break, // local failure: leave the federation
        };
        let results = LearningResults {
            client_id: id,
            round: weights.round,
            penalty: f64::from(upload.local_loss),
            primal: vec![TensorMsg::flat("primal", upload.primal)],
            dual: upload
                .dual
                .map(|d| vec![TensorMsg::flat("dual", d)])
                .unwrap_or_default(),
        };
        if call_with_retry(
            comm,
            &Request::SendResults(Box::new(results)),
            policy,
            timeout,
            retries,
        )
        .is_err()
        {
            break;
        }
        contributed += 1;
    }
    // Best-effort goodbye; the server's idle cap covers us if it is lost.
    let _ = call_with_retry(
        comm,
        &Request::Done(JobDone { client_id: id }),
        policy,
        timeout,
        retries,
    );
    Ok(contributed)
}

/// Fault-tolerant [`run_rpc_federation`]: aggregates on
/// [`FaultToleranceConfig::min_quorum`], clients retry per the config's
/// policy, and the server stops on its idle cap rather than waiting for
/// goodbyes that will never come. Returns the final global model, the
/// completed rounds, and the total transport retries performed.
pub fn run_rpc_federation_ft<C: Communicator + 'static>(
    server: Box<dyn ServerAlgorithm>,
    clients: Vec<Box<dyn ClientAlgorithm>>,
    mut endpoints: Vec<C>,
    rounds: usize,
    ft: &FaultToleranceConfig,
) -> Result<(Vec<f32>, usize, usize), TensorError> {
    assert_eq!(endpoints.len(), clients.len() + 1);
    let sample_counts: Vec<usize> = clients.iter().map(|c| c.num_samples()).collect();
    let num_clients = clients.len();
    let server_ep = endpoints.remove(0);
    let quorum = ft.min_quorum.clamp(1, num_clients.max(1));
    let mut service =
        SyncRoundService::new(server, num_clients, rounds, sample_counts).with_quorum(quorum)?;
    let retries = AtomicUsize::new(0);
    let completed = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, (client, ep)) in clients.into_iter().zip(endpoints).enumerate() {
            let policy = ft.retry_policy(i as u64 + 1);
            let retries = &retries;
            let timeout = ft.round_timeout();
            handles.push(
                scope.spawn(move || run_rpc_client_ft(client, &ep, &policy, timeout, Some(retries))),
            );
        }
        serve_ft(
            &mut service,
            &server_ep,
            num_clients,
            ft.round_timeout(),
            ft.suspect_after.max(1),
        )
        .map_err(|e| TensorError::InvalidArgument(format!("serve: {e}")))?;
        for h in handles {
            h.join().expect("client thread panicked")?;
        }
        Ok::<usize, TensorError>(service.completed_rounds())
    })?;
    Ok((
        service.into_server().global_model(),
        completed,
        retries.load(Ordering::Relaxed),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::build_federation;
    use crate::config::{AlgorithmConfig, FedConfig};
    use appfl_comm::transport::InProcNetwork;
    use appfl_data::federated::{build_benchmark, Benchmark};
    use appfl_nn::models::{mlp_classifier, InputSpec};
    use appfl_privacy::PrivacyConfig;

    fn federation(algo: AlgorithmConfig, rounds: usize) -> crate::algorithms::Federation {
        let data = build_benchmark(Benchmark::Mnist, 3, 90, 30, 44).unwrap();
        let spec = InputSpec {
            channels: 1,
            height: 28,
            width: 28,
            classes: 10,
        };
        let config = FedConfig {
            algorithm: algo,
            rounds,
            local_steps: 1,
            batch_size: 16,
            privacy: PrivacyConfig::none(),
            seed: 44,
        };
        build_federation(config, &data, move |rng| {
            Box::new(mlp_classifier(spec, 8, rng))
        })
    }

    #[test]
    fn pull_based_federation_completes_all_rounds() {
        let fed = federation(
            AlgorithmConfig::FedAvg {
                lr: 0.05,
                momentum: 0.9,
            },
            3,
        );
        let endpoints = InProcNetwork::new(4);
        let (w, completed) =
            run_rpc_federation(fed.server, fed.clients, endpoints, 3).unwrap();
        assert_eq!(completed, 3);
        assert!(w.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn pull_based_iiadmm_matches_push_based_result() {
        let rounds = 2;
        let algo = AlgorithmConfig::IiAdmm {
            rho: 10.0,
            zeta: 10.0,
        };
        // Pull-based.
        let fed = federation(algo, rounds);
        let endpoints = InProcNetwork::new(4);
        let (w_pull, _) = run_rpc_federation(fed.server, fed.clients, endpoints, rounds).unwrap();
        // Push-based serial reference.
        let mut fed = federation(algo, rounds);
        for _ in 0..rounds {
            let w = fed.server.global_model();
            let uploads: Vec<_> = fed
                .clients
                .iter_mut()
                .map(|c| c.update(&w).unwrap())
                .collect();
            fed.server.update(&uploads).unwrap();
        }
        let w_push = fed.server.global_model();
        let max_diff = w_pull
            .iter()
            .zip(w_push.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_diff < 1e-6, "pull/push divergence {max_diff}");
    }

    #[test]
    fn quorum_service_tolerates_stragglers() {
        use appfl_comm::rpc::serve;
        let fed = federation(
            AlgorithmConfig::FedAvg {
                lr: 0.05,
                momentum: 0.9,
            },
            3,
        );
        let counts: Vec<usize> = fed.clients.iter().map(|c| c.num_samples()).collect();
        let num_clients = fed.clients.len();
        let mut endpoints = appfl_comm::transport::InProcNetwork::new(num_clients + 1);
        let server_ep = endpoints.remove(0);
        // Aggregate on any 2 of 3 uploads.
        let mut service = SyncRoundService::new(fed.server, num_clients, 3, counts)
            .with_quorum(2)
            .unwrap();
        let completed = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (client, ep) in fed.clients.into_iter().zip(endpoints) {
                handles.push(scope.spawn(move || run_rpc_client(client, &ep)));
            }
            serve(&mut service, &server_ep, num_clients).unwrap();
            for h in handles {
                h.join().unwrap().unwrap();
            }
            service.completed_rounds()
        });
        assert_eq!(completed, 3);
        // The third (straggling) upload of at least one round was rejected.
        // (Timing-dependent: with 1 CPU the quorum usually closes before the
        // last client reports; rejected may be 0 on a fast machine, so only
        // sanity-check the counter is consistent.)
        assert!(service.rejected() <= 3);
    }

    #[test]
    fn bad_quorum_is_an_error_not_a_panic() {
        let fed = federation(
            AlgorithmConfig::FedAvg {
                lr: 0.05,
                momentum: 0.9,
            },
            1,
        );
        let counts: Vec<usize> = fed.clients.iter().map(|c| c.num_samples()).collect();
        let service = SyncRoundService::new(fed.server, 3, 1, counts);
        assert!(service.with_quorum(0).is_err());
        let fed = federation(
            AlgorithmConfig::FedAvg {
                lr: 0.05,
                momentum: 0.9,
            },
            1,
        );
        let counts: Vec<usize> = fed.clients.iter().map(|c| c.num_samples()).collect();
        let service = SyncRoundService::new(fed.server, 3, 1, counts);
        assert!(service.with_quorum(4).is_err());
    }

    #[test]
    fn ft_federation_completes_without_faults() {
        let fed = federation(
            AlgorithmConfig::FedAvg {
                lr: 0.05,
                momentum: 0.9,
            },
            2,
        );
        let endpoints = InProcNetwork::new(4);
        let ft = crate::config::FaultToleranceConfig {
            min_quorum: 3,
            ..Default::default()
        };
        let (w, completed, _retries) =
            run_rpc_federation_ft(fed.server, fed.clients, endpoints, 2, &ft).unwrap();
        assert_eq!(completed, 2);
        assert!(w.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn stale_round_uploads_are_rejected() {
        let fed = federation(
            AlgorithmConfig::FedAvg {
                lr: 0.05,
                momentum: 0.9,
            },
            1,
        );
        let counts: Vec<usize> = fed.clients.iter().map(|c| c.num_samples()).collect();
        let mut service = SyncRoundService::new(fed.server, 3, 1, counts);
        let bad = LearningResults {
            client_id: 0,
            round: 99, // wrong round
            penalty: 0.0,
            primal: vec![TensorMsg::flat("z", vec![0.0; 4])],
            dual: vec![],
        };
        assert!(!service.send_results(bad));
        assert_eq!(service.rejected(), 1);
    }

    #[test]
    fn duplicate_uploads_are_rejected() {
        let fed = federation(
            AlgorithmConfig::FedAvg {
                lr: 0.05,
                momentum: 0.9,
            },
            1,
        );
        let dim = fed.server.dim();
        let counts: Vec<usize> = fed.clients.iter().map(|c| c.num_samples()).collect();
        let mut service = SyncRoundService::new(fed.server, 3, 1, counts);
        let make = |id: u32| LearningResults {
            client_id: id,
            round: 1,
            penalty: 0.0,
            primal: vec![TensorMsg::flat("z", vec![0.0; dim])],
            dual: vec![],
        };
        assert!(service.send_results(make(0)));
        assert!(!service.send_results(make(0))); // duplicate
        assert!(!service.send_results(make(9))); // unknown client
        assert_eq!(service.rejected(), 2);
    }
}
