//! Pull-based federation over the RPC service layer — the flow of a real
//! APPFL gRPC deployment: the server is passive; clients call `GetWeight`,
//! train, call `SendResults`, and poll until the round advances.

use crate::api::{ClientAlgorithm, ClientUpload, ServerAlgorithm};
use crate::defense::{GuardVerdict, UpdateGuard};
use crate::diagnostics::RoundDiagnostics;
use crate::error::Error;
use crate::metrics::RoundRecord;
use crate::runner::control::{RoundControlConfig, RoundController};
use crate::store::DurableCoordinator;
use appfl_comm::retry::RetryPolicy;
use appfl_comm::rpc::{call, call_with_retry_observed, FlService, Request, Response};
use appfl_comm::transport::{CommError, Communicator};
use appfl_comm::wire::messages::GlobalWeights;
use appfl_comm::wire::{JobDone, LearningResults, TensorMsg, WeightRequest};
use appfl_telemetry::{Phase, RoundSnapshot, RunObserver, Telemetry};
use std::sync::atomic::AtomicUsize;
use std::time::{Duration, Instant};

/// Synchronous-round FL service over any [`ServerAlgorithm`].
///
/// `GetWeight` returns `(round, w^{round})`; `SendResults` buffers uploads
/// tagged with the current round and aggregates when all `num_clients` have
/// reported, advancing the round; after `rounds` aggregations the service
/// reports `finished` and clients stop.
pub struct SyncRoundService {
    server: Box<dyn ServerAlgorithm>,
    num_clients: usize,
    rounds: usize,
    round: usize,
    pending: Vec<ClientUpload>,
    sample_counts: Vec<usize>,
    rejected: usize,
    quorum: usize,
    telemetry: Telemetry,
    guard: Option<UpdateGuard>,
    guard_rejected: usize,
    guard_clipped: usize,
    round_started: Instant,
    durable: Option<DurableCoordinator>,
    durable_error: Option<Error>,
    controller: Option<RoundController>,
    observer: Option<RunObserver>,
    rejected_at_close: usize,
}

impl SyncRoundService {
    /// Wraps a server algorithm for `num_clients` clients and `rounds`
    /// rounds. `sample_counts[p]` is client `p`'s `I_p`.
    pub fn new(
        server: Box<dyn ServerAlgorithm>,
        num_clients: usize,
        rounds: usize,
        sample_counts: Vec<usize>,
    ) -> Self {
        assert_eq!(sample_counts.len(), num_clients);
        SyncRoundService {
            server,
            num_clients,
            rounds,
            round: 1,
            pending: Vec::new(),
            sample_counts,
            rejected: 0,
            quorum: num_clients,
            telemetry: Telemetry::disabled(),
            guard: None,
            guard_rejected: 0,
            guard_clipped: 0,
            round_started: Instant::now(),
            durable: None,
            durable_error: None,
            controller: None,
            observer: None,
            rejected_at_close: 0,
        }
    }

    /// Straggler tolerance: aggregate as soon as `quorum ≤ num_clients`
    /// uploads arrive instead of waiting for every client — the mitigation
    /// §IV-E's load imbalance calls for when full asynchrony is not wanted.
    /// Late uploads for a closed round are rejected (clients simply rejoin
    /// at the next round). Only meaningful for FedAvg-style servers; the
    /// ADMM servers require full participation and will reject partial
    /// batches.
    pub fn with_quorum(mut self, quorum: usize) -> Result<Self, Error> {
        if quorum < 1 || quorum > self.num_clients {
            return Err(Error::config(format!(
                "quorum {quorum} outside 1..={} clients",
                self.num_clients
            )));
        }
        self.quorum = quorum;
        Ok(self)
    }

    /// Records each round's aggregation as an aggregate-phase span on
    /// `telemetry` (the default handle is the zero-cost disabled one).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Tracks upload latencies through a [`RoundController`]. Pull mode's
    /// quorum close is already over-selection-shaped — every client polls
    /// and the first `quorum` accepted uploads end the round — so the
    /// controller does not gate the close here; it observes each accepted
    /// upload's latency and publishes its smoothed quantile deadline as
    /// the `adaptive_deadline` gauge after every aggregation, keeping the
    /// pull and push topologies comparable on the same telemetry.
    pub fn with_round_control(mut self, config: RoundControlConfig) -> Self {
        self.controller = Some(RoundController::new(config));
        self
    }

    /// Feeds one [`RoundSnapshot`] per closed round into `observer` — the
    /// pull-mode twin of the push runner's per-publish hook. The observer
    /// runs its anomaly detectors and SLO policy against the same
    /// telemetry handle the service already records spans on, so pull
    /// runs get health verdicts and flight-recorder rows without a
    /// [`crate::runner::phases::PhaseMachine`] in the loop.
    pub fn with_observer(mut self, observer: RunObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Detaches the run observer for post-run inspection (collected
    /// anomalies, SLO burn rates).
    pub fn take_observer(&mut self) -> Option<RunObserver> {
        self.observer.take()
    }

    /// Screens every `SendResults` upload with `guard` before it can join
    /// the round: rejected uploads are refused (the client sees `false`,
    /// exactly like a stale round) and never count toward the quorum;
    /// clipped ones join rescaled. Outcomes surface as `update_rejected` /
    /// `update_clipped` marks and `update_norm` gauges on the telemetry
    /// handle.
    pub fn with_guard(mut self, guard: UpdateGuard) -> Self {
        self.guard = Some(guard);
        self
    }

    /// Attaches a durable coordinator (already recovered by the caller):
    /// every phase transition is persisted write-ahead, and a recovered
    /// run *resumes* — the server restores the resumed round's broadcast
    /// model, completed rounds are skipped, and a partial round's
    /// persisted uploads rejoin the pending buffer (so resubmissions are
    /// refused exactly like same-session duplicates). Pull mode has no
    /// broadcast moment, so the select-phase commit is lazy: a round's
    /// cohort and model become durable with its first accepted upload.
    ///
    /// Because [`FlService::send_results`] cannot return an error, a
    /// durable failure mid-service (including an injected
    /// [`crate::store::CrashPoint`]) parks the error in
    /// [`SyncRoundService::durable_error`] and reports the service
    /// `finished`, winding the federation down.
    pub fn with_durable(mut self, mut durable: DurableCoordinator) -> Result<Self, Error> {
        if durable.was_recovered() {
            let state = durable.state().clone();
            self.round = if state.completed {
                self.rounds + 1
            } else {
                state.next_round()
            };
            // Restore the resumed round's *broadcast*: a persisted partial
            // aggregate is re-derived deterministically from the persisted
            // uploads rather than resumed mid-update.
            let w = state
                .round_in_progress
                .as_ref()
                .map(|p| p.broadcast.clone())
                .or_else(|| state.models.last().cloned());
            if let Some(w) = w {
                self.server.restore(&w)?;
            }
            if let Some(p) = &state.round_in_progress {
                self.pending = p.uploads.clone();
            }
        } else {
            durable.run_started(
                self.server.name(),
                "pull",
                f64::INFINITY,
                self.num_clients,
                self.rounds,
            )?;
        }
        self.durable = Some(durable);
        // A recovered partial round may already hold a quorum (a crash
        // right after the deciding upload's collect commit): close it now
        // instead of waiting for an upload that will never come.
        self.try_close_round()?;
        Ok(self)
    }

    /// The durable-coordination failure that aborted the service, if any.
    pub fn durable_error(&self) -> Option<&Error> {
        self.durable_error.as_ref()
    }

    /// Takes the durable-coordination failure that aborted the service,
    /// if any, so the caller can propagate it as the run's error.
    pub fn take_durable_error(&mut self) -> Option<Error> {
        self.durable_error.take()
    }

    /// Detaches the durable coordinator for post-run inspection
    /// (deduplicated resubmissions, recovered state).
    pub fn take_durable(&mut self) -> Option<DurableCoordinator> {
        self.durable.take()
    }

    /// Uploads refused by the update guard (a subset of
    /// [`SyncRoundService::rejected`]).
    pub fn guard_rejected(&self) -> usize {
        self.guard_rejected
    }

    /// Uploads norm-clipped by the update guard.
    pub fn guard_clipped(&self) -> usize {
        self.guard_clipped
    }

    /// Completed aggregations so far.
    pub fn completed_rounds(&self) -> usize {
        self.round - 1
    }

    /// Uploads refused (stale round or malformed).
    pub fn rejected(&self) -> usize {
        self.rejected
    }

    /// The served algorithm (for final-model extraction).
    pub fn into_server(self) -> Box<dyn ServerAlgorithm> {
        self.server
    }

    /// Write-ahead commit of one accepted upload. Returns `false` when the
    /// store already holds this `(round, client)` key — the caller must
    /// refuse the upload as a duplicate resubmission.
    fn commit_upload(&mut self, upload: &ClientUpload) -> Result<bool, Error> {
        let Some(d) = self.durable.as_mut() else {
            return Ok(true);
        };
        let needs_start = d
            .state()
            .round_in_progress
            .as_ref()
            .is_none_or(|p| p.round != self.round);
        if needs_start {
            let active: Vec<usize> = (0..self.num_clients).collect();
            d.round_started(self.round, &self.server.global_model(), &active)?;
        }
        let fresh = d.update_received(self.round, upload)?;
        if !fresh {
            self.telemetry.mark(
                "duplicate_upload",
                Some(self.round as u64),
                Some(upload.client_id as u64),
                None,
            );
        }
        Ok(fresh)
    }

    /// Closes the round if a quorum of uploads is pending: aggregates,
    /// commits the durable aggregate/publish events, and advances the
    /// round. Returns `false` when the server refused the batch (the
    /// pending uploads are consumed and counted rejected, as before).
    fn try_close_round(&mut self) -> Result<bool, Error> {
        if self.finished() || self.pending.len() < self.quorum {
            return Ok(true);
        }
        let mut uploads = std::mem::take(&mut self.pending);
        // Fold in client-id order so a resumed round's persisted/live
        // split — or plain arrival-order jitter — cannot change the
        // floating-point sum.
        uploads.sort_by_key(|u| u.client_id);
        let before = self.server.global_model();
        let t0 = Instant::now();
        if self.server.update(&uploads).is_err() {
            self.rejected += uploads.len();
            return Ok(false);
        }
        let r = self.round as u64;
        let aggregate_secs = t0.elapsed().as_secs_f64();
        self.telemetry
            .span_secs("aggregate", Phase::Aggregate, aggregate_secs, Some(r), None);
        let diag = RoundDiagnostics::collect(self.server.as_ref(), &before, &uploads);
        diag.emit(&self.telemetry, r);
        // Structural round span: the round ran from the previous
        // aggregation (or service start) to this one.
        let wall_secs = self.round_started.elapsed().as_secs_f64();
        self.telemetry.round_span_secs(r, wall_secs);
        if let Some(d) = self.durable.as_mut() {
            d.round_aggregated(self.round, &self.server.global_model())?;
            let record = RoundRecord {
                round: self.round,
                train_loss: uploads.iter().map(|u| u.local_loss).sum::<f32>()
                    / uploads.len().max(1) as f32,
                upload_bytes: uploads.iter().map(ClientUpload::payload_bytes).sum(),
                ..RoundRecord::default()
            };
            let participants: Vec<usize> = uploads.iter().map(|u| u.client_id).collect();
            d.round_published(self.round, &record, &[], &participants)?;
        }
        if let Some(c) = self.controller.as_mut() {
            c.finish_round();
            self.telemetry
                .gauge("adaptive_deadline", c.deadline_secs(), Some(r), None);
        }
        if let Some(obs) = self.observer.as_mut() {
            let snap = RoundSnapshot {
                round: r,
                wall_secs,
                aggregate_secs,
                accepted: uploads.len() as u64,
                rejected: (self.rejected - self.rejected_at_close) as u64,
                compression_ratio: self
                    .telemetry
                    .registry()
                    .map(|reg| reg.gauge("compression_ratio").last())
                    .unwrap_or(0.0),
                primal_residual: diag.admm.map(|d| d.primal_residual).unwrap_or(0.0),
                dual_residual: diag.admm.map(|d| d.dual_residual).unwrap_or(0.0),
                update_norm: diag.update_norm,
                train_loss: uploads.iter().map(|u| f64::from(u.local_loss)).sum::<f64>()
                    / uploads.len().max(1) as f64,
                ..RoundSnapshot::default()
            };
            let recoveries = self
                .telemetry
                .registry()
                .map(|reg| reg.counter("coordinator_recoveries").get())
                .unwrap_or(0);
            obs.observe_round(snap, recoveries, &self.telemetry);
        }
        self.rejected_at_close = self.rejected;
        self.round_started = Instant::now();
        self.round += 1;
        if self.round > self.rounds {
            if let Some(d) = self.durable.as_mut() {
                d.run_completed()?;
            }
        }
        Ok(true)
    }
}

impl FlService for SyncRoundService {
    fn get_weight(&mut self, _request: &WeightRequest) -> GlobalWeights {
        GlobalWeights {
            round: self.round as u32,
            finished: self.finished(),
            tensors: vec![TensorMsg::flat("global", self.server.global_model())],
        }
    }

    fn send_results(&mut self, results: LearningResults) -> bool {
        if self.finished() || results.round as usize != self.round {
            self.rejected += 1;
            return false;
        }
        let Some(primal) = results.primal.into_iter().next() else {
            self.rejected += 1;
            return false;
        };
        let client_id = results.client_id as usize;
        if client_id >= self.num_clients {
            self.rejected += 1;
            return false;
        }
        // With a durable coordinator the store is the dedup authority
        // (its `(round, client)` key also covers uploads persisted by a
        // previous incarnation); without one the pending buffer is.
        if self.durable.is_none() && self.pending.iter().any(|u| u.client_id == client_id) {
            self.rejected += 1;
            return false;
        }
        let mut upload = ClientUpload {
            client_id,
            primal: primal.data,
            dual: results.dual.into_iter().next().map(|t| t.data),
            num_samples: self.sample_counts[client_id],
            local_loss: results.penalty as f32,
        };
        if let Some(guard) = self.guard.as_mut() {
            let round = Some(self.round as u64);
            let peer = Some(client_id as u64);
            let verdict = guard.screen(&mut upload);
            self.telemetry
                .gauge("client_health", guard.health_score(client_id), round, peer);
            match verdict {
                GuardVerdict::Rejected(reason) => {
                    self.telemetry
                        .mark("update_rejected", round, peer, Some(reason.as_str()));
                    self.rejected += 1;
                    self.guard_rejected += 1;
                    return false;
                }
                GuardVerdict::Clipped { norm, .. } => {
                    self.telemetry
                        .gauge("update_norm", f64::from(norm), round, peer);
                    self.telemetry.mark("update_clipped", round, peer, None);
                    self.guard_clipped += 1;
                }
                GuardVerdict::Accepted { norm } => {
                    self.telemetry
                        .gauge("update_norm", f64::from(norm), round, peer);
                }
            }
        }
        match self.commit_upload(&upload) {
            Ok(true) => {}
            Ok(false) => {
                // Persisted duplicate (a resubmission across the crash):
                // refused exactly like a same-session duplicate.
                self.rejected += 1;
                return false;
            }
            Err(e) => {
                self.durable_error = Some(e);
                self.rejected += 1;
                return false;
            }
        }
        if let Some(c) = self.controller.as_mut() {
            c.observe_latency(self.round_started.elapsed().as_secs_f64());
        }
        self.pending.push(upload);
        match self.try_close_round() {
            Ok(ok) => ok,
            Err(e) => {
                self.durable_error = Some(e);
                false
            }
        }
    }

    fn done(&mut self, _done: &JobDone) -> bool {
        true
    }

    fn finished(&self) -> bool {
        self.round > self.rounds || self.durable_error.is_some()
    }
}

/// Drives one client against the service until it reports `finished`,
/// recording each local update as a telemetry span tagged with the round
/// and the client id. Returns the number of rounds this client
/// contributed to.
pub fn run_rpc_client<C: Communicator>(
    mut client: Box<dyn ClientAlgorithm>,
    comm: &C,
    telemetry: &Telemetry,
) -> Result<usize, Error> {
    let id = client.id() as u32;
    let mut contributed = 0usize;
    let mut last_round_seen = 0u32;
    loop {
        let weights = match call(
            comm,
            &Request::GetWeight(WeightRequest {
                client_id: id,
                round: last_round_seen,
            }),
        )? {
            Response::Weights(w) => w,
            other => {
                return Err(Error::Comm(CommError::Frame(format!(
                    "unexpected response {other:?}"
                ))))
            }
        };
        if weights.finished {
            break;
        }
        if weights.round == last_round_seen {
            // Round not advanced yet (peers still training): poll again.
            // In-process channels make this cheap; a real deployment would
            // back off here.
            std::thread::yield_now();
            continue;
        }
        last_round_seen = weights.round;
        let w = &weights.tensors[0].data;
        let t0 = Instant::now();
        let upload = client.update(w)?;
        let secs = t0.elapsed().as_secs_f64();
        telemetry.span_secs(
            "local_update",
            Phase::LocalUpdate,
            secs,
            Some(u64::from(weights.round)),
            Some(u64::from(id)),
        );
        telemetry.client_span_secs(u64::from(weights.round), u64::from(id), secs);
        let results = LearningResults {
            client_id: id,
            round: weights.round,
            penalty: f64::from(upload.local_loss),
            primal: vec![TensorMsg::flat("primal", upload.primal)],
            dual: upload
                .dual
                .map(|d| vec![TensorMsg::flat("dual", d)])
                .unwrap_or_default(),
        };
        call(comm, &Request::SendResults(Box::new(results)))?;
        contributed += 1;
    }
    call(comm, &Request::Done(JobDone { client_id: id }))?;
    Ok(contributed)
}

/// Fault-tolerant variant of [`run_rpc_client`]: every call goes through
/// the observed retry path with a per-attempt `timeout`, so transport
/// retries and timeouts surface as telemetry marks. A client that cannot
/// reach the server after exhausting its retries — or whose local update
/// fails — *leaves the federation* instead of erroring the whole run; the
/// quorum service aggregates without it. Returns the rounds contributed.
pub fn run_rpc_client_ft<C: Communicator>(
    mut client: Box<dyn ClientAlgorithm>,
    comm: &C,
    policy: &RetryPolicy,
    timeout: Duration,
    retries: Option<&AtomicUsize>,
    telemetry: &Telemetry,
) -> Result<usize, Error> {
    let id = client.id() as u32;
    let mut contributed = 0usize;
    let mut last_round_seen = 0u32;
    loop {
        let weights = match call_with_retry_observed(
            comm,
            &Request::GetWeight(WeightRequest {
                client_id: id,
                round: last_round_seen,
            }),
            policy,
            timeout,
            retries,
            telemetry,
        ) {
            Ok(Response::Weights(w)) => w,
            Ok(other) => {
                return Err(Error::Comm(CommError::Frame(format!(
                    "unexpected response {other:?}"
                ))))
            }
            Err(_) => break, // server unreachable: give up, don't wedge
        };
        if weights.finished {
            break;
        }
        if weights.round == last_round_seen {
            std::thread::yield_now();
            continue;
        }
        last_round_seen = weights.round;
        let w = &weights.tensors[0].data;
        let span = telemetry
            .span("local_update", Phase::LocalUpdate)
            .round(u64::from(weights.round))
            .peer(u64::from(id));
        let t0 = Instant::now();
        let upload = match client.update(w) {
            Ok(u) => u,
            Err(_) => {
                // The failed attempt still consumed wall time; record it
                // so the phase totals don't silently shrink.
                span.fail();
                break; // local failure: leave the federation
            }
        };
        span.finish();
        telemetry.client_span_secs(
            u64::from(weights.round),
            u64::from(id),
            t0.elapsed().as_secs_f64(),
        );
        let results = LearningResults {
            client_id: id,
            round: weights.round,
            penalty: f64::from(upload.local_loss),
            primal: vec![TensorMsg::flat("primal", upload.primal)],
            dual: upload
                .dual
                .map(|d| vec![TensorMsg::flat("dual", d)])
                .unwrap_or_default(),
        };
        if call_with_retry_observed(
            comm,
            &Request::SendResults(Box::new(results)),
            policy,
            timeout,
            retries,
            telemetry,
        )
        .is_err()
        {
            break;
        }
        contributed += 1;
    }
    // Best-effort goodbye; the server's idle cap covers us if it is lost.
    let _ = call_with_retry_observed(
        comm,
        &Request::Done(JobDone { client_id: id }),
        policy,
        timeout,
        retries,
        telemetry,
    );
    Ok(contributed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::build_federation;
    use crate::config::{AlgorithmConfig, FedConfig};
    use crate::federation::{Federation, Participants, Resilience, Topology};
    use appfl_comm::transport::InProcNetwork;
    use appfl_data::federated::{build_benchmark, Benchmark};
    use appfl_nn::models::{mlp_classifier, InputSpec};
    use appfl_privacy::PrivacyConfig;
    use appfl_telemetry::MemorySink;
    use std::sync::Arc;

    fn federation(algo: AlgorithmConfig, rounds: usize) -> crate::algorithms::FederationSetup {
        let data = build_benchmark(Benchmark::Mnist, 3, 90, 30, 44).unwrap();
        let spec = InputSpec {
            channels: 1,
            height: 28,
            width: 28,
            classes: 10,
        };
        let config = FedConfig {
            algorithm: algo,
            rounds,
            local_steps: 1,
            batch_size: 16,
            privacy: PrivacyConfig::none(),
            seed: 44,
        };
        build_federation(config, &data, move |rng| {
            Box::new(mlp_classifier(spec, 8, rng))
        })
    }

    fn run_pull(
        fed: crate::algorithms::FederationSetup,
        rounds: usize,
    ) -> crate::runner::federation::FederationOutcome {
        Federation::builder()
            .topology(Topology::Rpc)
            .transport(InProcNetwork::new(4))
            .population(Participants::new(fed.server, fed.clients).rounds(rounds))
            .build()
            .unwrap()
            .run()
            .unwrap()
    }

    #[test]
    fn pull_based_federation_completes_all_rounds() {
        let fed = federation(
            AlgorithmConfig::FedAvg {
                lr: 0.05,
                momentum: 0.9,
            },
            3,
        );
        let outcome = run_pull(fed, 3);
        assert_eq!(outcome.completed_rounds, 3);
        assert!(outcome.model.iter().all(|x| x.is_finite()));
        assert!(outcome.history.is_none(), "pull mode has no history");
    }

    #[test]
    fn pull_based_iiadmm_matches_push_based_result() {
        let rounds = 2;
        let algo = AlgorithmConfig::IiAdmm {
            rho: 10.0,
            zeta: 10.0,
        };
        // Pull-based.
        let fed = federation(algo, rounds);
        let w_pull = run_pull(fed, rounds).model;
        // Push-based serial reference.
        let mut fed = federation(algo, rounds);
        for _ in 0..rounds {
            let w = fed.server.global_model();
            let uploads: Vec<_> = fed
                .clients
                .iter_mut()
                .map(|c| c.update(&w).unwrap())
                .collect();
            fed.server.update(&uploads).unwrap();
        }
        let w_push = fed.server.global_model();
        let max_diff = w_pull
            .iter()
            .zip(w_push.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_diff < 1e-6, "pull/push divergence {max_diff}");
    }

    #[test]
    fn pull_mode_emits_local_update_and_aggregate_spans() {
        use appfl_telemetry::{EventKind, Phase};
        let fed = federation(
            AlgorithmConfig::FedAvg {
                lr: 0.05,
                momentum: 0.9,
            },
            2,
        );
        let sink = Arc::new(MemorySink::new());
        let outcome = Federation::builder()
            .topology(Topology::Rpc)
            .transport(InProcNetwork::new(4))
            .population(Participants::new(fed.server, fed.clients).rounds(2))
            .observe(crate::federation::Observe::none().telemetry(sink.clone()))
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(outcome.completed_rounds, 2);
        let events = sink.events();
        let spans_of = |phase: Phase| {
            events
                .iter()
                .filter(|e| e.kind == EventKind::Span && e.phase == Some(phase))
                .count()
        };
        // 3 clients × 2 rounds of local updates; 2 aggregations.
        assert_eq!(spans_of(Phase::LocalUpdate), 6);
        assert_eq!(spans_of(Phase::Aggregate), 2);
        // Every RPC decode/encode pair lands in the serialize phase.
        assert!(spans_of(Phase::Serialize) > 0);
    }

    #[test]
    fn quorum_service_tolerates_stragglers() {
        use appfl_comm::rpc::{serve_with, ServeOptions};
        let fed = federation(
            AlgorithmConfig::FedAvg {
                lr: 0.05,
                momentum: 0.9,
            },
            3,
        );
        let counts: Vec<usize> = fed.clients.iter().map(|c| c.num_samples()).collect();
        let num_clients = fed.clients.len();
        let mut endpoints = appfl_comm::transport::InProcNetwork::new(num_clients + 1);
        let server_ep = endpoints.remove(0);
        // Aggregate on any 2 of 3 uploads.
        let mut service = SyncRoundService::new(fed.server, num_clients, 3, counts)
            .with_quorum(2)
            .unwrap();
        let completed = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (client, ep) in fed.clients.into_iter().zip(endpoints) {
                handles
                    .push(scope.spawn(move || run_rpc_client(client, &ep, &Telemetry::disabled())));
            }
            serve_with(
                &mut service,
                &server_ep,
                num_clients,
                &ServeOptions::default(),
            )
            .unwrap();
            for h in handles {
                h.join().unwrap().unwrap();
            }
            service.completed_rounds()
        });
        assert_eq!(completed, 3);
        // The third (straggling) upload of at least one round was rejected.
        // (Timing-dependent: with 1 CPU the quorum usually closes before the
        // last client reports; rejected may be 0 on a fast machine, so only
        // sanity-check the counter is consistent.)
        assert!(service.rejected() <= 3);
    }

    #[test]
    fn bad_quorum_is_an_error_not_a_panic() {
        let fed = federation(
            AlgorithmConfig::FedAvg {
                lr: 0.05,
                momentum: 0.9,
            },
            1,
        );
        let counts: Vec<usize> = fed.clients.iter().map(|c| c.num_samples()).collect();
        let service = SyncRoundService::new(fed.server, 3, 1, counts);
        let err = match service.with_quorum(0) {
            Err(e) => e,
            Ok(_) => panic!("quorum of zero was accepted"),
        };
        assert!(matches!(err, Error::Config(_)), "{err}");
        let fed = federation(
            AlgorithmConfig::FedAvg {
                lr: 0.05,
                momentum: 0.9,
            },
            1,
        );
        let counts: Vec<usize> = fed.clients.iter().map(|c| c.num_samples()).collect();
        let service = SyncRoundService::new(fed.server, 3, 1, counts);
        assert!(service.with_quorum(4).is_err());
    }

    #[test]
    fn ft_federation_completes_without_faults() {
        let fed = federation(
            AlgorithmConfig::FedAvg {
                lr: 0.05,
                momentum: 0.9,
            },
            2,
        );
        let ft = crate::config::FaultToleranceConfig {
            min_quorum: 3,
            ..Default::default()
        };
        let outcome = Federation::builder()
            .topology(Topology::Rpc)
            .transport(InProcNetwork::new(4))
            .population(Participants::new(fed.server, fed.clients).rounds(2))
            .resilience(Resilience::none().fault_tolerance_config(ft))
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(outcome.completed_rounds, 2);
        assert!(outcome.model.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn durable_pull_service_persists_and_resumes() {
        use crate::store::{CoordinatorStore, DurableCoordinator, MemoryStore, StoreEvent};
        let make_fed = || {
            federation(
                AlgorithmConfig::FedAvg {
                    lr: 0.05,
                    momentum: 0.9,
                },
                1,
            )
        };
        let fed = make_fed();
        let dim = fed.server.dim();
        let counts: Vec<usize> = fed.clients.iter().map(|c| c.num_samples()).collect();
        let make = |id: u32| LearningResults {
            client_id: id,
            round: 1,
            penalty: 0.0,
            primal: vec![TensorMsg::flat("z", vec![id as f32; dim])],
            dual: vec![],
        };
        // First life: two of three uploads arrive, then the coordinator
        // "dies" mid-round.
        let mut durable = DurableCoordinator::new(Box::new(MemoryStore::new()));
        durable.recover(&Telemetry::disabled()).unwrap();
        let mut service = SyncRoundService::new(fed.server, 3, 1, counts.clone())
            .with_durable(durable)
            .unwrap();
        assert!(service.send_results(make(0)));
        assert!(service.send_results(make(1)));
        let state = service.take_durable().unwrap().state().clone();
        let p = state.round_in_progress.as_ref().unwrap();
        assert_eq!(p.round, 1);
        assert!(p.has_upload(0) && p.has_upload(1) && !p.has_upload(2));
        // Second life: a store holding the first life's surviving events.
        let mut replayed = MemoryStore::new();
        replayed
            .append(&StoreEvent::RoundStarted {
                round: 1,
                broadcast: p.broadcast.clone(),
                active: vec![0, 1, 2],
            })
            .unwrap();
        for u in &p.uploads {
            replayed
                .append(&StoreEvent::UpdateReceived {
                    round: 1,
                    upload: u.clone(),
                })
                .unwrap();
        }
        let mut durable = DurableCoordinator::new(Box::new(replayed));
        durable.recover(&Telemetry::disabled()).unwrap();
        assert!(durable.was_recovered());
        let fed = make_fed();
        let mut service = SyncRoundService::new(fed.server, 3, 1, counts)
            .with_durable(durable)
            .unwrap();
        assert!(!service.send_results(make(0)), "resubmission refused");
        assert!(service.send_results(make(2)), "missing client accepted");
        assert!(service.finished(), "round closed on the last upload");
        assert!(service.durable_error().is_none());
        let d = service.take_durable().unwrap();
        assert_eq!(d.duplicates(), 1, "deduplicated exactly once");
        assert!(d.state().completed);
    }

    #[test]
    fn stale_round_uploads_are_rejected() {
        let fed = federation(
            AlgorithmConfig::FedAvg {
                lr: 0.05,
                momentum: 0.9,
            },
            1,
        );
        let counts: Vec<usize> = fed.clients.iter().map(|c| c.num_samples()).collect();
        let mut service = SyncRoundService::new(fed.server, 3, 1, counts);
        let bad = LearningResults {
            client_id: 0,
            round: 99, // wrong round
            penalty: 0.0,
            primal: vec![TensorMsg::flat("z", vec![0.0; 4])],
            dual: vec![],
        };
        assert!(!service.send_results(bad));
        assert_eq!(service.rejected(), 1);
    }

    #[test]
    fn duplicate_uploads_are_rejected() {
        let fed = federation(
            AlgorithmConfig::FedAvg {
                lr: 0.05,
                momentum: 0.9,
            },
            1,
        );
        let dim = fed.server.dim();
        let counts: Vec<usize> = fed.clients.iter().map(|c| c.num_samples()).collect();
        let mut service = SyncRoundService::new(fed.server, 3, 1, counts);
        let make = |id: u32| LearningResults {
            client_id: id,
            round: 1,
            penalty: 0.0,
            primal: vec![TensorMsg::flat("z", vec![0.0; dim])],
            dual: vec![],
        };
        assert!(service.send_results(make(0)));
        assert!(!service.send_results(make(0))); // duplicate
        assert!(!service.send_results(make(9))); // unknown client
        assert_eq!(service.rejected(), 2);
    }
}
