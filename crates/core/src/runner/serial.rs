//! The single-process simulation runner.
//!
//! Runs the synchronous federated loop of Algorithm 1 with all clients in
//! one process, parallelised over a rayon thread pool — the Rust analogue
//! of APPFL's MPI-based "serial simulation on HPC" mode (§II). Per-round
//! wall times for client compute are measured for real; communication is
//! zero (clients live in-process), so `comm_secs` stays 0 here and the
//! transport-backed [`crate::federation::Federation`] API measures real messaging.

use crate::algorithms::FederationSetup;
use crate::api::ClientUpload;
use crate::defense::{screen_and_report, RobustAggregator, RobustServer, UpdateGuard};
use crate::diagnostics::RoundDiagnostics;
use crate::metrics::{History, RoundRecord};
use crate::validation::evaluate;
use appfl_data::InMemoryDataset;
use appfl_telemetry::{Phase, Telemetry};
use appfl_tensor::Result;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;
use std::time::Instant;

/// Runs a [`FederationSetup`] against a server-side test set.
pub struct SerialRunner {
    federation: FederationSetup,
    test: InMemoryDataset,
    dataset_name: String,
    /// Batch size for server-side validation.
    pub eval_batch: usize,
    /// Evaluate every `eval_every` rounds (1 = every round, Fig. 2 style).
    pub eval_every: usize,
    /// Fraction of clients sampled per round (FedAvg's client sampling; 1.0
    /// = full participation, which the ADMM servers require).
    pub participation: f32,
    sampling_rng: StdRng,
    telemetry: Telemetry,
    guard: Option<UpdateGuard>,
}

impl SerialRunner {
    /// Creates a runner.
    pub fn new(
        federation: FederationSetup,
        test: InMemoryDataset,
        dataset_name: impl Into<String>,
    ) -> Self {
        let seed = federation.config.seed;
        SerialRunner {
            federation,
            test,
            dataset_name: dataset_name.into(),
            eval_batch: 64,
            eval_every: 1,
            participation: 1.0,
            sampling_rng: StdRng::seed_from_u64(seed ^ 0xC11E57),
            telemetry: Telemetry::disabled(),
            guard: None,
        }
    }

    /// Emits per-round `local_update`/`aggregate` spans to `sink`-backed
    /// telemetry (the serial runner has no serialize/comm phases).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Replaces the federation's server with a [`RobustServer`] running
    /// `aggregator` (inheriting the current global model) — the serial
    /// analogue of [`crate::federation::Resilience::robust`].
    pub fn with_robust(mut self, aggregator: RobustAggregator) -> Self {
        let inner = std::mem::replace(
            &mut self.federation.server,
            Box::new(RobustServer::new(Vec::new(), aggregator)),
        );
        self.federation.server = Box::new(RobustServer::wrap(inner, aggregator));
        self
    }

    /// Screens every upload with an [`UpdateGuard`] before aggregation —
    /// the serial analogue of [`crate::federation::Resilience::update_guard`].
    /// Rejected uploads are dropped from the round (recorded in the
    /// [`RoundRecord`]); a fully rejected round carries the model over.
    pub fn with_guard(mut self, config: crate::defense::UpdateGuardConfig) -> Self {
        self.guard = Some(UpdateGuard::new(self.federation.server.dim(), config));
        self
    }

    /// Runs `config.rounds` communication rounds and returns the history.
    pub fn run(&mut self) -> Result<History> {
        let rounds = self.federation.config.rounds;
        let mut history = History::new(
            self.federation.server.name(),
            self.dataset_name.clone(),
            self.federation.config.privacy.epsilon,
        );
        for t in 1..=rounds {
            history.rounds.push(self.run_round(t)?);
        }
        Ok(history)
    }

    /// Runs a single round (exposed for incremental drivers/benches).
    pub fn run_round(&mut self, t: usize) -> Result<RoundRecord> {
        let round_start = Instant::now();
        let w = self.federation.server.global_model();
        // Client sampling (McMahan et al.'s C-fraction participation): pick
        // a random subset of clients each round. Full participation when
        // participation >= 1.
        let total = self.federation.clients.len();
        let take = if self.participation >= 1.0 {
            total
        } else {
            ((total as f32 * self.participation).round() as usize).clamp(1, total)
        };
        let mut order: Vec<usize> = (0..total).collect();
        if take < total {
            order.shuffle(&mut self.sampling_rng);
            order.truncate(take);
            order.sort_unstable();
        }
        let clients = &mut self.federation.clients;
        let t0 = Instant::now();
        let uploads: Result<Vec<ClientUpload>> = if take == total {
            clients.par_iter_mut().map(|c| c.update(&w)).collect()
        } else {
            // Index-based split keeps rayon happy with disjoint borrows.
            let mut selected: Vec<&mut Box<dyn crate::api::ClientAlgorithm>> = Vec::new();
            let mut rest: &mut [Box<dyn crate::api::ClientAlgorithm>] = clients.as_mut_slice();
            let mut offset = 0usize;
            for &idx in &order {
                let (_, tail) = rest.split_at_mut(idx - offset);
                let (head, tail) = tail.split_at_mut(1);
                selected.push(&mut head[0]);
                rest = tail;
                offset = idx + 1;
            }
            selected.into_par_iter().map(|c| c.update(&w)).collect()
        };
        let uploads = uploads?;
        let local_update_secs = t0.elapsed().as_secs_f64();
        self.telemetry.span_secs(
            "local_update",
            Phase::LocalUpdate,
            local_update_secs,
            Some(t as u64),
            None,
        );

        let (uploads, rejected_clients, clipped_clients) = match self.guard.as_mut() {
            Some(g) => {
                let s = screen_and_report(g, uploads, Some(t as u64), &self.telemetry);
                (s.accepted, s.rejected.len(), s.clipped.len())
            }
            None => (uploads, 0, 0),
        };
        let upload_bytes: usize = uploads.iter().map(ClientUpload::payload_bytes).sum();
        let train_loss =
            uploads.iter().map(|u| u.local_loss).sum::<f32>() / uploads.len().max(1) as f32;
        let t1 = Instant::now();
        if rejected_clients == 0 {
            self.federation.server.update(&uploads)?;
        } else if !uploads.is_empty() {
            self.federation.server.update_degraded(&uploads)?;
        }
        // Every upload rejected: the model carries over, a skipped round.
        let diagnostics = RoundDiagnostics::collect(self.federation.server.as_ref(), &w, &uploads);
        diagnostics.emit(&self.telemetry, t as u64);

        let (accuracy, test_loss) =
            if t.is_multiple_of(self.eval_every) || t == self.federation.config.rounds {
                let w_next = self.federation.server.global_model();
                let e = evaluate(
                    self.federation.template.as_mut(),
                    &w_next,
                    &self.test,
                    self.eval_batch,
                )?;
                (e.accuracy, e.loss)
            } else {
                (f32::NAN, f32::NAN)
            };
        let aggregate_secs = t1.elapsed().as_secs_f64();
        self.telemetry.span_secs(
            "aggregate",
            Phase::Aggregate,
            aggregate_secs,
            Some(t as u64),
            None,
        );
        // With kernel timers compiled in, attribute this round's hot-kernel
        // totals (matmul/conv calls and micros) to the round so reports can
        // show per-round kernel time share.
        #[cfg(feature = "kernel-timers")]
        appfl_tensor::timers::drain_kernel_stats_round(&self.telemetry, Some(t as u64));
        // Structural trace span: the round's root in the causal span tree
        // (excluded from phase totals — the phase spans above carry the
        // accounted time).
        self.telemetry
            .round_span_secs(t as u64, round_start.elapsed().as_secs_f64());

        let mut record = RoundRecord {
            round: t,
            accuracy,
            test_loss,
            train_loss,
            upload_bytes,
            compute_secs: local_update_secs + aggregate_secs,
            local_update_secs,
            aggregate_secs,
            rejected_clients,
            clipped_clients,
            ..RoundRecord::default()
        };
        diagnostics.stamp(&mut record);
        Ok(record)
    }

    /// The final global model.
    pub fn global_model(&self) -> Vec<f32> {
        self.federation.server.global_model()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::build_federation;
    use crate::config::{AlgorithmConfig, FedConfig};
    use appfl_data::federated::{build_benchmark, Benchmark};
    use appfl_nn::models::{mlp_classifier, InputSpec};
    use appfl_privacy::PrivacyConfig;

    fn runner(algo: AlgorithmConfig, epsilon: f64, rounds: usize) -> SerialRunner {
        let data = build_benchmark(Benchmark::Mnist, 4, 160, 60, 11).unwrap();
        let spec = InputSpec {
            channels: 1,
            height: 28,
            width: 28,
            classes: 10,
        };
        let privacy = if epsilon.is_finite() {
            PrivacyConfig::laplace(epsilon, 1.0)
        } else {
            PrivacyConfig::none()
        };
        let config = FedConfig {
            algorithm: algo,
            rounds,
            local_steps: 2,
            batch_size: 20,
            privacy,
            seed: 9,
        };
        let test = data.test.clone();
        let fed = build_federation(config, &data, move |rng| {
            Box::new(mlp_classifier(spec, 16, rng))
        });
        SerialRunner::new(fed, test, "MNIST")
    }

    #[test]
    fn fedavg_learns_above_chance() {
        let mut r = runner(
            AlgorithmConfig::FedAvg {
                lr: 0.05,
                momentum: 0.9,
            },
            f64::INFINITY,
            8,
        );
        let h = r.run().unwrap();
        assert_eq!(h.rounds.len(), 8);
        assert!(
            h.final_accuracy() > 0.25,
            "accuracy {} not above 10-class chance",
            h.final_accuracy()
        );
    }

    #[test]
    fn iiadmm_learns_above_chance() {
        let mut r = runner(
            AlgorithmConfig::IiAdmm {
                rho: 10.0,
                zeta: 10.0,
            },
            f64::INFINITY,
            8,
        );
        let h = r.run().unwrap();
        assert!(h.final_accuracy() > 0.25, "accuracy {}", h.final_accuracy());
        assert_eq!(h.algorithm, "IIADMM");
    }

    #[test]
    fn iceadmm_learns_above_chance() {
        let mut r = runner(
            AlgorithmConfig::IceAdmm {
                rho: 10.0,
                zeta: 10.0,
            },
            f64::INFINITY,
            8,
        );
        let h = r.run().unwrap();
        assert!(h.final_accuracy() > 0.2, "accuracy {}", h.final_accuracy());
    }

    #[test]
    fn iiadmm_uploads_half_of_iceadmm() {
        let mut ii = runner(
            AlgorithmConfig::IiAdmm {
                rho: 5.0,
                zeta: 5.0,
            },
            f64::INFINITY,
            1,
        );
        let mut ice = runner(
            AlgorithmConfig::IceAdmm {
                rho: 5.0,
                zeta: 5.0,
            },
            f64::INFINITY,
            1,
        );
        let hii = ii.run().unwrap();
        let hice = ice.run().unwrap();
        assert_eq!(hice.total_upload_bytes(), 2 * hii.total_upload_bytes());
    }

    #[test]
    fn privacy_noise_degrades_accuracy() {
        // Fig. 2's qualitative claim: ε̄=3 (strong privacy) trails ε̄=∞.
        let mut noisy = runner(
            AlgorithmConfig::IiAdmm {
                rho: 10.0,
                zeta: 10.0,
            },
            0.05, // extreme noise to make the tiny run's gap deterministic
            6,
        );
        let mut clean = runner(
            AlgorithmConfig::IiAdmm {
                rho: 10.0,
                zeta: 10.0,
            },
            f64::INFINITY,
            6,
        );
        let hn = noisy.run().unwrap();
        let hc = clean.run().unwrap();
        assert!(
            hc.best_accuracy() > hn.best_accuracy(),
            "clean {} vs noisy {}",
            hc.best_accuracy(),
            hn.best_accuracy()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            runner(
                AlgorithmConfig::FedAvg {
                    lr: 0.05,
                    momentum: 0.9,
                },
                f64::INFINITY,
                3,
            )
            .run()
            .unwrap()
            .final_accuracy()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn partial_participation_runs_fedavg() {
        let mut r = runner(
            AlgorithmConfig::FedAvg {
                lr: 0.05,
                momentum: 0.9,
            },
            f64::INFINITY,
            6,
        );
        r.participation = 0.5; // 2 of 4 clients per round
        let h = r.run().unwrap();
        assert_eq!(h.rounds.len(), 6);
        // Upload volume halves relative to full participation.
        let mut full = runner(
            AlgorithmConfig::FedAvg {
                lr: 0.05,
                momentum: 0.9,
            },
            f64::INFINITY,
            6,
        );
        let hf = full.run().unwrap();
        assert_eq!(hf.total_upload_bytes(), 2 * h.total_upload_bytes());
        // And it still learns.
        assert!(h.final_accuracy() > 0.2, "accuracy {}", h.final_accuracy());
    }

    #[test]
    fn participation_sampling_is_deterministic() {
        let run = |participation: f32| {
            let mut r = runner(
                AlgorithmConfig::FedAvg {
                    lr: 0.05,
                    momentum: 0.9,
                },
                f64::INFINITY,
                3,
            );
            r.participation = participation;
            r.run().unwrap().final_accuracy()
        };
        assert_eq!(run(0.5), run(0.5));
    }

    #[test]
    fn telemetry_spans_cover_every_round() {
        use appfl_telemetry::{MemorySink, RunSummary};
        use std::sync::Arc;
        let sink = Arc::new(MemorySink::default());
        let mut r = runner(
            AlgorithmConfig::FedAvg {
                lr: 0.05,
                momentum: 0.9,
            },
            f64::INFINITY,
            3,
        )
        .with_telemetry(Telemetry::new(sink.clone()));
        let h = r.run().unwrap();
        let summary = RunSummary::from_events(&sink.events());
        assert_eq!(summary.rounds.len(), 3);
        for (round, totals) in &summary.rounds {
            assert!(
                totals.local_update > 0.0,
                "round {round} has no local_update span"
            );
            assert!(
                totals.aggregate > 0.0,
                "round {round} has no aggregate span"
            );
        }
        // The history's new phase fields agree with the emitted spans.
        let recorded: f64 = h.rounds.iter().map(|r| r.local_update_secs).sum();
        assert!((recorded - summary.totals().local_update).abs() < 1e-6);
    }

    #[test]
    fn diagnostics_flow_into_records_and_gauges() {
        use appfl_telemetry::{MemorySink, RunSummary};
        use std::sync::Arc;
        let sink = Arc::new(MemorySink::default());
        let mut r = runner(
            AlgorithmConfig::IiAdmm {
                rho: 10.0,
                zeta: 10.0,
            },
            f64::INFINITY,
            2,
        )
        .with_telemetry(Telemetry::new(sink.clone()));
        let h = r.run().unwrap();
        for rec in &h.rounds {
            assert!(rec.primal_residual > 0.0, "round {} residual", rec.round);
            assert!(rec.dual_residual > 0.0, "round {} dual", rec.round);
            assert_eq!(rec.rho, 10.0);
            assert!(rec.update_norm > 0.0);
        }
        let summary = RunSummary::from_events(&sink.events());
        for t in 1..=2u64 {
            assert!(summary.round_gauge(t, "primal_residual").max > 0.0);
            assert!(summary.round_gauge(t, "dual_residual").max > 0.0);
            assert!(summary.round_gauge(t, "update_norm").max > 0.0);
            assert_eq!(summary.round_gauge(t, "rho").max, 10.0);
        }
        assert_eq!(summary.structural_spans, 2, "one round root span per round");
        // The record's residual matches the emitted gauge exactly.
        assert!(
            (h.rounds[0].primal_residual - summary.round_gauge(1, "primal_residual").max).abs()
                < 1e-12
        );
    }

    #[test]
    fn fedavg_is_special_case_of_iiadmm_for_one_round() {
        // §III-A: FedAvg = IIADMM with λ=0, ζ=0, ρ=1/η. With one local
        // step over the full batch and equal shards, round-1 uploads and the
        // aggregated w must coincide.
        let data = build_benchmark(Benchmark::Mnist, 2, 40, 10, 21).unwrap();
        let spec = InputSpec {
            channels: 1,
            height: 28,
            width: 28,
            classes: 10,
        };
        let eta = 0.1f32;
        let base = FedConfig {
            algorithm: AlgorithmConfig::FedAvg {
                lr: eta,
                momentum: 0.0,
            },
            rounds: 1,
            local_steps: 1,
            batch_size: 1000, // full batch
            privacy: PrivacyConfig::none(),
            seed: 77,
        };
        let mut cfg_ii = base;
        cfg_ii.algorithm = AlgorithmConfig::IiAdmm {
            rho: 1.0 / eta,
            zeta: 0.0,
        };
        let build = |cfg: FedConfig| {
            build_federation(cfg, &data, move |rng| {
                Box::new(mlp_classifier(spec, 8, rng))
            })
        };
        let mut fa = build(base);
        let mut ii = build(cfg_ii);
        // Run one round each (batch shuffling consumes identical RNG draws
        // because there is exactly one batch).
        let w0 = fa.server.global_model();
        assert_eq!(w0, ii.server.global_model());
        let ua: Vec<_> = fa
            .clients
            .iter_mut()
            .map(|c| c.update(&w0).unwrap())
            .collect();
        let ub: Vec<_> = ii
            .clients
            .iter_mut()
            .map(|c| c.update(&w0).unwrap())
            .collect();
        for (a, b) in ua.iter().zip(ub.iter()) {
            let max_diff = a
                .primal
                .iter()
                .zip(b.primal.iter())
                .map(|(x, y)| (x - y).abs())
                .fold(0.0f32, f32::max);
            assert!(max_diff < 1e-4, "client updates diverge by {max_diff}");
        }
        // (The full-trajectory equivalence additionally requires pinning
        // λ^t = 0 for every t, which the IIADMM dual update intentionally
        // does not do — so the assertion stops at the client step, which is
        // exactly the special case of §III-A.)
    }
}
