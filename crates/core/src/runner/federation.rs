//! The transport federation engine behind the typed run API.
//!
//! Historically every deployment shape had its own entry point — six
//! functions whose argument lists drifted apart — then one fluent
//! `FederationBuilder`, deprecated in 0.7.0 and removed in 0.8.0. What
//! remains here is the *engine*: [`TransportRun`] executes a validated
//! push (broadcast/gather) or pull (RPC polling) federation over any
//! [`Communicator`], spawning one thread per client and the server loop
//! on the calling thread. It is constructed exclusively by
//! [`ConfiguredFederation::run`](crate::federation::ConfiguredFederation)
//! — user code goes through
//! [`Federation::builder()`](crate::federation::Federation), which
//! validates the topology/population/resilience/observe combination up
//! front — plus [`FederationOutcome`], the public result type both
//! share.

use crate::api::{ClientAlgorithm, ServerAlgorithm};
use crate::config::FaultToleranceConfig;
use crate::defense::{RobustAggregator, RobustServer, UpdateGuard, UpdateGuardConfig};
use crate::error::Error;
use crate::metrics::History;
use crate::runner::comm::{run_client, run_client_ft, run_server, run_server_ft};
use crate::runner::control::{RoundControlConfig, RoundController};
use crate::runner::rpc::{run_rpc_client, run_rpc_client_ft, SyncRoundService};
use crate::store::DurableCoordinator;
use appfl_comm::rpc::{serve_with, ServeOptions};
use appfl_comm::transport::Communicator;
use appfl_comm::wire::WireConfig;
use appfl_data::InMemoryDataset;
use appfl_nn::module::Module;
use appfl_telemetry::{Gauge, RunObserver, Telemetry};
use std::sync::atomic::{AtomicUsize, Ordering};

/// What a completed federation run hands back.
#[derive(Debug)]
pub struct FederationOutcome {
    /// The final global model `w`.
    pub model: Vec<f32>,
    /// Aggregations completed (pull mode) or rounds driven (push mode —
    /// includes degraded and skipped rounds, which the history details).
    pub completed_rounds: usize,
    /// Total transport-level retries across all clients (0 without fault
    /// tolerance).
    pub retries: usize,
    /// Per-round metrics. Push mode always records one; pull mode has no
    /// server-side evaluation loop, so it is `None` there.
    pub history: Option<History>,
    /// Whether the run resumed from a recovered durable store.
    pub recovered: bool,
    /// Re-sent uploads the durable coordinator deduplicated (0 without
    /// a durable store).
    pub duplicates: usize,
}

/// Server-side evaluation setup: a template module matching the global
/// model's parameterisation plus the test set.
pub(crate) struct Eval<'a> {
    pub(crate) template: &'a mut dyn Module,
    pub(crate) test: &'a InMemoryDataset,
}

/// A fully assembled transport federation, ready to execute. All
/// combination validation already happened in
/// [`FederationConfig::build`](crate::federation::FederationConfig::build);
/// the checks left here are runtime ones (endpoint shape against the
/// actual client list, transport capabilities).
pub(crate) struct TransportRun<'a, C: Communicator + 'static> {
    pub(crate) server: Box<dyn ServerAlgorithm>,
    pub(crate) clients: Vec<Box<dyn ClientAlgorithm>>,
    pub(crate) endpoints: Vec<C>,
    pub(crate) rounds: usize,
    pub(crate) epsilon: f64,
    pub(crate) dataset: String,
    pub(crate) eval: Option<Eval<'a>>,
    pub(crate) ft: Option<FaultToleranceConfig>,
    pub(crate) telemetry: Telemetry,
    pub(crate) pull: bool,
    pub(crate) robust: Option<RobustAggregator>,
    pub(crate) guard: Option<UpdateGuardConfig>,
    pub(crate) durable: Option<DurableCoordinator>,
    pub(crate) round_control: Option<RoundControlConfig>,
    pub(crate) wire: Option<WireConfig>,
    pub(crate) observer: Option<RunObserver>,
}

impl<'a, C: Communicator + 'static> TransportRun<'a, C> {
    /// Executes the federation and returns the outcome.
    ///
    /// Errors: [`Error::Config`] for a mis-sized transport;
    /// [`Error::Unsupported`] when fault tolerance or pull mode is
    /// requested on a transport without `recv_any` multiplexing (see
    /// [`Communicator::supports_recv_any`]); [`Error::Tensor`] /
    /// [`Error::Comm`] for failures during the run itself. A typed
    /// failure triggers a flight-recorder dump (when one is attached)
    /// before the error propagates.
    pub(crate) fn run(self) -> Result<FederationOutcome, Error> {
        let telemetry = self.telemetry.clone();
        let result = self.run_inner();
        if let Err(e) = &result {
            telemetry.flight_dump("run_failure", &e.to_string());
            telemetry.flush();
        }
        result
    }

    fn run_inner(self) -> Result<FederationOutcome, Error> {
        let TransportRun {
            mut server,
            mut clients,
            mut endpoints,
            rounds,
            epsilon,
            dataset,
            eval,
            ft,
            telemetry,
            pull,
            robust,
            guard,
            mut durable,
            round_control,
            wire,
            observer,
        } = self;
        if let Some(aggregator) = robust {
            server = Box::new(RobustServer::wrap(server, aggregator));
        }
        let mut guard = guard.map(|cfg| UpdateGuard::new(server.dim(), cfg));
        if clients.is_empty() {
            return Err(Error::config("a federation needs at least one client"));
        }
        if endpoints.len() != clients.len() + 1 {
            return Err(Error::config(format!(
                "{} endpoints for {} clients + 1 server",
                endpoints.len(),
                clients.len()
            )));
        }
        let sample_counts: Vec<usize> = clients.iter().map(|c| c.num_samples()).collect();
        let server_ep = endpoints.remove(0);
        // Both the pull-mode serving loop and the fault-tolerant gather
        // multiplex with recv_any; fail fast if the transport cannot.
        if (pull || ft.is_some()) && !server_ep.supports_recv_any() {
            return Err(Error::Unsupported(
                "recv_any multiplexing (required by pull mode and fault-tolerant gathers)",
            ));
        }
        let recovered = if let Some(d) = durable.as_mut() {
            let state = d.recover(&telemetry)?;
            // Clients are rebuilt from scratch on restart, so each one
            // re-derives its RNG/momentum state by replaying its local
            // update over the exact broadcast sequence it trained on.
            // Their uploads are discarded: persisted (or re-gathered)
            // uploads are the aggregation inputs, not these replays.
            for client in clients.iter_mut() {
                for w in state.replay_models_for(client.id()) {
                    client.update(w)?;
                }
            }
            d.was_recovered()
        } else {
            false
        };

        let retries = AtomicUsize::new(0);
        let outcome = if pull {
            let num_clients = clients.len();
            let quorum = match &ft {
                Some(ft) => ft.min_quorum.clamp(1, num_clients),
                None => num_clients,
            };
            let mut service = SyncRoundService::new(server, num_clients, rounds, sample_counts)
                .with_quorum(quorum)?
                .with_telemetry(telemetry.clone());
            if let Some(rc) = round_control {
                service = service.with_round_control(rc);
            }
            if let Some(guard) = guard.take() {
                service = service.with_guard(guard);
            }
            if let Some(d) = durable.take() {
                service = service.with_durable(d)?;
            }
            if let Some(obs) = observer {
                service = service.with_observer(obs);
            }
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                let options = match &ft {
                    None => {
                        for (client, ep) in clients.into_iter().zip(endpoints) {
                            let tl = telemetry.clone();
                            handles.push(
                                scope.spawn(move || run_rpc_client(client, &ep, &tl).map(drop)),
                            );
                        }
                        ServeOptions {
                            telemetry: telemetry.clone(),
                            ..ServeOptions::default()
                        }
                    }
                    Some(ft) => {
                        for (i, (client, ep)) in clients.into_iter().zip(endpoints).enumerate() {
                            let policy = ft.retry_policy(i as u64 + 1);
                            let timeout = ft.round_timeout();
                            let retries = &retries;
                            let tl = telemetry.clone();
                            handles.push(scope.spawn(move || {
                                run_rpc_client_ft(client, &ep, &policy, timeout, Some(retries), &tl)
                                    .map(drop)
                            }));
                        }
                        ServeOptions {
                            idle_timeout: Some(ft.round_timeout()),
                            max_idle: ft.suspect_after.max(1),
                            telemetry: telemetry.clone(),
                        }
                    }
                };
                serve_with(&mut service, &server_ep, num_clients, &options)?;
                for h in handles {
                    h.join().expect("client thread panicked")?;
                }
                Ok::<(), Error>(())
            })?;
            if let Some(e) = service.take_durable_error() {
                return Err(e);
            }
            let completed_rounds = service.completed_rounds();
            let duplicates = service.take_durable().map(|d| d.duplicates()).unwrap_or(0);
            FederationOutcome {
                model: service.into_server().global_model(),
                completed_rounds,
                retries: retries.load(Ordering::Relaxed),
                history: None,
                recovered,
                duplicates,
            }
        } else {
            let eval = eval.ok_or_else(|| {
                Error::config("push mode evaluates every round: call .evaluation(template, test)")
            })?;
            let gauge = Gauge::new();
            let mut controller = round_control.map(RoundController::new);
            let mut observer = observer;
            let history = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                let h = match &ft {
                    None => {
                        for (client, ep) in clients.into_iter().zip(endpoints) {
                            let gauge = &gauge;
                            let tl = telemetry.clone();
                            let cw = wire.clone();
                            handles.push(scope.spawn(move || {
                                run_client(client, &ep, rounds, gauge, &tl, cw)
                            }));
                        }
                        run_server(
                            &mut *server,
                            eval.template,
                            eval.test,
                            &server_ep,
                            rounds,
                            &sample_counts,
                            epsilon,
                            &dataset,
                            &telemetry,
                            &gauge,
                            guard.as_mut(),
                            durable.as_mut(),
                            wire.clone(),
                            observer.take(),
                        )
                    }
                    Some(ft) => {
                        for (i, (client, ep)) in clients.into_iter().zip(endpoints).enumerate() {
                            let policy = ft.retry_policy(i as u64 + 1);
                            let recv_timeout = ft.round_timeout();
                            let retries = &retries;
                            let gauge = &gauge;
                            let tl = telemetry.clone();
                            let cw = wire.clone();
                            handles.push(scope.spawn(move || {
                                run_client_ft(
                                    client,
                                    &ep,
                                    &policy,
                                    recv_timeout,
                                    retries,
                                    &tl,
                                    gauge,
                                    cw,
                                )
                            }));
                        }
                        run_server_ft(
                            &mut *server,
                            eval.template,
                            eval.test,
                            &server_ep,
                            rounds,
                            &sample_counts,
                            epsilon,
                            &dataset,
                            ft,
                            &retries,
                            &telemetry,
                            &gauge,
                            guard.as_mut(),
                            durable.as_mut(),
                            controller.as_mut(),
                            wire.clone(),
                            observer.take(),
                        )
                    }
                };
                for handle in handles {
                    handle.join().expect("client thread panicked")?;
                }
                h
            })?;
            FederationOutcome {
                model: server.global_model(),
                completed_rounds: history.rounds.len(),
                retries: retries.load(Ordering::Relaxed),
                history: Some(history),
                recovered,
                duplicates: durable.as_ref().map(|d| d.duplicates()).unwrap_or(0),
            }
        };
        telemetry.flush();
        Ok(outcome)
    }
}
