//! The legacy unified federation-run API (deprecated shim).
//!
//! Historically every deployment shape had its own entry point —
//! `CommRunner::run` / `run_ft` for push mode, `run_rpc_federation` /
//! `run_rpc_federation_ft` for pull mode, `serve` / `serve_ft` underneath —
//! six functions whose argument lists drifted apart as fault tolerance and
//! telemetry grew. [`FederationBuilder`] collapses them into one fluent
//! call chain:
//!
//! ```no_run
//! # use appfl_core::FederationBuilder;
//! # use appfl_comm::transport::InProcNetwork;
//! # use std::sync::Arc;
//! # fn demo(server: Box<dyn appfl_core::ServerAlgorithm>,
//! #         clients: Vec<Box<dyn appfl_core::ClientAlgorithm>>,
//! #         template: &mut dyn appfl_nn::module::Module,
//! #         test: &appfl_data::InMemoryDataset) {
//! let outcome = FederationBuilder::new(server, clients)
//!     .transport(InProcNetwork::new(4))
//!     .rounds(10)
//!     .dataset("MNIST")
//!     .evaluation(template, test)
//!     .fault_tolerance(2, std::time::Duration::from_secs(2))
//!     .telemetry(Arc::new(appfl_telemetry::JsonlSink::create("run.jsonl").unwrap()))
//!     .run()
//!     .unwrap();
//! # }
//! ```
//!
//! The historical entry points were removed once every call site had
//! migrated. The builder itself has since been superseded by the typed
//! [`Federation`](crate::federation::Federation) API, which separates
//! topology / population / resilience / observability and validates the
//! combination up front; [`FederationBuilder`] stays on as a deprecated
//! shim (and as the engine behind the `Comm`/`Rpc` topologies).
//!
//! With [`FederationBuilder::durable`] the coordinator persists every
//! phase transition into a [`crate::store::CoordinatorStore`] and a
//! restarted run *resumes* where the store left off — see the
//! [`crate::store`] module docs for the recovery semantics.

use crate::api::{ClientAlgorithm, ServerAlgorithm};
use crate::config::FaultToleranceConfig;
use crate::defense::{RobustAggregator, RobustServer, UpdateGuard, UpdateGuardConfig};
use crate::error::Error;
use crate::metrics::History;
use crate::store::DurableCoordinator;
use crate::runner::comm::{run_client, run_client_ft, run_server, run_server_ft};
use crate::runner::rpc::{run_rpc_client, run_rpc_client_ft, SyncRoundService};
use appfl_comm::rpc::{serve_with, ServeOptions};
use appfl_comm::transport::Communicator;
use appfl_data::InMemoryDataset;
use appfl_nn::module::Module;
use appfl_telemetry::{EventSink, Gauge, MetricsRegistry, NoopSink, Telemetry};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What a completed federation run hands back.
#[derive(Debug)]
pub struct FederationOutcome {
    /// The final global model `w`.
    pub model: Vec<f32>,
    /// Aggregations completed (pull mode) or rounds driven (push mode —
    /// includes degraded and skipped rounds, which the history details).
    pub completed_rounds: usize,
    /// Total transport-level retries across all clients (0 without fault
    /// tolerance).
    pub retries: usize,
    /// Per-round metrics. Push mode always records one; pull mode has no
    /// server-side evaluation loop, so it is `None` there.
    pub history: Option<History>,
    /// Whether the run resumed from a recovered durable store.
    pub recovered: bool,
    /// Re-sent uploads the durable coordinator deduplicated (0 without
    /// a durable store).
    pub duplicates: usize,
}

struct Eval<'a> {
    template: &'a mut dyn Module,
    test: &'a InMemoryDataset,
}

/// Builder for a federation run over any [`Communicator`] — the single
/// entry point for push (broadcast/gather) and pull (RPC polling) modes,
/// with or without fault tolerance, with or without telemetry.
///
/// Required: `.transport(endpoints)` (rank 0 serves). Push mode (the
/// default) also requires `.evaluation(template, test)`. Everything else
/// has defaults: 1 round, ε = ∞, no fault tolerance, no telemetry.
#[deprecated(
    since = "0.7.0",
    note = "use Federation::builder() — .topology(..).population(..).resilience(..).observe(..)"
)]
pub struct FederationBuilder<'a, C: Communicator + 'static> {
    server: Box<dyn ServerAlgorithm>,
    clients: Vec<Box<dyn ClientAlgorithm>>,
    endpoints: Option<Vec<C>>,
    rounds: usize,
    epsilon: f64,
    dataset: String,
    eval: Option<Eval<'a>>,
    ft: Option<FaultToleranceConfig>,
    sink: Option<Arc<dyn EventSink>>,
    registry: Option<MetricsRegistry>,
    pull: bool,
    robust: Option<RobustAggregator>,
    guard: Option<UpdateGuardConfig>,
    durable: Option<DurableCoordinator>,
}

#[allow(deprecated)]
impl<'a, C: Communicator + 'static> FederationBuilder<'a, C> {
    /// Starts a builder for `server` and its `clients`.
    pub fn new(server: Box<dyn ServerAlgorithm>, clients: Vec<Box<dyn ClientAlgorithm>>) -> Self {
        FederationBuilder {
            server,
            clients,
            endpoints: None,
            rounds: 1,
            epsilon: f64::INFINITY,
            dataset: "unspecified".into(),
            eval: None,
            ft: None,
            sink: None,
            registry: None,
            pull: false,
            robust: None,
            guard: None,
            durable: None,
        }
    }

    /// The transport endpoints, one per rank: `endpoints[0]` is the
    /// server, `endpoints[p]` hosts client `p − 1`.
    pub fn transport(mut self, endpoints: Vec<C>) -> Self {
        self.endpoints = Some(endpoints);
        self
    }

    /// Number of communication rounds (default 1).
    pub fn rounds(mut self, rounds: usize) -> Self {
        self.rounds = rounds;
        self
    }

    /// Privacy budget ε̄ recorded in the history (default ∞ = non-private).
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Dataset name recorded in the history.
    pub fn dataset(mut self, dataset: impl Into<String>) -> Self {
        self.dataset = dataset.into();
        self
    }

    /// Server-side evaluation: a template module matching the global
    /// model's parameterisation plus the test set. Required in push mode,
    /// where every round evaluates `w^{t+1}`; ignored in pull mode.
    pub fn evaluation(mut self, template: &'a mut dyn Module, test: &'a InMemoryDataset) -> Self {
        self.eval = Some(Eval { template, test });
        self
    }

    /// Enables fault tolerance with the given quorum and round deadline;
    /// retry/backoff parameters come from [`FaultToleranceConfig`]'s
    /// defaults. Use [`FederationBuilder::fault_tolerance_config`] for
    /// full control.
    pub fn fault_tolerance(mut self, min_quorum: usize, deadline: Duration) -> Self {
        self.ft = Some(FaultToleranceConfig {
            min_quorum,
            round_timeout_ms: deadline.as_millis() as u64,
            ..FaultToleranceConfig::default()
        });
        self
    }

    /// Enables fault tolerance with an explicit configuration.
    pub fn fault_tolerance_config(mut self, ft: FaultToleranceConfig) -> Self {
        self.ft = Some(ft);
        self
    }

    /// Records structured events (per-phase spans, retry/timeout marks,
    /// byte counters) into `sink`. The default is the zero-cost no-op.
    pub fn telemetry(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Mirrors every emitted event into `registry` — spans as duration
    /// histograms, counts/marks as counters, gauges as gauges — so a
    /// Prometheus-text or JSON snapshot can be taken after (or during)
    /// the run with [`MetricsRegistry::to_prometheus_text`]. Composes
    /// with [`FederationBuilder::telemetry`]; with a registry but no
    /// sink, events are aggregated without being recorded individually.
    pub fn metrics(mut self, registry: MetricsRegistry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Replaces the server's aggregation rule with a Byzantine-robust one:
    /// the configured server is wrapped in a
    /// [`crate::defense::RobustServer`] that inherits its current global
    /// model and aggregates each round with `aggregator` (coordinate-wise
    /// median, trimmed mean, Krum, …) instead of the plain weighted mean.
    pub fn robust(mut self, aggregator: RobustAggregator) -> Self {
        self.robust = Some(aggregator);
        self
    }

    /// Screens every incoming upload with an [`UpdateGuard`] before it can
    /// reach the aggregator: NaN/Inf and mis-dimensioned uploads are
    /// rejected (and, under fault tolerance, recorded as roster failures
    /// so repeat offenders are excluded), norm outliers are clipped or
    /// rejected per `config`. Rejections and clips surface in each
    /// [`crate::RoundRecord`] and as `update_rejected` / `update_clipped`
    /// telemetry events with per-client `update_norm` gauges.
    pub fn update_guard(mut self, config: UpdateGuardConfig) -> Self {
        self.guard = Some(config);
        self
    }

    /// Switches to pull mode: the server passively serves `GetWeight` /
    /// `SendResults` RPCs and clients poll — the flow of a real APPFL gRPC
    /// deployment. No per-round evaluation, so the outcome has no history.
    pub fn pull(mut self) -> Self {
        self.pull = true;
        self
    }

    /// Attaches a durable coordinator: every phase transition is appended
    /// to its [`crate::store::CoordinatorStore`] before the run proceeds,
    /// and a builder handed a coordinator whose store already holds a
    /// prior run *resumes* it — mid-round if one was in flight — instead
    /// of starting over. Re-sent uploads are deduplicated by
    /// `(round, client_id)` and counted in
    /// [`FederationOutcome::duplicates`]. Resuming requires fault
    /// tolerance or pull mode; see [`crate::store`] for semantics and
    /// [`crate::store::DurableCoordinator::crash_after`] for fault
    /// injection.
    pub fn durable(mut self, durable: DurableCoordinator) -> Self {
        self.durable = Some(durable);
        self
    }

    /// Executes the federation and returns the outcome.
    ///
    /// Errors: [`Error::Config`] for a missing/mis-sized transport, a
    /// missing evaluation setup in push mode, or an invalid quorum;
    /// [`Error::Unsupported`] when fault tolerance or pull mode is
    /// requested on a transport without `recv_any` multiplexing (see
    /// [`Communicator::supports_recv_any`]); [`Error::Tensor`] /
    /// [`Error::Comm`] for failures during the run itself.
    pub fn run(self) -> Result<FederationOutcome, Error> {
        let FederationBuilder {
            mut server,
            mut clients,
            endpoints,
            rounds,
            epsilon,
            dataset,
            eval,
            ft,
            sink,
            registry,
            pull,
            robust,
            guard,
            mut durable,
        } = self;
        let telemetry = match (sink, registry) {
            (Some(sink), Some(registry)) => Telemetry::with_registry(sink, registry),
            (Some(sink), None) => Telemetry::new(sink),
            (None, Some(registry)) => Telemetry::with_registry(Arc::new(NoopSink), registry),
            (None, None) => Telemetry::disabled(),
        };
        if let Some(aggregator) = robust {
            server = Box::new(RobustServer::wrap(server, aggregator));
        }
        let mut guard = guard.map(|cfg| UpdateGuard::new(server.dim(), cfg));
        let mut endpoints = endpoints
            .ok_or_else(|| Error::config("no transport configured: call .transport(endpoints)"))?;
        if clients.is_empty() {
            return Err(Error::config("a federation needs at least one client"));
        }
        if endpoints.len() != clients.len() + 1 {
            return Err(Error::config(format!(
                "{} endpoints for {} clients + 1 server",
                endpoints.len(),
                clients.len()
            )));
        }
        let sample_counts: Vec<usize> = clients.iter().map(|c| c.num_samples()).collect();
        let server_ep = endpoints.remove(0);
        // Both the pull-mode serving loop and the fault-tolerant gather
        // multiplex with recv_any; fail fast if the transport cannot.
        if (pull || ft.is_some()) && !server_ep.supports_recv_any() {
            return Err(Error::Unsupported(
                "recv_any multiplexing (required by pull mode and fault-tolerant gathers)",
            ));
        }
        let recovered = if let Some(d) = durable.as_mut() {
            let state = d.recover(&telemetry)?;
            // Clients are rebuilt from scratch on restart, so each one
            // re-derives its RNG/momentum state by replaying its local
            // update over the exact broadcast sequence it trained on.
            // Their uploads are discarded: persisted (or re-gathered)
            // uploads are the aggregation inputs, not these replays.
            for client in clients.iter_mut() {
                for w in state.replay_models_for(client.id()) {
                    client.update(w)?;
                }
            }
            d.was_recovered()
        } else {
            false
        };

        let retries = AtomicUsize::new(0);
        let outcome = if pull {
            let num_clients = clients.len();
            let quorum = match &ft {
                Some(ft) => ft.min_quorum.clamp(1, num_clients),
                None => num_clients,
            };
            let mut service = SyncRoundService::new(server, num_clients, rounds, sample_counts)
                .with_quorum(quorum)?
                .with_telemetry(telemetry.clone());
            if let Some(guard) = guard.take() {
                service = service.with_guard(guard);
            }
            if let Some(d) = durable.take() {
                service = service.with_durable(d)?;
            }
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                let options = match &ft {
                    None => {
                        for (client, ep) in clients.into_iter().zip(endpoints) {
                            let tl = telemetry.clone();
                            handles
                                .push(scope.spawn(move || run_rpc_client(client, &ep, &tl).map(drop)));
                        }
                        ServeOptions {
                            telemetry: telemetry.clone(),
                            ..ServeOptions::default()
                        }
                    }
                    Some(ft) => {
                        for (i, (client, ep)) in
                            clients.into_iter().zip(endpoints).enumerate()
                        {
                            let policy = ft.retry_policy(i as u64 + 1);
                            let timeout = ft.round_timeout();
                            let retries = &retries;
                            let tl = telemetry.clone();
                            handles.push(scope.spawn(move || {
                                run_rpc_client_ft(client, &ep, &policy, timeout, Some(retries), &tl)
                                    .map(drop)
                            }));
                        }
                        ServeOptions {
                            idle_timeout: Some(ft.round_timeout()),
                            max_idle: ft.suspect_after.max(1),
                            telemetry: telemetry.clone(),
                        }
                    }
                };
                serve_with(&mut service, &server_ep, num_clients, &options)?;
                for h in handles {
                    h.join().expect("client thread panicked")?;
                }
                Ok::<(), Error>(())
            })?;
            if let Some(e) = service.take_durable_error() {
                return Err(e);
            }
            let completed_rounds = service.completed_rounds();
            let duplicates = service
                .take_durable()
                .map(|d| d.duplicates())
                .unwrap_or(0);
            FederationOutcome {
                model: service.into_server().global_model(),
                completed_rounds,
                retries: retries.load(Ordering::Relaxed),
                history: None,
                recovered,
                duplicates,
            }
        } else {
            let eval = eval.ok_or_else(|| {
                Error::config("push mode evaluates every round: call .evaluation(template, test)")
            })?;
            let gauge = Gauge::new();
            let history = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                let h = match &ft {
                    None => {
                        for (client, ep) in clients.into_iter().zip(endpoints) {
                            let gauge = &gauge;
                            let tl = telemetry.clone();
                            handles.push(
                                scope.spawn(move || run_client(client, &ep, rounds, gauge, &tl)),
                            );
                        }
                        run_server(
                            &mut *server,
                            eval.template,
                            eval.test,
                            &server_ep,
                            rounds,
                            &sample_counts,
                            epsilon,
                            &dataset,
                            &telemetry,
                            &gauge,
                            guard.as_mut(),
                            durable.as_mut(),
                        )
                    }
                    Some(ft) => {
                        for (i, (client, ep)) in
                            clients.into_iter().zip(endpoints).enumerate()
                        {
                            let policy = ft.retry_policy(i as u64 + 1);
                            let recv_timeout = ft.round_timeout();
                            let retries = &retries;
                            let gauge = &gauge;
                            let tl = telemetry.clone();
                            handles.push(scope.spawn(move || {
                                run_client_ft(
                                    client,
                                    &ep,
                                    &policy,
                                    recv_timeout,
                                    retries,
                                    &tl,
                                    gauge,
                                )
                            }));
                        }
                        run_server_ft(
                            &mut *server,
                            eval.template,
                            eval.test,
                            &server_ep,
                            rounds,
                            &sample_counts,
                            epsilon,
                            &dataset,
                            ft,
                            &retries,
                            &telemetry,
                            &gauge,
                            guard.as_mut(),
                            durable.as_mut(),
                        )
                    }
                };
                for handle in handles {
                    handle.join().expect("client thread panicked")?;
                }
                h
            })?;
            FederationOutcome {
                model: server.global_model(),
                completed_rounds: history.rounds.len(),
                retries: retries.load(Ordering::Relaxed),
                history: Some(history),
                recovered,
                duplicates: durable.as_ref().map(|d| d.duplicates()).unwrap_or(0),
            }
        };
        telemetry.flush();
        Ok(outcome)
    }
}

#[cfg(test)]
#[allow(deprecated)] // these are the shim tests for the deprecated builder
mod tests {
    use super::*;
    use crate::algorithms::build_federation;
    use crate::config::{AlgorithmConfig, FedConfig};
    use appfl_comm::transport::InProcNetwork;
    use appfl_data::federated::{build_benchmark, Benchmark};
    use appfl_nn::models::{mlp_classifier, InputSpec};
    use appfl_privacy::PrivacyConfig;
    use appfl_telemetry::MemorySink;

    fn federation(rounds: usize) -> (crate::algorithms::FederationSetup, InMemoryDataset) {
        let data = build_benchmark(Benchmark::Mnist, 3, 90, 30, 2).unwrap();
        let spec = InputSpec {
            channels: 1,
            height: 28,
            width: 28,
            classes: 10,
        };
        let config = FedConfig {
            algorithm: AlgorithmConfig::FedAvg {
                lr: 0.05,
                momentum: 0.9,
            },
            rounds,
            local_steps: 1,
            batch_size: 16,
            privacy: PrivacyConfig::none(),
            seed: 4,
        };
        let test = data.test.clone();
        let fed = build_federation(config, &data, move |rng| {
            Box::new(mlp_classifier(spec, 8, rng))
        });
        (fed, test)
    }

    #[test]
    fn missing_transport_is_a_config_error() {
        let (fed, _test) = federation(1);
        let err = FederationBuilder::<appfl_comm::transport::InProcEndpoint>::new(
            fed.server, fed.clients,
        )
        .run()
        .unwrap_err();
        assert!(matches!(err, Error::Config(_)), "{err}");
    }

    #[test]
    fn push_mode_without_evaluation_is_a_config_error() {
        let (fed, _test) = federation(1);
        let err = FederationBuilder::new(fed.server, fed.clients)
            .transport(InProcNetwork::new(4))
            .run()
            .unwrap_err();
        assert!(matches!(err, Error::Config(_)), "{err}");
        assert!(err.to_string().contains("evaluation"));
    }

    #[test]
    fn mis_sized_transport_is_a_config_error() {
        let (mut fed, test) = federation(1);
        let err = FederationBuilder::new(fed.server, fed.clients)
            .transport(InProcNetwork::new(2)) // 3 clients need 4 endpoints
            .evaluation(fed.template.as_mut(), &test)
            .run()
            .unwrap_err();
        assert!(matches!(err, Error::Config(_)), "{err}");
    }

    #[test]
    fn builder_runs_push_federation_with_telemetry() {
        let (mut fed, test) = federation(2);
        let sink = Arc::new(MemorySink::new());
        let outcome = FederationBuilder::new(fed.server, fed.clients)
            .transport(InProcNetwork::new(4))
            .rounds(2)
            .dataset("MNIST")
            .evaluation(fed.template.as_mut(), &test)
            .telemetry(sink.clone())
            .run()
            .unwrap();
        assert_eq!(outcome.completed_rounds, 2);
        assert_eq!(outcome.retries, 0);
        let history = outcome.history.expect("push mode records a history");
        assert_eq!(history.rounds.len(), 2);
        assert!(outcome.model.iter().all(|x| x.is_finite()));
        let summary = appfl_telemetry::RunSummary::from_events(&sink.events());
        assert_eq!(summary.rounds.len(), 2, "one phase group per round");
        for (round, phases) in &summary.rounds {
            assert!(phases.local_update > 0.0, "round {round} no local span");
            assert!(phases.total() > 0.0);
        }
        assert!(summary.counter("upload_bytes") > 0);
    }

    #[test]
    fn metrics_registry_snapshots_the_run() {
        let (mut fed, test) = federation(2);
        let registry = MetricsRegistry::new();
        let outcome = FederationBuilder::new(fed.server, fed.clients)
            .transport(InProcNetwork::new(4))
            .rounds(2)
            .evaluation(fed.template.as_mut(), &test)
            .metrics(registry.clone())
            .run()
            .unwrap();
        assert_eq!(outcome.completed_rounds, 2);
        let text = registry.to_prometheus_text();
        let families = appfl_telemetry::validate_prometheus_text(&text).unwrap();
        // Phase histograms + upload_bytes + diagnostics gauges, at least.
        assert!(families >= 5, "only {families} families:\n{text}");
        assert!(text.contains("appfl_local_update"), "{text}");
        assert!(text.contains("appfl_update_norm"), "{text}");
    }

    #[test]
    fn builder_runs_pull_federation() {
        let (fed, _test) = federation(2);
        let outcome = FederationBuilder::new(fed.server, fed.clients)
            .transport(InProcNetwork::new(4))
            .rounds(2)
            .pull()
            .run()
            .unwrap();
        assert_eq!(outcome.completed_rounds, 2);
        assert!(outcome.history.is_none(), "pull mode has no history");
        assert!(outcome.model.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn builder_runs_ft_federation_without_faults() {
        let (mut fed, test) = federation(2);
        let outcome = FederationBuilder::new(fed.server, fed.clients)
            .transport(InProcNetwork::new(4))
            .rounds(2)
            .evaluation(fed.template.as_mut(), &test)
            .fault_tolerance(3, Duration::from_secs(5))
            .run()
            .unwrap();
        assert_eq!(outcome.completed_rounds, 2);
        let history = outcome.history.unwrap();
        assert_eq!(history.total_dropped_clients(), 0);
    }

    #[test]
    fn bad_quorum_surfaces_as_config_error_in_pull_mode() {
        let (fed, _test) = federation(1);
        let err = FederationBuilder::new(fed.server, fed.clients)
            .transport(InProcNetwork::new(4))
            .pull()
            .fault_tolerance(0, Duration::from_millis(50))
            .run();
        // quorum is clamped to ≥ 1, so 0 is repaired rather than fatal;
        // the run itself must still complete.
        assert!(err.is_ok());
    }
}
