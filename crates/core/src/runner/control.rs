//! Adaptive round control: over-selection, quantile deadlines, hedging.
//!
//! The static quorum/deadline pair in [`FaultToleranceConfig`] treats
//! every round identically: broadcast to everyone, wait a fixed wall-time
//! window, aggregate whatever arrived. At fleet scale that clock is wrong
//! in both directions — too long on a healthy fleet (the round idles
//! waiting for stragglers it does not need) and too short under churn
//! (the deadline guillotines uploads that were seconds away). This module
//! is the adaptive replacement, three composable policies in one
//! deterministic controller:
//!
//! * **Over-selection** — dispatch ⌈(1+α)·C⌉ clients for a target cohort
//!   of C and close Collect at the first C accepted uploads. The extra
//!   α·C dispatches are straggler insurance; whatever they compute past
//!   the close is counted as `overselect_waste`.
//! * **Quantile-tracked adaptive deadlines** — the Collect deadline for
//!   round *t+1* is the EWMA-smoothed p-quantile (default p90) of the
//!   upload latencies observed in rounds ≤ *t*, times a slack factor,
//!   clamped to configured bounds. Fast fleets shrink the round clock;
//!   slow or spiking fleets stretch it instead of mass-dropping.
//! * **Hedged dispatch** — partway into Collect the controller projects
//!   the final arrival count from the arrivals so far; if the projection
//!   falls below the target it re-dispatches the round's broadcast to
//!   standby clients (the pool members not in the initial dispatch), the
//!   tail-latency hedge of Dean & Barroso's "The Tail at Scale" applied
//!   to FL cohorts.
//!
//! The controller works in plain `f64` seconds and is a pure function of
//! its observation sequence, so the *same* policy instance drives the
//! wall-clock transport runners and the virtual-clock million-client
//! [`SimEngine`](crate::runner::simulate::SimEngine) — determinism there
//! stays bit-for-bit.
//!
//! [`FaultToleranceConfig`]: crate::config::FaultToleranceConfig

use serde::{Deserialize, Serialize};

/// Knobs of the adaptive round controller. `Copy` + serde so it can ride
/// inside simulation configs and chaos-run manifests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundControlConfig {
    /// Over-selection factor α: dispatch ⌈(1+α)·C⌉ clients for a target
    /// cohort of C (0.0 = no over-selection).
    pub overselect: f64,
    /// Latency quantile tracked for the adaptive deadline (e.g. 0.9 for
    /// p90), in `(0, 1]`.
    pub quantile: f64,
    /// Slack multiplier applied to the tracked quantile when deriving
    /// the next deadline (≥ 1.0 leaves headroom above the quantile).
    pub slack: f64,
    /// EWMA smoothing factor in `(0, 1]` for folding each round's
    /// quantile into the running estimate (1.0 = latest round only).
    pub ewma: f64,
    /// Lower clamp on the adaptive deadline, in seconds.
    pub min_deadline_secs: f64,
    /// Upper clamp on the adaptive deadline, in seconds — also the
    /// deadline used before any latency has been observed.
    pub max_deadline_secs: f64,
    /// When to evaluate the hedge: at `hedge_fraction × deadline`
    /// elapsed. `1.0` (or anything ≥ 1.0) disables hedging.
    pub hedge_fraction: f64,
    /// Push-mode target fraction: the comm runner's target cohort C is
    /// `⌈target_fraction × active⌉` (clamped to the quorum). Ignored by
    /// the simulator, whose `SimConfig::cohort` *is* C.
    pub target_fraction: f64,
}

impl Default for RoundControlConfig {
    fn default() -> Self {
        RoundControlConfig {
            overselect: 0.25,
            quantile: 0.9,
            slack: 1.5,
            ewma: 0.5,
            min_deadline_secs: 0.05,
            max_deadline_secs: 60.0,
            hedge_fraction: 0.5,
            target_fraction: 0.8,
        }
    }
}

impl RoundControlConfig {
    /// The push-mode target cohort C for a pool of `active` clients with
    /// aggregation quorum `quorum`: `⌈target_fraction × active⌉`, never
    /// below the (pool-clamped) quorum, never above the pool.
    pub fn push_target(&self, active: usize, quorum: usize) -> usize {
        let c = (self.target_fraction * active as f64).ceil() as usize;
        c.clamp(quorum.clamp(1, active.max(1)), active.max(1))
    }
}

/// The dispatch split [`RoundController::plan`] produces: who the
/// broadcast goes to now, who is held back as hedge capacity, and how
/// many accepted uploads close the Collect phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundPlan {
    /// Clients the round's broadcast goes to immediately
    /// (⌈(1+α)·target⌉, capped by the pool).
    pub dispatch: Vec<usize>,
    /// Pool members held back; hedged re-dispatch draws from here.
    pub standby: Vec<usize>,
    /// Accepted uploads that close Collect (≤ `dispatch.len()`).
    pub target: usize,
}

/// The adaptive round controller: owns the cross-round latency quantile
/// estimate and answers the three per-round questions — who to dispatch,
/// how long to wait, and when to hedge. Deterministic: its outputs are a
/// pure function of the config and the observed latency sequence.
#[derive(Debug, Clone)]
pub struct RoundController {
    cfg: RoundControlConfig,
    /// EWMA-smoothed latency quantile across finished rounds (seconds).
    smoothed: Option<f64>,
    /// Upload latencies observed in the round currently collecting.
    window: Vec<f64>,
}

impl RoundController {
    /// A controller with no latency history (the first deadline is the
    /// configured maximum).
    pub fn new(cfg: RoundControlConfig) -> Self {
        RoundController {
            cfg,
            smoothed: None,
            window: Vec::new(),
        }
    }

    /// The configuration the controller runs.
    pub fn config(&self) -> &RoundControlConfig {
        &self.cfg
    }

    /// Splits `available` into dispatch and standby for a target cohort
    /// of `target`: the first ⌈(1+α)·target⌉ members are dispatched, the
    /// rest held back for hedging. `available` arrives in the caller's
    /// order (roster order, sampler order) so the split is deterministic.
    pub fn plan(&self, available: &[usize], target: usize) -> RoundPlan {
        let target = target.min(available.len());
        let dispatch_n = (((1.0 + self.cfg.overselect.max(0.0)) * target as f64).ceil() as usize)
            .clamp(target, available.len());
        RoundPlan {
            dispatch: available[..dispatch_n].to_vec(),
            standby: available[dispatch_n..].to_vec(),
            target,
        }
    }

    /// The Collect deadline for the next round, in seconds from the
    /// start of Collect: smoothed quantile × slack, clamped to the
    /// configured bounds. Before any observation: the maximum bound.
    pub fn deadline_secs(&self) -> f64 {
        let raw = match self.smoothed {
            Some(q) => q * self.cfg.slack,
            None => self.cfg.max_deadline_secs,
        };
        raw.clamp(self.cfg.min_deadline_secs, self.cfg.max_deadline_secs)
    }

    /// Records one accepted upload's latency (seconds from the start of
    /// Collect to its arrival).
    pub fn observe_latency(&mut self, secs: f64) {
        if secs.is_finite() && secs >= 0.0 {
            self.window.push(secs);
        }
    }

    /// Latencies observed in the current round so far.
    pub fn observed(&self) -> usize {
        self.window.len()
    }

    /// The instant (seconds into Collect) at which the hedge decision is
    /// evaluated, for the given round deadline.
    pub fn hedge_check_at(&self, deadline: f64) -> f64 {
        deadline * self.cfg.hedge_fraction.max(0.0)
    }

    /// The hedge decision at `elapsed` seconds into Collect: linearly
    /// project the arrival rate so far to the deadline; if the projected
    /// total falls short of `target`, return the shortfall — the number
    /// of standby clients to re-dispatch to. Returns 0 when the
    /// projection meets the target, when hedging is disabled
    /// (`hedge_fraction ≥ 1`), or before the check instant.
    pub fn hedge_shortfall(
        &self,
        elapsed: f64,
        deadline: f64,
        accepted: usize,
        target: usize,
    ) -> usize {
        if self.cfg.hedge_fraction >= 1.0 || elapsed < self.hedge_check_at(deadline) {
            return 0;
        }
        if elapsed <= 0.0 || deadline <= 0.0 {
            return target.saturating_sub(accepted);
        }
        let projected = (accepted as f64 * (deadline / elapsed)).floor() as usize;
        target.saturating_sub(projected.max(accepted))
    }

    /// Closes the round's observation window: folds its p-quantile into
    /// the EWMA estimate and clears the window. A round with no accepted
    /// uploads leaves the estimate untouched (there is nothing to learn
    /// from silence except that the deadline was too short — the clamp
    /// ceiling already bounds how far the controller can be wrong).
    pub fn finish_round(&mut self) {
        if self.window.is_empty() {
            return;
        }
        let mut w = std::mem::take(&mut self.window);
        w.sort_by(|a, b| a.total_cmp(b));
        let q = self.cfg.quantile.clamp(0.0, 1.0);
        let idx = ((w.len() as f64 * q).ceil() as usize).clamp(1, w.len()) - 1;
        let round_q = w[idx];
        let a = self.cfg.ewma.clamp(0.0, 1.0);
        self.smoothed = Some(match self.smoothed {
            Some(prev) => (1.0 - a) * prev + a * round_q,
            None => round_q,
        });
    }

    /// The current smoothed latency-quantile estimate, if any round has
    /// contributed observations yet.
    pub fn smoothed_quantile(&self) -> Option<f64> {
        self.smoothed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RoundControlConfig {
        RoundControlConfig {
            overselect: 0.5,
            quantile: 0.9,
            slack: 1.2,
            ewma: 0.5,
            min_deadline_secs: 1.0,
            max_deadline_secs: 100.0,
            hedge_fraction: 0.5,
            target_fraction: 0.8,
        }
    }

    #[test]
    fn plan_splits_dispatch_and_standby_at_the_overselect_boundary() {
        let c = RoundController::new(cfg());
        let pool: Vec<usize> = (0..10).collect();
        let plan = c.plan(&pool, 4);
        // ⌈1.5 × 4⌉ = 6 dispatched, 4 standby, close at 4.
        assert_eq!(plan.dispatch, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(plan.standby, vec![6, 7, 8, 9]);
        assert_eq!(plan.target, 4);
    }

    #[test]
    fn plan_saturates_on_a_small_pool() {
        let c = RoundController::new(cfg());
        let pool: Vec<usize> = (0..3).collect();
        let plan = c.plan(&pool, 8);
        assert_eq!(plan.dispatch.len(), 3, "cannot dispatch beyond the pool");
        assert!(plan.standby.is_empty());
        assert_eq!(plan.target, 3, "target clamps to the pool");
    }

    #[test]
    fn deadline_starts_at_the_ceiling_then_tracks_the_quantile() {
        let mut c = RoundController::new(cfg());
        assert_eq!(c.deadline_secs(), 100.0, "no history → max bound");
        for i in 1..=10 {
            c.observe_latency(i as f64); // p90 of 1..=10 is 9
        }
        c.finish_round();
        assert_eq!(c.smoothed_quantile(), Some(9.0));
        assert!((c.deadline_secs() - 9.0 * 1.2).abs() < 1e-12);
    }

    #[test]
    fn ewma_smooths_across_rounds_and_clamps_apply() {
        let mut c = RoundController::new(cfg());
        c.observe_latency(10.0);
        c.finish_round();
        c.observe_latency(20.0);
        c.finish_round();
        // 0.5 × 10 + 0.5 × 20 = 15.
        assert_eq!(c.smoothed_quantile(), Some(15.0));

        let mut fast = RoundController::new(cfg());
        fast.observe_latency(0.01);
        fast.finish_round();
        assert_eq!(fast.deadline_secs(), 1.0, "floor clamp");
        let mut slow = RoundController::new(cfg());
        slow.observe_latency(1.0e6);
        slow.finish_round();
        assert_eq!(slow.deadline_secs(), 100.0, "ceiling clamp");
    }

    #[test]
    fn empty_round_leaves_the_estimate_untouched() {
        let mut c = RoundController::new(cfg());
        c.observe_latency(5.0);
        c.finish_round();
        let before = c.smoothed_quantile();
        c.finish_round(); // nothing observed
        assert_eq!(c.smoothed_quantile(), before);
    }

    #[test]
    fn hedge_projects_arrivals_linearly() {
        let c = RoundController::new(cfg());
        // Before the check instant (0.5 × 10 = 5s): never hedge.
        assert_eq!(c.hedge_shortfall(2.0, 10.0, 1, 8), 0);
        // At 5s with 2 accepted, projection = 2 × (10/5) = 4 < 8: short 4.
        assert_eq!(c.hedge_shortfall(5.0, 10.0, 2, 8), 4);
        // On track: 4 accepted at half time projects to 8.
        assert_eq!(c.hedge_shortfall(5.0, 10.0, 4, 8), 0);
        // Already at target.
        assert_eq!(c.hedge_shortfall(5.0, 10.0, 8, 8), 0);
    }

    #[test]
    fn hedging_disabled_at_fraction_one() {
        let c = RoundController::new(RoundControlConfig {
            hedge_fraction: 1.0,
            ..cfg()
        });
        assert_eq!(c.hedge_shortfall(9.9, 10.0, 0, 8), 0);
    }

    #[test]
    fn push_target_respects_quorum_and_pool() {
        let rc = cfg();
        assert_eq!(rc.push_target(10, 2), 8, "⌈0.8 × 10⌉");
        assert_eq!(rc.push_target(10, 9), 9, "quorum lifts the target");
        assert_eq!(rc.push_target(3, 1), 3, "⌈0.8 × 3⌉ = 3 = pool");
        assert_eq!(rc.push_target(0, 1), 1.min(1), "degenerate pool");
    }

    #[test]
    fn controller_is_deterministic_for_a_latency_sequence() {
        let run = || {
            let mut c = RoundController::new(cfg());
            for r in 0..5 {
                for i in 0..20 {
                    c.observe_latency(0.5 + 0.1 * ((r * 7 + i * 3) % 13) as f64);
                }
                c.finish_round();
            }
            c.deadline_secs()
        };
        assert_eq!(run(), run(), "pure function of the observation sequence");
    }

    #[test]
    fn config_serde_roundtrip() {
        let rc = cfg();
        let json = serde_json::to_string(&rc).unwrap();
        let back: RoundControlConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rc);
    }
}
