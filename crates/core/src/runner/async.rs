//! Asynchronous server updates — future-work item 1 of §V.
//!
//! "We plan to implement the asynchronous updates of an FL model in our
//! framework" — motivated by the load imbalance of §IV-E (an A100 silo
//! finishing 1.64× faster than a V100 silo sits idle under synchronous
//! aggregation). This module implements staleness-weighted asynchronous
//! aggregation in the style of FedAsync: the server folds in each upload
//! the moment it arrives,
//!
//! ```text
//! w ← (1 − α_s) · w + α_s · z_p,   α_s = α / (1 + staleness)
//! ```
//!
//! where `staleness` is how many server versions elapsed since the client
//! fetched the model it trained on.

use crate::api::ClientUpload;
use crate::defense::{GuardVerdict, UpdateGuard, UpdateGuardConfig};
use crate::store::AsyncState;
use appfl_tensor::{Result, TensorError};
use serde::{Deserialize, Serialize};

/// Mixing configuration for asynchronous aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AsyncConfig {
    /// Base mixing weight α ∈ (0, 1].
    pub alpha: f32,
    /// Reject uploads staler than this many server versions (`None` =
    /// accept arbitrarily stale work, merely downweighted). A cap keeps a
    /// crashed-and-recovered client from dragging the model toward an
    /// ancient iterate.
    #[serde(default)]
    pub max_staleness: Option<u64>,
}

impl Default for AsyncConfig {
    fn default() -> Self {
        AsyncConfig {
            alpha: 0.6,
            max_staleness: None,
        }
    }
}

/// A staleness-aware asynchronous server.
pub struct AsyncFedServer {
    global: Vec<f32>,
    version: u64,
    config: AsyncConfig,
    applied: usize,
    guard: Option<UpdateGuard>,
    guard_rejected: usize,
}

impl AsyncFedServer {
    /// Starts from an initial model.
    pub fn new(initial: Vec<f32>, config: AsyncConfig) -> Self {
        assert!(
            config.alpha > 0.0 && config.alpha <= 1.0,
            "alpha must be in (0, 1]"
        );
        AsyncFedServer {
            global: initial,
            version: 0,
            config,
            applied: 0,
            guard: None,
            guard_rejected: 0,
        }
    }

    /// Screens every arriving upload with an [`UpdateGuard`] before it is
    /// mixed in. The asynchronous path is where sanitization matters most:
    /// there is no cohort to out-vote a poisoned update — one NaN-laden
    /// upload and the mixing rule wipes the model. Rejected uploads error
    /// out of [`AsyncFedServer::apply`] without touching model or version;
    /// norm outliers are clipped/rejected per `config`.
    pub fn with_guard(mut self, config: UpdateGuardConfig) -> Self {
        self.guard = Some(UpdateGuard::new(self.global.len(), config));
        self
    }

    /// Uploads the guard refused since construction.
    pub fn guard_rejected(&self) -> usize {
        self.guard_rejected
    }

    /// The current model and its version; clients record the version they
    /// trained against so staleness is computable on arrival.
    pub fn fetch(&self) -> (Vec<f32>, u64) {
        (self.global.clone(), self.version)
    }

    /// Folds in one upload trained against server version `base_version`.
    /// Returns the staleness that was applied.
    pub fn apply(&mut self, upload: &ClientUpload, base_version: u64) -> Result<u64> {
        if upload.primal.len() != self.global.len() {
            return Err(TensorError::ShapeDataMismatch {
                expected: self.global.len(),
                actual: upload.primal.len(),
            });
        }
        let staleness = self.version.saturating_sub(base_version);
        if let Some(cap) = self.config.max_staleness {
            if staleness > cap {
                return Err(TensorError::InvalidArgument(format!(
                    "upload staleness {staleness} exceeds cap {cap}"
                )));
            }
        }
        let mut screened;
        let primal: &[f32] = match self.guard.as_mut() {
            Some(guard) => {
                screened = upload.clone();
                match guard.screen(&mut screened) {
                    GuardVerdict::Rejected(reason) => {
                        self.guard_rejected += 1;
                        return Err(TensorError::InvalidArgument(format!(
                            "upload rejected by guard: {reason}"
                        )));
                    }
                    _ => &screened.primal,
                }
            }
            None => &upload.primal,
        };
        let alpha_s = self.config.alpha / (1.0 + staleness as f32);
        for (w, &z) in self.global.iter_mut().zip(primal.iter()) {
            *w = (1.0 - alpha_s) * *w + alpha_s * z;
        }
        self.version += 1;
        self.applied += 1;
        Ok(staleness)
    }

    /// Restores the server from a persisted [`AsyncState`] (crash
    /// recovery): the global model plus the version and applied counters
    /// that staleness weighting and the stop condition depend on.
    pub fn restore(&mut self, state: &AsyncState) -> Result<()> {
        if state.model.len() != self.global.len() {
            return Err(TensorError::ShapeDataMismatch {
                expected: self.global.len(),
                actual: state.model.len(),
            });
        }
        self.global.copy_from_slice(&state.model);
        self.version = state.version;
        self.applied = state.applied;
        Ok(())
    }

    /// Current global model.
    pub fn global_model(&self) -> &[f32] {
        &self.global
    }

    /// Server model version (increments on every applied upload).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of uploads applied.
    pub fn applied(&self) -> usize {
        self.applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upload(value: f32, dim: usize) -> ClientUpload {
        ClientUpload {
            client_id: 0,
            primal: vec![value; dim],
            dual: None,
            num_samples: 1,
            local_loss: 0.0,
        }
    }

    #[test]
    fn fresh_update_mixes_with_alpha() {
        let mut s = AsyncFedServer::new(
            vec![0.0; 2],
            AsyncConfig {
                alpha: 0.5,
                ..AsyncConfig::default()
            },
        );
        let st = s.apply(&upload(1.0, 2), 0).unwrap();
        assert_eq!(st, 0);
        assert!(s.global_model().iter().all(|&w| (w - 0.5).abs() < 1e-6));
        assert_eq!(s.version(), 1);
    }

    #[test]
    fn stale_updates_are_downweighted() {
        let mut s = AsyncFedServer::new(
            vec![0.0; 2],
            AsyncConfig {
                alpha: 0.5,
                ..AsyncConfig::default()
            },
        );
        // Three fresh updates advance the version.
        for _ in 0..3 {
            s.apply(&upload(0.0, 2), s.version()).unwrap();
        }
        // A very stale upload (trained on version 0) moves w by α/4 only.
        let st = s.apply(&upload(1.0, 2), 0).unwrap();
        assert_eq!(st, 3);
        let expected = 0.5 / 4.0;
        assert!(s
            .global_model()
            .iter()
            .all(|&w| (w - expected).abs() < 1e-6));
    }

    #[test]
    fn staleness_zero_equals_plain_mixing_sequence() {
        let mut s = AsyncFedServer::new(
            vec![0.0; 1],
            AsyncConfig {
                alpha: 1.0,
                ..AsyncConfig::default()
            },
        );
        s.apply(&upload(2.0, 1), 0).unwrap();
        // α=1, fresh: w snaps to the upload.
        assert_eq!(s.global_model(), &[2.0]);
    }

    #[test]
    fn staleness_cap_rejects_ancient_uploads() {
        let mut s = AsyncFedServer::new(
            vec![0.0; 1],
            AsyncConfig {
                alpha: 0.5,
                max_staleness: Some(2),
            },
        );
        for _ in 0..3 {
            s.apply(&upload(0.0, 1), s.version()).unwrap();
        }
        // Staleness 3 > cap 2: refused, model and version untouched.
        let before = s.version();
        assert!(s.apply(&upload(1.0, 1), 0).is_err());
        assert_eq!(s.version(), before);
        assert_eq!(s.global_model(), &[0.0]);
        // Staleness exactly at the cap is still accepted.
        assert!(s.apply(&upload(1.0, 1), before - 2).is_ok());
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut s = AsyncFedServer::new(vec![0.0; 3], AsyncConfig::default());
        assert!(s.apply(&upload(1.0, 2), 0).is_err());
    }

    #[test]
    fn guard_blocks_nan_uploads_before_mixing() {
        let mut s = AsyncFedServer::new(vec![1.0; 2], AsyncConfig::default())
            .with_guard(UpdateGuardConfig::default());
        let mut evil = upload(1.0, 2);
        evil.primal[0] = f32::NAN;
        let before = s.version();
        assert!(s.apply(&evil, 0).is_err());
        assert_eq!(s.version(), before, "rejected upload must not advance");
        assert!(s.global_model().iter().all(|w| w.is_finite()));
        assert_eq!(s.guard_rejected(), 1);
        // A clean upload still goes through the same server.
        assert!(s.apply(&upload(0.5, 2), 0).is_ok());
    }

    #[test]
    fn guard_clips_scaled_async_uploads() {
        let cfg = UpdateGuardConfig {
            absolute_max_norm: Some(1.0),
            ..UpdateGuardConfig::default()
        };
        let mut s = AsyncFedServer::new(
            vec![0.0; 1],
            AsyncConfig {
                alpha: 1.0,
                ..AsyncConfig::default()
            },
        )
        .with_guard(cfg);
        // α=1, fresh: w snaps to the (clipped) upload.
        s.apply(&upload(100.0, 1), 0).unwrap();
        assert!((s.global_model()[0] - 1.0).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_panics() {
        AsyncFedServer::new(
            vec![0.0; 1],
            AsyncConfig {
                alpha: 0.0,
                ..AsyncConfig::default()
            },
        );
    }

    #[test]
    fn restore_resumes_version_and_staleness_math() {
        let mut s = AsyncFedServer::new(
            vec![0.0; 2],
            AsyncConfig {
                alpha: 0.5,
                ..AsyncConfig::default()
            },
        );
        s.restore(&AsyncState {
            applied: 4,
            version: 4,
            model: vec![1.0, 2.0],
        })
        .unwrap();
        assert_eq!(s.version(), 4);
        assert_eq!(s.applied(), 4);
        assert_eq!(s.global_model(), &[1.0, 2.0]);
        // An upload trained against version 0 is now 4 versions stale.
        let st = s.apply(&upload(1.0, 2), 0).unwrap();
        assert_eq!(st, 4);
        // Dimension mismatch is refused without touching state.
        assert!(s
            .restore(&AsyncState {
                applied: 0,
                version: 0,
                model: vec![0.0; 3],
            })
            .is_err());
        assert_eq!(s.version(), 5);
    }
}
