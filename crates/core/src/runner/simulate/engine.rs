//! The event-driven virtual-clock federation engine.
//!
//! One thread, one binary heap, zero threads-per-client: each round the
//! engine samples a cohort out of the [`Population`], schedules broadcast
//! and upload *events* on a virtual clock — latencies come from the
//! calibrated [`GrpcLinkModel`] scaled by each descriptor's link and
//! speed multipliers — and drives the same [`PhaseMachine`] the real
//! transport runners use through `Select → Collect → Aggregate →
//! Publish` in simulated time. A million-client, hundred-round
//! federation is just a few hundred thousand heap operations, so it
//! simulates in seconds while producing the full observability surface:
//! per-phase spans (with *virtual* durations), per-round
//! [`RoundRecord`]s with cohort accounting, and a [`SimReport`] summary
//! for `results/BENCH_sim.json`.
//!
//! Everything is derived from `SimConfig::seed` through the shared
//! splitmix64 stream, so a run is a pure function of its config:
//! same config → same cohorts, same event timeline, same final model,
//! bit for bit.

use super::population::Population;
use super::sampler::CohortSampler;
use crate::api::ClientUpload;
use crate::error::Result;
use crate::metrics::{History, RoundRecord};
use crate::runner::control::{RoundControlConfig, RoundController};
use crate::runner::phases::{PhaseMachine, UploadVerdict};
use appfl_comm::netsim::GrpcLinkModel;
use appfl_comm::policy::{lane2, lane3, seeded_unit};
use appfl_telemetry::{RunObserver, Telemetry};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

/// Knobs of one simulated federation. A run is a pure function of this
/// struct: every trait, latency and cohort derives from `seed`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Registered clients (the registry holds descriptors, not threads —
    /// 100k–1M is the intended range).
    pub population: usize,
    /// Rounds to simulate.
    pub rounds: usize,
    /// Cohort target per round (partial participation).
    pub cohort: usize,
    /// Master seed: population traits, cohort sampling, latency jitter
    /// and synthetic updates all derive from it.
    pub seed: u64,
    /// Synthetic model dimension (kept small — the engine measures
    /// coordination, not floating-point throughput).
    pub model_dim: usize,
    /// Wire payload per model transfer, in bytes (drives the link model;
    /// the paper's CNN update is ~2.4 MB).
    pub payload_bytes: usize,
    /// Collect-phase deadline in virtual seconds from round start;
    /// uploads landing later are dropped (the straggler model).
    pub round_timeout_secs: f64,
    /// Minimum arrived uploads for the round to aggregate; below it the
    /// model carries over unchanged.
    pub min_quorum: usize,
    /// Eligibility threshold fed to the cohort sampler.
    pub min_battery: f32,
    /// Reference-device local-update seconds (scaled per client by its
    /// speed multiplier); defaults to the paper's V100 calibration.
    pub base_local_secs: f64,
    /// Adaptive round control: over-selected dispatch, a collect target
    /// of `cohort` accepted uploads, quantile-tracked deadlines (whose
    /// min/max clamp *replaces* `round_timeout_secs`) and hedged
    /// re-dispatch to standby clients. `None` reproduces the fixed-
    /// deadline engine bit for bit.
    #[serde(default)]
    pub round_control: Option<RoundControlConfig>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            population: 100_000,
            rounds: 10,
            cohort: 128,
            seed: 42,
            model_dim: 32,
            payload_bytes: 2_400_000,
            round_timeout_secs: 45.0,
            min_quorum: 1,
            min_battery: 0.2,
            base_local_secs: appfl_comm::cluster::V100.secs_per_client_update,
            round_control: None,
        }
    }
}

/// What a finished simulation measured — the `BENCH_sim.json` payload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Registered clients.
    pub population: usize,
    /// Rounds requested (all complete; a below-quorum round completes
    /// without aggregating).
    pub rounds: usize,
    /// Rounds that met quorum and updated the global model.
    pub rounds_aggregated: usize,
    /// Heap events processed (broadcast + upload arrivals).
    pub events_processed: u64,
    /// Uploads accepted into aggregation across all rounds.
    pub uploads_accepted: usize,
    /// Events discarded for landing past their round's deadline.
    pub events_late: u64,
    /// Virtual seconds the federation spanned.
    pub virtual_secs: f64,
    /// Wall seconds the event loop took (excludes registry synthesis).
    pub wall_secs: f64,
    /// `events_processed / wall_secs` — the headline throughput.
    pub events_per_sec: f64,
    /// L2 norm of the final global model — the determinism fingerprint
    /// (same config ⇒ same norm, bit for bit).
    pub final_model_norm: f64,
    /// Hedged re-dispatches sent across all rounds (0 without round
    /// control).
    #[serde(default)]
    pub hedges_sent: u64,
    /// Over-selected uploads that were in flight and on time when their
    /// round's collect target closed — the redundancy paid for the early
    /// close (0 without round control).
    #[serde(default)]
    pub overselect_waste: u64,
}

/// One scheduled arrival on the virtual clock.
#[derive(Debug, Clone, Copy)]
enum SimEventKind {
    /// The round's broadcast reaches the client; local training starts.
    BroadcastArrives { client: u64 },
    /// The client's upload reaches the coordinator.
    UploadArrives { client: u64 },
}

#[derive(Debug, Clone, Copy)]
struct SimEvent {
    time: f64,
    /// Schedule order — the total-order tiebreak for identical times.
    seq: u64,
    kind: SimEventKind,
}

impl PartialEq for SimEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time.total_cmp(&other.time).is_eq() && self.seq == other.seq
    }
}
impl Eq for SimEvent {}
impl PartialOrd for SimEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for SimEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

/// The engine: a materialised [`Population`], a [`CohortSampler`], the
/// calibrated link model, and the event loop that walks a
/// [`PhaseMachine`] through every round on the virtual clock.
pub struct SimEngine {
    cfg: SimConfig,
    population: Population,
    sampler: CohortSampler,
    link: GrpcLinkModel,
    telemetry: Telemetry,
    history: History,
    observer: Option<RunObserver>,
}

/// Deterministic per-message traffic multiplier in `[0.8, 1.2)`.
fn jitter(seed: u64, client: u64, round: u64, salt: u64) -> f64 {
    0.8 + 0.4 * seeded_unit(seed, lane3(client, round, salt))
}

impl SimEngine {
    /// Builds the engine, synthesising the client registry (the only
    /// population-sized cost; the event loop is cohort-sized).
    pub fn new(cfg: SimConfig, telemetry: &Telemetry) -> Self {
        let population = Population::synthesize(cfg.seed, cfg.population);
        let sampler = CohortSampler {
            seed: cfg.seed ^ 0x5A5A_5A5A,
            min_battery: cfg.min_battery,
            ..CohortSampler::default()
        };
        SimEngine {
            cfg,
            population,
            sampler,
            link: GrpcLinkModel::default(),
            telemetry: telemetry.clone(),
            history: History {
                algorithm: "SimFedAvg".into(),
                dataset: "synthetic".into(),
                epsilon: f64::INFINITY,
                rounds: Vec::new(),
            },
            observer: None,
        }
    }

    /// Attaches a [`RunObserver`] to the simulated federation: every
    /// published round feeds a [`appfl_telemetry::RoundSnapshot`] through
    /// the observer's series, detectors and SLO policy — at million-client
    /// scale, pair this with a sampling stride
    /// ([`RunObserver::with_stride`]) so the series stays bounded while
    /// the streaming wall-time histogram still sees every round.
    pub fn with_observer(mut self, observer: RunObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Detaches the observer after a run for inspection (anomalies,
    /// SLO burn rates, sampled series rows).
    pub fn take_observer(&mut self) -> Option<RunObserver> {
        self.observer.take()
    }

    /// Per-round records of the last [`SimEngine::run`].
    pub fn history(&self) -> &History {
        &self.history
    }

    /// The registry the engine simulates over.
    pub fn population(&self) -> &Population {
        &self.population
    }

    /// The client's synthetic local update: a half-step from the global
    /// model toward the client's private optimum — a shared population
    /// centre plus a per-client offset, so the federation visibly
    /// converges from the zero model toward the centre — with a
    /// per-client sample count for the weighted fold.
    fn synthesize_upload(&self, client: u64, model: &[f32]) -> ClientUpload {
        let seed = self.cfg.seed ^ 0x5EED_F00D;
        let mut primal = Vec::with_capacity(model.len());
        let mut loss = 0.0f32;
        for (j, &w) in model.iter().enumerate() {
            let centre = seeded_unit(seed, lane2(j as u64, 0xC3)) as f32 - 0.5;
            let private = seeded_unit(seed, lane3(client, j as u64, 0xA7)) as f32 - 0.5;
            let opt = centre + private;
            loss += (w - opt) * (w - opt);
            primal.push(w + 0.5 * (opt - w));
        }
        let num_samples = 20 + (seeded_unit(seed, lane2(client, 0xB2)) * 480.0) as usize;
        ClientUpload {
            client_id: client as usize,
            primal,
            dual: None,
            num_samples,
            local_loss: loss / model.len().max(1) as f32,
        }
    }

    /// Runs the federation: `cfg.rounds` rounds of sample → broadcast →
    /// collect → aggregate → publish, entirely on the virtual clock.
    /// Phase spans, round records and the summary all come back with
    /// *simulated* durations; only the report's `wall_secs` /
    /// `events_per_sec` measure the engine itself.
    pub fn run(&mut self) -> Result<SimReport> {
        let cfg = self.cfg;
        let wall0 = Instant::now();
        let mut machine =
            PhaseMachine::new(cfg.population, &self.telemetry, None).virtual_clock(0.0);
        if let Some(obs) = self.observer.take() {
            machine = machine.with_observer(obs);
        }
        machine.run_started("SimFedAvg", "synthetic", f64::INFINITY, cfg.rounds)?;
        self.history.rounds.clear();
        let mut model = vec![0.0f32; cfg.model_dim];
        let mut now = 0.0f64;
        let mut events: u64 = 0;
        let mut late: u64 = 0;
        let mut uploads_accepted = 0usize;
        let mut rounds_aggregated = 0usize;
        let mut controller = cfg.round_control.map(RoundController::new);
        let mut hedges_sent = 0u64;
        let mut overselect_waste = 0u64;

        for round in 1..=cfg.rounds {
            // With round control the sampler draws one larger pool —
            // the over-selected dispatch plus a standby reserve for
            // hedging — and the controller splits it; without it the
            // draw is exactly the legacy cohort (bit-identical stream).
            let mut standby: Vec<u64> = Vec::new();
            let mut target: Option<usize> = None;
            let (cohort, stats) = match controller.as_ref() {
                Some(c) => {
                    let t = cfg.cohort.max(1);
                    let dispatch_want = (((1.0 + c.config().overselect.max(0.0)) * t as f64).ceil()
                        as usize)
                        .max(t);
                    let (pool, stats) =
                        self.sampler
                            .sample(&self.population, round, now, dispatch_want + t);
                    let ids: Vec<usize> = pool.iter().map(|&id| id as usize).collect();
                    let plan = c.plan(&ids, t);
                    standby = plan.standby.iter().map(|&p| p as u64).collect();
                    target = Some(plan.target);
                    (plan.dispatch.iter().map(|&p| p as u64).collect(), stats)
                }
                None => self
                    .sampler
                    .sample(&self.population, round, now, cfg.cohort),
            };
            let mut active: Vec<usize> = cohort.iter().map(|&id| id as usize).collect();
            active.extend(standby.iter().map(|&id| id as usize));
            machine.begin_round(round, &active, &model, None)?;

            // Select: the coordinator streams one broadcast per member
            // (per-message overhead each); arrival is the send instant
            // plus the client's downlink time.
            let mut heap: BinaryHeap<Reverse<SimEvent>> =
                BinaryHeap::with_capacity(cohort.len() * 2);
            let mut seq = 0u64;
            let base_wire = self.link.base_message_time(cfg.payload_bytes);
            for (i, &id) in cohort.iter().enumerate() {
                machine.expect_upload(id as usize)?;
                let sent = now + (i as f64 + 1.0) * self.link.per_message_overhead;
                let d = self.population.get(id);
                let down = base_wire * d.link as f64 * jitter(cfg.seed, id, round as u64, 0xD0);
                heap.push(Reverse(SimEvent {
                    time: sent + down,
                    seq,
                    kind: SimEventKind::BroadcastArrives { client: id },
                }));
                seq += 1;
            }
            let select_end = now + cohort.len() as f64 * self.link.per_message_overhead;
            machine.advance_to(select_end);
            machine.begin_collect()?;
            if let Some(t) = target {
                machine.set_collect_target(t);
            }

            // Collect: drain arrivals until the cohort is complete or
            // the deadline passes. Every pop is one simulated event.
            // The controller's adaptive deadline (min/max-clamped
            // smoothed quantile) replaces the fixed timeout when set.
            let deadline_secs = controller
                .as_ref()
                .map_or(cfg.round_timeout_secs, RoundController::deadline_secs);
            if controller.is_some() {
                self.telemetry
                    .gauge("adaptive_deadline", deadline_secs, Some(round as u64), None);
            }
            let deadline = now + deadline_secs;
            let hedge_at = controller.as_ref().map_or(f64::INFINITY, |c| {
                select_end + c.hedge_check_at(deadline_secs)
            });
            let mut hedged = standby.is_empty();
            let mut hedged_this_round = 0usize;
            let mut accepted = 0usize;
            let mut last_accept = select_end;
            let mut local_max = 0.0f64;
            while let Some(Reverse(ev)) = heap.pop() {
                events += 1;
                // One hedge decision per round, at the first arrival past
                // the check instant: project the accept rate forward and
                // widen the cohort from the standby reserve if it falls
                // short of the target.
                if !hedged && ev.time >= hedge_at {
                    hedged = true;
                    if let Some(c) = controller.as_ref() {
                        let elapsed = (ev.time - select_end).max(1.0e-9);
                        let short = c.hedge_shortfall(
                            elapsed,
                            deadline_secs,
                            accepted,
                            target.unwrap_or(0),
                        );
                        let wave = (((1.0 + c.config().overselect.max(0.0)) * short as f64).ceil()
                            as usize)
                            .min(standby.len());
                        for (k, &id) in standby[..wave].iter().enumerate() {
                            machine.expect_upload(id as usize)?;
                            let sent = ev.time + (k as f64 + 1.0) * self.link.per_message_overhead;
                            let d = self.population.get(id);
                            let down = base_wire
                                * d.link as f64
                                * jitter(cfg.seed, id, round as u64, 0xD1);
                            heap.push(Reverse(SimEvent {
                                time: sent + down,
                                seq,
                                kind: SimEventKind::BroadcastArrives { client: id },
                            }));
                            seq += 1;
                        }
                        standby.drain(..wave);
                        if wave > 0 {
                            hedged_this_round = wave;
                            hedges_sent += wave as u64;
                            self.telemetry.count(
                                "hedges_sent",
                                wave as u64,
                                Some(round as u64),
                                None,
                            );
                        }
                    }
                }
                if ev.time > deadline {
                    late += 1;
                    continue;
                }
                match ev.kind {
                    SimEventKind::BroadcastArrives { client } => {
                        let d = self.population.get(client);
                        let compute = cfg.base_local_secs * d.speed as f64;
                        let up = base_wire
                            * d.link as f64
                            * jitter(cfg.seed, client, round as u64, 0x01);
                        heap.push(Reverse(SimEvent {
                            time: ev.time + compute + up,
                            seq,
                            kind: SimEventKind::UploadArrives { client },
                        }));
                        seq += 1;
                    }
                    SimEventKind::UploadArrives { client } => {
                        machine.advance_to(ev.time);
                        let upload = self.synthesize_upload(client, &model);
                        if machine.offer_upload(client as usize, round, upload)?
                            == UploadVerdict::Accepted
                        {
                            last_accept = ev.time;
                            accepted += 1;
                            if let Some(c) = controller.as_mut() {
                                c.observe_latency(ev.time - select_end);
                            }
                            let d = self.population.get(client);
                            local_max = local_max.max(cfg.base_local_secs * d.speed as f64);
                        }
                        if machine.collect_complete() {
                            break;
                        }
                    }
                }
            }
            // Uploads still in flight — and on time — when the target
            // closed the phase are the price of over-selection.
            let mut waste_this_round = 0u64;
            if controller.is_some() {
                while let Some(Reverse(ev)) = heap.pop() {
                    if matches!(ev.kind, SimEventKind::UploadArrives { .. }) && ev.time <= deadline
                    {
                        waste_this_round += 1;
                    }
                }
                waste_this_round += machine.late_count() as u64;
                if waste_this_round > 0 {
                    overselect_waste += waste_this_round;
                    self.telemetry.count(
                        "overselect_waste",
                        waste_this_round,
                        Some(round as u64),
                        None,
                    );
                }
            }
            let collect_end = if machine.collect_complete() {
                last_accept
            } else {
                deadline
            };
            machine.advance_to(collect_end);
            let report = machine.close_collection(None)?;
            let arrived = report.arrived;
            if let Some(c) = controller.as_mut() {
                c.finish_round();
            }
            let dispatched = cohort.len() + hedged_this_round;

            // Aggregate: sample-weighted mean of the (already id-sorted)
            // cohort, with a nominal per-upload fold cost.
            let agg_secs = 1.0e-4 * arrived as f64;
            machine.advance_to(collect_end + agg_secs);
            let quorum_met = arrived >= cfg.min_quorum.max(1);
            let mut train_loss = 0.0f32;
            if quorum_met {
                let total: f32 = report.uploads.iter().map(|u| u.num_samples as f32).sum();
                let mut next = vec![0.0f32; cfg.model_dim];
                for u in &report.uploads {
                    let wgt = u.num_samples as f32 / total;
                    for (n, &p) in next.iter_mut().zip(&u.primal) {
                        *n += wgt * p;
                    }
                    train_loss += u.local_loss;
                }
                train_loss /= arrived.max(1) as f32;
                model = next;
                machine.aggregated(Some(&model))?;
                rounds_aggregated += 1;
            } else {
                machine.aggregated(None)?;
            }
            let publish_end = collect_end + agg_secs + 1.0e-3;
            machine.advance_to(publish_end);

            let record = RoundRecord {
                round,
                train_loss,
                upload_bytes: arrived * cfg.payload_bytes,
                compute_secs: local_max + agg_secs,
                comm_secs: (collect_end - select_end - local_max).max(0.0) + (select_end - now),
                dropped_clients: dispatched.saturating_sub(arrived),
                local_update_secs: local_max,
                aggregate_secs: agg_secs,
                cohort_size: dispatched,
                cohort_offline: stats.offline,
                cohort_ineligible: stats.ineligible,
                ..RoundRecord::default()
            };
            let participants: Vec<usize> = report.uploads.iter().map(|u| u.client_id).collect();
            machine.published(&record, &[], &participants)?;
            self.history.rounds.push(record);
            uploads_accepted += arrived;
            now = publish_end;
        }
        machine.finish_run()?;
        self.observer = machine.take_observer();

        let wall = wall0.elapsed().as_secs_f64();
        let final_model_norm = model
            .iter()
            .map(|&x| (x as f64) * (x as f64))
            .sum::<f64>()
            .sqrt();
        Ok(SimReport {
            population: cfg.population,
            rounds: cfg.rounds,
            rounds_aggregated,
            events_processed: events,
            uploads_accepted,
            events_late: late,
            virtual_secs: now,
            wall_secs: wall,
            events_per_sec: events as f64 / wall.max(1.0e-9),
            final_model_norm,
            hedges_sent,
            overselect_waste,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use appfl_telemetry::MemorySink;
    use std::sync::Arc;

    fn quick_cfg() -> SimConfig {
        SimConfig {
            population: 5_000,
            rounds: 5,
            cohort: 32,
            seed: 7,
            ..SimConfig::default()
        }
    }

    #[test]
    fn simulation_is_a_pure_function_of_its_config() {
        let telemetry = Telemetry::disabled();
        let mut a = SimEngine::new(quick_cfg(), &telemetry);
        let mut b = SimEngine::new(quick_cfg(), &telemetry);
        let ra = a.run().unwrap();
        let rb = b.run().unwrap();
        assert_eq!(ra.events_processed, rb.events_processed);
        assert_eq!(ra.uploads_accepted, rb.uploads_accepted);
        assert_eq!(
            ra.final_model_norm, rb.final_model_norm,
            "bit-identical fold"
        );
        assert_eq!(a.history().rounds, b.history().rounds);
        let mut c = SimEngine::new(
            SimConfig {
                seed: 8,
                ..quick_cfg()
            },
            &telemetry,
        );
        let rc = c.run().unwrap();
        assert_ne!(ra.final_model_norm, rc.final_model_norm, "seed matters");
    }

    #[test]
    fn rounds_complete_with_cohort_accounting_and_convergence() {
        let telemetry = Telemetry::disabled();
        let mut e = SimEngine::new(quick_cfg(), &telemetry);
        let report = e.run().unwrap();
        assert_eq!(e.history().rounds.len(), 5);
        assert!(report.rounds_aggregated >= 1, "some round must aggregate");
        assert!(report.uploads_accepted > 0);
        assert!(report.virtual_secs > 0.0);
        assert!(report.events_per_sec > 0.0);
        for r in &e.history().rounds {
            assert!(r.cohort_size <= 32);
            assert_eq!(
                r.cohort_size,
                r.dropped_clients + r.upload_bytes / quick_cfg().payload_bytes
            );
        }
        // The synthetic objective contracts toward the population mean:
        // late-round train loss sits below the first aggregated round's.
        let losses: Vec<f32> = e
            .history()
            .rounds
            .iter()
            .filter(|r| r.train_loss > 0.0)
            .map(|r| r.train_loss)
            .collect();
        if losses.len() >= 2 {
            assert!(
                losses.last().unwrap() < losses.first().unwrap(),
                "loss should fall: {losses:?}"
            );
        }
    }

    #[test]
    fn a_tight_deadline_drops_stragglers_not_the_round() {
        let telemetry = Telemetry::disabled();
        let cfg = SimConfig {
            // Reference device takes ~7s; a 10s deadline cuts the slow tail.
            round_timeout_secs: 10.0,
            ..quick_cfg()
        };
        let mut e = SimEngine::new(cfg, &telemetry);
        let report = e.run().unwrap();
        assert!(report.events_late > 0, "tight deadline must drop someone");
        let dropped: usize = e.history().rounds.iter().map(|r| r.dropped_clients).sum();
        assert!(dropped > 0);
        assert!(report.uploads_accepted > 0, "fast clients still make it");
    }

    #[test]
    fn phase_spans_carry_virtual_durations() {
        let sink = Arc::new(MemorySink::new());
        let telemetry = Telemetry::new(sink.clone());
        let cfg = SimConfig {
            rounds: 2,
            ..quick_cfg()
        };
        SimEngine::new(cfg, &telemetry).run().unwrap();
        let events = sink.events();
        for name in [
            "phase/select",
            "phase/collect",
            "phase/aggregate",
            "phase/publish",
        ] {
            let spans: Vec<f64> = events
                .iter()
                .filter(|e| e.name == name)
                .map(|e| e.secs.expect("span has secs"))
                .collect();
            assert_eq!(spans.len(), 2, "{name}: one span per round");
            assert!(spans.iter().all(|&s| s >= 0.0));
        }
        // Collect dominates: local training is seconds, folding is µs.
        let collect = events
            .iter()
            .find(|e| e.name == "phase/collect")
            .and_then(|e| e.secs)
            .unwrap();
        assert!(
            collect > 1.0,
            "virtual collect spans simulated seconds, got {collect}"
        );
    }

    #[test]
    fn round_control_beats_both_fixed_deadline_regimes() {
        // A fixed deadline forces a bad trade: tight drops stragglers,
        // generous waits for the slowest upload. The controller closes
        // Collect at the first `cohort` accepted uploads out of an
        // over-selected dispatch, so it takes neither penalty.
        let telemetry = Telemetry::disabled();
        let tight = SimConfig {
            round_timeout_secs: 10.0,
            ..quick_cfg()
        };
        let generous = SimConfig {
            round_timeout_secs: 45.0,
            ..quick_cfg()
        };
        let adaptive = SimConfig {
            round_control: Some(RoundControlConfig::default()),
            ..quick_cfg()
        };
        let rt = SimEngine::new(tight, &telemetry).run().unwrap();
        let rg = SimEngine::new(generous, &telemetry).run().unwrap();
        let ra = SimEngine::new(adaptive, &telemetry).run().unwrap();
        assert!(rt.events_late > 0, "the tight deadline must drop someone");
        assert!(
            ra.events_late < rt.events_late,
            "adaptive late drops {} must undercut the tight deadline's {}",
            ra.events_late,
            rt.events_late
        );
        assert!(
            ra.uploads_accepted >= rt.uploads_accepted,
            "over-selection must not lose uploads: {} vs {}",
            ra.uploads_accepted,
            rt.uploads_accepted
        );
        assert!(
            ra.virtual_secs < rg.virtual_secs,
            "closing at the target must beat waiting out stragglers: {} vs {}",
            ra.virtual_secs,
            rg.virtual_secs
        );
        // Determinism holds on the adaptive path too.
        let rb = SimEngine::new(adaptive, &telemetry).run().unwrap();
        assert_eq!(ra.final_model_norm, rb.final_model_norm);
        assert_eq!(ra.hedges_sent, rb.hedges_sent);
        assert_eq!(ra.overselect_waste, rb.overselect_waste);
    }

    #[test]
    fn an_early_hedge_check_re_dispatches_to_standby_clients() {
        let telemetry = Telemetry::disabled();
        let cfg = SimConfig {
            round_timeout_secs: 10.0,
            round_control: Some(RoundControlConfig {
                max_deadline_secs: 10.0,
                // Check at 2.5s — before any ~7s local update can land,
                // so the projection is zero and the hedge must fire.
                hedge_fraction: 0.25,
                ..RoundControlConfig::default()
            }),
            ..quick_cfg()
        };
        let report = SimEngine::new(cfg, &telemetry).run().unwrap();
        assert!(
            report.hedges_sent > 0,
            "projection of zero accepts must hedge"
        );
    }

    #[test]
    fn disabled_round_control_serializes_as_none_and_stays_copy() {
        let a = SimConfig::default();
        let b = a; // Copy
        assert_eq!(a, b);
        assert!(a.round_control.is_none());
    }

    #[test]
    fn an_impossible_quorum_skips_aggregation_but_finishes() {
        let telemetry = Telemetry::disabled();
        let cfg = SimConfig {
            min_quorum: 10_000, // larger than any cohort
            ..quick_cfg()
        };
        let mut e = SimEngine::new(cfg, &telemetry);
        let report = e.run().unwrap();
        assert_eq!(report.rounds_aggregated, 0);
        assert_eq!(report.final_model_norm, 0.0, "model never moves");
        assert_eq!(e.history().rounds.len(), 5, "rounds still publish");
    }
}
