//! Event-driven virtual-clock simulation of cross-device federations.
//!
//! The transport runners in this crate move real bytes between real
//! threads, which caps an experiment at hundreds of clients. This module
//! is the other regime: **coordination at population scale**. It splits
//! the problem into three pieces —
//!
//! * [`population`] — a sharded registry of 100k–1M lightweight
//!   [`ClientDescriptor`]s (speed/link multipliers, availability traces,
//!   eligibility predicates), synthesised procedurally from one seed;
//! * [`sampler`] — seeded per-round partial-participation cohort
//!   sampling over that registry, with full rejection accounting;
//! * [`engine`] — a binary-heap event queue on a virtual clock that
//!   drives the *same* [`PhaseMachine`](crate::runner::phases) as the
//!   real runners through `Select → Collect → Aggregate → Publish`,
//!   with latencies from the calibrated comm-cost models.
//!
//! No threads per client, no real waiting: a 1M-client, 100-round
//! federation is a few hundred thousand heap events and simulates in
//! seconds, while still emitting per-phase telemetry spans and
//! per-round records with cohort accounting. `bench_sim` wraps
//! [`SimEngine`] into `results/BENCH_sim.json`.

pub mod engine;
pub mod population;
pub mod sampler;

pub use engine::{SimConfig, SimEngine, SimReport};
pub use population::{ClientDescriptor, Population, SHARD_SIZE};
pub use sampler::{CohortSampler, SampleStats};
