//! The cross-device population: a sharded registry of lightweight client
//! descriptors.
//!
//! A real deployment's coordinator never holds a million live client
//! objects — it holds a directory of *descriptions* and talks to the few
//! thousand devices that check in per round. [`ClientDescriptor`] is that
//! description: ~32 bytes of device traits (speed and link multipliers,
//! an availability duty cycle, a battery level), derived *procedurally*
//! from `(population seed, client id)` through the shared splitmix64
//! primitive — so a billion-device population costs nothing to describe
//! and any subset replays bit-identically. [`Population`] materialises
//! the descriptors into fixed-size shards (built in parallel) for cache
//! friendly scans, the way a sharded registry service would partition
//! the id space.

use appfl_comm::policy::{lane2, seeded_unit};
use rayon::prelude::*;

/// Shard width of the registry: descriptors for ids `[k·8192, (k+1)·8192)`
/// live in shard `k`.
pub const SHARD_SIZE: usize = 8192;

/// One device's traits — everything the coordinator needs to select it,
/// predict its round timing, and check its eligibility. Copy, ~32 bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientDescriptor {
    /// Registry id (stable across runs for a given population seed).
    pub id: u64,
    /// Local-update duration multiplier: 1.0 is the reference device,
    /// the long tail stretches past 4× (cheap phones).
    pub speed: f32,
    /// Network latency multiplier over the baseline link model.
    pub link: f32,
    /// Availability cycle length in seconds (daily-ish rhythms for some
    /// devices, short charger-visit cycles for others).
    pub period_secs: f32,
    /// Fraction of the cycle the device is online, in `[0.05, 0.95]`.
    pub duty: f32,
    /// Phase offset of the cycle, in `[0, 1)`.
    pub phase: f32,
    /// Battery level in `[0, 1]` — the eligibility predicate's input.
    pub battery: f32,
}

impl ClientDescriptor {
    /// Derives client `id`'s traits from the population seed — a pure
    /// function, so descriptors never need to be stored to be replayed.
    pub fn synthesize(pop_seed: u64, id: u64) -> Self {
        let draw = |lane: u64| seeded_unit(pop_seed, lane2(id, lane)) as f32;
        // Long-tailed speed: most devices near 1×, a tail out to ~4.5×.
        let u = draw(1).min(0.999_9);
        let speed = 0.5 + 4.0 * u * u * u;
        let link = 0.5 + 2.5 * draw(2);
        // Two availability regimes: day-scale cycles and charger visits.
        let period_secs = if draw(3) < 0.5 {
            3_600.0 + 82_800.0 * draw(4) // 1h .. 24h
        } else {
            600.0 + 6_600.0 * draw(4) // 10min .. 2h
        };
        let duty = 0.05 + 0.9 * draw(5);
        let phase = draw(6);
        let battery = draw(7);
        ClientDescriptor {
            id,
            speed,
            link,
            period_secs,
            duty,
            phase,
            battery,
        }
    }

    /// Whether the device is online at virtual time `t` (seconds): inside
    /// the first `duty` fraction of its shifted availability cycle.
    pub fn available_at(&self, t: f64) -> bool {
        let cycle = (t / self.period_secs as f64 + self.phase as f64).fract();
        cycle < self.duty as f64
    }

    /// The min-battery style eligibility predicate: whether the device
    /// may be asked to train at all.
    pub fn eligible(&self, min_battery: f32) -> bool {
        self.battery >= min_battery
    }
}

/// The sharded client registry: `size` descriptors in `SHARD_SIZE`-wide
/// shards, synthesized in parallel from one seed.
pub struct Population {
    seed: u64,
    size: usize,
    shards: Vec<Vec<ClientDescriptor>>,
}

impl Population {
    /// Materialises the registry for ids `0..size`.
    pub fn synthesize(seed: u64, size: usize) -> Self {
        let num_shards = size.div_ceil(SHARD_SIZE).max(1);
        let shards: Vec<Vec<ClientDescriptor>> = (0..num_shards)
            .into_par_iter()
            .map(|s| {
                let lo = s * SHARD_SIZE;
                let hi = ((s + 1) * SHARD_SIZE).min(size);
                (lo..hi)
                    .map(|id| ClientDescriptor::synthesize(seed, id as u64))
                    .collect()
            })
            .collect();
        Population { seed, size, shards }
    }

    /// The population seed descriptors derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of registered clients.
    pub fn len(&self) -> usize {
        self.size
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Number of shards backing the registry.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Client `id`'s descriptor. Panics if `id >= len()`.
    pub fn get(&self, id: u64) -> &ClientDescriptor {
        let id = id as usize;
        &self.shards[id / SHARD_SIZE][id % SHARD_SIZE]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesis_is_deterministic_and_shard_transparent() {
        let pop = Population::synthesize(42, 3 * SHARD_SIZE + 17);
        assert_eq!(pop.len(), 3 * SHARD_SIZE + 17);
        assert_eq!(pop.shard_count(), 4);
        for id in [0u64, 8191, 8192, 20_000] {
            assert_eq!(*pop.get(id), ClientDescriptor::synthesize(42, id));
            assert_eq!(pop.get(id).id, id);
        }
        let other = Population::synthesize(43, 100);
        assert_ne!(*other.get(7), *pop.get(7), "seed changes the traits");
    }

    #[test]
    fn traits_land_in_their_documented_ranges() {
        for id in 0..2000u64 {
            let d = ClientDescriptor::synthesize(9, id);
            assert!((0.5..=4.5).contains(&d.speed), "speed {}", d.speed);
            assert!((0.5..=3.0).contains(&d.link));
            assert!((600.0..=86_400.0).contains(&d.period_secs));
            assert!((0.05..=0.95).contains(&d.duty));
            assert!((0.0..1.0).contains(&d.phase));
            assert!((0.0..1.0).contains(&d.battery));
        }
    }

    #[test]
    fn availability_follows_the_duty_cycle() {
        let d = ClientDescriptor {
            id: 0,
            speed: 1.0,
            link: 1.0,
            period_secs: 100.0,
            duty: 0.25,
            phase: 0.0,
            battery: 1.0,
        };
        assert!(d.available_at(0.0));
        assert!(d.available_at(24.9));
        assert!(!d.available_at(25.1));
        assert!(!d.available_at(99.0));
        assert!(d.available_at(100.5), "cycle repeats");
        // Online fraction over a dense sweep tracks the duty factor.
        let online = (0..10_000)
            .filter(|i| d.available_at(*i as f64 * 0.01))
            .count();
        assert!((2_400..=2_600).contains(&online), "online {online}");
    }

    #[test]
    fn eligibility_is_a_battery_threshold() {
        let mut d = ClientDescriptor::synthesize(1, 1);
        d.battery = 0.3;
        assert!(d.eligible(0.2));
        assert!(!d.eligible(0.5));
    }
}
