//! Per-round partial-participation cohort sampling.
//!
//! Each round the coordinator asks for a small cohort out of the
//! registry: clients that are *online* at the round's start (their
//! availability trace says so) and *eligible* (battery above threshold).
//! [`CohortSampler`] does seeded rejection sampling — uniform id draws
//! from the shared splitmix64 stream, screened against the predicates,
//! deduplicated, with a bounded attempt budget so a mostly-offline
//! population terminates instead of spinning. Same `(seed, round, time)`
//! → same cohort, bit-for-bit, which is what makes a million-client
//! simulation replayable.

use super::population::Population;
use appfl_comm::policy::{lane3, seeded_unit};

/// Seeded rejection sampler over a [`Population`].
#[derive(Debug, Clone, Copy)]
pub struct CohortSampler {
    /// Sampling seed (independent of the population seed: the same fleet
    /// can be sampled many different ways).
    pub seed: u64,
    /// Eligibility threshold: clients below this battery level are never
    /// selected.
    pub min_battery: f32,
    /// Attempt budget per requested slot: sampling gives up after
    /// `attempts_per_slot × target + 64` draws, returning a short cohort
    /// (mostly-offline fleets are the normal case, not an error).
    pub attempts_per_slot: usize,
}

impl Default for CohortSampler {
    fn default() -> Self {
        CohortSampler {
            seed: 0,
            min_battery: 0.2,
            attempts_per_slot: 32,
        }
    }
}

/// What one round's sampling pass saw — the per-cohort accounting the
/// round record carries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SampleStats {
    /// Uniform draws made (including rejected and duplicate ones).
    pub drawn: usize,
    /// Draws rejected because the client was offline at round start.
    pub offline: usize,
    /// Draws rejected by the eligibility predicate.
    pub ineligible: usize,
    /// Draws rejected as already-selected duplicates.
    pub duplicates: usize,
}

impl CohortSampler {
    /// Samples up to `target` distinct, online, eligible clients for
    /// `round` starting at virtual time `now`. The cohort comes back
    /// sorted by id (the coordinator's reproducible-fold order) along
    /// with the pass's [`SampleStats`].
    pub fn sample(
        &self,
        population: &Population,
        round: usize,
        now: f64,
        target: usize,
    ) -> (Vec<u64>, SampleStats) {
        let mut stats = SampleStats::default();
        let n = population.len() as u64;
        if n == 0 || target == 0 {
            return (Vec::new(), stats);
        }
        let budget = self.attempts_per_slot.saturating_mul(target) + 64;
        let mut cohort: Vec<u64> = Vec::with_capacity(target);
        let mut picked = std::collections::HashSet::with_capacity(target * 2);
        for attempt in 0..budget {
            if cohort.len() >= target {
                break;
            }
            stats.drawn += 1;
            let u = seeded_unit(self.seed, lane3(round as u64, attempt as u64, 0x5A));
            let id = ((u * n as f64) as u64).min(n - 1);
            if !picked.insert(id) {
                stats.duplicates += 1;
                continue;
            }
            let d = population.get(id);
            if !d.eligible(self.min_battery) {
                stats.ineligible += 1;
                continue;
            }
            if !d.available_at(now) {
                stats.offline += 1;
                continue;
            }
            cohort.push(id);
        }
        cohort.sort_unstable();
        (cohort, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pop() -> Population {
        Population::synthesize(7, 10_000)
    }

    #[test]
    fn sampling_is_deterministic_per_seed_round_and_time() {
        let pop = pop();
        let s = CohortSampler {
            seed: 11,
            ..CohortSampler::default()
        };
        let (a, sa) = s.sample(&pop, 3, 1000.0, 64);
        let (b, sb) = s.sample(&pop, 3, 1000.0, 64);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        let (c, _) = s.sample(&pop, 4, 1000.0, 64);
        assert_ne!(a, c, "round is part of the stream");
        let other = CohortSampler { seed: 12, ..s };
        assert_ne!(a, other.sample(&pop, 3, 1000.0, 64).0);
    }

    #[test]
    fn cohort_is_sorted_distinct_online_and_eligible() {
        let pop = pop();
        let s = CohortSampler {
            seed: 5,
            min_battery: 0.4,
            ..CohortSampler::default()
        };
        let now = 5_000.0;
        let (cohort, stats) = s.sample(&pop, 1, now, 128);
        assert!(!cohort.is_empty());
        assert!(cohort.len() <= 128);
        assert!(cohort.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
        for &id in &cohort {
            let d = pop.get(id);
            assert!(d.eligible(0.4), "client {id} ineligible");
            assert!(d.available_at(now), "client {id} offline");
        }
        assert_eq!(
            stats.drawn,
            cohort.len() + stats.offline + stats.ineligible + stats.duplicates,
            "every draw is accounted for"
        );
    }

    #[test]
    fn impossible_predicates_terminate_with_a_short_cohort() {
        let pop = pop();
        let s = CohortSampler {
            seed: 1,
            min_battery: 2.0, // nobody qualifies
            attempts_per_slot: 4,
        };
        let (cohort, stats) = s.sample(&pop, 1, 0.0, 32);
        assert!(cohort.is_empty());
        assert_eq!(stats.drawn, 4 * 32 + 64, "bounded budget, then give up");
    }

    #[test]
    fn empty_population_or_target_yields_empty_cohort() {
        let empty = Population::synthesize(1, 0);
        let s = CohortSampler::default();
        assert!(s.sample(&empty, 1, 0.0, 8).0.is_empty());
        assert!(s.sample(&pop(), 1, 0.0, 0).0.is_empty());
    }
}
