//! MQTT-mode federation over the publish/subscribe broker — the
//! cross-device protocol the paper plans in §II-A.3 ("we plan to support
//! MQTT, a lightweight, publish-subscribe network protocol").
//!
//! Topic layout:
//! * `fl/global` — server publishes the retained `(round, w)` broadcast;
//!   retained delivery means late-joining devices immediately receive the
//!   newest model.
//! * `fl/updates` — clients publish their `LearningResults`.

use crate::api::{ClientAlgorithm, ClientUpload, ServerAlgorithm};
use crate::diagnostics::RoundDiagnostics;
use crate::error::Error;
use appfl_comm::pubsub::Broker;
use appfl_comm::transport::CommError;
use appfl_comm::wire::messages::GlobalWeights;
use appfl_comm::wire::{LearningResults, TensorMsg};
use appfl_telemetry::{Phase, Telemetry};
use std::time::Instant;

/// Global-model topic.
pub const TOPIC_GLOBAL: &str = "fl/global";
/// Client-update topic.
pub const TOPIC_UPDATES: &str = "fl/updates";

fn encode_global(round: usize, finished: bool, w: Vec<f32>) -> Vec<u8> {
    GlobalWeights {
        round: round as u32,
        finished,
        tensors: vec![TensorMsg::flat("global", w)],
    }
    .encode()
}

fn broker_closed() -> Error {
    Error::Comm(CommError::Disconnected { peer: 0 })
}

/// Runs a synchronous federation over a broker; returns the final global
/// model. Clients run on their own threads, exactly as MQTT devices would.
/// Client local updates and the server's gather/aggregate work are
/// recorded on `telemetry`; pass [`Telemetry::disabled`] to observe
/// nothing at zero cost.
pub fn run_pubsub_federation(
    mut server: Box<dyn ServerAlgorithm>,
    clients: Vec<Box<dyn ClientAlgorithm>>,
    broker: &Broker,
    rounds: usize,
    telemetry: &Telemetry,
) -> Result<Vec<f32>, Error> {
    let num_clients = clients.len();
    let sample_counts: Vec<usize> = clients.iter().map(|c| c.num_samples()).collect();
    // Server subscribes to updates *before* clients start publishing.
    let updates = broker.subscribe(TOPIC_UPDATES);

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for mut client in clients {
            let broker = broker.clone();
            let tl = telemetry.clone();
            handles.push(scope.spawn(move || -> Result<(), Error> {
                let sub = broker.subscribe(TOPIC_GLOBAL);
                let mut last_round = 0u32;
                loop {
                    let (_, payload) = sub.recv().ok_or_else(broker_closed)?;
                    let msg = GlobalWeights::decode(&payload)
                        .map_err(|e| Error::Comm(CommError::Frame(e.to_string())))?;
                    if msg.finished {
                        return Ok(());
                    }
                    if msg.round <= last_round {
                        continue; // retained duplicate
                    }
                    last_round = msg.round;
                    let t0 = Instant::now();
                    let upload = client.update(&msg.tensors[0].data)?;
                    let secs = t0.elapsed().as_secs_f64();
                    tl.span_secs(
                        "local_update",
                        Phase::LocalUpdate,
                        secs,
                        Some(u64::from(msg.round)),
                        Some(client.id() as u64),
                    );
                    tl.client_span_secs(u64::from(msg.round), client.id() as u64, secs);
                    let results = LearningResults {
                        client_id: client.id() as u32,
                        round: msg.round,
                        penalty: f64::from(upload.local_loss),
                        primal: vec![TensorMsg::flat("primal", upload.primal)],
                        dual: upload
                            .dual
                            .map(|d| vec![TensorMsg::flat("dual", d)])
                            .unwrap_or_default(),
                    };
                    broker.publish(TOPIC_UPDATES, results.encode());
                }
            }));
        }

        for round in 1..=rounds {
            let round_start = Instant::now();
            let w = server.global_model();
            broker.publish_retained(TOPIC_GLOBAL, encode_global(round, false, w.clone()));
            let mut uploads: Vec<ClientUpload> = Vec::with_capacity(num_clients);
            let t0 = Instant::now();
            while uploads.len() < num_clients {
                let (_, payload) = updates.recv().ok_or_else(broker_closed)?;
                let msg = LearningResults::decode(&payload)
                    .map_err(|e| Error::Comm(CommError::Frame(e.to_string())))?;
                if msg.round as usize != round {
                    continue;
                }
                let client_id = msg.client_id as usize;
                let primal = msg
                    .primal
                    .into_iter()
                    .next()
                    .ok_or_else(|| Error::Comm(CommError::Frame("missing primal".into())))?;
                uploads.push(ClientUpload {
                    client_id,
                    primal: primal.data,
                    dual: msg.dual.into_iter().next().map(|t| t.data),
                    num_samples: sample_counts[client_id],
                    local_loss: msg.penalty as f32,
                });
            }
            telemetry.span_secs(
                "comm",
                Phase::Comm,
                t0.elapsed().as_secs_f64(),
                Some(round as u64),
                None,
            );
            let t1 = Instant::now();
            server.update(&uploads)?;
            telemetry.span_secs(
                "aggregate",
                Phase::Aggregate,
                t1.elapsed().as_secs_f64(),
                Some(round as u64),
                None,
            );
            RoundDiagnostics::collect(server.as_ref(), &w, &uploads).emit(telemetry, round as u64);
            telemetry.round_span_secs(round as u64, round_start.elapsed().as_secs_f64());
        }
        broker.publish_retained(
            TOPIC_GLOBAL,
            encode_global(rounds + 1, true, server.global_model()),
        );
        for h in handles {
            h.join().expect("client thread panicked")?;
        }
        Ok(server.global_model())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::build_federation;
    use crate::config::{AlgorithmConfig, FedConfig};
    use appfl_data::federated::{build_benchmark, Benchmark};
    use appfl_nn::models::{mlp_classifier, InputSpec};
    use appfl_privacy::PrivacyConfig;

    fn federation(rounds: usize) -> crate::algorithms::FederationSetup {
        let data = build_benchmark(Benchmark::Mnist, 3, 90, 30, 55).unwrap();
        let spec = InputSpec {
            channels: 1,
            height: 28,
            width: 28,
            classes: 10,
        };
        let config = FedConfig {
            algorithm: AlgorithmConfig::FedAvg {
                lr: 0.05,
                momentum: 0.9,
            },
            rounds,
            local_steps: 1,
            batch_size: 16,
            privacy: PrivacyConfig::none(),
            seed: 55,
        };
        build_federation(config, &data, move |rng| {
            Box::new(mlp_classifier(spec, 8, rng))
        })
    }

    #[test]
    fn pubsub_federation_completes_and_matches_serial() {
        let rounds = 2;
        let fed = federation(rounds);
        let broker = Broker::new();
        let sink = std::sync::Arc::new(appfl_telemetry::MemorySink::default());
        let w_mqtt = run_pubsub_federation(
            fed.server,
            fed.clients,
            &broker,
            rounds,
            &Telemetry::new(sink.clone()),
        )
        .unwrap();
        let summary = appfl_telemetry::RunSummary::from_events(&sink.events());
        assert_eq!(summary.rounds.len(), rounds);
        for totals in summary.rounds.values() {
            assert!(totals.local_update > 0.0);
            assert!(totals.aggregate > 0.0);
        }

        let mut fed = federation(rounds);
        for _ in 0..rounds {
            let w = fed.server.global_model();
            let uploads: Vec<_> = fed
                .clients
                .iter_mut()
                .map(|c| c.update(&w).unwrap())
                .collect();
            fed.server.update(&uploads).unwrap();
        }
        let w_serial = fed.server.global_model();
        let max_diff = w_mqtt
            .iter()
            .zip(w_serial.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_diff < 1e-6, "mqtt/serial divergence {max_diff}");
    }

    #[test]
    fn retained_global_reaches_late_clients() {
        // A client subscribing after the publish still gets the model —
        // the property that makes MQTT suit flaky cross-device fleets.
        let broker = Broker::new();
        broker.publish_retained(TOPIC_GLOBAL, encode_global(1, false, vec![1.0, 2.0]));
        let late = broker.subscribe(TOPIC_GLOBAL);
        let (_, payload) = late.recv().unwrap();
        let msg = GlobalWeights::decode(&payload).unwrap();
        assert_eq!(msg.round, 1);
        assert_eq!(msg.tensors[0].data, vec![1.0, 2.0]);
    }
}
