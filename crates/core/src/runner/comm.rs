//! Transport-backed federation runner.
//!
//! Executes server and clients on real threads that exchange protobuf-
//! encoded messages over a [`Communicator`] — the in-process analogue of
//! the paper's MPI and gRPC deployments. Rank 0 is the server; rank `p`
//! hosts client `p − 1`. Per-round communication time is measured for real
//! (wall time the server spends gathering and decoding uploads), which is
//! the quantity Fig. 3b tracks for `MPI.gather()`.

use crate::api::{ClientAlgorithm, ClientUpload, ServerAlgorithm};
use crate::config::FaultToleranceConfig;
use crate::metrics::{History, RoundRecord};
use crate::runner::ft::ClientRoster;
use crate::validation::evaluate;
use appfl_comm::retry::RetryPolicy;
use appfl_comm::transport::{CommError, Communicator};
use appfl_comm::wire::{LearningResults, TensorMsg};
use appfl_data::InMemoryDataset;
use appfl_nn::module::Module;
use appfl_tensor::TensorError;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Encodes the global model for broadcast.
fn encode_global(round: usize, w: &[f32]) -> Vec<u8> {
    TensorMsg {
        name: format!("global/round{round}"),
        shape: vec![w.len() as u64],
        data: w.to_vec(),
    }
    .encode()
}

fn decode_global(buf: &[u8]) -> Result<Vec<f32>, TensorError> {
    TensorMsg::decode(buf)
        .map(|t| t.data)
        .map_err(|e| TensorError::InvalidArgument(format!("bad global broadcast: {e}")))
}

/// Like [`decode_global`] but also recovers the round tag embedded in the
/// tensor name by [`encode_global`] — the fault-tolerant client needs it to
/// label uploads so the server can refuse stale ones.
fn decode_global_tagged(buf: &[u8]) -> Result<(usize, Vec<f32>), TensorError> {
    let t = TensorMsg::decode(buf)
        .map_err(|e| TensorError::InvalidArgument(format!("bad global broadcast: {e}")))?;
    let round = t
        .name
        .strip_prefix("global/round")
        .and_then(|r| r.parse::<usize>().ok())
        .ok_or_else(|| {
            TensorError::InvalidArgument(format!("broadcast without round tag: {:?}", t.name))
        })?;
    Ok((round, t.data))
}

fn encode_upload(round: usize, u: &ClientUpload) -> Vec<u8> {
    LearningResults {
        client_id: u.client_id as u32,
        round: round as u32,
        penalty: f64::from(u.local_loss),
        primal: vec![TensorMsg::flat("primal", u.primal.clone())],
        dual: u
            .dual
            .as_ref()
            .map(|d| vec![TensorMsg::flat("dual", d.clone())])
            .unwrap_or_default(),
    }
    .encode()
}

/// Decodes an upload, returning `(round_tag, upload)`.
fn decode_upload(buf: &[u8], num_samples: usize) -> Result<(usize, ClientUpload), TensorError> {
    let r = LearningResults::decode(buf)
        .map_err(|e| TensorError::InvalidArgument(format!("bad upload: {e}")))?;
    let primal = r
        .primal
        .into_iter()
        .next()
        .ok_or_else(|| TensorError::InvalidArgument("upload missing primal".into()))?
        .data;
    let dual = r.dual.into_iter().next().map(|t| t.data);
    Ok((
        r.round as usize,
        ClientUpload {
            client_id: r.client_id as usize,
            primal,
            dual,
            num_samples,
            local_loss: r.penalty as f32,
        },
    ))
}

/// Drives one client over a transport endpoint for `rounds` rounds.
///
/// Protocol per round: receive the global broadcast from rank 0, run the
/// local update, send the protobuf-encoded results back to rank 0.
pub fn run_client<C: Communicator>(
    mut client: Box<dyn ClientAlgorithm>,
    comm: &C,
    rounds: usize,
) -> Result<(), TensorError> {
    for round in 1..=rounds {
        let buf = comm
            .recv(0)
            .map_err(|e| TensorError::InvalidArgument(format!("client recv: {e}")))?;
        let w = decode_global(&buf)?;
        let upload = client.update(&w)?;
        comm.send(0, encode_upload(round, &upload))
            .map_err(|e| TensorError::InvalidArgument(format!("client send: {e}")))?;
    }
    Ok(())
}

/// Drives the server over a transport endpoint; returns the run history.
///
/// `sample_counts[p]` is client `p`'s `I_p` (known to the server from job
/// setup, as in APPFL's configuration step).
#[allow(clippy::too_many_arguments)]
pub fn run_server<C: Communicator>(
    mut server: Box<dyn ServerAlgorithm>,
    template: &mut dyn Module,
    test: &InMemoryDataset,
    comm: &C,
    rounds: usize,
    sample_counts: &[usize],
    epsilon: f64,
    dataset_name: &str,
) -> Result<History, TensorError> {
    let num_clients = comm.size() - 1;
    if sample_counts.len() != num_clients {
        return Err(TensorError::InvalidArgument(format!(
            "{} sample counts for {} clients",
            sample_counts.len(),
            num_clients
        )));
    }
    let mut history = History::new(server.name(), dataset_name, epsilon);
    for round in 1..=rounds {
        let round_start = Instant::now();
        let w = server.global_model();
        let msg = encode_global(round, &w);
        for rank in 1..=num_clients {
            comm.send(rank, msg.clone())
                .map_err(|e| TensorError::InvalidArgument(format!("server send: {e}")))?;
        }

        // Gather uploads; the recv wall time is the round's comm time (the
        // MPI.gather() measurement of §IV-C).
        let mut uploads = Vec::with_capacity(num_clients);
        let mut comm_secs = 0.0f64;
        for rank in 1..=num_clients {
            let t0 = Instant::now();
            let buf = comm
                .recv(rank)
                .map_err(|e| TensorError::InvalidArgument(format!("server recv: {e}")))?;
            comm_secs += t0.elapsed().as_secs_f64();
            uploads.push(decode_upload(&buf, sample_counts[rank - 1])?.1);
        }
        let upload_bytes: usize = uploads.iter().map(ClientUpload::payload_bytes).sum();
        let train_loss =
            uploads.iter().map(|u| u.local_loss).sum::<f32>() / uploads.len().max(1) as f32;
        server.update(&uploads)?;

        let w_next = server.global_model();
        let e = evaluate(template, &w_next, test, 64)?;
        let total = round_start.elapsed().as_secs_f64();
        history.rounds.push(RoundRecord {
            round,
            accuracy: e.accuracy,
            test_loss: e.loss,
            train_loss,
            upload_bytes,
            compute_secs: (total - comm_secs).max(0.0),
            comm_secs,
            dropped_clients: 0,
            retries: 0,
            timed_out: 0,
        });
    }
    Ok(history)
}

/// Fault-tolerant client loop. The client is driven entirely by what
/// arrives: each broadcast carries its round tag, the local update runs,
/// and the upload is sent back labelled with that round. A zero-length
/// payload is the server's end-of-run sentinel. Waiting for a broadcast
/// goes through `policy` (each re-wait after a timeout bumps `retries`),
/// so a dropped broadcast turns into retry-then-catch-up instead of a
/// hang; once the policy is exhausted the client concludes the server is
/// gone and leaves cleanly. Uploads are fire-and-forget — the push
/// protocol has no ack, so a lost upload surfaces on the server side as a
/// degraded round, not here.
pub fn run_client_ft<C: Communicator>(
    mut client: Box<dyn ClientAlgorithm>,
    comm: &C,
    policy: &RetryPolicy,
    recv_timeout: std::time::Duration,
    retries: &AtomicUsize,
) -> Result<(), TensorError> {
    loop {
        let buf = match policy.run(Some(retries), |_| comm.recv_timeout(0, recv_timeout)) {
            Ok(buf) => buf,
            Err(_) => break, // prolonged silence or a dead link: run is over
        };
        if buf.is_empty() {
            break; // end-of-run sentinel
        }
        let Ok((round, w)) = decode_global_tagged(&buf) else {
            continue; // corrupted broadcast: skip it, catch the next round
        };
        let upload = match client.update(&w) {
            Ok(u) => u,
            Err(_) => break, // local failure: leave the federation
        };
        if comm.send(0, encode_upload(round, &upload)).is_err() {
            break;
        }
    }
    Ok(())
}

/// Fault-tolerant server loop with degraded-round semantics.
///
/// Per round: broadcast to the roster's active clients (a failed send is a
/// recorded failure), then collect uploads with [`Communicator::
/// recv_any_timeout`] until all expected uploads arrive or the round
/// deadline passes. Stale (wrong round tag), duplicate, unsolicited and
/// undecodable uploads are discarded. If at least
/// [`FaultToleranceConfig::min_quorum`] uploads arrived the round
/// aggregates — via [`ServerAlgorithm::update`] when the cohort is
/// complete, [`ServerAlgorithm::update_degraded`] otherwise — and below
/// quorum the round is skipped with the global model unchanged. Clients
/// that miss [`FaultToleranceConfig::suspect_after`] consecutive rounds
/// are excluded, then re-admitted after
/// [`FaultToleranceConfig::readmit_after`] rounds. Every round records
/// `dropped_clients`, `retries` (drained from the shared client counter)
/// and `timed_out` in its [`RoundRecord`]. After the last round an empty
/// sentinel is sent (thrice, best-effort — it may itself be dropped) so
/// clients stop waiting.
#[allow(clippy::too_many_arguments)]
pub fn run_server_ft<C: Communicator>(
    mut server: Box<dyn ServerAlgorithm>,
    template: &mut dyn Module,
    test: &InMemoryDataset,
    comm: &C,
    rounds: usize,
    sample_counts: &[usize],
    epsilon: f64,
    dataset_name: &str,
    ft: &FaultToleranceConfig,
    retries: &AtomicUsize,
) -> Result<History, TensorError> {
    let num_clients = comm.size() - 1;
    if sample_counts.len() != num_clients {
        return Err(TensorError::InvalidArgument(format!(
            "{} sample counts for {} clients",
            sample_counts.len(),
            num_clients
        )));
    }
    let mut roster = ClientRoster::new(num_clients, ft.suspect_after, ft.readmit_after);
    let mut history = History::new(server.name(), dataset_name, epsilon);
    let mut retries_prev = retries.load(Ordering::Relaxed);
    for round in 1..=rounds {
        let round_start = Instant::now();
        let active = roster.begin_round(round);
        let w = server.global_model();
        let msg = encode_global(round, &w);
        let mut expected = vec![false; num_clients];
        let mut expected_n = 0usize;
        for &p in &active {
            match comm.send(p + 1, msg.clone()) {
                Ok(()) => {
                    expected[p] = true;
                    expected_n += 1;
                }
                Err(_) => {
                    roster.record_failure(p, round);
                }
            }
        }

        let deadline = round_start + ft.round_timeout();
        let mut got = vec![false; num_clients];
        let mut uploads = Vec::with_capacity(expected_n);
        let mut comm_secs = 0.0f64;
        let mut timed_out = 0usize;
        while uploads.len() < expected_n {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let t0 = Instant::now();
            match comm.recv_any_timeout(deadline - now) {
                Ok((from, buf)) => {
                    comm_secs += t0.elapsed().as_secs_f64();
                    let p = from - 1;
                    match decode_upload(&buf, sample_counts[p]) {
                        Ok((r, upload))
                            if r == round && expected[p] && !got[p] && upload.client_id == p =>
                        {
                            got[p] = true;
                            uploads.push(upload);
                        }
                        _ => {} // stale, duplicate, unsolicited or corrupt
                    }
                }
                Err(CommError::Timeout { .. }) => {
                    comm_secs += t0.elapsed().as_secs_f64();
                    timed_out += 1;
                    break;
                }
                Err(_) => break, // every remaining peer is gone
            }
        }
        for &p in &active {
            if expected[p] {
                if got[p] {
                    roster.record_success(p);
                } else {
                    roster.record_failure(p, round);
                }
            }
        }

        let dropped_clients = active.len() - uploads.len();
        if !uploads.is_empty() && uploads.len() >= ft.min_quorum.min(num_clients) {
            if uploads.len() == num_clients {
                server.update(&uploads)?;
            } else {
                server.update_degraded(&uploads)?;
            }
        }
        // Below quorum the model simply carries over — a skipped round.

        let upload_bytes: usize = uploads.iter().map(ClientUpload::payload_bytes).sum();
        let train_loss =
            uploads.iter().map(|u| u.local_loss).sum::<f32>() / uploads.len().max(1) as f32;
        let w_next = server.global_model();
        let e = evaluate(template, &w_next, test, 64)?;
        let retries_now = retries.load(Ordering::Relaxed);
        let total = round_start.elapsed().as_secs_f64();
        history.rounds.push(RoundRecord {
            round,
            accuracy: e.accuracy,
            test_loss: e.loss,
            train_loss,
            upload_bytes,
            compute_secs: (total - comm_secs).max(0.0),
            comm_secs,
            dropped_clients,
            retries: retries_now - retries_prev,
            timed_out,
        });
        retries_prev = retries_now;
    }
    // End-of-run sentinel, repeated in case the fault plan eats some; a
    // client that misses all three still exits via its retry budget.
    for rank in 1..=num_clients {
        for _ in 0..3 {
            let _ = comm.send(rank, Vec::new());
        }
    }
    Ok(history)
}

/// Convenience: runs a whole federation over a set of endpoints (rank 0 =
/// server) using scoped threads. The endpoints may be raw
/// [`appfl_comm::transport::InProcEndpoint`]s (MPI-style) or
/// [`appfl_comm::transport::GrpcChannel`]-wrapped (gRPC-style).
pub struct CommRunner;

impl CommRunner {
    /// Executes and returns the server's history.
    #[allow(clippy::too_many_arguments)]
    pub fn run<C: Communicator + 'static>(
        server: Box<dyn ServerAlgorithm>,
        clients: Vec<Box<dyn ClientAlgorithm>>,
        template: &mut dyn Module,
        test: &InMemoryDataset,
        mut endpoints: Vec<C>,
        rounds: usize,
        epsilon: f64,
        dataset_name: &str,
    ) -> Result<History, TensorError> {
        assert_eq!(
            endpoints.len(),
            clients.len() + 1,
            "need one endpoint per client plus the server"
        );
        let sample_counts: Vec<usize> = clients.iter().map(|c| c.num_samples()).collect();
        let server_ep = endpoints.remove(0);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (client, ep) in clients.into_iter().zip(endpoints) {
                handles.push(scope.spawn(move || run_client(client, &ep, rounds)));
            }
            let history = run_server(
                server,
                template,
                test,
                &server_ep,
                rounds,
                &sample_counts,
                epsilon,
                dataset_name,
            );
            for h in handles {
                h.join().expect("client thread panicked")?;
            }
            history
        })
    }

    /// Fault-tolerant [`CommRunner::run`]: the federation completes all
    /// `rounds` even when the endpoints drop, delay or corrupt messages
    /// (e.g. wrapped in [`appfl_comm::transport::FaultyCommunicator`]) or
    /// a client is dead from the start — degraded rounds aggregate on
    /// quorum, and the returned [`History`] carries per-round
    /// `dropped_clients`/`retries`/`timed_out` counters.
    #[allow(clippy::too_many_arguments)]
    pub fn run_ft<C: Communicator + 'static>(
        server: Box<dyn ServerAlgorithm>,
        clients: Vec<Box<dyn ClientAlgorithm>>,
        template: &mut dyn Module,
        test: &InMemoryDataset,
        mut endpoints: Vec<C>,
        rounds: usize,
        epsilon: f64,
        dataset_name: &str,
        ft: &FaultToleranceConfig,
    ) -> Result<History, TensorError> {
        assert_eq!(
            endpoints.len(),
            clients.len() + 1,
            "need one endpoint per client plus the server"
        );
        let sample_counts: Vec<usize> = clients.iter().map(|c| c.num_samples()).collect();
        let server_ep = endpoints.remove(0);
        let retries = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (i, (client, ep)) in clients.into_iter().zip(endpoints).enumerate() {
                let policy = ft.retry_policy(i as u64 + 1);
                let retries = &retries;
                let recv_timeout = ft.round_timeout();
                handles.push(scope.spawn(move || {
                    run_client_ft(client, &ep, &policy, recv_timeout, retries)
                }));
            }
            let history = run_server_ft(
                server,
                template,
                test,
                &server_ep,
                rounds,
                &sample_counts,
                epsilon,
                dataset_name,
                ft,
                &retries,
            );
            for h in handles {
                h.join().expect("client thread panicked")?;
            }
            history
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::build_federation;
    use crate::config::{AlgorithmConfig, FedConfig};
    use appfl_comm::transport::{GrpcChannel, InProcNetwork};
    use appfl_data::federated::{build_benchmark, Benchmark};
    use appfl_nn::models::{mlp_classifier, InputSpec};
    use appfl_privacy::PrivacyConfig;

    fn config(algo: AlgorithmConfig, rounds: usize) -> FedConfig {
        FedConfig {
            algorithm: algo,
            rounds,
            local_steps: 1,
            batch_size: 16,
            privacy: PrivacyConfig::none(),
            seed: 4,
        }
    }

    fn run_over_transport(grpc: bool) -> History {
        let data = build_benchmark(Benchmark::Mnist, 3, 90, 30, 2).unwrap();
        let spec = InputSpec {
            channels: 1,
            height: 28,
            width: 28,
            classes: 10,
        };
        let cfg = config(AlgorithmConfig::FedAvg { lr: 0.05, momentum: 0.9 }, 3);
        let test = data.test.clone();
        let mut fed = build_federation(cfg, &data, move |rng| {
            Box::new(mlp_classifier(spec, 8, rng))
        });
        let endpoints = InProcNetwork::new(4);
        if grpc {
            let endpoints: Vec<_> = endpoints.into_iter().map(GrpcChannel::new).collect();
            CommRunner::run(
                fed.server,
                fed.clients,
                fed.template.as_mut(),
                &test,
                endpoints,
                cfg.rounds,
                f64::INFINITY,
                "MNIST",
            )
            .unwrap()
        } else {
            CommRunner::run(
                fed.server,
                fed.clients,
                fed.template.as_mut(),
                &test,
                endpoints,
                cfg.rounds,
                f64::INFINITY,
                "MNIST",
            )
            .unwrap()
        }
    }

    #[test]
    fn mpi_style_run_completes_all_rounds() {
        let h = run_over_transport(false);
        assert_eq!(h.rounds.len(), 3);
        assert!(h.rounds.iter().all(|r| r.upload_bytes > 0));
    }

    #[test]
    fn grpc_style_run_matches_mpi_results() {
        // Framing must be transparent: same seeds → identical accuracy.
        let mpi = run_over_transport(false);
        let grpc = run_over_transport(true);
        assert_eq!(mpi.final_accuracy(), grpc.final_accuracy());
    }

    #[test]
    fn iiadmm_runs_over_transport_with_dual_mirroring() {
        let data = build_benchmark(Benchmark::Mnist, 2, 40, 20, 3).unwrap();
        let spec = InputSpec {
            channels: 1,
            height: 28,
            width: 28,
            classes: 10,
        };
        let cfg = config(AlgorithmConfig::IiAdmm { rho: 10.0, zeta: 10.0 }, 2);
        let test = data.test.clone();
        let mut fed = build_federation(cfg, &data, move |rng| {
            Box::new(mlp_classifier(spec, 8, rng))
        });
        let endpoints = InProcNetwork::new(3);
        let h = CommRunner::run(
            fed.server,
            fed.clients,
            fed.template.as_mut(),
            &test,
            endpoints,
            cfg.rounds,
            f64::INFINITY,
            "MNIST",
        )
        .unwrap();
        assert_eq!(h.algorithm, "IIADMM");
        assert_eq!(h.rounds.len(), 2);
    }

    #[test]
    fn upload_roundtrip_preserves_fields() {
        let u = ClientUpload {
            client_id: 5,
            primal: vec![1.0, -2.0, 3.0],
            dual: Some(vec![0.5, 0.5, 0.5]),
            num_samples: 17,
            local_loss: 0.25,
        };
        let buf = encode_upload(3, &u);
        let (round, back) = decode_upload(&buf, 17).unwrap();
        assert_eq!(round, 3);
        assert_eq!(back, u);
    }

    #[test]
    fn tagged_global_roundtrip() {
        let w = vec![1.5f32; 8];
        let buf = encode_global(12, &w);
        let (round, back) = decode_global_tagged(&buf).unwrap();
        assert_eq!(round, 12);
        assert_eq!(back, w);
        let untagged = TensorMsg::flat("not-a-global", vec![1.0]).encode();
        assert!(decode_global_tagged(&untagged).is_err());
    }

    #[test]
    fn global_roundtrip() {
        let w = vec![0.25f32; 64];
        let buf = encode_global(7, &w);
        assert_eq!(decode_global(&buf).unwrap(), w);
    }
}
