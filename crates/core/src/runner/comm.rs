//! Transport-backed federation runner.
//!
//! Executes server and clients on real threads that exchange protobuf-
//! encoded messages over a [`Communicator`] — the in-process analogue of
//! the paper's MPI and gRPC deployments. Rank 0 is the server; rank `p`
//! hosts client `p − 1`.
//!
//! ## Phase accounting
//!
//! Each round's wall time is split into the four phases of the paper's
//! Table IV: `local_update` (the slowest participating client's training
//! time, reported through a shared [`Gauge`]), `serialize` (server-side
//! encode/decode of model payloads), `comm` (transport time proper: the
//! broadcast plus the part of the gather wait not explained by client
//! compute) and `aggregate` (server update plus evaluation). The legacy
//! `comm_secs` field is therefore *transport-only* now; the client-compute
//! share of the gather wait that older versions folded into it is reported
//! as `local_update_secs` instead, and `compute_secs + comm_secs` still
//! equals the round's wall time.

use crate::api::{ClientAlgorithm, ClientUpload, ServerAlgorithm};
use crate::config::FaultToleranceConfig;
use crate::defense::UpdateGuard;
use crate::diagnostics::RoundDiagnostics;
use crate::error::Error;
use crate::metrics::{History, RoundRecord};
use crate::runner::control::RoundController;
use crate::runner::ft::ClientRoster;
use crate::runner::phases::{PhaseMachine, UploadVerdict};
use crate::store::{DurableCoordinator, PendingRound};
use crate::validation::evaluate;
use crate::runner::wire::{ClientLink, Incoming, ServerLink};
use appfl_comm::retry::RetryPolicy;
use appfl_comm::transport::{CommError, Communicator};
use appfl_comm::wire::{
    LearningResults, LearningResultsRef, TensorMsg, TensorMsgRef, WireConfig,
};
use appfl_data::InMemoryDataset;
use appfl_nn::module::Module;
use appfl_telemetry::{Gauge, Phase, RunObserver, Telemetry};
use appfl_tensor::TensorError;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Encodes the global model for broadcast, serialising straight from the
/// flat parameter slice — no intermediate `Vec` clone. Byte-identical to
/// the owned [`TensorMsg`] encoding (the `*Ref` encoders are tested for
/// exactly that), so existing decoders and transcripts are unaffected.
fn encode_global(round: usize, w: &[f32]) -> Vec<u8> {
    let name = format!("global/round{round}");
    TensorMsgRef::flat(&name, w).encode()
}

fn decode_global(buf: &[u8]) -> Result<Vec<f32>, TensorError> {
    TensorMsg::decode(buf)
        .map(|t| t.data)
        .map_err(|e| TensorError::InvalidArgument(format!("bad global broadcast: {e}")))
}

/// Like [`decode_global`] but also recovers the round tag embedded in the
/// tensor name by [`encode_global`] — the fault-tolerant client needs it to
/// label uploads so the server can refuse stale ones.
fn decode_global_tagged(buf: &[u8]) -> Result<(usize, Vec<f32>), TensorError> {
    let t = TensorMsg::decode(buf)
        .map_err(|e| TensorError::InvalidArgument(format!("bad global broadcast: {e}")))?;
    let round = t
        .name
        .strip_prefix("global/round")
        .and_then(|r| r.parse::<usize>().ok())
        .ok_or_else(|| {
            TensorError::InvalidArgument(format!("broadcast without round tag: {:?}", t.name))
        })?;
    Ok((round, t.data))
}

/// Encodes an upload, serialising the primal (and dual) tensors straight
/// from the upload's flat vectors — no intermediate clones.
pub(crate) fn encode_upload(round: usize, u: &ClientUpload) -> Vec<u8> {
    LearningResultsRef {
        client_id: u.client_id as u32,
        round: round as u32,
        penalty: f64::from(u.local_loss),
        primal: TensorMsgRef::flat("primal", &u.primal),
        dual: u.dual.as_deref().map(|d| TensorMsgRef::flat("dual", d)),
    }
    .encode()
}

/// Decodes an upload, returning `(round_tag, upload)`.
pub(crate) fn decode_upload(
    buf: &[u8],
    num_samples: usize,
) -> Result<(usize, ClientUpload), TensorError> {
    let r = LearningResults::decode(buf)
        .map_err(|e| TensorError::InvalidArgument(format!("bad upload: {e}")))?;
    let primal = r
        .primal
        .into_iter()
        .next()
        .ok_or_else(|| TensorError::InvalidArgument("upload missing primal".into()))?
        .data;
    let dual = r.dual.into_iter().next().map(|t| t.data);
    Ok((
        r.round as usize,
        ClientUpload {
            client_id: r.client_id as usize,
            primal,
            dual,
            num_samples,
            local_loss: r.penalty as f32,
        },
    ))
}

/// Drives one client over a transport endpoint for `rounds` rounds.
///
/// Protocol per round: receive the global broadcast from rank 0, run the
/// local update, send the protobuf-encoded results back to rank 0. The
/// local-update duration is reported into `local_gauge` so the server can
/// attribute the round's critical path to client compute, and each round
/// emits one structural `client` trace span (parented under the round's
/// root in the causal span tree — it carries no phase, so phase totals
/// stay the server's business).
pub fn run_client<C: Communicator>(
    mut client: Box<dyn ClientAlgorithm>,
    comm: &C,
    rounds: usize,
    local_gauge: &Gauge,
    telemetry: &Telemetry,
    wire: Option<WireConfig>,
) -> Result<(), Error> {
    let peer = client.id() as u64;
    let mut link = ClientLink::new(wire);
    link.handshake(comm)?;
    for round in 1..=rounds {
        let buf = link.recv_broadcast(comm)?;
        let w = decode_global(&buf)?;
        let t0 = Instant::now();
        let upload = client.update(&w)?;
        let secs = t0.elapsed().as_secs_f64();
        local_gauge.record(secs);
        telemetry.client_span_secs(round as u64, peer, secs);
        telemetry.trace_span_secs("local_update", secs, round as u64, peer);
        link.send_upload(comm, round, &upload, &w)?;
    }
    Ok(())
}

/// Drives the server over a transport endpoint; returns the run history.
///
/// `sample_counts[p]` is client `p`'s `I_p` (known to the server from job
/// setup, as in APPFL's configuration step). Per-round phase timings are
/// recorded into the [`RoundRecord`] and emitted on `telemetry` as one
/// span per phase, tagged with the round.
///
/// With an [`UpdateGuard`] attached, every upload is screened before
/// aggregation: rejected uploads are removed from the round (a partial
/// cohort aggregates via [`ServerAlgorithm::update_degraded`]; a fully
/// rejected round carries the model over unchanged) and the round's
/// `rejected_clients` / `clipped_clients` counters are recorded.
///
/// With a [`DurableCoordinator`] attached, every phase transition is
/// persisted write-ahead. The plain protocol's clients count rounds from 1,
/// so *resuming* a recovered run here would desynchronise them — recovery
/// requires the fault-tolerant path, and a recovered non-empty store is
/// rejected up front.
#[allow(clippy::too_many_arguments)]
pub fn run_server<C: Communicator>(
    server: &mut dyn ServerAlgorithm,
    template: &mut dyn Module,
    test: &InMemoryDataset,
    comm: &C,
    rounds: usize,
    sample_counts: &[usize],
    epsilon: f64,
    dataset_name: &str,
    telemetry: &Telemetry,
    local_gauge: &Gauge,
    mut guard: Option<&mut UpdateGuard>,
    mut durable: Option<&mut DurableCoordinator>,
    wire: Option<WireConfig>,
    observer: Option<RunObserver>,
) -> Result<History, Error> {
    let num_clients = comm.size() - 1;
    if sample_counts.len() != num_clients {
        return Err(Error::config(format!(
            "{} sample counts for {} clients",
            sample_counts.len(),
            num_clients
        )));
    }
    if let Some(d) = durable.as_deref_mut() {
        if d.was_recovered() {
            return Err(Error::config(
                "resuming a recovered run requires fault-tolerant mode \
                 (the plain protocol's clients count rounds from 1)",
            ));
        }
    }
    let mut link = ServerLink::new(wire);
    link.greet(comm, num_clients, true)?;
    let mut machine = PhaseMachine::new(num_clients, telemetry, durable);
    if let Some(obs) = observer {
        machine = machine.with_observer(obs);
    }
    machine.run_started(server.name(), dataset_name, epsilon, rounds)?;
    let mut history = History::new(server.name(), dataset_name, epsilon);
    for round in 1..=rounds {
        let round_start = Instant::now();
        let w = server.global_model();
        let active: Vec<usize> = (0..num_clients).collect();
        machine.begin_round(round, &active, &w, None)?;
        let t = Instant::now();
        let msg = encode_global(round, &w);
        let mut serialize_secs = t.elapsed().as_secs_f64();
        let t = Instant::now();
        for rank in 1..=num_clients {
            link.send_payload(comm, rank, &msg)?;
            machine.expect_upload(rank - 1)?;
        }
        let send_secs = t.elapsed().as_secs_f64();
        machine.begin_collect()?;

        // Gather uploads. The recv wall time (the MPI.gather() measurement
        // of §IV-C) mixes client compute with transport; the client gauge
        // separates the two below.
        let mut gather_secs = 0.0f64;
        for rank in 1..=num_clients {
            let t0 = Instant::now();
            let (r, upload, decode_secs) =
                link.recv_upload(comm, rank, round, &w, sample_counts[rank - 1])?;
            gather_secs += (t0.elapsed().as_secs_f64() - decode_secs).max(0.0);
            serialize_secs += decode_secs;
            machine.offer_upload(rank - 1, r, upload)?;
        }
        // The slowest client trained inside the gather window, so transport
        // time proper is the wait not explained by that training.
        let local_update_secs = local_gauge.drain_max().min(gather_secs);
        let comm_secs = send_secs + (gather_secs - local_update_secs).max(0.0);

        let report = machine.close_collection(guard.as_deref_mut())?;
        let uploads = report.uploads;
        let rejected_clients = report.rejected.len();
        let clipped_clients = report.clipped;
        let upload_bytes: usize = uploads.iter().map(ClientUpload::payload_bytes).sum();
        let train_loss =
            uploads.iter().map(|u| u.local_loss).sum::<f32>() / uploads.len().max(1) as f32;
        let t = Instant::now();
        if rejected_clients == 0 {
            server.update(&uploads)?;
        } else if !uploads.is_empty() {
            server.update_degraded(&uploads)?;
        }
        // Every upload rejected: the model carries over, a skipped round.
        let committed = (!uploads.is_empty()).then(|| server.global_model());
        machine.aggregated(committed.as_deref())?;
        let diagnostics = RoundDiagnostics::collect(server, &w, &uploads);
        let w_next = server.global_model();
        let e = evaluate(template, &w_next, test, 64)?;
        let aggregate_secs = t.elapsed().as_secs_f64();
        let total = round_start.elapsed().as_secs_f64();

        let r = round as u64;
        telemetry.span_secs(
            "local_update",
            Phase::LocalUpdate,
            local_update_secs,
            Some(r),
            None,
        );
        telemetry.span_secs("serialize", Phase::Serialize, serialize_secs, Some(r), None);
        telemetry.span_secs("comm", Phase::Comm, comm_secs, Some(r), None);
        telemetry.span_secs("aggregate", Phase::Aggregate, aggregate_secs, Some(r), None);
        telemetry.count("upload_bytes", upload_bytes as u64, Some(r), None);
        link.emit_round(telemetry, round);
        diagnostics.emit(telemetry, r);
        telemetry.round_span_secs(r, total);

        let mut record = RoundRecord {
            round,
            accuracy: e.accuracy,
            test_loss: e.loss,
            train_loss,
            upload_bytes,
            compute_secs: (total - comm_secs).max(0.0),
            comm_secs,
            local_update_secs,
            serialize_secs,
            aggregate_secs,
            rejected_clients,
            clipped_clients,
            cohort_size: active.len(),
            ..RoundRecord::default()
        };
        diagnostics.stamp(&mut record);
        let participants: Vec<usize> = uploads.iter().map(|u| u.client_id).collect();
        machine.published(&record, &[], &participants)?;
        history.rounds.push(record);
    }
    machine.finish_run()?;
    Ok(history)
}

/// Fault-tolerant client loop. The client is driven entirely by what
/// arrives: each broadcast carries its round tag, the local update runs,
/// and the upload is sent back labelled with that round. A zero-length
/// payload is the server's end-of-run sentinel. Waiting for a broadcast
/// goes through `policy` (each re-wait after a timeout bumps `retries` and
/// emits a `retry`/`timeout` mark on `telemetry`), so a dropped broadcast
/// turns into retry-then-catch-up instead of a hang; once the policy is
/// exhausted the client concludes the server is gone and leaves cleanly.
/// Uploads are fire-and-forget — the push protocol has no ack, so a lost
/// upload surfaces on the server side as a degraded round, not here.
pub fn run_client_ft<C: Communicator>(
    mut client: Box<dyn ClientAlgorithm>,
    comm: &C,
    policy: &RetryPolicy,
    recv_timeout: std::time::Duration,
    retries: &AtomicUsize,
    telemetry: &Telemetry,
    local_gauge: &Gauge,
    wire: Option<WireConfig>,
) -> Result<(), Error> {
    let peer = client.id() as u64;
    let mut link = ClientLink::new(wire);
    loop {
        let buf = match policy.run_observed(Some(retries), telemetry, "recv_broadcast", |_| {
            comm.recv_timeout(0, recv_timeout)
        }) {
            Ok(buf) => buf,
            Err(_) => break, // prolonged silence or a dead link: run is over
        };
        if buf.is_empty() {
            break; // end-of-run sentinel
        }
        // The wire link reassembles chunked frames (negotiating inline
        // when the buffer completes a codec hello) and yields complete
        // broadcast bodies; without wire this is the buffer itself.
        let Some(buf) = link.accept(comm, buf) else {
            continue;
        };
        let Ok((round, w)) = decode_global_tagged(&buf) else {
            continue; // corrupted broadcast: skip it, catch the next round
        };
        // The guard only emits on the failure branch: a successful update
        // is accounted by the server's round-aggregate local_update span
        // (emitting it here too would double-count the phase), while an
        // abandoned one would otherwise vanish from the record entirely.
        let span = telemetry
            .span("local_update", Phase::LocalUpdate)
            .round(round as u64)
            .peer(peer);
        let t0 = Instant::now();
        let upload = match client.update(&w) {
            Ok(u) => u,
            Err(_) => {
                span.fail();
                break; // local failure: leave the federation
            }
        };
        span.cancel();
        let secs = t0.elapsed().as_secs_f64();
        local_gauge.record(secs);
        telemetry.client_span_secs(round as u64, peer, secs);
        // Trace-only (phase-less) twin of the cancelled span above: keeps
        // the client's compute visible in the causal tree without
        // touching the phase totals.
        telemetry.trace_span_secs("local_update", secs, round as u64, peer);
        if link.send_upload(comm, round, &upload, &w).is_err() {
            break;
        }
    }
    Ok(())
}

/// Fault-tolerant server loop with degraded-round semantics.
///
/// Per round: broadcast to the roster's active clients (a failed send is a
/// recorded failure), then collect uploads with [`Communicator::
/// recv_any_timeout`] until all expected uploads arrive or the round
/// deadline passes. Stale (wrong round tag), duplicate, unsolicited and
/// undecodable uploads are discarded. If at least
/// [`FaultToleranceConfig::min_quorum`] uploads arrived the round
/// aggregates — via [`ServerAlgorithm::update`] when the cohort is
/// complete, [`ServerAlgorithm::update_degraded`] otherwise — and below
/// quorum the round is skipped with the global model unchanged. Clients
/// that miss [`FaultToleranceConfig::suspect_after`] consecutive rounds
/// are excluded, then re-admitted after
/// [`FaultToleranceConfig::readmit_after`] rounds. Every round records
/// `dropped_clients`, `retries` (drained from the shared client counter),
/// `timed_out` and the four phase timings in its [`RoundRecord`], and
/// emits the phase spans plus `timeout`/`dropped_clients` events on
/// `telemetry`. After the last round an empty sentinel is sent (thrice,
/// best-effort — it may itself be dropped) so clients stop waiting.
///
/// Requires a transport whose [`Communicator::supports_recv_any`] probe
/// reports `true`; the federation API checks this up front.
///
/// With an [`UpdateGuard`] attached, arrived uploads are screened before
/// the roster bookkeeping: a guard rejection counts as a roster *failure*
/// for that client (feeding the suspect/exclude machinery exactly like a
/// missed round) while staying distinct from `dropped_clients` in the
/// record, and the quorum test runs over the post-screening cohort.
///
/// With a [`DurableCoordinator`] attached (already recovered by the
/// caller), every phase transition is persisted write-ahead and a
/// recovered run *resumes*: completed rounds are skipped (their records
/// rejoin the history from the store), the roster is rebuilt from its
/// persisted health, the server restores the last durable model, and an
/// in-progress round restarts from its partial state — the broadcast goes
/// only to clients whose uploads are not already persisted, and re-sent
/// uploads for a persisted `(round, client)` key are deduplicated (with a
/// `duplicate_upload` telemetry mark). Uploads are aggregated in
/// client-id order so a resumed round folds the same floating-point sum
/// as an uninterrupted one.
///
/// With a [`RoundController`] attached, the static round deadline gives
/// way to adaptive round control: the broadcast goes to an over-selected
/// ⌈(1+α)·C⌉ slice of the active pool (the rest stand by), Collect
/// closes at the first C accepted uploads, the deadline is the
/// controller's tracked latency quantile × slack (clamped to its
/// configured bounds — these *replace* the static
/// [`FaultToleranceConfig::round_timeout_ms`]), and mid-Collect the
/// arrival projection is checked once: a shortfall triggers a hedged
/// re-dispatch to standby clients. Stragglers arriving after the target
/// are turned away as [`UploadVerdict::Late`] — counted as
/// `overselect_waste`, left out of the fold, and *not* marked as roster
/// failures (they responded; they were just slow).
#[allow(clippy::too_many_arguments)]
pub fn run_server_ft<C: Communicator>(
    server: &mut dyn ServerAlgorithm,
    template: &mut dyn Module,
    test: &InMemoryDataset,
    comm: &C,
    rounds: usize,
    sample_counts: &[usize],
    epsilon: f64,
    dataset_name: &str,
    ft: &FaultToleranceConfig,
    retries: &AtomicUsize,
    telemetry: &Telemetry,
    local_gauge: &Gauge,
    mut guard: Option<&mut UpdateGuard>,
    mut durable: Option<&mut DurableCoordinator>,
    mut controller: Option<&mut RoundController>,
    wire: Option<WireConfig>,
    observer: Option<RunObserver>,
) -> Result<History, Error> {
    let num_clients = comm.size() - 1;
    if sample_counts.len() != num_clients {
        return Err(Error::config(format!(
            "{} sample counts for {} clients",
            sample_counts.len(),
            num_clients
        )));
    }
    // Fire-and-forget codec offer: on a lossy link a client that never
    // hears it simply keeps sending Plain frames.
    let mut link = ServerLink::new(wire);
    link.greet(comm, num_clients, false)?;
    let mut roster = ClientRoster::new(num_clients, ft.suspect_after, ft.readmit_after);
    let mut history = History::new(server.name(), dataset_name, epsilon);
    let mut start_round = 1usize;
    let mut resume_pending: Option<PendingRound> = None;
    if let Some(d) = durable.as_deref_mut() {
        if d.was_recovered() {
            let state = d.state().clone();
            history = state.history.clone();
            if !state.roster.is_empty() {
                roster = ClientRoster::from_states(
                    &state.roster,
                    num_clients,
                    ft.suspect_after,
                    ft.readmit_after,
                );
            }
            start_round = state.next_round();
            resume_pending = state.round_in_progress.clone();
            // The server restarts from the resumed round's broadcast (the
            // model after the last *published* round): a persisted partial
            // aggregate is re-derived from the persisted uploads, which is
            // deterministic, rather than resumed mid-update.
            let w = resume_pending
                .as_ref()
                .map(|p| p.broadcast.clone())
                .or_else(|| state.models.last().cloned());
            if let Some(w) = w {
                server.restore(&w)?;
            }
            if state.completed {
                // The previous process died between its last publish and
                // exit: nothing to re-run, just release the clients.
                send_end_sentinels(comm, num_clients);
                return Ok(history);
            }
        }
    }
    let mut machine = PhaseMachine::new(num_clients, telemetry, durable);
    if let Some(obs) = observer {
        machine = machine.with_observer(obs);
    }
    machine.run_started(server.name(), dataset_name, epsilon, rounds)?;
    let mut retries_prev = retries.load(Ordering::Relaxed);
    for round in start_round..=rounds {
        let round_start = Instant::now();
        // The resumed round's select phase is already durable: the
        // machine substitutes the pending record for the `round_started`
        // commit (re-committing would wipe its persisted partial uploads
        // from the fold) and preseeds the cohort from it — preseeded
        // clients are neither re-broadcast to nor waited for.
        let pending = resume_pending.take().filter(|p| p.round == round);
        let active = roster.begin_round(round);
        let w = server.global_model();
        machine.begin_round(round, &active, &w, pending.as_ref())?;
        // Adaptive plan: dispatch the over-selected slice of the pool
        // now, hold the rest as hedge capacity, close Collect at the
        // first `target` uploads. Without a controller everyone is
        // dispatched and Collect waits for all of them (legacy shape).
        let (dispatch, mut standby, target) = match controller.as_deref() {
            Some(c) => {
                let t = c.config().push_target(active.len(), ft.min_quorum);
                let plan = c.plan(&active, t);
                (plan.dispatch, plan.standby, Some(plan.target))
            }
            None => (active.clone(), Vec::new(), None),
        };
        let t = Instant::now();
        let msg = encode_global(round, &w);
        let mut serialize_secs = t.elapsed().as_secs_f64();
        let t = Instant::now();
        for &p in &dispatch {
            if machine.already_received(p) {
                continue;
            }
            match link.send_payload(comm, p + 1, &msg) {
                Ok(()) => machine.expect_upload(p)?,
                Err(_) => {
                    roster.record_failure(p, round);
                }
            }
        }
        let send_secs = t.elapsed().as_secs_f64();
        machine.begin_collect()?;
        if let Some(t) = target {
            machine.set_collect_target(t);
        }

        let deadline_secs = match controller.as_deref() {
            Some(c) => c.deadline_secs(),
            None => ft.round_timeout().as_secs_f64(),
        };
        let collect_start = Instant::now();
        let deadline = round_start + std::time::Duration::from_secs_f64(deadline_secs);
        if let Some(c) = controller.as_deref() {
            telemetry.gauge(
                "adaptive_deadline",
                c.deadline_secs(),
                Some(round as u64),
                None,
            );
        }
        let mut gather_secs = 0.0f64;
        let mut timed_out = 0usize;
        let mut hedged = false;
        let mut hedges_sent = 0usize;
        let mut late_clients: Vec<usize> = Vec::new();
        while !machine.collect_complete() {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            // With a pending hedge check, wake up at the check instant
            // even if nothing arrives before it.
            let hedge_at = controller.as_deref().filter(|_| !hedged).map(|c| {
                collect_start + std::time::Duration::from_secs_f64(c.hedge_check_at(deadline_secs))
            });
            let wait_until = match hedge_at {
                Some(h) if h > now => deadline.min(h),
                _ => deadline,
            };
            let t0 = Instant::now();
            let received = match comm.recv_any_timeout(wait_until - now) {
                Ok(ok) => Some(ok),
                Err(CommError::Timeout { .. }) => {
                    gather_secs += t0.elapsed().as_secs_f64();
                    if Instant::now() >= deadline {
                        timed_out += 1;
                        telemetry.mark("timeout", Some(round as u64), None, Some("gather"));
                        break;
                    }
                    None // woke up for the hedge check, not the deadline
                }
                Err(_) => break, // every remaining peer is gone
            };
            if let Some((from, buf)) = received {
                gather_secs += t0.elapsed().as_secs_f64();
                let p = from - 1;
                let t1 = Instant::now();
                let decoded = link.process(p, &buf, round, &w, sample_counts[p]);
                serialize_secs += t1.elapsed().as_secs_f64();
                if let Incoming::Upload(r, upload) = decoded {
                    // The machine discards stale, unsolicited and
                    // forged uploads, dedups resubmissions of a
                    // persisted (round, client) key exactly once, and
                    // turns post-target stragglers away as Late.
                    match machine.offer_upload(p, r, upload)? {
                        UploadVerdict::Accepted => {
                            if let Some(c) = controller.as_deref_mut() {
                                c.observe_latency(collect_start.elapsed().as_secs_f64());
                            }
                        }
                        UploadVerdict::Late => {
                            late_clients.push(p);
                            telemetry.phase_span_secs(
                                "late_arrival",
                                collect_start.elapsed().as_secs_f64(),
                                round as u64,
                            );
                        }
                        UploadVerdict::Duplicate | UploadVerdict::Discarded => {}
                    }
                }
                // Undecodable payloads are dropped on the floor.
            }
            // One mid-Collect hedge check: if the linear arrival
            // projection falls short of the target, re-dispatch the
            // round's broadcast to (1+α)× the shortfall in standbys.
            if let (Some(c), Some(t), false) = (controller.as_deref(), target, hedged) {
                let elapsed = collect_start.elapsed().as_secs_f64();
                if elapsed >= c.hedge_check_at(deadline_secs) {
                    hedged = true;
                    let short = c.hedge_shortfall(elapsed, deadline_secs, machine.arrived(), t);
                    let wave = (((1.0 + c.config().overselect.max(0.0)) * short as f64).ceil()
                        as usize)
                        .min(standby.len());
                    for &p in standby.iter().take(wave) {
                        if machine.already_received(p) {
                            continue;
                        }
                        if link.send_payload(comm, p + 1, &msg).is_ok() {
                            machine.expect_upload(p)?;
                            hedges_sent += 1;
                        }
                    }
                    standby.drain(..wave);
                    if hedges_sent > 0 {
                        telemetry.count(
                            "hedges_sent",
                            hedges_sent as u64,
                            Some(round as u64),
                            None,
                        );
                    }
                }
            }
        }
        // Collect closes: uploads are sorted by client id (reproducible
        // fold) and content-screened at the machine's defense seam before
        // the roster bookkeeping, so a poisoned-but-delivered upload is a
        // recorded failure, not a success: repeat offenders walk the same
        // suspect→exclude path as silent ones.
        let report = machine.close_collection(guard.as_deref_mut())?;
        let arrived = report.arrived;
        let uploads = report.uploads;
        let rejected = report.rejected;
        let clipped_clients = report.clipped;
        let rejected_clients = rejected.len();
        for &p in &active {
            if machine.was_expected(p) {
                if machine.already_received(p) && !rejected.iter().any(|&(id, _)| id == p) {
                    roster.record_success(p);
                } else if late_clients.contains(&p) {
                    // Over-selection waste, not a fault: the client did
                    // respond — do not walk it toward suspect/exclude.
                } else {
                    roster.record_failure(p, round);
                }
            }
        }
        if let Some(c) = controller.as_deref_mut() {
            c.finish_round();
            if machine.late_count() > 0 {
                telemetry.count(
                    "overselect_waste",
                    machine.late_count() as u64,
                    Some(round as u64),
                    None,
                );
            }
        }
        let local_update_secs = local_gauge.drain_max().min(gather_secs);
        let comm_secs = send_secs + (gather_secs - local_update_secs).max(0.0);

        // With a controller only the dispatched (and hedged) slice was
        // ever expected; standbys that stayed idle are not "dropped".
        let dropped_clients = if controller.is_some() {
            active
                .iter()
                .filter(|&&p| machine.was_expected(p) && !machine.already_received(p))
                .count()
                .saturating_sub(late_clients.len())
        } else {
            active.len().saturating_sub(arrived)
        };
        let t = Instant::now();
        if !uploads.is_empty() && uploads.len() >= ft.min_quorum.min(num_clients) {
            if uploads.len() == num_clients {
                server.update(&uploads)?;
            } else {
                server.update_degraded(&uploads)?;
            }
            let committed = server.global_model();
            machine.aggregated(Some(&committed))?;
        } else {
            // Below quorum the model simply carries over — a skipped round.
            machine.aggregated(None)?;
        }
        let diagnostics = RoundDiagnostics::collect(server, &w, &uploads);

        let upload_bytes: usize = uploads.iter().map(ClientUpload::payload_bytes).sum();
        let train_loss =
            uploads.iter().map(|u| u.local_loss).sum::<f32>() / uploads.len().max(1) as f32;
        let w_next = server.global_model();
        let e = evaluate(template, &w_next, test, 64)?;
        let aggregate_secs = t.elapsed().as_secs_f64();
        let retries_now = retries.load(Ordering::Relaxed);
        let total = round_start.elapsed().as_secs_f64();

        let r = round as u64;
        telemetry.span_secs(
            "local_update",
            Phase::LocalUpdate,
            local_update_secs,
            Some(r),
            None,
        );
        telemetry.span_secs("serialize", Phase::Serialize, serialize_secs, Some(r), None);
        telemetry.span_secs("comm", Phase::Comm, comm_secs, Some(r), None);
        telemetry.span_secs("aggregate", Phase::Aggregate, aggregate_secs, Some(r), None);
        telemetry.count("upload_bytes", upload_bytes as u64, Some(r), None);
        link.emit_round(telemetry, round);
        if dropped_clients > 0 {
            telemetry.count("dropped_clients", dropped_clients as u64, Some(r), None);
        }
        diagnostics.emit(telemetry, r);
        telemetry.round_span_secs(r, total);

        let mut record = RoundRecord {
            round,
            accuracy: e.accuracy,
            test_loss: e.loss,
            train_loss,
            upload_bytes,
            compute_secs: (total - comm_secs).max(0.0),
            comm_secs,
            dropped_clients,
            retries: retries_now - retries_prev,
            timed_out,
            local_update_secs,
            serialize_secs,
            aggregate_secs,
            rejected_clients,
            clipped_clients,
            cohort_size: active.len(),
            ..RoundRecord::default()
        };
        diagnostics.stamp(&mut record);
        let participants: Vec<usize> = uploads.iter().map(|u| u.client_id).collect();
        machine.published(&record, &roster.states(), &participants)?;
        history.rounds.push(record);
        retries_prev = retries_now;
    }
    machine.finish_run()?;
    send_end_sentinels(comm, num_clients);
    Ok(history)
}

/// End-of-run sentinel, repeated in case the fault plan eats some; a
/// client that misses all three still exits via its retry budget.
fn send_end_sentinels<C: Communicator>(comm: &C, num_clients: usize) {
    for rank in 1..=num_clients {
        for _ in 0..3 {
            let _ = comm.send(rank, Vec::new());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::build_federation;
    use crate::config::{AlgorithmConfig, FedConfig};
    use crate::federation::{Federation, Participants, Topology};
    use appfl_comm::transport::{GrpcChannel, InProcNetwork};
    use appfl_data::federated::{build_benchmark, Benchmark};
    use appfl_nn::models::{mlp_classifier, InputSpec};
    use appfl_privacy::PrivacyConfig;

    fn config(algo: AlgorithmConfig, rounds: usize) -> FedConfig {
        FedConfig {
            algorithm: algo,
            rounds,
            local_steps: 1,
            batch_size: 16,
            privacy: PrivacyConfig::none(),
            seed: 4,
        }
    }

    fn run_over_transport(grpc: bool) -> History {
        let data = build_benchmark(Benchmark::Mnist, 3, 90, 30, 2).unwrap();
        let spec = InputSpec {
            channels: 1,
            height: 28,
            width: 28,
            classes: 10,
        };
        let cfg = config(
            AlgorithmConfig::FedAvg {
                lr: 0.05,
                momentum: 0.9,
            },
            3,
        );
        let test = data.test.clone();
        let mut fed = build_federation(cfg, &data, move |rng| {
            Box::new(mlp_classifier(spec, 8, rng))
        });
        let endpoints = InProcNetwork::new(4);
        let population = Participants::new(fed.server, fed.clients)
            .rounds(cfg.rounds)
            .dataset("MNIST")
            .evaluation(fed.template.as_mut(), &test);
        let outcome = if grpc {
            let endpoints: Vec<_> = endpoints.into_iter().map(GrpcChannel::new).collect();
            Federation::builder()
                .topology(Topology::Comm)
                .transport(endpoints)
                .population(population)
                .build()
                .unwrap()
                .run()
                .unwrap()
        } else {
            Federation::builder()
                .topology(Topology::Comm)
                .transport(endpoints)
                .population(population)
                .build()
                .unwrap()
                .run()
                .unwrap()
        };
        outcome.history.unwrap()
    }

    #[test]
    fn mpi_style_run_completes_all_rounds() {
        let h = run_over_transport(false);
        assert_eq!(h.rounds.len(), 3);
        assert!(h.rounds.iter().all(|r| r.upload_bytes > 0));
    }

    #[test]
    fn grpc_style_run_matches_mpi_results() {
        // Framing must be transparent: same seeds → identical accuracy.
        let mpi = run_over_transport(false);
        let grpc = run_over_transport(true);
        assert_eq!(mpi.final_accuracy(), grpc.final_accuracy());
    }

    #[test]
    fn phase_timings_fill_and_tile_the_round() {
        let h = run_over_transport(false);
        for r in &h.rounds {
            assert!(r.local_update_secs > 0.0, "round {} no local time", r.round);
            assert!(r.phase_secs() > 0.0);
            // The four phases tile the wall time up to unmeasured slack
            // (loss averaging, model clone): never more than the wall, and
            // most of it.
            assert!(
                r.phase_secs() <= r.wall_secs() * 1.05,
                "round {}: phases {} exceed wall {}",
                r.round,
                r.phase_secs(),
                r.wall_secs()
            );
        }
    }

    #[test]
    fn iiadmm_runs_over_transport_with_dual_mirroring() {
        let data = build_benchmark(Benchmark::Mnist, 2, 40, 20, 3).unwrap();
        let spec = InputSpec {
            channels: 1,
            height: 28,
            width: 28,
            classes: 10,
        };
        let cfg = config(
            AlgorithmConfig::IiAdmm {
                rho: 10.0,
                zeta: 10.0,
            },
            2,
        );
        let test = data.test.clone();
        let mut fed = build_federation(cfg, &data, move |rng| {
            Box::new(mlp_classifier(spec, 8, rng))
        });
        let endpoints = InProcNetwork::new(3);
        let outcome = Federation::builder()
            .transport(endpoints)
            .population(
                Participants::new(fed.server, fed.clients)
                    .rounds(cfg.rounds)
                    .dataset("MNIST")
                    .evaluation(fed.template.as_mut(), &test),
            )
            .build()
            .unwrap()
            .run()
            .unwrap();
        let h = outcome.history.unwrap();
        assert_eq!(h.algorithm, "IIADMM");
        assert_eq!(h.rounds.len(), 2);
    }

    #[test]
    fn upload_roundtrip_preserves_fields() {
        let u = ClientUpload {
            client_id: 5,
            primal: vec![1.0, -2.0, 3.0],
            dual: Some(vec![0.5, 0.5, 0.5]),
            num_samples: 17,
            local_loss: 0.25,
        };
        let buf = encode_upload(3, &u);
        let (round, back) = decode_upload(&buf, 17).unwrap();
        assert_eq!(round, 3);
        assert_eq!(back, u);
    }

    #[test]
    fn tagged_global_roundtrip() {
        let w = vec![1.5f32; 8];
        let buf = encode_global(12, &w);
        let (round, back) = decode_global_tagged(&buf).unwrap();
        assert_eq!(round, 12);
        assert_eq!(back, w);
        let untagged = TensorMsg::flat("not-a-global", vec![1.0]).encode();
        assert!(decode_global_tagged(&untagged).is_err());
    }

    #[test]
    fn global_roundtrip() {
        let w = vec![0.25f32; 64];
        let buf = encode_global(7, &w);
        assert_eq!(decode_global(&buf).unwrap(), w);
    }
}
