//! Federation runners: serial/rayon, transport-threaded, and asynchronous.

pub mod r#async;
pub mod async_service;
pub mod comm;
pub mod control;
pub mod federation;
pub mod ft;
pub mod phases;
pub mod pubsub;
pub mod rpc;
pub mod serial;
pub mod simulate;
pub(crate) mod wire;

pub use control::{RoundControlConfig, RoundController, RoundPlan};
pub use federation::FederationOutcome;
pub use ft::ClientRoster;
pub use phases::{CohortReport, PhaseEvent, PhaseKind, PhaseMachine, UploadVerdict};
pub use r#async::{AsyncConfig, AsyncFedServer};
pub use serial::SerialRunner;
pub use simulate::{SimConfig, SimEngine, SimReport};
