//! Federation runners: serial/rayon, transport-threaded, and asynchronous.

pub mod async_service;
pub mod comm;
pub mod federation;
pub mod ft;
pub mod pubsub;
pub mod rpc;
pub mod r#async;
pub mod serial;

pub use federation::{FederationBuilder, FederationOutcome};
pub use ft::ClientRoster;
pub use r#async::{AsyncConfig, AsyncFedServer};
pub use serial::SerialRunner;
