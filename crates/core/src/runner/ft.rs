//! Client roster bookkeeping for degraded-round federation.
//!
//! The fault-tolerant runners track, per client, how many *consecutive*
//! rounds it failed to report. After `suspect_after` consecutive failures
//! the client is excluded from the roster — the server stops sending it
//! work and stops waiting for it — and after `readmit_after` rounds on the
//! bench it is re-admitted for another chance (`readmit_after = 0` bans it
//! for good). One successful report clears the failure streak, so a client
//! that is merely slow on a congested round is never quarantined.
//!
//! Roster health is part of the durable coordinator's persisted state:
//! [`ClientRoster::states`] exports it as [`RosterState`] records for the
//! publish-phase store event and [`ClientRoster::from_states`] rebuilds
//! the roster on crash recovery, so a resumed run benches and re-admits
//! exactly the clients the interrupted run would have.

use crate::store::RosterState;

/// Per-client participation state.
#[derive(Debug, Clone, Copy, Default)]
struct ClientState {
    /// Consecutive rounds without a report.
    consecutive_failures: usize,
    /// Excluded until this round (re-admitted at `round >= excluded_until`).
    excluded_until: Option<usize>,
}

/// Tracks which clients are in good standing round over round.
#[derive(Debug, Clone)]
pub struct ClientRoster {
    state: Vec<ClientState>,
    suspect_after: usize,
    readmit_after: usize,
}

impl ClientRoster {
    /// A roster of `num_clients` clients, all in good standing.
    pub fn new(num_clients: usize, suspect_after: usize, readmit_after: usize) -> Self {
        ClientRoster {
            state: vec![ClientState::default(); num_clients],
            suspect_after: suspect_after.max(1),
            readmit_after,
        }
    }

    /// Starts `round`: re-admits clients whose exclusion has lapsed and
    /// returns the indices of clients to include this round, ascending.
    pub fn begin_round(&mut self, round: usize) -> Vec<usize> {
        let mut active = Vec::with_capacity(self.state.len());
        for (p, s) in self.state.iter_mut().enumerate() {
            if let Some(until) = s.excluded_until {
                if round >= until {
                    // Fresh start: the streak that got it benched is spent.
                    *s = ClientState::default();
                } else {
                    continue;
                }
            }
            active.push(p);
        }
        active
    }

    /// Whether client `p` is currently excluded.
    pub fn is_excluded(&self, p: usize) -> bool {
        self.state[p].excluded_until.is_some()
    }

    /// Currently excluded client count.
    pub fn excluded(&self) -> usize {
        self.state
            .iter()
            .filter(|s| s.excluded_until.is_some())
            .count()
    }

    /// Records that client `p` reported this round.
    pub fn record_success(&mut self, p: usize) {
        self.state[p].consecutive_failures = 0;
    }

    /// Exports per-client health as persistable [`RosterState`] records.
    pub fn states(&self) -> Vec<RosterState> {
        self.state
            .iter()
            .map(|s| RosterState {
                consecutive_failures: s.consecutive_failures,
                excluded_until: s.excluded_until,
            })
            .collect()
    }

    /// Rebuilds a roster from persisted [`RosterState`] records (crash
    /// recovery). Clients beyond the persisted set start in good standing.
    pub fn from_states(
        states: &[RosterState],
        num_clients: usize,
        suspect_after: usize,
        readmit_after: usize,
    ) -> Self {
        let mut roster = ClientRoster::new(num_clients, suspect_after, readmit_after);
        for (s, persisted) in roster.state.iter_mut().zip(states.iter()) {
            s.consecutive_failures = persisted.consecutive_failures;
            s.excluded_until = persisted.excluded_until;
        }
        roster
    }

    /// Records that client `p` failed to report in `round`. Returns `true`
    /// if this failure tipped it into exclusion.
    pub fn record_failure(&mut self, p: usize, round: usize) -> bool {
        let s = &mut self.state[p];
        if s.excluded_until.is_some() {
            return false;
        }
        s.consecutive_failures += 1;
        if s.consecutive_failures >= self.suspect_after {
            s.excluded_until = Some(if self.readmit_after == 0 {
                usize::MAX
            } else {
                round + self.readmit_after
            });
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_active_until_failures_accumulate() {
        let mut r = ClientRoster::new(3, 2, 3);
        assert_eq!(r.begin_round(1), vec![0, 1, 2]);
        assert!(!r.record_failure(1, 1), "one failure is not suspicion yet");
        assert_eq!(r.begin_round(2), vec![0, 1, 2]);
        assert!(
            r.record_failure(1, 2),
            "second consecutive failure excludes"
        );
        assert_eq!(r.begin_round(3), vec![0, 2]);
        assert!(r.is_excluded(1));
        assert_eq!(r.excluded(), 1);
    }

    #[test]
    fn success_resets_the_streak() {
        let mut r = ClientRoster::new(1, 2, 1);
        r.record_failure(0, 1);
        r.record_success(0);
        assert!(!r.record_failure(0, 3), "streak restarted after success");
        assert_eq!(r.begin_round(4), vec![0]);
    }

    #[test]
    fn excluded_clients_are_readmitted_later() {
        let mut r = ClientRoster::new(2, 1, 2);
        r.record_failure(0, 1); // excluded until round 3
        assert_eq!(r.begin_round(2), vec![1]);
        assert_eq!(r.begin_round(3), vec![0, 1], "bench served, welcome back");
        assert!(!r.is_excluded(0));
        // The comeback starts with a clean slate but can fail again.
        r.record_failure(0, 3);
        assert_eq!(r.begin_round(4), vec![1]);
    }

    #[test]
    fn zero_readmit_means_permanent_exclusion() {
        let mut r = ClientRoster::new(1, 1, 0);
        r.record_failure(0, 1);
        assert!(r.begin_round(1_000_000).is_empty());
    }

    #[test]
    fn states_roundtrip_through_persistence() {
        let mut r = ClientRoster::new(3, 2, 3);
        r.record_failure(0, 1);
        r.record_failure(1, 1);
        r.record_failure(1, 2); // excluded until round 5
        let states = r.states();
        assert_eq!(states[0].consecutive_failures, 1);
        assert_eq!(states[1].excluded_until, Some(5));
        let mut rebuilt = ClientRoster::from_states(&states, 3, 2, 3);
        assert_eq!(rebuilt.begin_round(3), vec![0, 2]);
        assert_eq!(rebuilt.begin_round(5), vec![0, 1, 2], "exclusion lapses");
        // A shorter persisted set leaves the extra clients healthy.
        let grown = ClientRoster::from_states(&states[..1], 4, 2, 3);
        assert!(!grown.is_excluded(3));
    }

    #[test]
    fn failures_while_excluded_do_not_compound() {
        let mut r = ClientRoster::new(1, 1, 2);
        assert!(r.record_failure(0, 1));
        assert!(!r.record_failure(0, 2), "already excluded");
        assert_eq!(r.begin_round(3), vec![0]);
    }
}
