//! Asynchronous federation over the RPC service layer — §V future-work
//! item 1 executed on real threads (the virtual-clock counterpart lives in
//! the bench crate's A3 ablation).
//!
//! Protocol: clients poll `GetWeight` (which returns the server's model
//! *version* in the `round` field), train immediately, and upload results
//! tagged with the version they fetched; the server folds each upload in as
//! it arrives, staleness-weighted. There is no round barrier — a fast
//! client can contribute many updates while a slow one computes, which is
//! exactly the §IV-E load-imbalance remedy.

use crate::api::ClientAlgorithm;
use crate::api::ClientUpload;
use crate::error::Error;
use crate::runner::r#async::{AsyncConfig, AsyncFedServer};
use crate::store::DurableCoordinator;
use appfl_comm::retry::RetryPolicy;
use appfl_comm::rpc::{
    call, call_with_retry_observed, serve_with, FlService, Request, Response, ServeOptions,
};
use appfl_comm::transport::{CommError, Communicator};
use appfl_comm::wire::messages::GlobalWeights;
use appfl_comm::wire::{JobDone, LearningResults, TensorMsg, WeightRequest};
use appfl_telemetry::{Phase, Telemetry};
use std::sync::atomic::AtomicUsize;
use std::time::{Duration, Instant};

/// FL service that aggregates asynchronously.
pub struct AsyncRpcService {
    server: AsyncFedServer,
    max_updates: usize,
    rejected: usize,
    telemetry: Telemetry,
    durable: Option<DurableCoordinator>,
    durable_error: Option<Error>,
}

impl AsyncRpcService {
    /// Serves until `max_updates` uploads have been applied.
    pub fn new(initial: Vec<f32>, config: AsyncConfig, max_updates: usize) -> Self {
        AsyncRpcService {
            server: AsyncFedServer::new(initial, config),
            max_updates,
            rejected: 0,
            telemetry: Telemetry::disabled(),
            durable: None,
            durable_error: None,
        }
    }

    /// Records each applied upload as an aggregate-phase span on
    /// `telemetry`, tagged with the model version it trained against.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Attaches a durable coordinator (already recovered by the caller):
    /// every applied upload commits an `AsyncApplied` event — model,
    /// version, applied count — before the accept is acknowledged, and a
    /// recovered coordinator restores the server to the persisted state
    /// so a restarted service resumes exactly where the crash left it
    /// (same version, so staleness weighting is unchanged).
    ///
    /// As in the synchronous service, a durable failure mid-serve parks
    /// the error in [`AsyncRpcService::durable_error`] and reports the
    /// service `finished` to wind the federation down.
    pub fn with_durable(mut self, mut durable: DurableCoordinator) -> Result<Self, Error> {
        if durable.was_recovered() {
            if let Some(st) = durable.state().async_state.clone() {
                self.server.restore(&st)?;
            }
        } else {
            durable.run_started("async", "async", f64::INFINITY, 0, self.max_updates)?;
        }
        self.durable = Some(durable);
        Ok(self)
    }

    /// The durable-coordination failure that aborted the service, if any.
    pub fn durable_error(&self) -> Option<&Error> {
        self.durable_error.as_ref()
    }

    /// Detaches the durable coordinator for post-run inspection.
    pub fn take_durable(&mut self) -> Option<DurableCoordinator> {
        self.durable.take()
    }

    /// The aggregated model.
    pub fn global_model(&self) -> Vec<f32> {
        self.server.global_model().to_vec()
    }

    /// Applied update count.
    pub fn applied(&self) -> usize {
        self.server.applied()
    }

    /// Rejected upload count.
    pub fn rejected(&self) -> usize {
        self.rejected
    }
}

impl FlService for AsyncRpcService {
    fn get_weight(&mut self, _request: &WeightRequest) -> GlobalWeights {
        let (w, version) = self.server.fetch();
        GlobalWeights {
            round: version as u32,
            finished: self.finished(),
            tensors: vec![TensorMsg::flat("global", w)],
        }
    }

    fn send_results(&mut self, results: LearningResults) -> bool {
        if self.finished() {
            self.rejected += 1;
            return false;
        }
        let Some(primal) = results.primal.into_iter().next() else {
            self.rejected += 1;
            return false;
        };
        let upload = ClientUpload {
            client_id: results.client_id as usize,
            primal: primal.data,
            dual: None,
            num_samples: 1,
            local_loss: results.penalty as f32,
        };
        // `round` carries the model version the client trained against.
        let before = if self.telemetry.enabled() {
            Some(self.server.global_model().to_vec())
        } else {
            None
        };
        let t0 = Instant::now();
        match self.server.apply(&upload, u64::from(results.round)) {
            Ok(_) => {
                if let Some(d) = self.durable.as_mut() {
                    if let Err(e) = d.async_applied(
                        self.server.applied(),
                        self.server.version(),
                        self.server.global_model(),
                    ) {
                        // The apply already happened in memory but is not
                        // durable: refuse the ack so the client re-sends
                        // after recovery, and wind the service down.
                        self.durable_error = Some(e);
                        self.rejected += 1;
                        return false;
                    }
                }
                self.telemetry.span_secs(
                    "aggregate",
                    Phase::Aggregate,
                    t0.elapsed().as_secs_f64(),
                    Some(u64::from(results.round)),
                    None,
                );
                if let Some(before) = before {
                    // How far this (staleness-weighted) upload actually
                    // moved the model — the async analogue of the
                    // synchronous runners' per-round update_norm.
                    let moved =
                        appfl_tensor::vecops::sq_dist(self.server.global_model(), &before).sqrt();
                    self.telemetry.gauge(
                        "update_norm",
                        moved,
                        Some(u64::from(results.round)),
                        Some(u64::from(results.client_id)),
                    );
                }
                true
            }
            Err(_) => {
                self.rejected += 1;
                false
            }
        }
    }

    fn done(&mut self, _done: &JobDone) -> bool {
        true
    }

    fn finished(&self) -> bool {
        self.server.applied() >= self.max_updates || self.durable_error.is_some()
    }
}

/// Drives one client against the asynchronous service until it reports
/// `finished`, recording each local update as a telemetry span tagged
/// with the model version and the client id. Returns the number of
/// accepted uploads.
pub fn run_async_client<C: Communicator>(
    mut client: Box<dyn ClientAlgorithm>,
    comm: &C,
    telemetry: &Telemetry,
) -> Result<usize, Error> {
    let id = client.id() as u32;
    let mut accepted = 0usize;
    loop {
        let weights = match call(
            comm,
            &Request::GetWeight(WeightRequest {
                client_id: id,
                round: 0,
            }),
        )? {
            Response::Weights(w) => w,
            other => {
                return Err(Error::Comm(CommError::Frame(format!(
                    "unexpected response {other:?}"
                ))))
            }
        };
        if weights.finished {
            break;
        }
        let t0 = Instant::now();
        let upload = client.update(&weights.tensors[0].data)?;
        telemetry.span_secs(
            "local_update",
            Phase::LocalUpdate,
            t0.elapsed().as_secs_f64(),
            Some(u64::from(weights.round)),
            Some(u64::from(id)),
        );
        let results = LearningResults {
            client_id: id,
            round: weights.round, // the version we trained against
            penalty: f64::from(upload.local_loss),
            primal: vec![TensorMsg::flat("primal", upload.primal)],
            dual: vec![],
        };
        if matches!(
            call(comm, &Request::SendResults(Box::new(results)))?,
            Response::Ack { ok: true }
        ) {
            accepted += 1;
        }
    }
    call(comm, &Request::Done(JobDone { client_id: id }))?;
    Ok(accepted)
}

/// Fault-tolerant [`run_async_client`]: calls go through the observed
/// retry path, so a dropped request or response costs a retry (surfaced
/// as a telemetry mark), not a hang; once the policy is exhausted the
/// client leaves cleanly with the uploads it managed. Each retry bumps
/// `retries`.
pub fn run_async_client_ft<C: Communicator>(
    mut client: Box<dyn ClientAlgorithm>,
    comm: &C,
    policy: &RetryPolicy,
    timeout: Duration,
    retries: Option<&AtomicUsize>,
    telemetry: &Telemetry,
) -> Result<usize, Error> {
    let id = client.id() as u32;
    let mut accepted = 0usize;
    loop {
        let weights = match call_with_retry_observed(
            comm,
            &Request::GetWeight(WeightRequest {
                client_id: id,
                round: 0,
            }),
            policy,
            timeout,
            retries,
            telemetry,
        ) {
            Ok(Response::Weights(w)) => w,
            Ok(other) => {
                return Err(Error::Comm(CommError::Frame(format!(
                    "unexpected response {other:?}"
                ))))
            }
            Err(_) => break, // server unreachable: stop contributing
        };
        if weights.finished {
            break;
        }
        let span = telemetry
            .span("local_update", Phase::LocalUpdate)
            .round(u64::from(weights.round))
            .peer(u64::from(id));
        let upload = match client.update(&weights.tensors[0].data) {
            Ok(u) => u,
            Err(_) => {
                span.fail();
                break; // local failure: leave the federation
            }
        };
        span.finish();
        let results = LearningResults {
            client_id: id,
            round: weights.round, // the version we trained against
            penalty: f64::from(upload.local_loss),
            primal: vec![TensorMsg::flat("primal", upload.primal)],
            dual: vec![],
        };
        match call_with_retry_observed(
            comm,
            &Request::SendResults(Box::new(results)),
            policy,
            timeout,
            retries,
            telemetry,
        ) {
            Ok(Response::Ack { ok: true }) => accepted += 1,
            Ok(_) => {}
            Err(_) => break,
        }
    }
    let _ = call_with_retry_observed(
        comm,
        &Request::Done(JobDone { client_id: id }),
        policy,
        timeout,
        retries,
        telemetry,
    );
    Ok(accepted)
}

/// Runs an asynchronous federation; returns `(model, applied_updates)`.
/// Pass [`Telemetry::disabled`] when no observation is wanted.
pub fn run_async_federation<C: Communicator + 'static>(
    initial: Vec<f32>,
    clients: Vec<Box<dyn ClientAlgorithm>>,
    mut endpoints: Vec<C>,
    config: AsyncConfig,
    max_updates: usize,
    telemetry: &Telemetry,
) -> Result<(Vec<f32>, usize), Error> {
    assert_eq!(endpoints.len(), clients.len() + 1);
    let num_clients = clients.len();
    let server_ep = endpoints.remove(0);
    let mut service =
        AsyncRpcService::new(initial, config, max_updates).with_telemetry(telemetry.clone());
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (client, ep) in clients.into_iter().zip(endpoints) {
            let tl = telemetry.clone();
            handles.push(scope.spawn(move || run_async_client(client, &ep, &tl)));
        }
        let options = ServeOptions {
            telemetry: telemetry.clone(),
            ..ServeOptions::default()
        };
        serve_with(&mut service, &server_ep, num_clients, &options)?;
        for h in handles {
            h.join().expect("client thread panicked")?;
        }
        Ok((service.global_model(), service.applied()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::build_federation;
    use crate::config::{AlgorithmConfig, FedConfig};
    use appfl_comm::transport::InProcNetwork;
    use appfl_data::federated::{build_benchmark, Benchmark};
    use appfl_nn::models::{mlp_classifier, InputSpec};
    use appfl_nn::module::flatten_params;
    use appfl_privacy::PrivacyConfig;

    #[test]
    fn async_federation_applies_the_requested_updates() {
        let data = build_benchmark(Benchmark::Mnist, 3, 90, 30, 66).unwrap();
        let spec = InputSpec {
            channels: 1,
            height: 28,
            width: 28,
            classes: 10,
        };
        let config = FedConfig {
            algorithm: AlgorithmConfig::FedAvg {
                lr: 0.05,
                momentum: 0.9,
            },
            rounds: 1,
            local_steps: 1,
            batch_size: 16,
            privacy: PrivacyConfig::none(),
            seed: 66,
        };
        let fed = build_federation(config, &data, move |rng| {
            Box::new(mlp_classifier(spec, 8, rng))
        });
        let initial = flatten_params(fed.template.as_ref());
        let endpoints = InProcNetwork::new(4);
        let (w, applied) = run_async_federation(
            initial.clone(),
            fed.clients,
            endpoints,
            AsyncConfig::default(),
            9,
            &Telemetry::disabled(),
        )
        .unwrap();
        assert!(applied >= 9, "applied {applied}");
        assert_eq!(w.len(), initial.len());
        assert!(w.iter().all(|x| x.is_finite()));
        assert_ne!(w, initial, "model never moved");
    }

    #[test]
    fn async_ft_federation_survives_message_drops() {
        use appfl_comm::transport::{FaultPlan, FaultyCommunicator};
        let data = build_benchmark(Benchmark::Mnist, 3, 90, 30, 66).unwrap();
        let spec = InputSpec {
            channels: 1,
            height: 28,
            width: 28,
            classes: 10,
        };
        let config = FedConfig {
            algorithm: AlgorithmConfig::FedAvg {
                lr: 0.05,
                momentum: 0.9,
            },
            rounds: 1,
            local_steps: 1,
            batch_size: 16,
            privacy: PrivacyConfig::none(),
            seed: 66,
        };
        let fed = build_federation(config, &data, move |rng| {
            Box::new(mlp_classifier(spec, 8, rng))
        });
        let initial = flatten_params(fed.template.as_ref());
        let mut endpoints = InProcNetwork::new(4);
        let server_ep = endpoints.remove(0);
        let mut service = AsyncRpcService::new(initial, AsyncConfig::default(), 6);
        let retries = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (i, (client, ep)) in fed.clients.into_iter().zip(endpoints).enumerate() {
                // Every client request has a 20% chance of vanishing.
                let ep = FaultyCommunicator::new(ep, FaultPlan::new(100 + i as u64).drop_prob(0.2));
                let retries = &retries;
                handles.push(scope.spawn(move || {
                    let policy = RetryPolicy {
                        max_attempts: 8,
                        base_backoff: Duration::from_millis(1),
                        ..RetryPolicy::default()
                    };
                    run_async_client_ft(
                        client,
                        &ep,
                        &policy,
                        Duration::from_millis(200),
                        Some(retries),
                        &Telemetry::disabled(),
                    )
                }));
            }
            serve_with(
                &mut service,
                &server_ep,
                3,
                &ServeOptions {
                    idle_timeout: Some(Duration::from_millis(300)),
                    max_idle: 5,
                    telemetry: Telemetry::disabled(),
                },
            )
            .unwrap();
            for h in handles {
                h.join().unwrap().unwrap();
            }
        });
        assert!(service.applied() >= 6, "applied {}", service.applied());
    }

    #[test]
    fn service_rejects_after_finish_and_empty_uploads() {
        let mut service = AsyncRpcService::new(vec![0.0; 4], AsyncConfig::default(), 1);
        let make = |round: u32| LearningResults {
            client_id: 0,
            round,
            penalty: 0.0,
            primal: vec![TensorMsg::flat("z", vec![1.0; 4])],
            dual: vec![],
        };
        let empty = LearningResults {
            client_id: 0,
            round: 0,
            penalty: 0.0,
            primal: vec![],
            dual: vec![],
        };
        assert!(!service.send_results(empty));
        assert!(service.send_results(make(0)));
        // max_updates = 1 reached: further uploads refused.
        assert!(!service.send_results(make(1)));
        assert_eq!(service.applied(), 1);
        assert_eq!(service.rejected(), 2);
    }

    #[test]
    fn durable_async_service_persists_and_resumes() {
        use crate::store::{DurableCoordinator, MemoryStore};
        let make = |round: u32| LearningResults {
            client_id: 0,
            round,
            penalty: 0.0,
            primal: vec![TensorMsg::flat("z", vec![1.0; 2])],
            dual: vec![],
        };
        let cfg = AsyncConfig {
            alpha: 0.5,
            ..AsyncConfig::default()
        };
        let mut durable = DurableCoordinator::new(Box::new(MemoryStore::new()));
        durable.recover(&Telemetry::disabled()).unwrap();
        assert!(!durable.was_recovered());
        let mut service = AsyncRpcService::new(vec![0.0; 2], cfg, 3)
            .with_durable(durable)
            .unwrap();
        assert!(service.send_results(make(0)));
        assert!(service.send_results(make(1)));
        let w_before = service.global_model();
        // "Crash": drop the service, keep the store, rebuild from scratch.
        let mut d = service.take_durable().unwrap();
        d.recover(&Telemetry::disabled()).unwrap();
        assert!(d.was_recovered());
        let mut resumed = AsyncRpcService::new(vec![0.0; 2], cfg, 3)
            .with_durable(d)
            .unwrap();
        assert_eq!(resumed.global_model(), w_before, "model restored");
        assert_eq!(resumed.applied(), 2, "applied counter restored");
        assert!(!resumed.finished());
        // The third accepted upload finishes the resumed run, with
        // staleness computed against the restored version counter.
        assert!(resumed.send_results(make(2)));
        assert!(resumed.finished());
    }

    #[test]
    fn stale_uploads_move_the_model_less() {
        let mut service = AsyncRpcService::new(
            vec![0.0; 1],
            AsyncConfig {
                alpha: 0.5,
                ..AsyncConfig::default()
            },
            10,
        );
        let upload = |round: u32| LearningResults {
            client_id: 0,
            round,
            penalty: 0.0,
            primal: vec![TensorMsg::flat("z", vec![1.0])],
            dual: vec![],
        };
        // Fresh upload: w = 0.5.
        assert!(service.send_results(upload(0)));
        let w1 = service.global_model()[0];
        assert!((w1 - 0.5).abs() < 1e-6);
        // Stale upload (trained on version 0, server now at 1): α/2 mixing.
        assert!(service.send_results(upload(0)));
        let w2 = service.global_model()[0];
        let expected = w1 + 0.25 * (1.0 - w1);
        assert!((w2 - expected).abs() < 1e-6, "w2 {w2} expected {expected}");
    }
}
