//! Run configuration.

use appfl_privacy::PrivacyConfig;
use serde::{Deserialize, Serialize};

/// Algorithm selection with per-algorithm hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AlgorithmConfig {
    /// FedAvg \[10\] with SGD+momentum local updates.
    FedAvg {
        /// Learning rate η.
        lr: f32,
        /// Momentum coefficient μ.
        momentum: f32,
    },
    /// FedProx: proximal SGD anchored at the global model (the λ=0, ζ=μ
    /// point of the IADMM spectrum; heterogeneity-robust local training).
    FedProx {
        /// Learning rate η.
        lr: f32,
        /// Proximal coefficient μ.
        mu: f32,
    },
    /// ICEADMM \[8\]: full-gradient inexact primal + dual local iterations,
    /// communicates primal and dual.
    IceAdmm {
        /// Penalty parameter ρ.
        rho: f32,
        /// Proximity parameter ζ.
        zeta: f32,
    },
    /// IIADMM (the paper's Algorithm 1): batched inexact primal iterations,
    /// mirrored duals, communicates primal only.
    IiAdmm {
        /// Penalty parameter ρ.
        rho: f32,
        /// Proximity parameter ζ.
        zeta: f32,
    },
}

impl AlgorithmConfig {
    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            AlgorithmConfig::FedAvg { .. } => "FedAvg",
            AlgorithmConfig::FedProx { .. } => "FedProx",
            AlgorithmConfig::IceAdmm { .. } => "ICEADMM",
            AlgorithmConfig::IiAdmm { .. } => "IIADMM",
        }
    }
}

/// Full federated job configuration (the paper's experimental knobs from
/// §IV: T communication rounds, L local steps, batch cap 64, privacy ε̄).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FedConfig {
    /// Algorithm and its hyper-parameters.
    pub algorithm: AlgorithmConfig,
    /// Communication rounds T (paper: 50).
    pub rounds: usize,
    /// Local steps/epochs L (paper: 10).
    pub local_steps: usize,
    /// Mini-batch cap (paper: 64; ICEADMM ignores this and uses full data).
    pub batch_size: usize,
    /// Privacy settings (ε̄ ∈ {3, 5, 10, ∞} in Fig. 2).
    pub privacy: PrivacyConfig,
    /// Master seed for model init, shuffling and noise.
    pub seed: u64,
}

impl FedConfig {
    /// Loads a configuration from a JSON file (the analogue of APPFL's
    /// config files; JSON instead of YAML to stay within the workspace's
    /// dependency budget).
    pub fn from_json_file(path: impl AsRef<std::path::Path>) -> appfl_tensor::Result<Self> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| appfl_tensor::TensorError::InvalidArgument(format!("config read: {e}")))?;
        serde_json::from_str(&text)
            .map_err(|e| appfl_tensor::TensorError::InvalidArgument(format!("config parse: {e}")))
    }

    /// Writes the configuration to a JSON file.
    pub fn to_json_file(&self, path: impl AsRef<std::path::Path>) -> appfl_tensor::Result<()> {
        let text = serde_json::to_string_pretty(self).map_err(|e| {
            appfl_tensor::TensorError::InvalidArgument(format!("config encode: {e}"))
        })?;
        std::fs::write(path, text)
            .map_err(|e| appfl_tensor::TensorError::InvalidArgument(format!("config write: {e}")))
    }

    /// The paper's Fig. 2 defaults for a given algorithm and ε̄.
    pub fn paper_defaults(algorithm: AlgorithmConfig, epsilon: f64) -> Self {
        let privacy = if epsilon.is_finite() {
            PrivacyConfig::laplace(epsilon, 1.0)
        } else {
            PrivacyConfig::none()
        };
        FedConfig {
            algorithm,
            rounds: 50,
            local_steps: 10,
            batch_size: 64,
            privacy,
            seed: 42,
        }
    }
}

/// Fault-tolerance knobs for the transport runners: when to give up on a
/// round, how few clients still constitute a round, and how aggressively
/// to retry / quarantine flaky participants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultToleranceConfig {
    /// Round deadline: the server aggregates whatever arrived once this
    /// many milliseconds elapse.
    pub round_timeout_ms: u64,
    /// Minimum uploads to aggregate a round; below this the round is
    /// skipped (global model unchanged).
    pub min_quorum: usize,
    /// Consecutive failures after which a client is marked suspect and
    /// excluded from the roster.
    pub suspect_after: usize,
    /// Rounds an excluded client sits out before re-admission
    /// (`0` = never re-admit).
    pub readmit_after: usize,
    /// Attempts per client-side transport call (1 = no retries).
    pub max_attempts: u32,
    /// Base backoff between retries, in milliseconds.
    pub base_backoff_ms: u64,
}

impl Default for FaultToleranceConfig {
    fn default() -> Self {
        FaultToleranceConfig {
            round_timeout_ms: 2_000,
            min_quorum: 1,
            suspect_after: 3,
            readmit_after: 5,
            max_attempts: 3,
            base_backoff_ms: 10,
        }
    }
}

impl FaultToleranceConfig {
    /// The round deadline as a [`std::time::Duration`].
    pub fn round_timeout(&self) -> std::time::Duration {
        std::time::Duration::from_millis(self.round_timeout_ms)
    }

    /// The client-side retry policy implied by this configuration, with
    /// jitter seeded per-client for determinism.
    pub fn retry_policy(&self, seed: u64) -> appfl_comm::RetryPolicy {
        appfl_comm::RetryPolicy {
            max_attempts: self.max_attempts,
            base_backoff: std::time::Duration::from_millis(self.base_backoff_ms),
            ..appfl_comm::RetryPolicy::default()
        }
        .with_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        assert_eq!(
            AlgorithmConfig::FedAvg {
                lr: 0.01,
                momentum: 0.9
            }
            .name(),
            "FedAvg"
        );
        assert_eq!(
            AlgorithmConfig::IceAdmm {
                rho: 1.0,
                zeta: 1.0
            }
            .name(),
            "ICEADMM"
        );
        assert_eq!(
            AlgorithmConfig::IiAdmm {
                rho: 1.0,
                zeta: 1.0
            }
            .name(),
            "IIADMM"
        );
    }

    #[test]
    fn paper_defaults_follow_section_iv() {
        let c = FedConfig::paper_defaults(
            AlgorithmConfig::FedAvg {
                lr: 0.01,
                momentum: 0.9,
            },
            5.0,
        );
        assert_eq!(c.rounds, 50);
        assert_eq!(c.local_steps, 10);
        assert_eq!(c.batch_size, 64);
        assert!(c.privacy.is_private());
        let inf = FedConfig::paper_defaults(
            AlgorithmConfig::FedAvg {
                lr: 0.01,
                momentum: 0.9,
            },
            f64::INFINITY,
        );
        assert!(!inf.privacy.is_private());
    }

    #[test]
    fn config_serializes() {
        let c = FedConfig::paper_defaults(
            AlgorithmConfig::IiAdmm {
                rho: 2.0,
                zeta: 0.5,
            },
            10.0,
        );
        let json = serde_json::to_string(&c).unwrap();
        let back: FedConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn fault_tolerance_defaults_and_roundtrip() {
        let ft = FaultToleranceConfig::default();
        assert!(ft.min_quorum >= 1);
        assert!(ft.max_attempts >= 1);
        assert_eq!(ft.round_timeout(), std::time::Duration::from_millis(2_000));
        let json = serde_json::to_string(&ft).unwrap();
        let back: FaultToleranceConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ft);
        let policy = ft.retry_policy(7);
        assert_eq!(policy.max_attempts, ft.max_attempts);
        assert_eq!(
            policy.base_backoff,
            std::time::Duration::from_millis(ft.base_backoff_ms)
        );
        assert_eq!(policy.seed, 7);
    }

    #[test]
    fn config_file_roundtrip() {
        let c = FedConfig::paper_defaults(
            AlgorithmConfig::FedAvg {
                lr: 0.01,
                momentum: 0.9,
            },
            3.0,
        );
        let path = std::env::temp_dir().join("appfl_test_config.json");
        c.to_json_file(&path).unwrap();
        let back = FedConfig::from_json_file(&path).unwrap();
        assert_eq!(back, c);
        std::fs::remove_file(&path).ok();
        assert!(FedConfig::from_json_file("/nonexistent.json").is_err());
    }
}
