//! Checkpointing: persist and restore the global model and run history.
//!
//! Long PPFL simulations (Fig. 2's 48-cell grid at paper scale) need to
//! survive interruption; checkpoints also let a served model be exported
//! for downstream evaluation. [`Checkpoint::save`] is crash-safe: the
//! JSON is written to a temporary file in the target's directory and
//! atomically renamed into place, so a crash mid-write can never leave a
//! truncated checkpoint where a good one (or none) used to be.
//!
//! Since the durable coordinator landed (see [`crate::store`]), the
//! checkpoint is a thin *consumer* of its recovered state:
//! [`Checkpoint::from_state`] derives an exportable round/model/history
//! snapshot from a [`crate::store::CoordinatorState`], so a run driven
//! through a [`crate::store::CoordinatorStore`] gets checkpoint export
//! for free instead of maintaining a parallel persistence path.

use crate::error::{Error, Result};
use crate::metrics::History;
use crate::store::CoordinatorState;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// A serialisable snapshot of a federated run.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct Checkpoint {
    /// Completed communication rounds.
    pub round: usize,
    /// The global model `w` after that round.
    pub global: Vec<f32>,
    /// Run history so far.
    pub history: History,
}

impl Checkpoint {
    /// Builds a snapshot.
    pub fn new(round: usize, global: Vec<f32>, history: History) -> Self {
        Checkpoint {
            round,
            global,
            history,
        }
    }

    /// Derives a checkpoint from a recovered coordinator state: the last
    /// *published* round, the durable model at that point, and the
    /// replayed history. A pending (unpublished) round is deliberately
    /// excluded — its aggregate is not yet a run-level fact — so the
    /// checkpoint always satisfies the `rounds ≥ history` invariant that
    /// [`Checkpoint::from_json`] enforces. Returns `None` for a state
    /// with no model at all (an empty or just-started store).
    pub fn from_state(state: &CoordinatorState) -> Option<Self> {
        let round = state.history.rounds.len();
        let global = state.models.get(round).or_else(|| state.models.last())?;
        Some(Checkpoint::new(
            round,
            global.clone(),
            state.history.clone(),
        ))
    }

    /// Serialises to JSON.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self).map_err(|e| Error::persist(format!("checkpoint encode: {e}")))
    }

    /// Deserialises from JSON, validating basic invariants.
    pub fn from_json(json: &str) -> Result<Self> {
        let cp: Checkpoint = serde_json::from_str(json)
            .map_err(|e| Error::persist(format!("checkpoint decode: {e}")))?;
        if cp.history.rounds.len() > cp.round {
            return Err(Error::persist(format!(
                "checkpoint claims round {} but history has {} records",
                cp.round,
                cp.history.rounds.len()
            )));
        }
        Ok(cp)
    }

    /// Writes to a file, atomically: the JSON goes to a temporary sibling
    /// first (same directory, so the rename cannot cross filesystems) and
    /// is renamed over `path` only once fully flushed. An interrupted save
    /// leaves at worst a stray `.tmp` file, never a truncated checkpoint.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        let json = self.to_json()?;
        let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
        let file_name = path
            .file_name()
            .ok_or_else(|| Error::persist(format!("checkpoint path has no file name: {path:?}")))?;
        let mut tmp_name = std::ffi::OsString::from(".");
        tmp_name.push(file_name);
        tmp_name.push(format!(".tmp.{}", std::process::id()));
        let tmp = match dir {
            Some(d) => d.join(&tmp_name),
            None => std::path::PathBuf::from(&tmp_name),
        };
        let write_and_rename = (|| {
            std::fs::write(&tmp, json)?;
            std::fs::rename(&tmp, path)
        })();
        if let Err(e) = write_and_rename {
            std::fs::remove_file(&tmp).ok();
            return Err(Error::persist(format!("checkpoint write {path:?}: {e}")));
        }
        Ok(())
    }

    /// Reads from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let json = std::fs::read_to_string(path)
            .map_err(|e| Error::persist(format!("checkpoint read: {e}")))?;
        Self::from_json(&json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::RoundRecord;

    fn sample() -> Checkpoint {
        let mut history = History::new("IIADMM", "MNIST", 5.0);
        history.rounds.push(RoundRecord {
            round: 1,
            accuracy: 0.8,
            test_loss: 0.5,
            train_loss: 0.6,
            upload_bytes: 100,
            compute_secs: 1.0,
            comm_secs: 0.1,
            ..RoundRecord::default()
        });
        Checkpoint::new(1, vec![0.25, -0.5, 1.0], history)
    }

    #[test]
    fn from_state_takes_the_last_published_round() {
        use crate::api::ClientUpload;
        use crate::store::{CoordinatorState, StoreEvent};
        let upload = ClientUpload {
            client_id: 0,
            primal: vec![1.0; 3],
            dual: None,
            num_samples: 1,
            local_loss: 0.0,
        };
        let record = RoundRecord {
            round: 1,
            accuracy: 0.7,
            ..RoundRecord::default()
        };
        let state = CoordinatorState::replay(&[
            StoreEvent::RunStarted {
                algorithm: "FedAvg".into(),
                dataset: "MNIST".into(),
                epsilon: f64::INFINITY,
                num_clients: 1,
                rounds: 2,
            },
            StoreEvent::RoundStarted {
                round: 1,
                broadcast: vec![0.0; 3],
                active: vec![0],
            },
            StoreEvent::UpdateReceived { round: 1, upload },
            StoreEvent::RoundAggregated {
                round: 1,
                model: vec![1.0; 3],
            },
            StoreEvent::RoundPublished {
                round: 1,
                record,
                roster: vec![],
                participants: vec![0],
            },
            // A second round is in flight but unpublished: the checkpoint
            // must stop at round 1.
            StoreEvent::RoundStarted {
                round: 2,
                broadcast: vec![1.0; 3],
                active: vec![0],
            },
        ]);
        let cp = Checkpoint::from_state(&state).expect("published round");
        assert_eq!(cp.round, 1);
        assert_eq!(cp.global, vec![1.0; 3]);
        assert_eq!(cp.history.rounds.len(), 1);
        // The derived checkpoint passes its own decode invariants.
        let back = Checkpoint::from_json(&cp.to_json().unwrap()).unwrap();
        assert_eq!(back, cp);
        // An empty state has nothing to export.
        assert!(Checkpoint::from_state(&CoordinatorState::default()).is_none());
    }

    #[test]
    fn json_roundtrip() {
        let cp = sample();
        let back = Checkpoint::from_json(&cp.to_json().unwrap()).unwrap();
        assert_eq!(back, cp);
    }

    #[test]
    fn file_roundtrip() {
        let cp = sample();
        let path = std::env::temp_dir().join("appfl_test_checkpoint.json");
        cp.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(back.global, cp.global);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn inconsistent_round_count_is_rejected() {
        let mut cp = sample();
        cp.round = 0; // history has 1 record → inconsistent
        let json = serde_json::to_string(&cp).unwrap();
        assert!(Checkpoint::from_json(&json).is_err());
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(Checkpoint::load("/nonexistent/path/cp.json").is_err());
    }

    #[test]
    fn save_replaces_an_existing_checkpoint_atomically() {
        let cp = sample();
        let path = std::env::temp_dir().join("appfl_test_checkpoint_atomic.json");
        cp.save(&path).unwrap();
        let mut newer = cp.clone();
        newer.round = 2;
        newer.global = vec![9.0, 9.0, 9.0];
        newer.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(back.round, 2);
        assert_eq!(back.global, newer.global);
        // No temp-file droppings left behind.
        let dir = path.parent().unwrap();
        let strays = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| {
                e.file_name()
                    .to_string_lossy()
                    .starts_with(".appfl_test_checkpoint_atomic.json.tmp")
            })
            .count();
        assert_eq!(strays, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_into_a_missing_directory_reports_persist_error() {
        let cp = sample();
        let err = cp
            .save("/nonexistent/path/cp.json")
            .expect_err("write into a missing directory must fail");
        assert!(matches!(err, Error::Persist(_)));
    }
}
