//! Checkpointing: persist and restore the global model and run history.
//!
//! Long PPFL simulations (Fig. 2's 48-cell grid at paper scale) need to
//! survive interruption; checkpoints also let a served model be exported
//! for downstream evaluation.

use crate::metrics::History;
use appfl_tensor::{Result, TensorError};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// A serialisable snapshot of a federated run.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct Checkpoint {
    /// Completed communication rounds.
    pub round: usize,
    /// The global model `w` after that round.
    pub global: Vec<f32>,
    /// Run history so far.
    pub history: History,
}

impl Checkpoint {
    /// Builds a snapshot.
    pub fn new(round: usize, global: Vec<f32>, history: History) -> Self {
        Checkpoint {
            round,
            global,
            history,
        }
    }

    /// Serialises to JSON.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self)
            .map_err(|e| TensorError::InvalidArgument(format!("checkpoint encode: {e}")))
    }

    /// Deserialises from JSON, validating basic invariants.
    pub fn from_json(json: &str) -> Result<Self> {
        let cp: Checkpoint = serde_json::from_str(json)
            .map_err(|e| TensorError::InvalidArgument(format!("checkpoint decode: {e}")))?;
        if cp.history.rounds.len() > cp.round {
            return Err(TensorError::InvalidArgument(format!(
                "checkpoint claims round {} but history has {} records",
                cp.round,
                cp.history.rounds.len()
            )));
        }
        Ok(cp)
    }

    /// Writes to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        std::fs::write(path, self.to_json()?)
            .map_err(|e| TensorError::InvalidArgument(format!("checkpoint write: {e}")))
    }

    /// Reads from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let json = std::fs::read_to_string(path)
            .map_err(|e| TensorError::InvalidArgument(format!("checkpoint read: {e}")))?;
        Self::from_json(&json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::RoundRecord;

    fn sample() -> Checkpoint {
        let mut history = History::new("IIADMM", "MNIST", 5.0);
        history.rounds.push(RoundRecord {
            round: 1,
            accuracy: 0.8,
            test_loss: 0.5,
            train_loss: 0.6,
            upload_bytes: 100,
            compute_secs: 1.0,
            comm_secs: 0.1,
            ..RoundRecord::default()
        });
        Checkpoint::new(1, vec![0.25, -0.5, 1.0], history)
    }

    #[test]
    fn json_roundtrip() {
        let cp = sample();
        let back = Checkpoint::from_json(&cp.to_json().unwrap()).unwrap();
        assert_eq!(back, cp);
    }

    #[test]
    fn file_roundtrip() {
        let cp = sample();
        let path = std::env::temp_dir().join("appfl_test_checkpoint.json");
        cp.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(back.global, cp.global);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn inconsistent_round_count_is_rejected() {
        let mut cp = sample();
        cp.round = 0; // history has 1 record → inconsistent
        let json = serde_json::to_string(&cp).unwrap();
        assert!(Checkpoint::from_json(&json).is_err());
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(Checkpoint::load("/nonexistent/path/cp.json").is_err());
    }
}
