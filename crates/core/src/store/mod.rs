//! Durable coordinator state: pluggable round stores and crash recovery.
//!
//! PRs 1 and 3 hardened the *edges* of the federation (fault-injecting
//! transport, retry/backoff, quorum degraded rounds, Byzantine defense),
//! but the coordinator itself was a single in-memory process: kill it
//! mid-round and every cohort roster, partial aggregate and roster health
//! state was gone except for manual checkpoints. This module makes the
//! coordinator restartable:
//!
//! * [`StoreEvent`] — the append-only record of every coordinator phase
//!   transition: run start, round start (select), each received upload
//!   (collect), the aggregated model (aggregate) and the published
//!   [`RoundRecord`] (publish).
//! * [`CoordinatorState`] — the deterministic fold of an event sequence:
//!   run history, per-round models, roster health and the in-progress
//!   round's partial state. Any *prefix* of a valid event log folds to a
//!   consistent state — the invariant the WAL property tests pin.
//! * [`CoordinatorStore`] — where events go. Three implementations:
//!   [`MemoryStore`] (process-lifetime, tests and opt-out),
//!   [`WalStore`] (append-only length-delimited + checksummed log with
//!   torn-tail truncation on open) and [`SnapshotWalStore`] (snapshot +
//!   log hybrid that compacts at round boundaries).
//! * [`DurableCoordinator`] — the handle the runners thread through:
//!   appends events at each phase transition, mirrors them into a live
//!   [`CoordinatorState`], requests compaction at round boundaries, and
//!   hosts the [`CrashPoint`] fault-injection hook the crash-recovery
//!   e2e drives.
//!
//! ## Replay semantics
//!
//! On restart the coordinator folds the store back into a
//! [`CoordinatorState`] and resumes: completed rounds are skipped, an
//! in-progress round restarts from its persisted partial state
//! (re-requesting only the clients whose uploads are missing), and
//! re-sent uploads for a round/client key the store already holds are
//! deduplicated idempotently. Client-side state is re-derived by
//! *deterministic replay*: [`CoordinatorState::replay_models_for`] hands
//! back the exact broadcast sequence a client trained on, so a rebuilt
//! client re-runs its local updates against it and arrives at the same
//! RNG/momentum state as the uninterrupted run. (This assumes a client
//! trained exactly the rounds whose uploads the store recorded — true
//! under delay/retry faults; under message *loss* a real deployment
//! persists client-side state instead.)

mod memory;
mod snapshot;
mod wal;

pub use memory::MemoryStore;
pub use snapshot::SnapshotWalStore;
pub use wal::WalStore;

use crate::api::ClientUpload;
use crate::error::{Error, Result};
use crate::metrics::{History, RoundRecord};
use appfl_telemetry::Telemetry;
use serde::{Deserialize, Serialize};

/// One durable coordinator phase transition.
///
/// Serialized as tagged JSON inside the store's framing, so records
/// written by older eras (missing newer fields) still decode — the same
/// serde-default era compatibility the [`RoundRecord`] history relies on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type")]
pub enum StoreEvent {
    /// A fresh run began: identifying metadata, written once.
    RunStarted {
        /// Algorithm name (e.g. `FedAvg`).
        algorithm: String,
        /// Dataset name.
        dataset: String,
        /// Privacy budget ε̄ (∞ encodes non-private; round-trips as
        /// `null` via [`crate::metrics::epsilon_serde`]).
        #[serde(with = "crate::metrics::epsilon_serde")]
        epsilon: f64,
        /// Federation size.
        num_clients: usize,
        /// Configured rounds.
        rounds: usize,
    },
    /// Select phase: a round began with this cohort and broadcast model.
    RoundStarted {
        /// 1-based round index.
        round: usize,
        /// The global model broadcast this round (`w^t`).
        broadcast: Vec<f32>,
        /// Client indices in the round's cohort.
        active: Vec<usize>,
    },
    /// Collect phase: one client upload arrived and was accepted.
    UpdateReceived {
        /// The round the upload belongs to.
        round: usize,
        /// The upload itself (the partial aggregate's raw material).
        upload: ClientUpload,
    },
    /// Aggregate phase: the server folded the round's uploads into `w`.
    RoundAggregated {
        /// The aggregated round.
        round: usize,
        /// The post-aggregation global model (`w^{t+1}`).
        model: Vec<f32>,
    },
    /// Publish phase: the round's record entered the history and the
    /// roster advanced.
    RoundPublished {
        /// The published round.
        round: usize,
        /// The round's metrics record.
        record: RoundRecord,
        /// Post-round roster health, one entry per client.
        #[serde(default)]
        roster: Vec<RosterState>,
        /// Clients whose uploads contributed to the round (the set that
        /// provably trained it — drives client replay on recovery).
        #[serde(default)]
        participants: Vec<usize>,
    },
    /// Async mode: one staleness-weighted upload was applied.
    AsyncApplied {
        /// Total applied uploads after this one.
        applied: usize,
        /// Server model version after this application.
        version: u64,
        /// The resulting global model.
        model: Vec<f32>,
    },
    /// The run finished all its rounds.
    RunCompleted,
}

impl StoreEvent {
    /// A short label for telemetry and diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            StoreEvent::RunStarted { .. } => "run_started",
            StoreEvent::RoundStarted { .. } => "round_started",
            StoreEvent::UpdateReceived { .. } => "update_received",
            StoreEvent::RoundAggregated { .. } => "round_aggregated",
            StoreEvent::RoundPublished { .. } => "round_published",
            StoreEvent::AsyncApplied { .. } => "async_applied",
            StoreEvent::RunCompleted => "run_completed",
        }
    }
}

/// Persisted per-client roster health (mirrors the fault-tolerant
/// runner's `ClientRoster` bookkeeping).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RosterState {
    /// Consecutive rounds without an accepted report.
    #[serde(default)]
    pub consecutive_failures: usize,
    /// Excluded until this round, if benched.
    #[serde(default)]
    pub excluded_until: Option<usize>,
}

/// The in-progress round's persisted partial state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PendingRound {
    /// 1-based round index.
    pub round: usize,
    /// The model broadcast for this round.
    pub broadcast: Vec<f32>,
    /// The cohort selected for this round.
    pub active: Vec<usize>,
    /// Uploads received so far (each client at most once).
    pub uploads: Vec<ClientUpload>,
    /// The aggregated model, once the aggregate phase committed.
    #[serde(default)]
    pub aggregated: Option<Vec<f32>>,
}

impl PendingRound {
    /// Whether `client`'s upload for this round is already persisted.
    pub fn has_upload(&self, client: usize) -> bool {
        self.uploads.iter().any(|u| u.client_id == client)
    }
}

/// Async-mode persisted state.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AsyncState {
    /// Applied upload count.
    pub applied: usize,
    /// Server model version.
    pub version: u64,
    /// Current global model.
    pub model: Vec<f32>,
}

/// The deterministic fold of a [`StoreEvent`] sequence — everything a
/// restarted coordinator needs to resume.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CoordinatorState {
    /// Run metadata + per-round records, as of the last published round.
    pub history: History,
    /// Federation size recorded at run start.
    #[serde(default)]
    pub num_clients: usize,
    /// Configured rounds recorded at run start.
    #[serde(default)]
    pub rounds: usize,
    /// `models[0]` is the initial broadcast; `models[r]` is the global
    /// model after round `r` — i.e. the broadcast of round `r + 1`.
    #[serde(default)]
    pub models: Vec<Vec<f32>>,
    /// Per completed round, the clients whose uploads contributed.
    #[serde(default)]
    pub participants: Vec<Vec<usize>>,
    /// Roster health after the last published round.
    #[serde(default)]
    pub roster: Vec<RosterState>,
    /// The round in flight when the log ends, if any.
    #[serde(default)]
    pub round_in_progress: Option<PendingRound>,
    /// Async-mode state, if the run is asynchronous.
    #[serde(default)]
    pub async_state: Option<AsyncState>,
    /// Whether the run completed all its rounds.
    #[serde(default)]
    pub completed: bool,
    /// Events folded so far (diagnostics; not persisted by snapshots
    /// beyond the fold itself).
    #[serde(default)]
    pub applied_events: usize,
}

impl CoordinatorState {
    /// Whether the state carries no recovered run at all.
    pub fn is_empty(&self) -> bool {
        self.applied_events == 0
            && self.models.is_empty()
            && self.round_in_progress.is_none()
            && self.async_state.is_none()
            && self.history.rounds.is_empty()
    }

    /// The round a resumed coordinator should execute next: the pending
    /// round if one is in flight, otherwise one past the last published.
    pub fn next_round(&self) -> usize {
        match &self.round_in_progress {
            Some(p) => p.round,
            None => self.history.rounds.len() + 1,
        }
    }

    /// The most recent durable global model: the pending round's
    /// aggregate if the aggregate phase committed, else the model after
    /// the last published round (which is the pending broadcast).
    pub fn current_model(&self) -> Option<&[f32]> {
        if let Some(p) = &self.round_in_progress {
            if let Some(m) = &p.aggregated {
                return Some(m);
            }
        }
        self.models.last().map(Vec::as_slice)
    }

    /// The broadcast sequence client `p` provably trained on — one model
    /// per completed round it participated in, plus the pending round's
    /// broadcast if its upload is already persisted. A rebuilt client
    /// replays its local update over exactly this sequence to re-derive
    /// its RNG/momentum state.
    pub fn replay_models_for(&self, client: usize) -> Vec<&[f32]> {
        let mut models = Vec::new();
        for (i, parts) in self.participants.iter().enumerate() {
            if parts.contains(&client) {
                if let Some(m) = self.models.get(i) {
                    models.push(m.as_slice());
                }
            }
        }
        if let Some(p) = &self.round_in_progress {
            if p.has_upload(client) {
                models.push(p.broadcast.as_slice());
            }
        }
        models
    }

    /// Folds one event into the state. Events are tolerated
    /// out-of-context (e.g. an `UpdateReceived` with no pending round
    /// opens one implicitly) so that *any prefix* of a valid log — the
    /// aftermath of a torn tail — still folds to a consistent state.
    pub fn apply(&mut self, event: &StoreEvent) {
        self.applied_events += 1;
        match event {
            StoreEvent::RunStarted {
                algorithm,
                dataset,
                epsilon,
                num_clients,
                rounds,
            } => {
                self.history = History::new(algorithm.clone(), dataset.clone(), *epsilon);
                self.num_clients = *num_clients;
                self.rounds = *rounds;
                self.roster = vec![RosterState::default(); *num_clients];
            }
            StoreEvent::RoundStarted {
                round,
                broadcast,
                active,
            } => {
                if self.models.is_empty() {
                    // The first round's broadcast is the initial model.
                    self.models.push(broadcast.clone());
                }
                self.round_in_progress = Some(PendingRound {
                    round: *round,
                    broadcast: broadcast.clone(),
                    active: active.clone(),
                    uploads: Vec::new(),
                    aggregated: None,
                });
            }
            StoreEvent::UpdateReceived { round, upload } => {
                let pending = self.round_in_progress.get_or_insert_with(|| PendingRound {
                    round: *round,
                    broadcast: self.models.last().cloned().unwrap_or_default(),
                    active: (0..self.num_clients).collect(),
                    uploads: Vec::new(),
                    aggregated: None,
                });
                // Replay-time idempotence: the same (round, client) key
                // folds in at most once.
                if pending.round == *round && !pending.has_upload(upload.client_id) {
                    pending.uploads.push(upload.clone());
                }
            }
            StoreEvent::RoundAggregated { round, model } => {
                if let Some(p) = &mut self.round_in_progress {
                    if p.round == *round {
                        p.aggregated = Some(model.clone());
                    }
                }
            }
            StoreEvent::RoundPublished {
                round,
                record,
                roster,
                participants,
            } => {
                let aggregated = self.round_in_progress.take().and_then(|p| {
                    if p.round == *round {
                        p.aggregated
                    } else {
                        None
                    }
                });
                // A skipped round (below quorum) has no aggregate: the
                // model carries over unchanged.
                let model = aggregated
                    .or_else(|| self.models.last().cloned())
                    .unwrap_or_default();
                self.models.push(model);
                self.participants.push(participants.clone());
                self.history.rounds.push(*record);
                if !roster.is_empty() {
                    self.roster = roster.clone();
                }
            }
            StoreEvent::AsyncApplied {
                applied,
                version,
                model,
            } => {
                self.async_state = Some(AsyncState {
                    applied: *applied,
                    version: *version,
                    model: model.clone(),
                });
            }
            StoreEvent::RunCompleted => {
                self.completed = true;
            }
        }
    }

    /// Folds a whole event sequence from scratch.
    pub fn replay<'a>(events: impl IntoIterator<Item = &'a StoreEvent>) -> Self {
        let mut state = CoordinatorState::default();
        for e in events {
            state.apply(e);
        }
        state
    }
}

/// Where coordinator events go — the pluggable persistence backend.
///
/// Implementations must make [`CoordinatorStore::append`] atomic at the
/// record level (a torn write may lose the tail record but never corrupt
/// earlier ones) and [`CoordinatorStore::recover`] must fold whatever
/// survived into a consistent [`CoordinatorState`].
pub trait CoordinatorStore: Send {
    /// Durably appends one event.
    fn append(&mut self, event: &StoreEvent) -> Result<()>;

    /// Folds the persisted log (and snapshot, if any) back into a state.
    fn recover(&mut self) -> Result<CoordinatorState>;

    /// Invited at round boundaries with the full current state; stores
    /// that snapshot may compact their log here. The default keeps the
    /// log as-is.
    fn compact(&mut self, _state: &CoordinatorState) -> Result<()> {
        Ok(())
    }

    /// Backend name for telemetry and diagnostics.
    fn name(&self) -> &'static str;
}

// The crash-injection vocabulary ([`CrashPhase`], [`CrashPoint`]) moved to
// the shared fault/retry policy module in appfl-comm; re-exported here so
// the long-standing `store::{CrashPhase, CrashPoint}` paths keep resolving.
pub use appfl_comm::policy::{CrashPhase, CrashPoint};

/// The durable-coordination handle the runners thread through their
/// phase transitions.
///
/// Wraps a [`CoordinatorStore`], mirrors every appended event into a live
/// [`CoordinatorState`] (so compaction never re-reads the log), counts
/// deduplicated resubmissions, and hosts the [`CrashPoint`] hook. All
/// appends are write-ahead: the runner persists the transition *before*
/// acting on it.
pub struct DurableCoordinator {
    store: Box<dyn CoordinatorStore>,
    state: CoordinatorState,
    crash: Option<CrashPoint>,
    recovered: bool,
    duplicates: usize,
}

impl DurableCoordinator {
    /// Wraps a store. Call [`DurableCoordinator::recover`] before use.
    pub fn new(store: Box<dyn CoordinatorStore>) -> Self {
        DurableCoordinator {
            store,
            state: CoordinatorState::default(),
            crash: None,
            recovered: false,
            duplicates: 0,
        }
    }

    /// Arms the crash-injection hook: the coordinator dies (with
    /// [`Error::Crashed`]) right after the matching phase commits.
    pub fn crash_after(mut self, point: CrashPoint) -> Self {
        self.crash = Some(point);
        self
    }

    /// Folds the store into the live state and returns a clone of it.
    /// A non-empty recovery emits a `coordinator_recovery` mark and bumps
    /// the `coordinator_recoveries` counter on `telemetry`.
    pub fn recover(&mut self, telemetry: &Telemetry) -> Result<CoordinatorState> {
        self.state = self.store.recover()?;
        self.recovered = !self.state.is_empty();
        if self.recovered {
            let round = self.state.next_round() as u64;
            telemetry.count("coordinator_recoveries", 1, Some(round), None);
            telemetry.mark(
                "coordinator_recovery",
                Some(round),
                None,
                Some(self.store.name()),
            );
            telemetry.gauge("wal_position", self.state.applied_events as f64, Some(round), None);
            // Crash recovery is a flight-recorder trigger: capture the
            // pre-crash tail before the resumed run overwrites it.
            telemetry.flight_dump("coordinator_recovery", self.store.name());
        }
        Ok(self.state.clone())
    }

    /// Whether the last [`DurableCoordinator::recover`] found prior state.
    pub fn was_recovered(&self) -> bool {
        self.recovered
    }

    /// The live state mirror.
    pub fn state(&self) -> &CoordinatorState {
        &self.state
    }

    /// Re-sent uploads dropped by the dedup check so far.
    pub fn duplicates(&self) -> usize {
        self.duplicates
    }

    /// The underlying store's name.
    pub fn store_name(&self) -> &'static str {
        self.store.name()
    }

    fn append(&mut self, event: StoreEvent) -> Result<()> {
        self.store.append(&event)?;
        self.state.apply(&event);
        Ok(())
    }

    fn maybe_crash(&self, round: usize, phase: CrashPhase) -> Result<()> {
        if self.crash == Some(CrashPoint { round, phase }) {
            return Err(Error::Crashed(phase.as_str()));
        }
        Ok(())
    }

    /// Persists run metadata. Skipped when resuming a recovered run.
    #[allow(clippy::too_many_arguments)]
    pub fn run_started(
        &mut self,
        algorithm: &str,
        dataset: &str,
        epsilon: f64,
        num_clients: usize,
        rounds: usize,
    ) -> Result<()> {
        if self.recovered {
            return Ok(());
        }
        self.append(StoreEvent::RunStarted {
            algorithm: algorithm.to_string(),
            dataset: dataset.to_string(),
            epsilon,
            num_clients,
            rounds,
        })
    }

    /// Select phase commit: the round's cohort and broadcast are durable
    /// before the first byte goes out.
    pub fn round_started(
        &mut self,
        round: usize,
        broadcast: &[f32],
        active: &[usize],
    ) -> Result<()> {
        self.append(StoreEvent::RoundStarted {
            round,
            broadcast: broadcast.to_vec(),
            active: active.to_vec(),
        })?;
        self.maybe_crash(round, CrashPhase::Select)
    }

    /// Collect phase commit: persists `upload` under its
    /// `(round, client_id)` key. Returns `false` — without persisting —
    /// when the key is already present: the caller must drop the upload
    /// as a duplicate resubmission.
    pub fn update_received(&mut self, round: usize, upload: &ClientUpload) -> Result<bool> {
        if let Some(p) = &self.state.round_in_progress {
            if p.round == round && p.has_upload(upload.client_id) {
                self.duplicates += 1;
                return Ok(false);
            }
        }
        self.append(StoreEvent::UpdateReceived {
            round,
            upload: upload.clone(),
        })?;
        let first = self
            .state
            .round_in_progress
            .as_ref()
            .is_some_and(|p| p.round == round && p.uploads.len() == 1);
        if first {
            self.maybe_crash(round, CrashPhase::Collect)?;
        }
        Ok(true)
    }

    /// Aggregate phase commit: the post-aggregation model is durable.
    pub fn round_aggregated(&mut self, round: usize, model: &[f32]) -> Result<()> {
        self.append(StoreEvent::RoundAggregated {
            round,
            model: model.to_vec(),
        })?;
        self.maybe_crash(round, CrashPhase::Aggregate)
    }

    /// Publish phase commit: the round's record, roster and participant
    /// set are durable; the store is then invited to compact.
    pub fn round_published(
        &mut self,
        round: usize,
        record: &RoundRecord,
        roster: &[RosterState],
        participants: &[usize],
    ) -> Result<()> {
        self.append(StoreEvent::RoundPublished {
            round,
            record: *record,
            roster: roster.to_vec(),
            participants: participants.to_vec(),
        })?;
        self.store.compact(&self.state)?;
        self.maybe_crash(round, CrashPhase::Publish)
    }

    /// Async-mode commit: one applied upload's resulting model.
    pub fn async_applied(&mut self, applied: usize, version: u64, model: &[f32]) -> Result<()> {
        self.append(StoreEvent::AsyncApplied {
            applied,
            version,
            model: model.to_vec(),
        })
    }

    /// Marks the run complete.
    pub fn run_completed(&mut self) -> Result<()> {
        self.append(StoreEvent::RunCompleted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upload(client_id: usize) -> ClientUpload {
        ClientUpload {
            client_id,
            primal: vec![client_id as f32; 3],
            dual: None,
            num_samples: 10,
            local_loss: 0.5,
        }
    }

    fn record(round: usize) -> RoundRecord {
        RoundRecord {
            round,
            accuracy: 0.5 + round as f32 * 0.1,
            ..RoundRecord::default()
        }
    }

    fn full_round_events(round: usize, w: Vec<f32>, model: Vec<f32>) -> Vec<StoreEvent> {
        vec![
            StoreEvent::RoundStarted {
                round,
                broadcast: w,
                active: vec![0, 1],
            },
            StoreEvent::UpdateReceived {
                round,
                upload: upload(0),
            },
            StoreEvent::UpdateReceived {
                round,
                upload: upload(1),
            },
            StoreEvent::RoundAggregated {
                round,
                model: model.clone(),
            },
            StoreEvent::RoundPublished {
                round,
                record: record(round),
                roster: vec![RosterState::default(); 2],
                participants: vec![0, 1],
            },
        ]
    }

    #[test]
    fn replay_folds_completed_rounds_into_history_and_models() {
        let mut events = vec![StoreEvent::RunStarted {
            algorithm: "FedAvg".into(),
            dataset: "MNIST".into(),
            epsilon: f64::INFINITY,
            num_clients: 2,
            rounds: 3,
        }];
        events.extend(full_round_events(1, vec![0.0; 3], vec![1.0; 3]));
        events.extend(full_round_events(2, vec![1.0; 3], vec![2.0; 3]));
        let state = CoordinatorState::replay(&events);
        assert!(!state.is_empty());
        assert_eq!(state.history.rounds.len(), 2);
        assert_eq!(state.next_round(), 3);
        // models: initial + one per round.
        assert_eq!(state.models.len(), 3);
        assert_eq!(state.current_model(), Some(&[2.0f32; 3][..]));
        assert!(state.round_in_progress.is_none());
        assert_eq!(state.participants, vec![vec![0, 1], vec![0, 1]]);
    }

    #[test]
    fn every_prefix_is_consistent() {
        let mut events = vec![StoreEvent::RunStarted {
            algorithm: "FedAvg".into(),
            dataset: "MNIST".into(),
            epsilon: f64::INFINITY,
            num_clients: 2,
            rounds: 2,
        }];
        events.extend(full_round_events(1, vec![0.0; 3], vec![1.0; 3]));
        events.extend(full_round_events(2, vec![1.0; 3], vec![2.0; 3]));
        events.push(StoreEvent::RunCompleted);
        for cut in 0..=events.len() {
            let state = CoordinatorState::replay(&events[..cut]);
            // The fold never loses published rounds and never invents
            // rounds beyond the configured count.
            assert!(state.history.rounds.len() <= 2);
            assert!(state.next_round() >= state.history.rounds.len());
            if let Some(p) = &state.round_in_progress {
                assert!(p.uploads.len() <= 2);
                assert_eq!(p.round, state.next_round());
            }
        }
    }

    #[test]
    fn mid_round_state_resumes_with_missing_clients_only() {
        let events = vec![
            StoreEvent::RoundStarted {
                round: 1,
                broadcast: vec![0.5; 3],
                active: vec![0, 1, 2],
            },
            StoreEvent::UpdateReceived {
                round: 1,
                upload: upload(1),
            },
        ];
        let state = CoordinatorState::replay(&events);
        assert_eq!(state.next_round(), 1);
        let p = state.round_in_progress.as_ref().unwrap();
        assert!(p.has_upload(1));
        assert!(!p.has_upload(0));
        assert_eq!(state.current_model(), Some(&[0.5f32; 3][..]));
        // Client 1 replays the pending broadcast; client 0 replays nothing.
        assert_eq!(state.replay_models_for(1), vec![&[0.5f32; 3][..]]);
        assert!(state.replay_models_for(0).is_empty());
    }

    #[test]
    fn duplicate_updates_fold_in_once() {
        let events = vec![
            StoreEvent::RoundStarted {
                round: 1,
                broadcast: vec![0.0; 3],
                active: vec![0, 1],
            },
            StoreEvent::UpdateReceived {
                round: 1,
                upload: upload(0),
            },
            StoreEvent::UpdateReceived {
                round: 1,
                upload: upload(0),
            },
        ];
        let state = CoordinatorState::replay(&events);
        assert_eq!(state.round_in_progress.unwrap().uploads.len(), 1);
    }

    #[test]
    fn durable_coordinator_dedups_and_counts() {
        let mut d = DurableCoordinator::new(Box::new(MemoryStore::new()));
        d.recover(&Telemetry::disabled()).unwrap();
        d.round_started(1, &[0.0; 3], &[0, 1]).unwrap();
        assert!(d.update_received(1, &upload(0)).unwrap());
        assert!(!d.update_received(1, &upload(0)).unwrap(), "dup dropped");
        assert!(d.update_received(1, &upload(1)).unwrap());
        assert_eq!(d.duplicates(), 1);
    }

    #[test]
    fn crash_point_fires_after_the_matching_phase() {
        let mut d = DurableCoordinator::new(Box::new(MemoryStore::new())).crash_after(CrashPoint {
            round: 2,
            phase: CrashPhase::Collect,
        });
        d.recover(&Telemetry::disabled()).unwrap();
        d.round_started(1, &[0.0; 3], &[0]).unwrap();
        assert!(
            d.update_received(1, &upload(0)).is_ok(),
            "round 1 unaffected"
        );
        d.round_aggregated(1, &[1.0; 3]).unwrap();
        d.round_published(1, &record(1), &[], &[0]).unwrap();
        d.round_started(2, &[1.0; 3], &[0]).unwrap();
        let err = d.update_received(2, &upload(0)).unwrap_err();
        assert!(matches!(err, Error::Crashed("collect")), "{err}");
        // The event itself is durable: the crash models death *after*
        // the write, so recovery sees the upload.
        let state = d.store.recover().unwrap();
        assert!(state.round_in_progress.unwrap().has_upload(0));
    }

    #[test]
    fn recovery_emits_telemetry() {
        use appfl_telemetry::MemorySink;
        use std::sync::Arc;
        let mut store = MemoryStore::new();
        store
            .append(&StoreEvent::RoundStarted {
                round: 1,
                broadcast: vec![0.0; 2],
                active: vec![0],
            })
            .unwrap();
        let mut d = DurableCoordinator::new(Box::new(store));
        let sink = Arc::new(MemorySink::new());
        let telemetry = Telemetry::new(sink.clone());
        let state = d.recover(&telemetry).unwrap();
        assert!(d.was_recovered());
        assert_eq!(state.next_round(), 1);
        let events = sink.events();
        assert!(events.iter().any(|e| e.name == "coordinator_recoveries"));
        assert!(events.iter().any(|e| e.name == "coordinator_recovery"));
    }
}
