//! In-memory coordinator store.

use super::{CoordinatorState, CoordinatorStore, StoreEvent};
use crate::error::Result;

/// Process-lifetime event store: survives a *logical* coordinator restart
/// (dropping and rebuilding the server object) but not the process. The
/// recovery-logic tests run on it, and it is the zero-IO default for
/// deployments that only want the dedup/resume semantics.
#[derive(Debug, Default)]
pub struct MemoryStore {
    events: Vec<StoreEvent>,
}

impl MemoryStore {
    /// An empty store.
    pub fn new() -> Self {
        MemoryStore::default()
    }

    /// Events appended so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were appended.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The raw event log (tests).
    pub fn events(&self) -> &[StoreEvent] {
        &self.events
    }
}

impl CoordinatorStore for MemoryStore {
    fn append(&mut self, event: &StoreEvent) -> Result<()> {
        self.events.push(event.clone());
        Ok(())
    }

    fn recover(&mut self) -> Result<CoordinatorState> {
        Ok(CoordinatorState::replay(&self.events))
    }

    fn name(&self) -> &'static str {
        "memory"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_then_recover_roundtrips() {
        let mut s = MemoryStore::new();
        assert!(s.is_empty());
        s.append(&StoreEvent::RunCompleted).unwrap();
        assert_eq!(s.len(), 1);
        let state = s.recover().unwrap();
        assert!(state.completed);
    }
}
