//! Snapshot + WAL hybrid store.
//!
//! A bare [`WalStore`] grows without bound: every broadcast and upload of
//! every round stays in the log forever, and recovery re-folds the full
//! run. `SnapshotWalStore` bounds both. It keeps a directory with two
//! files:
//!
//! ```text
//! <dir>/snapshot.json   the full CoordinatorState as of the last compaction
//! <dir>/wal.log         WAL of events appended since that snapshot
//! ```
//!
//! [`CoordinatorStore::compact`] — invited by the [`DurableCoordinator`]
//! after every publish — writes the live state mirror to `snapshot.json`
//! (atomically: temp sibling + rename, the `checkpoint.rs` idiom) and
//! truncates the WAL, so the log never holds more than one round of
//! events and recovery folds at most one round's tail over the snapshot.
//! The write order makes every crash window safe: snapshot-then-truncate
//! means a crash between the two replays WAL events that are already
//! *inside* the snapshot, and the [`CoordinatorState::apply`] fold
//! tolerates those (duplicate uploads fold once; a `RoundPublished` for
//! an already-published round would require the matching `RoundStarted`
//! to re-open a pending round first, which the truncated log no longer
//! holds).
//!
//! [`DurableCoordinator`]: super::DurableCoordinator

use super::wal::WalStore;
use super::{CoordinatorState, CoordinatorStore, StoreEvent};
use crate::error::{Error, Result};
use std::path::{Path, PathBuf};

/// Snapshot file name inside the store directory.
const SNAPSHOT: &str = "snapshot.json";
/// WAL file name inside the store directory.
const WAL: &str = "wal.log";

/// Hybrid store: a JSON state snapshot compacted at round boundaries plus
/// a WAL of the events since.
pub struct SnapshotWalStore {
    dir: PathBuf,
    wal: WalStore,
    compactions: usize,
}

impl SnapshotWalStore {
    /// Opens (or creates) the store directory.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| Error::persist(format!("snapshot dir {dir:?}: {e}")))?;
        let wal = WalStore::open(dir.join(WAL))?;
        Ok(SnapshotWalStore {
            dir,
            wal,
            compactions: 0,
        })
    }

    fn snapshot_path(&self) -> PathBuf {
        self.dir.join(SNAPSHOT)
    }

    /// Loads the snapshot state, if one exists.
    fn load_snapshot(&self) -> Result<Option<CoordinatorState>> {
        let path = self.snapshot_path();
        let json = match std::fs::read_to_string(&path) {
            Ok(json) => json,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(Error::persist(format!("snapshot read {path:?}: {e}"))),
        };
        let state = serde_json::from_str(&json)
            .map_err(|e| Error::persist(format!("snapshot decode {path:?}: {e}")))?;
        Ok(Some(state))
    }

    /// Atomic write via a temp sibling + rename (a crash mid-write leaves
    /// the previous snapshot intact).
    fn write_snapshot(&self, state: &CoordinatorState) -> Result<()> {
        let path = self.snapshot_path();
        let json = serde_json::to_string(state)
            .map_err(|e| Error::persist(format!("snapshot encode: {e}")))?;
        let tmp = self
            .dir
            .join(format!(".{SNAPSHOT}.tmp.{}", std::process::id()));
        let write_and_rename = (|| {
            std::fs::write(&tmp, json)?;
            std::fs::rename(&tmp, &path)
        })();
        if let Err(e) = write_and_rename {
            std::fs::remove_file(&tmp).ok();
            return Err(Error::persist(format!("snapshot write {path:?}: {e}")));
        }
        Ok(())
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Compactions performed since open.
    pub fn compactions(&self) -> usize {
        self.compactions
    }

    /// WAL records appended since the last compaction.
    pub fn wal_records(&self) -> usize {
        self.wal.records()
    }
}

impl CoordinatorStore for SnapshotWalStore {
    fn append(&mut self, event: &StoreEvent) -> Result<()> {
        self.wal.append(event)
    }

    fn recover(&mut self) -> Result<CoordinatorState> {
        let mut state = self.load_snapshot()?.unwrap_or_default();
        for event in self.wal.read_events()? {
            state.apply(&event);
        }
        Ok(state)
    }

    fn compact(&mut self, state: &CoordinatorState) -> Result<()> {
        self.write_snapshot(state)?;
        self.wal.reset()?;
        self.compactions += 1;
        Ok(())
    }

    fn name(&self) -> &'static str {
        "snapshot-wal"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::ClientUpload;
    use crate::metrics::RoundRecord;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static UNIQ: AtomicUsize = AtomicUsize::new(0);

    fn temp_dir() -> PathBuf {
        std::env::temp_dir().join(format!(
            "appfl_snapshot_test_{}_{}",
            std::process::id(),
            UNIQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn upload(client_id: usize) -> ClientUpload {
        ClientUpload {
            client_id,
            primal: vec![1.0; 3],
            dual: None,
            num_samples: 4,
            local_loss: 0.2,
        }
    }

    fn run_round(store: &mut SnapshotWalStore, state: &mut CoordinatorState, round: usize) {
        let events = vec![
            StoreEvent::RoundStarted {
                round,
                broadcast: vec![round as f32; 3],
                active: vec![0, 1],
            },
            StoreEvent::UpdateReceived {
                round,
                upload: upload(0),
            },
            StoreEvent::UpdateReceived {
                round,
                upload: upload(1),
            },
            StoreEvent::RoundAggregated {
                round,
                model: vec![round as f32 + 0.5; 3],
            },
            StoreEvent::RoundPublished {
                round,
                record: RoundRecord {
                    round,
                    accuracy: 0.7,
                    ..RoundRecord::default()
                },
                roster: Vec::new(),
                participants: vec![0, 1],
            },
        ];
        for e in events {
            store.append(&e).unwrap();
            state.apply(&e);
        }
    }

    #[test]
    fn compaction_truncates_the_wal_and_recovery_matches() {
        let dir = temp_dir();
        let mut state = CoordinatorState::default();
        {
            let mut store = SnapshotWalStore::open(&dir).unwrap();
            run_round(&mut store, &mut state, 1);
            assert!(store.wal_records() > 0);
            store.compact(&state).unwrap();
            assert_eq!(store.wal_records(), 0, "compaction truncates the log");
            assert_eq!(store.compactions(), 1);
            run_round(&mut store, &mut state, 2);
        }
        // Reopen: snapshot (round 1) + WAL tail (round 2).
        let mut store = SnapshotWalStore::open(&dir).unwrap();
        let recovered = store.recover().unwrap();
        assert_eq!(recovered.history.rounds.len(), 2);
        assert_eq!(recovered.models, state.models);
        assert_eq!(recovered.participants, state.participants);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_between_snapshot_and_truncate_is_harmless() {
        let dir = temp_dir();
        let mut state = CoordinatorState::default();
        {
            let mut store = SnapshotWalStore::open(&dir).unwrap();
            run_round(&mut store, &mut state, 1);
            // Simulate the crash window: snapshot written, WAL NOT yet
            // truncated — recovery replays round-1 events over a snapshot
            // that already contains round 1.
            store.write_snapshot(&state).unwrap();
        }
        let mut store = SnapshotWalStore::open(&dir).unwrap();
        assert!(store.wal_records() > 0, "wal kept its records");
        let recovered = store.recover().unwrap();
        // The re-folded tail must not double-publish round 1.
        assert_eq!(recovered.history.rounds.len(), 1);
        assert_eq!(recovered.models.len(), state.models.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mid_round_tail_folds_over_snapshot() {
        let dir = temp_dir();
        let mut state = CoordinatorState::default();
        {
            let mut store = SnapshotWalStore::open(&dir).unwrap();
            run_round(&mut store, &mut state, 1);
            store.compact(&state).unwrap();
            store
                .append(&StoreEvent::RoundStarted {
                    round: 2,
                    broadcast: vec![1.5; 3],
                    active: vec![0, 1],
                })
                .unwrap();
            store
                .append(&StoreEvent::UpdateReceived {
                    round: 2,
                    upload: upload(1),
                })
                .unwrap();
        }
        let mut store = SnapshotWalStore::open(&dir).unwrap();
        let recovered = store.recover().unwrap();
        assert_eq!(recovered.history.rounds.len(), 1);
        let p = recovered.round_in_progress.as_ref().unwrap();
        assert_eq!(p.round, 2);
        assert!(p.has_upload(1));
        assert!(!p.has_upload(0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_directory_recovers_to_empty_state() {
        let dir = temp_dir();
        let mut store = SnapshotWalStore::open(&dir).unwrap();
        assert!(store.recover().unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_snapshot_is_an_error_not_silent_data_loss() {
        let dir = temp_dir();
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(SNAPSHOT), b"{ not json").unwrap();
        let mut store = SnapshotWalStore::open(&dir).unwrap();
        let err = store.recover().unwrap_err();
        assert!(matches!(err, Error::Persist(_)), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
