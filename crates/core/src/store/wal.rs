//! Append-only write-ahead log store.
//!
//! ## On-disk format
//!
//! ```text
//! +----------------------+   file header, written once
//! | magic  "APPFLWAL"    |   8 bytes
//! | version u16 LE  = 1  |   2 bytes
//! +----------------------+
//! | len    u32 LE        |   payload length           \
//! | crc32  u32 LE        |   IEEE CRC-32 of payload    |  per record,
//! | payload              |   tagged-JSON StoreEvent    |  repeated
//! +----------------------+                            /
//! ```
//!
//! Records are framed (length-delimited) and checksummed, so the only
//! failure a crash mid-append can produce is a *torn tail*: a final
//! record whose header or payload is incomplete, or whose checksum does
//! not match its bytes. [`WalStore::open`] detects the torn tail and
//! truncates the file back to the last intact record — recovery then
//! folds a strictly shorter but fully valid prefix, which
//! [`super::CoordinatorState::apply`] guarantees is consistent. The JSON
//! payload keeps records era-compatible: fields added later deserialize
//! with serde defaults, exactly like the history records.

use super::{CoordinatorState, CoordinatorStore, StoreEvent};
use crate::error::{Error, Result};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"APPFLWAL";
const VERSION: u16 = 1;
const HEADER_LEN: u64 = 10;
/// Frames larger than this are rejected as corrupt rather than allocated.
const MAX_RECORD: u32 = 256 * 1024 * 1024;

/// IEEE CRC-32 (the zlib/Ethernet polynomial), bitwise — no table, no
/// dependency; WAL records are small enough that throughput is moot.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Append-only write-ahead log over a single file.
#[derive(Debug)]
pub struct WalStore {
    path: PathBuf,
    file: File,
    records: usize,
    truncated_tail: bool,
}

impl WalStore {
    /// Opens (or creates) the log at `path`, scanning it for a torn tail
    /// and truncating back to the last intact record if one is found.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| Error::persist(format!("wal open {path:?}: {e}")))?;
        let len = file
            .metadata()
            .map_err(|e| Error::persist(format!("wal stat {path:?}: {e}")))?
            .len();
        let mut truncated_tail = false;
        let mut records = 0usize;
        if len == 0 {
            let mut header = Vec::with_capacity(HEADER_LEN as usize);
            header.extend_from_slice(MAGIC);
            header.extend_from_slice(&VERSION.to_le_bytes());
            file.write_all(&header)
                .and_then(|()| file.sync_data())
                .map_err(|e| Error::persist(format!("wal header {path:?}: {e}")))?;
        } else {
            let mut buf = Vec::new();
            file.read_to_end(&mut buf)
                .map_err(|e| Error::persist(format!("wal read {path:?}: {e}")))?;
            let (good_end, count) = Self::scan(&path, &buf)?;
            records = count;
            if (good_end as u64) < len {
                truncated_tail = true;
                file.set_len(good_end as u64)
                    .map_err(|e| Error::persist(format!("wal truncate {path:?}: {e}")))?;
            }
            file.seek(SeekFrom::End(0))
                .map_err(|e| Error::persist(format!("wal seek {path:?}: {e}")))?;
        }
        Ok(WalStore {
            path,
            file,
            records,
            truncated_tail,
        })
    }

    /// Validates the header and walks the frames; returns the byte offset
    /// just past the last intact record plus the intact-record count.
    fn scan(path: &Path, buf: &[u8]) -> Result<(usize, usize)> {
        if buf.len() < HEADER_LEN as usize || &buf[..8] != MAGIC {
            return Err(Error::persist(format!(
                "{path:?} is not an APPFL WAL (bad magic)"
            )));
        }
        let version = u16::from_le_bytes([buf[8], buf[9]]);
        if version != VERSION {
            return Err(Error::persist(format!(
                "{path:?} is WAL format v{version}, this build reads v{VERSION}"
            )));
        }
        let mut pos = HEADER_LEN as usize;
        let mut records = 0usize;
        loop {
            if pos + 8 > buf.len() {
                break; // torn or absent frame header
            }
            let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap());
            let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
            if len > MAX_RECORD {
                break; // implausible length: treat as a torn tail
            }
            let end = pos + 8 + len as usize;
            if end > buf.len() {
                break; // torn payload
            }
            let payload = &buf[pos + 8..end];
            if crc32(payload) != crc {
                break; // bit rot or torn write inside the payload
            }
            // The payload must decode, too: a record we cannot act on is
            // as good as torn (and everything after it is suspect).
            if serde_json::from_slice::<StoreEvent>(payload).is_err() {
                break;
            }
            pos = end;
            records += 1;
        }
        Ok((pos, records))
    }

    /// Whether opening found and removed a torn tail.
    pub fn truncated_tail(&self) -> bool {
        self.truncated_tail
    }

    /// Intact records in the log.
    pub fn records(&self) -> usize {
        self.records
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Truncates the log back to just its header (snapshot compaction).
    pub(crate) fn reset(&mut self) -> Result<()> {
        self.file
            .set_len(HEADER_LEN)
            .and_then(|()| self.file.seek(SeekFrom::End(0)).map(drop))
            .and_then(|()| self.file.sync_data())
            .map_err(|e| Error::persist(format!("wal reset {:?}: {e}", self.path)))?;
        self.records = 0;
        Ok(())
    }

    /// Reads every intact record back (recovery and tests).
    pub fn read_events(&mut self) -> Result<Vec<StoreEvent>> {
        self.file
            .seek(SeekFrom::Start(0))
            .map_err(|e| Error::persist(format!("wal seek {:?}: {e}", self.path)))?;
        let mut buf = Vec::new();
        self.file
            .read_to_end(&mut buf)
            .map_err(|e| Error::persist(format!("wal read {:?}: {e}", self.path)))?;
        self.file
            .seek(SeekFrom::End(0))
            .map_err(|e| Error::persist(format!("wal seek {:?}: {e}", self.path)))?;
        let (good_end, _) = Self::scan(&self.path, &buf)?;
        let mut events = Vec::new();
        let mut pos = HEADER_LEN as usize;
        while pos < good_end {
            let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
            let payload = &buf[pos + 8..pos + 8 + len];
            events.push(
                serde_json::from_slice(payload)
                    .map_err(|e| Error::persist(format!("wal decode: {e}")))?,
            );
            pos += 8 + len;
        }
        Ok(events)
    }
}

impl CoordinatorStore for WalStore {
    fn append(&mut self, event: &StoreEvent) -> Result<()> {
        let payload = serde_json::to_vec(event)
            .map_err(|e| Error::persist(format!("wal encode {}: {e}", event.kind())))?;
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file
            .write_all(&frame)
            .and_then(|()| self.file.sync_data())
            .map_err(|e| Error::persist(format!("wal append {:?}: {e}", self.path)))?;
        self.records += 1;
        Ok(())
    }

    fn recover(&mut self) -> Result<CoordinatorState> {
        Ok(CoordinatorState::replay(&self.read_events()?))
    }

    fn name(&self) -> &'static str {
        "wal"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::ClientUpload;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static UNIQ: AtomicUsize = AtomicUsize::new(0);

    fn temp_wal() -> PathBuf {
        std::env::temp_dir().join(format!(
            "appfl_wal_test_{}_{}.log",
            std::process::id(),
            UNIQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn sample_events(n: usize) -> Vec<StoreEvent> {
        let mut events = vec![StoreEvent::RunStarted {
            algorithm: "FedAvg".into(),
            dataset: "MNIST".into(),
            epsilon: f64::INFINITY,
            num_clients: 2,
            rounds: n,
        }];
        for round in 1..=n {
            events.push(StoreEvent::RoundStarted {
                round,
                broadcast: vec![round as f32; 4],
                active: vec![0, 1],
            });
            for client_id in 0..2usize {
                events.push(StoreEvent::UpdateReceived {
                    round,
                    upload: ClientUpload {
                        client_id,
                        primal: vec![client_id as f32; 4],
                        dual: None,
                        num_samples: 5,
                        local_loss: 0.1,
                    },
                });
            }
            events.push(StoreEvent::RoundAggregated {
                round,
                model: vec![round as f32 + 0.5; 4],
            });
            events.push(StoreEvent::RoundPublished {
                round,
                record: crate::metrics::RoundRecord {
                    round,
                    accuracy: 0.9,
                    ..Default::default()
                },
                roster: vec![super::super::RosterState::default(); 2],
                participants: vec![0, 1],
            });
        }
        events
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_reopen_recover_roundtrips() {
        let path = temp_wal();
        let events = sample_events(2);
        {
            let mut wal = WalStore::open(&path).unwrap();
            for e in &events {
                wal.append(e).unwrap();
            }
        }
        let mut wal = WalStore::open(&path).unwrap();
        assert!(!wal.truncated_tail());
        assert_eq!(wal.records(), events.len());
        assert_eq!(wal.read_events().unwrap(), events);
        let state = wal.recover().unwrap();
        assert_eq!(state.history.rounds.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let path = temp_wal();
        {
            let mut wal = WalStore::open(&path).unwrap();
            for e in &sample_events(1) {
                wal.append(e).unwrap();
            }
        }
        let intact = std::fs::metadata(&path).unwrap().len();
        // Simulate a crash mid-append: half a frame header plus garbage.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0x99, 0x00, 0x00]).unwrap();
        drop(f);
        let mut wal = WalStore::open(&path).unwrap();
        assert!(wal.truncated_tail());
        assert_eq!(std::fs::metadata(&path).unwrap().len(), intact);
        assert_eq!(wal.recover().unwrap().history.rounds.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_record_cuts_the_log_there() {
        let path = temp_wal();
        let events = sample_events(2);
        {
            let mut wal = WalStore::open(&path).unwrap();
            for e in &events {
                wal.append(e).unwrap();
            }
        }
        // Flip a payload byte in the middle of the file: everything from
        // that record on is discarded, the prefix survives.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let mut wal = WalStore::open(&path).unwrap();
        assert!(wal.truncated_tail());
        let recovered = wal.read_events().unwrap();
        assert!(recovered.len() < events.len());
        assert_eq!(&events[..recovered.len()], &recovered[..]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn non_wal_file_is_rejected_not_clobbered() {
        let path = temp_wal();
        std::fs::write(
            &path,
            b"definitely not a wal file, much longer than a header",
        )
        .unwrap();
        let err = WalStore::open(&path).unwrap_err();
        assert!(matches!(err, Error::Persist(_)), "{err}");
        assert!(std::fs::read(&path).unwrap().starts_with(b"definitely"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn future_format_version_is_refused() {
        let path = temp_wal();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&99u16.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = WalStore::open(&path).unwrap_err();
        assert!(err.to_string().contains("v99"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    /// Durability invariant, exhaustively: for EVERY byte-length cut of a
    /// valid log — including cuts through a frame header and mid-payload —
    /// reopening truncates to an intact prefix and recovery folds a
    /// consistent state. (The randomized sibling, with garbage appended
    /// after the cut, is `wal_any_prefix_recovers_consistently` in
    /// `tests/props.rs`.)
    #[test]
    fn every_byte_prefix_recovers_consistently() {
        let path = temp_wal();
        let events = sample_events(2);
        {
            let mut wal = WalStore::open(&path).unwrap();
            for e in &events {
                wal.append(e).unwrap();
            }
        }
        let full = std::fs::read(&path).unwrap();
        for cut in HEADER_LEN as usize..=full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let mut wal = WalStore::open(&path).unwrap();
            let recovered = wal.read_events().unwrap();
            // The surviving log is an exact prefix of what was written.
            assert_eq!(&events[..recovered.len()], &recovered[..], "cut {cut}");
            let state = wal.recover().unwrap();
            assert!(state.history.rounds.len() <= 2, "cut {cut}");
            for (i, r) in state.history.rounds.iter().enumerate() {
                assert_eq!(r.round, i + 1, "cut {cut}: rounds not contiguous");
            }
            if let Some(p) = &state.round_in_progress {
                assert_eq!(p.round, state.history.rounds.len() + 1, "cut {cut}");
                assert!(p.uploads.len() <= 2, "cut {cut}");
            }
            // Reopening after truncation is stable: no further loss.
            let again = WalStore::open(&path).unwrap().read_events().unwrap();
            assert_eq!(again, recovered, "cut {cut}: reopen lost records");
        }
        std::fs::remove_file(&path).ok();
    }
}
