//! The redesigned federation-run API: one typed entry point for every
//! deployment shape.
//!
//! A federation is described in four orthogonal pieces — **topology**
//! (how bytes move), **population** (who participates), **resilience**
//! (what may fail and what to do about it) and **observability** (what
//! to record) — then validated as a whole by [`FederationConfig::build`],
//! which rejects every invalid combination with a single
//! [`ConfigError`] enum *before* any thread spawns:
//!
//! ```no_run
//! # use appfl_core::federation::{Federation, Participants, Resilience, Observe, Topology};
//! # use appfl_comm::transport::InProcNetwork;
//! # use std::time::Duration;
//! # fn demo(server: Box<dyn appfl_core::ServerAlgorithm>,
//! #         clients: Vec<Box<dyn appfl_core::ClientAlgorithm>>,
//! #         template: &mut dyn appfl_nn::module::Module,
//! #         test: &appfl_data::InMemoryDataset) -> Result<(), appfl_core::Error> {
//! let outcome = Federation::builder()
//!     .topology(Topology::Comm)
//!     .transport(InProcNetwork::new(4))
//!     .population(
//!         Participants::new(server, clients)
//!             .rounds(10)
//!             .dataset("MNIST")
//!             .evaluation(template, test),
//!     )
//!     .resilience(Resilience::none().fault_tolerance(2, Duration::from_secs(2)))
//!     .observe(Observe::none())
//!     .build()?
//!     .run()?;
//! # let _ = outcome; Ok(()) }
//! ```
//!
//! The five topologies map onto the runners that existed as separate
//! entry points before this API:
//!
//! | [`Topology`] | engine | transport |
//! |---|---|---|
//! | `Serial`  | [`SerialRunner`] | none (in-process loop) |
//! | `Comm`    | push broadcast/gather | any [`Communicator`] |
//! | `Rpc`     | pull `GetWeight`/`SendResults` polling | any [`Communicator`] |
//! | `Async`   | ServerFedAsynchronous staleness weighting | any [`Communicator`] |
//! | `PubSub`  | MQTT-style broker topics | a [`Broker`] |
//!
//! The `Comm` and `Rpc` arms execute on the crate-internal
//! `TransportRun` engine in [`crate::runner::federation`]; see
//! `DESIGN.md` §12 for the migration table from the pre-0.8 builder
//! and §13 for adaptive round control.

use crate::algorithms::FederationSetup;
use crate::api::{ClientAlgorithm, ServerAlgorithm};
use crate::config::FaultToleranceConfig;
use crate::defense::{RobustAggregator, UpdateGuardConfig};
use crate::error::Error;
use crate::runner::async_service::run_async_federation;
use crate::runner::control::RoundControlConfig;
use crate::runner::federation::{Eval, FederationOutcome, TransportRun};
use crate::runner::pubsub::run_pubsub_federation;
use crate::runner::r#async::AsyncConfig;
use crate::runner::SerialRunner;
use crate::store::DurableCoordinator;
use appfl_comm::pubsub::Broker;
use appfl_comm::transport::{Communicator, InProcEndpoint};
use appfl_comm::wire::WireConfig;
use appfl_data::InMemoryDataset;
use appfl_nn::module::Module;
use appfl_telemetry::{
    EventSink, FlightRecorder, MetricsRegistry, NoopSink, RunObserver, SloPolicy, Telemetry,
};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// How bytes move between the coordinator and its clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// No transport: clients run in-process, one after another, on the
    /// [`SerialRunner`]. Population comes from [`Participants::serial`].
    Serial,
    /// Push mode: the server broadcasts and gathers over a
    /// [`Communicator`], one thread per client, evaluating every round.
    Comm,
    /// Pull mode: the server passively serves RPCs and clients poll —
    /// the flow of a real APPFL gRPC deployment. No per-round history.
    Rpc,
    /// Asynchronous aggregation: uploads apply immediately with
    /// staleness-weighted mixing; see [`AsyncConfig`].
    Async,
    /// MQTT-style publish/subscribe over a [`Broker`].
    PubSub,
}

impl Topology {
    /// Stable lowercase label (errors, telemetry, reports).
    pub fn as_str(self) -> &'static str {
        match self {
            Topology::Serial => "serial",
            Topology::Comm => "comm",
            Topology::Rpc => "rpc",
            Topology::Async => "async",
            Topology::PubSub => "pubsub",
        }
    }
}

/// Everything [`FederationConfig::build`] can reject — each invalid
/// combination of topology and options is one variant, so callers can
/// match on the precise mistake instead of parsing a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// No [`Participants`] were supplied at all.
    MissingPopulation,
    /// The population has zero clients.
    NoClients,
    /// The topology moves bytes but no transport endpoints were given.
    MissingTransport {
        /// Topology that needed the transport.
        topology: &'static str,
    },
    /// Endpoint count must be client count + 1 (rank 0 serves).
    EndpointMismatch {
        /// Endpoints supplied.
        endpoints: usize,
        /// Clients in the population.
        clients: usize,
    },
    /// `Topology::Comm` evaluates every round and needs
    /// [`Participants::evaluation`].
    MissingEvaluation,
    /// `Topology::PubSub` needs [`FederationConfig::broker`].
    MissingBroker,
    /// `Topology::Serial` needs a population built with
    /// [`Participants::serial`].
    MissingSerialSetup,
    /// A federation must run at least one round.
    ZeroRounds,
    /// An option was set that this topology cannot honour.
    Unsupported {
        /// Topology that rejected the option.
        topology: &'static str,
        /// The offending option.
        option: &'static str,
    },
    /// The wire codec stack is malformed (stage ordering, duplicate
    /// stages, out-of-range parameters, a zero chunk size, …).
    InvalidCodec {
        /// What the stack validation rejected.
        reason: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::MissingPopulation => {
                write!(f, "no population configured: call .population(Participants::…)")
            }
            ConfigError::NoClients => write!(f, "a federation needs at least one client"),
            ConfigError::MissingTransport { topology } => {
                write!(f, "{topology} topology moves bytes: call .transport(endpoints)")
            }
            ConfigError::EndpointMismatch { endpoints, clients } => {
                write!(f, "{endpoints} endpoints for {clients} clients + 1 server")
            }
            ConfigError::MissingEvaluation => write!(
                f,
                "comm topology evaluates every round: call .evaluation(template, test) on the participants"
            ),
            ConfigError::MissingBroker => {
                write!(f, "pubsub topology needs a broker: call .broker(&broker)")
            }
            ConfigError::MissingSerialSetup => write!(
                f,
                "serial topology runs a FederationSetup: build the population with Participants::serial(setup, test)"
            ),
            ConfigError::ZeroRounds => write!(f, "a federation must run at least one round"),
            ConfigError::Unsupported { topology, option } => {
                write!(f, "{topology} topology does not support {option}")
            }
            ConfigError::InvalidCodec { reason } => {
                write!(f, "invalid wire codec configuration: {reason}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<ConfigError> for Error {
    fn from(e: ConfigError) -> Self {
        Error::config(e.to_string())
    }
}

/// Who participates: the server algorithm, its clients, and the run's
/// descriptive knobs (rounds, dataset label, privacy budget ε̄,
/// server-side evaluation). For [`Topology::Serial`], build it from a
/// [`FederationSetup`] with [`Participants::serial`] instead.
pub struct Participants<'a> {
    server: Option<Box<dyn ServerAlgorithm>>,
    clients: Vec<Box<dyn ClientAlgorithm>>,
    setup: Option<(FederationSetup, InMemoryDataset)>,
    eval: Option<Eval<'a>>,
    rounds: usize,
    epsilon: f64,
    dataset: String,
}

impl<'a> Participants<'a> {
    /// A population for the transport topologies: `server` coordinates
    /// `clients`, one transport rank each.
    pub fn new(server: Box<dyn ServerAlgorithm>, clients: Vec<Box<dyn ClientAlgorithm>>) -> Self {
        Participants {
            server: Some(server),
            clients,
            setup: None,
            eval: None,
            rounds: 1,
            epsilon: f64::INFINITY,
            dataset: "unspecified".into(),
        }
    }

    /// A population for [`Topology::Serial`]: a fully assembled
    /// [`FederationSetup`] (server, clients, template, config) plus the
    /// test set. Rounds and ε default to the setup's own config.
    pub fn serial(setup: FederationSetup, test: InMemoryDataset) -> Self {
        let rounds = setup.config.rounds;
        let epsilon = setup.config.privacy.epsilon;
        Participants {
            server: None,
            clients: Vec::new(),
            setup: Some((setup, test)),
            eval: None,
            rounds,
            epsilon,
            dataset: "unspecified".into(),
        }
    }

    /// Communication rounds to run (default 1; for serial populations,
    /// the setup's configured rounds).
    pub fn rounds(mut self, rounds: usize) -> Self {
        self.rounds = rounds;
        self
    }

    /// Privacy budget ε̄ recorded in the history (default ∞).
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Dataset name recorded in the history.
    pub fn dataset(mut self, dataset: impl Into<String>) -> Self {
        self.dataset = dataset.into();
        self
    }

    /// Server-side evaluation for [`Topology::Comm`]: a template module
    /// matching the global model's parameterisation plus the test set.
    pub fn evaluation(mut self, template: &'a mut dyn Module, test: &'a InMemoryDataset) -> Self {
        self.eval = Some(Eval { template, test });
        self
    }

    fn client_count(&self) -> usize {
        match &self.setup {
            Some((setup, _)) => setup.clients.len(),
            None => self.clients.len(),
        }
    }
}

/// What may fail and what to do about it: retry/quorum fault tolerance,
/// Byzantine-robust aggregation, upload screening, durable write-ahead
/// coordination. [`Resilience::none`] is the explicit "nothing" value.
#[derive(Default)]
pub struct Resilience {
    ft: Option<FaultToleranceConfig>,
    robust: Option<RobustAggregator>,
    guard: Option<UpdateGuardConfig>,
    durable: Option<DurableCoordinator>,
    round_control: Option<RoundControlConfig>,
}

impl Resilience {
    /// No resilience machinery at all.
    pub fn none() -> Self {
        Resilience::default()
    }

    /// Fault tolerance with the given quorum and round deadline;
    /// retry/backoff parameters come from [`FaultToleranceConfig`]'s
    /// defaults (use [`Resilience::fault_tolerance_config`] for full
    /// control).
    pub fn fault_tolerance(mut self, min_quorum: usize, deadline: Duration) -> Self {
        self.ft = Some(FaultToleranceConfig {
            min_quorum,
            // A Duration holds up to u128 milliseconds; saturate rather
            // than silently truncate a deadline past u64::MAX ms.
            round_timeout_ms: u64::try_from(deadline.as_millis()).unwrap_or(u64::MAX),
            ..FaultToleranceConfig::default()
        });
        self
    }

    /// Fault tolerance with an explicit configuration.
    pub fn fault_tolerance_config(mut self, ft: FaultToleranceConfig) -> Self {
        self.ft = Some(ft);
        self
    }

    /// Replaces plain weighted-mean aggregation with a Byzantine-robust
    /// rule (coordinate-wise median, trimmed mean, Krum, …).
    pub fn robust(mut self, aggregator: RobustAggregator) -> Self {
        self.robust = Some(aggregator);
        self
    }

    /// Screens every upload through an
    /// [`UpdateGuard`](crate::defense::UpdateGuard) before aggregation.
    pub fn update_guard(mut self, config: UpdateGuardConfig) -> Self {
        self.guard = Some(config);
        self
    }

    /// Commits every coordinator phase transition write-ahead; a
    /// coordinator whose store already holds a prior run *resumes* it.
    /// See [`crate::store`] for the recovery semantics.
    pub fn durable(mut self, durable: DurableCoordinator) -> Self {
        self.durable = Some(durable);
        self
    }

    /// Adaptive round control: over-selects the dispatch cohort, closes
    /// Collect at the first `target` accepted uploads, tracks a latency
    /// quantile into an adaptive per-round deadline and hedges
    /// re-dispatch to standby clients when arrival projections fall
    /// short. Only the transport topologies honour it: `Comm` (where it
    /// replaces the static round deadline — fault tolerance is enabled
    /// with defaults if not already configured) and `Rpc` (where the
    /// quorum close is already over-selection-shaped, so the controller
    /// only tracks latencies into the `adaptive_deadline` gauge). See
    /// `DESIGN.md` §13.
    pub fn round_control(mut self, config: RoundControlConfig) -> Self {
        self.round_control = Some(config);
        self
    }
}

/// What to record: an [`EventSink`] for structured events, a
/// [`MetricsRegistry`] aggregating them into Prometheus-style families,
/// a [`FlightRecorder`] for bounded post-mortem capture and/or an
/// [`SloPolicy`] evaluated at every published round.
/// [`Observe::none`] observes nothing at zero cost.
#[derive(Default)]
pub struct Observe {
    sink: Option<Arc<dyn EventSink>>,
    registry: Option<MetricsRegistry>,
    recorder: Option<Arc<FlightRecorder>>,
    slo: Option<SloPolicy>,
    detectors: bool,
    series_stride: usize,
}

impl Observe {
    /// No observability at all (the zero-cost disabled telemetry).
    pub fn none() -> Self {
        Observe::default()
    }

    /// Records structured events (per-phase spans, retry/timeout marks,
    /// byte counters) into `sink`.
    pub fn telemetry(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Mirrors every emitted event into `registry` for
    /// [`MetricsRegistry::to_prometheus_text`] snapshots. Composes with
    /// [`Observe::telemetry`].
    pub fn metrics(mut self, registry: MetricsRegistry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Attaches a [`FlightRecorder`]: the last N events are kept in
    /// bounded rings and dumped as a versioned post-mortem snapshot on
    /// coordinator recovery, run failure, chaos scenario end or SLO
    /// breach ([`FlightRecorder::arm`] sets the dump path). Also enables
    /// the per-round series and the default anomaly detectors on the
    /// transport runners.
    pub fn flight_recorder(mut self, recorder: Arc<FlightRecorder>) -> Self {
        self.recorder = Some(recorder);
        self.detectors = true;
        self
    }

    /// Attaches an [`SloPolicy`], evaluated at every Publish transition:
    /// each round gets a `health_verdict` event, every rule a
    /// `slo_burn_rate{rule="…"}` gauge (when a registry is attached),
    /// and the first breach triggers a flight-recorder dump.
    pub fn slo(mut self, policy: SloPolicy) -> Self {
        self.slo = Some(policy);
        self.detectors = true;
        self
    }

    /// Stores only every `stride`-th per-round series row (detectors and
    /// streaming quantiles still see every round). For very long runs.
    pub fn series_stride(mut self, stride: usize) -> Self {
        self.series_stride = stride;
        self
    }

    fn into_parts(self) -> (Telemetry, Option<RunObserver>) {
        let observer = if self.slo.is_some() || self.detectors {
            let mut obs = RunObserver::standard();
            if self.series_stride > 1 {
                obs = obs.with_stride(self.series_stride);
            }
            if let Some(slo) = self.slo {
                obs = obs.with_slo(slo);
            }
            Some(obs)
        } else {
            None
        };
        let telemetry = match (self.sink, self.registry, self.recorder) {
            (None, None, None) => Telemetry::disabled(),
            (sink, registry, recorder) => Telemetry::with_observability(
                sink.unwrap_or_else(|| Arc::new(NoopSink)),
                registry,
                recorder,
            ),
        };
        (telemetry, observer)
    }

    fn into_telemetry(self) -> Telemetry {
        self.into_parts().0
    }
}

/// The federation-run API's entry point: [`Federation::builder`].
pub struct Federation;

impl Federation {
    /// Starts an empty config (topology defaults to [`Topology::Comm`]).
    /// The transport type parameter is pinned by the first
    /// [`FederationConfig::transport`] call; topologies that move no
    /// bytes (`Serial`, `PubSub`) never need one.
    pub fn builder<'a>() -> FederationConfig<'a, InProcEndpoint> {
        FederationConfig {
            topology: Topology::Comm,
            population: None,
            resilience: Resilience::default(),
            observe: Observe::default(),
            endpoints: None,
            broker: None,
            async_config: AsyncConfig::default(),
            max_updates: None,
            wire: None,
        }
    }
}

/// The staged builder: set the four pieces, then [`build`] validates the
/// whole combination into a runnable [`ConfiguredFederation`].
///
/// [`build`]: FederationConfig::build
pub struct FederationConfig<'a, C: Communicator + 'static> {
    topology: Topology,
    population: Option<Participants<'a>>,
    resilience: Resilience,
    observe: Observe,
    endpoints: Option<Vec<C>>,
    broker: Option<&'a Broker>,
    async_config: AsyncConfig,
    max_updates: Option<usize>,
    wire: Option<WireConfig>,
}

impl<'a, C: Communicator + 'static> FederationConfig<'a, C> {
    /// Selects how bytes move (default [`Topology::Comm`]).
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Sets who participates.
    pub fn population(mut self, population: Participants<'a>) -> Self {
        self.population = Some(population);
        self
    }

    /// Sets the failure model (default [`Resilience::none`]).
    pub fn resilience(mut self, resilience: Resilience) -> Self {
        self.resilience = resilience;
        self
    }

    /// Sets the observability surface (default [`Observe::none`]).
    pub fn observe(mut self, observe: Observe) -> Self {
        self.observe = observe;
        self
    }

    /// Supplies the transport endpoints, one per rank (`endpoints[0]`
    /// serves; `endpoints[p]` hosts client `p − 1`) — and pins the
    /// config's transport type to `D`.
    pub fn transport<D: Communicator + 'static>(
        self,
        endpoints: Vec<D>,
    ) -> FederationConfig<'a, D> {
        FederationConfig {
            topology: self.topology,
            population: self.population,
            resilience: self.resilience,
            observe: self.observe,
            endpoints: Some(endpoints),
            broker: self.broker,
            async_config: self.async_config,
            max_updates: self.max_updates,
            wire: self.wire,
        }
    }

    /// Enables the negotiated wire-codec pipeline on the transport: every
    /// logical message is framed and chunk-streamed, and uploads travel
    /// as compressed residual blobs once the codec handshake completes.
    /// Only [`Topology::Comm`] moves bytes through the push runner this
    /// rides on; [`build`](FederationConfig::build) rejects every other
    /// topology with [`ConfigError::Unsupported`], and a malformed codec
    /// stack with [`ConfigError::InvalidCodec`].
    pub fn wire(mut self, wire: WireConfig) -> Self {
        self.wire = Some(wire);
        self
    }

    /// Supplies the broker for [`Topology::PubSub`].
    pub fn broker(mut self, broker: &'a Broker) -> Self {
        self.broker = Some(broker);
        self
    }

    /// Mixing configuration for [`Topology::Async`] (default
    /// [`AsyncConfig::default`]).
    pub fn async_config(mut self, config: AsyncConfig) -> Self {
        self.async_config = config;
        self
    }

    /// Total uploads to apply in [`Topology::Async`] before finishing
    /// (default `rounds × clients`).
    pub fn max_updates(mut self, max_updates: usize) -> Self {
        self.max_updates = Some(max_updates);
        self
    }

    /// Validates the combination and returns the runnable federation.
    /// Every invalid combo maps to one [`ConfigError`] variant; nothing
    /// is spawned or mutated on failure.
    pub fn build(self) -> Result<ConfiguredFederation<'a, C>, ConfigError> {
        let topology = self.topology;
        let t = topology.as_str();
        let mut resilience = self.resilience;
        let population = self.population.ok_or(ConfigError::MissingPopulation)?;
        if population.client_count() == 0 {
            return Err(ConfigError::NoClients);
        }
        if population.rounds == 0 {
            return Err(ConfigError::ZeroRounds);
        }
        let needs_transport = matches!(topology, Topology::Comm | Topology::Rpc | Topology::Async);
        match (&self.endpoints, needs_transport) {
            (None, true) => return Err(ConfigError::MissingTransport { topology: t }),
            (Some(_), false) => {
                return Err(ConfigError::Unsupported {
                    topology: t,
                    option: "a transport",
                })
            }
            (Some(eps), true) if eps.len() != population.client_count() + 1 => {
                return Err(ConfigError::EndpointMismatch {
                    endpoints: eps.len(),
                    clients: population.client_count(),
                })
            }
            _ => {}
        }
        if self.broker.is_some() && topology != Topology::PubSub {
            return Err(ConfigError::Unsupported {
                topology: t,
                option: "a broker",
            });
        }
        match topology {
            Topology::Serial => {
                if population.setup.is_none() {
                    return Err(ConfigError::MissingSerialSetup);
                }
                if population.eval.is_some() {
                    return Err(ConfigError::Unsupported {
                        topology: t,
                        option: "external evaluation (the setup carries its own template)",
                    });
                }
                if resilience.ft.is_some() {
                    return Err(ConfigError::Unsupported {
                        topology: t,
                        option: "fault tolerance (no transport to fail)",
                    });
                }
                if resilience.durable.is_some() {
                    return Err(ConfigError::Unsupported {
                        topology: t,
                        option: "a durable store",
                    });
                }
                if resilience.round_control.is_some() {
                    return Err(ConfigError::Unsupported {
                        topology: t,
                        option: "round control (no cohort to over-select)",
                    });
                }
            }
            Topology::Comm | Topology::Rpc => {
                if population.setup.is_some() {
                    return Err(ConfigError::Unsupported {
                        topology: t,
                        option: "a serial setup (use Participants::new)",
                    });
                }
                match topology {
                    Topology::Comm if population.eval.is_none() => {
                        return Err(ConfigError::MissingEvaluation)
                    }
                    Topology::Rpc if population.eval.is_some() => {
                        return Err(ConfigError::Unsupported {
                            topology: t,
                            option: "evaluation (pull mode has no server-side eval loop)",
                        })
                    }
                    _ => {}
                }
            }
            Topology::Async | Topology::PubSub => {
                if population.setup.is_some() {
                    return Err(ConfigError::Unsupported {
                        topology: t,
                        option: "a serial setup (use Participants::new)",
                    });
                }
                if population.eval.is_some() {
                    return Err(ConfigError::Unsupported {
                        topology: t,
                        option: "evaluation",
                    });
                }
                if resilience.ft.is_some() {
                    return Err(ConfigError::Unsupported {
                        topology: t,
                        option: "fault tolerance",
                    });
                }
                if resilience.robust.is_some() {
                    return Err(ConfigError::Unsupported {
                        topology: t,
                        option: "robust aggregation",
                    });
                }
                if resilience.guard.is_some() {
                    return Err(ConfigError::Unsupported {
                        topology: t,
                        option: "an update guard",
                    });
                }
                if resilience.durable.is_some() {
                    return Err(ConfigError::Unsupported {
                        topology: t,
                        option: "a durable store",
                    });
                }
                if resilience.round_control.is_some() {
                    return Err(ConfigError::Unsupported {
                        topology: t,
                        option: "round control",
                    });
                }
                if topology == Topology::PubSub && self.broker.is_none() {
                    return Err(ConfigError::MissingBroker);
                }
            }
        }
        if self.max_updates.is_some() && topology != Topology::Async {
            return Err(ConfigError::Unsupported {
                topology: t,
                option: "max_updates",
            });
        }
        if let Some(w) = &self.wire {
            if topology != Topology::Comm {
                return Err(ConfigError::Unsupported {
                    topology: t,
                    option: "a wire codec pipeline (push transport only)",
                });
            }
            if let Err(reason) = w.stack.validate() {
                return Err(ConfigError::InvalidCodec { reason });
            }
            if w.chunk_bytes == 0 {
                return Err(ConfigError::InvalidCodec {
                    reason: "chunk_bytes must be positive".into(),
                });
            }
        }
        // Adaptive round control rides on the fault-tolerant push
        // server; enable its machinery with defaults when the caller
        // asked for control but not explicitly for fault tolerance.
        if topology == Topology::Comm
            && resilience.round_control.is_some()
            && resilience.ft.is_none()
        {
            resilience.ft = Some(FaultToleranceConfig::default());
        }
        Ok(ConfiguredFederation {
            topology,
            population,
            resilience,
            observe: self.observe,
            endpoints: self.endpoints,
            broker: self.broker,
            async_config: self.async_config,
            max_updates: self.max_updates,
            wire: self.wire,
        })
    }
}

/// A validated federation, ready to [`run`](ConfiguredFederation::run).
pub struct ConfiguredFederation<'a, C: Communicator + 'static> {
    topology: Topology,
    population: Participants<'a>,
    resilience: Resilience,
    observe: Observe,
    endpoints: Option<Vec<C>>,
    broker: Option<&'a Broker>,
    async_config: AsyncConfig,
    max_updates: Option<usize>,
    wire: Option<WireConfig>,
}

impl<'a, C: Communicator + 'static> ConfiguredFederation<'a, C> {
    /// Executes the federation and returns the outcome. Configuration
    /// errors were already ruled out by [`FederationConfig::build`];
    /// errors here are runtime ones ([`Error::Comm`], [`Error::Tensor`],
    /// [`Error::Unsupported`] for a transport without `recv_any`
    /// multiplexing, …).
    pub fn run(self) -> Result<FederationOutcome, Error> {
        let ConfiguredFederation {
            topology,
            population,
            resilience,
            observe,
            endpoints,
            broker,
            async_config,
            max_updates,
            wire,
        } = self;
        match topology {
            Topology::Serial => {
                let (mut setup, test) = population.setup.expect("validated by build()");
                setup.config.rounds = population.rounds;
                let mut runner = SerialRunner::new(setup, test, population.dataset)
                    .with_telemetry(observe.into_telemetry());
                if let Some(aggregator) = resilience.robust {
                    runner = runner.with_robust(aggregator);
                }
                if let Some(config) = resilience.guard {
                    runner = runner.with_guard(config);
                }
                let history = runner.run()?;
                Ok(FederationOutcome {
                    model: runner.global_model(),
                    completed_rounds: history.rounds.len(),
                    retries: 0,
                    history: Some(history),
                    recovered: false,
                    duplicates: 0,
                })
            }
            Topology::Comm | Topology::Rpc => {
                let (telemetry, observer) = observe.into_parts();
                TransportRun {
                    server: population.server.expect("validated by build()"),
                    clients: population.clients,
                    endpoints: endpoints.expect("validated by build()"),
                    rounds: population.rounds,
                    epsilon: population.epsilon,
                    dataset: population.dataset,
                    eval: population.eval,
                    ft: resilience.ft,
                    telemetry,
                    pull: topology == Topology::Rpc,
                    robust: resilience.robust,
                    guard: resilience.guard,
                    durable: resilience.durable,
                    round_control: resilience.round_control,
                    wire,
                    observer,
                }
                .run()
            }
            Topology::Async => {
                let telemetry = observe.into_telemetry();
                let server = population.server.expect("validated by build()");
                let initial = server.global_model();
                let clients = population.clients;
                let max = max_updates.unwrap_or(population.rounds * clients.len());
                let (model, applied) = run_async_federation(
                    initial,
                    clients,
                    endpoints.expect("validated by build()"),
                    async_config,
                    max,
                    &telemetry,
                )?;
                telemetry.flush();
                Ok(FederationOutcome {
                    model,
                    completed_rounds: applied,
                    retries: 0,
                    history: None,
                    recovered: false,
                    duplicates: 0,
                })
            }
            Topology::PubSub => {
                let telemetry = observe.into_telemetry();
                let model = run_pubsub_federation(
                    population.server.expect("validated by build()"),
                    population.clients,
                    broker.expect("validated by build()"),
                    population.rounds,
                    &telemetry,
                )?;
                telemetry.flush();
                Ok(FederationOutcome {
                    model,
                    completed_rounds: population.rounds,
                    retries: 0,
                    history: None,
                    recovered: false,
                    duplicates: 0,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::build_federation;
    use crate::config::{AlgorithmConfig, FedConfig};
    use appfl_comm::pubsub::Broker;
    use appfl_comm::transport::InProcNetwork;
    use appfl_data::federated::{build_benchmark, Benchmark};
    use appfl_nn::models::{mlp_classifier, InputSpec};
    use appfl_privacy::PrivacyConfig;
    use appfl_telemetry::{MemorySink, MetricsRegistry};

    fn setup(rounds: usize) -> (FederationSetup, InMemoryDataset) {
        let data = build_benchmark(Benchmark::Mnist, 3, 90, 30, 2).unwrap();
        let spec = InputSpec {
            channels: 1,
            height: 28,
            width: 28,
            classes: 10,
        };
        let config = FedConfig {
            algorithm: AlgorithmConfig::FedAvg {
                lr: 0.05,
                momentum: 0.9,
            },
            rounds,
            local_steps: 1,
            batch_size: 16,
            privacy: PrivacyConfig::none(),
            seed: 4,
        };
        let test = data.test.clone();
        let fed = build_federation(config, &data, move |rng| {
            Box::new(mlp_classifier(spec, 8, rng))
        });
        (fed, test)
    }

    #[test]
    fn missing_population_and_transport_are_distinct_errors() {
        let err = Federation::builder().build().map(|_| ()).unwrap_err();
        assert_eq!(err, ConfigError::MissingPopulation);

        let (fed, _test) = setup(1);
        let err = Federation::builder()
            .population(Participants::new(fed.server, fed.clients))
            .build()
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err, ConfigError::MissingTransport { topology: "comm" });
    }

    #[test]
    fn endpoint_mismatch_and_missing_evaluation_are_rejected() {
        let (fed, _test) = setup(1);
        let err = Federation::builder()
            .transport(InProcNetwork::new(2)) // 3 clients need 4
            .population(Participants::new(fed.server, fed.clients))
            .build()
            .map(|_| ())
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::EndpointMismatch {
                endpoints: 2,
                clients: 3
            }
        );

        let (fed, _test) = setup(1);
        let err = Federation::builder()
            .transport(InProcNetwork::new(4))
            .population(Participants::new(fed.server, fed.clients))
            .build()
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err, ConfigError::MissingEvaluation);
    }

    #[test]
    fn invalid_combos_map_to_unsupported() {
        // Serial with a transport.
        let (fed, test) = setup(1);
        let err = Federation::builder()
            .topology(Topology::Serial)
            .transport(InProcNetwork::new(4))
            .population(Participants::serial(fed, test))
            .build()
            .map(|_| ())
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::Unsupported {
                topology: "serial",
                option: "a transport"
            }
        );

        // Async with fault tolerance.
        let (fed, _test) = setup(1);
        let err = Federation::builder()
            .topology(Topology::Async)
            .transport(InProcNetwork::new(4))
            .population(Participants::new(fed.server, fed.clients))
            .resilience(Resilience::none().fault_tolerance(2, Duration::from_secs(1)))
            .build()
            .map(|_| ())
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::Unsupported {
                topology: "async",
                option: "fault tolerance"
            }
        );

        // PubSub without a broker.
        let (fed, _test) = setup(1);
        let err = Federation::builder()
            .topology(Topology::PubSub)
            .population(Participants::new(fed.server, fed.clients))
            .build()
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err, ConfigError::MissingBroker);

        // max_updates outside async.
        let (fed, test) = setup(1);
        let err = Federation::builder()
            .topology(Topology::Serial)
            .population(Participants::serial(fed, test))
            .max_updates(10)
            .build()
            .map(|_| ())
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::Unsupported {
                topology: "serial",
                option: "max_updates"
            }
        );
    }

    #[test]
    fn fault_tolerance_deadline_saturates_instead_of_truncating() {
        // u64::MAX seconds is ~2^73 ms — far past what round_timeout_ms
        // can hold. The old `as u64` cast wrapped this to a tiny value.
        let r = Resilience::none().fault_tolerance(2, Duration::from_secs(u64::MAX));
        assert_eq!(r.ft.unwrap().round_timeout_ms, u64::MAX);

        let r = Resilience::none().fault_tolerance(2, Duration::from_millis(1500));
        assert_eq!(r.ft.unwrap().round_timeout_ms, 1500);
    }

    #[test]
    fn round_control_is_rejected_off_the_transport_topologies() {
        for topology in [Topology::Serial, Topology::Async, Topology::PubSub] {
            let (fed, test) = setup(1);
            let builder = Federation::builder().topology(topology);
            let builder = match topology {
                Topology::Serial => builder.population(Participants::serial(fed, test)),
                Topology::Async => builder
                    .transport(InProcNetwork::new(4))
                    .population(Participants::new(fed.server, fed.clients)),
                _ => builder.population(Participants::new(fed.server, fed.clients)),
            };
            let err = builder
                .resilience(Resilience::none().round_control(RoundControlConfig::default()))
                .build()
                .map(|_| ())
                .unwrap_err();
            assert!(
                matches!(err, ConfigError::Unsupported { option, .. } if option.starts_with("round control")),
                "{topology:?}: {err}"
            );
        }
    }

    #[test]
    fn round_control_on_comm_enables_default_fault_tolerance() {
        let (mut fed, test) = setup(1);
        let configured = Federation::builder()
            .transport(InProcNetwork::new(4))
            .population(
                Participants::new(fed.server, fed.clients).evaluation(fed.template.as_mut(), &test),
            )
            .resilience(Resilience::none().round_control(RoundControlConfig::default()))
            .build()
            .unwrap();
        let ft = configured.resilience.ft.as_ref().expect("ft auto-enabled");
        assert_eq!(ft.min_quorum, FaultToleranceConfig::default().min_quorum);
        assert!(configured.resilience.round_control.is_some());
    }

    #[test]
    fn config_errors_convert_into_the_crate_error() {
        let e: Error = ConfigError::NoClients.into();
        assert!(matches!(e, Error::Config(_)));
        assert!(e.to_string().contains("at least one client"));
    }

    #[test]
    fn serial_topology_runs_a_setup() {
        let (fed, test) = setup(2);
        let outcome = Federation::builder()
            .topology(Topology::Serial)
            .population(Participants::serial(fed, test).dataset("MNIST"))
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(outcome.completed_rounds, 2);
        let history = outcome.history.expect("serial records a history");
        assert_eq!(history.rounds.len(), 2);
        assert!(outcome.model.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn comm_topology_runs_with_telemetry_and_ft() {
        let (mut fed, test) = setup(2);
        let sink = Arc::new(MemorySink::new());
        let outcome = Federation::builder()
            .topology(Topology::Comm)
            .transport(InProcNetwork::new(4))
            .population(
                Participants::new(fed.server, fed.clients)
                    .rounds(2)
                    .dataset("MNIST")
                    .evaluation(fed.template.as_mut(), &test),
            )
            .resilience(Resilience::none().fault_tolerance(3, Duration::from_secs(5)))
            .observe(Observe::none().telemetry(sink.clone()))
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(outcome.completed_rounds, 2);
        let history = outcome.history.expect("comm records a history");
        assert_eq!(history.rounds.len(), 2);
        assert_eq!(
            history.rounds[0].cohort_size, 3,
            "full participation cohort"
        );
        // The phase machine's spans ride along for every round.
        let events = sink.events();
        for name in [
            "phase/select",
            "phase/collect",
            "phase/aggregate",
            "phase/publish",
        ] {
            assert_eq!(
                events.iter().filter(|e| e.name == name).count(),
                2,
                "{name}: one per round"
            );
        }
    }

    #[test]
    fn metrics_registry_snapshots_the_run() {
        let (mut fed, test) = setup(2);
        let registry = MetricsRegistry::new();
        let outcome = Federation::builder()
            .transport(InProcNetwork::new(4))
            .population(
                Participants::new(fed.server, fed.clients)
                    .rounds(2)
                    .evaluation(fed.template.as_mut(), &test),
            )
            .observe(Observe::none().metrics(registry.clone()))
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(outcome.completed_rounds, 2);
        let text = registry.to_prometheus_text();
        let families = appfl_telemetry::validate_prometheus_text(&text).unwrap();
        // Phase histograms + upload_bytes + diagnostics gauges, at least.
        assert!(families >= 5, "only {families} families:\n{text}");
        assert!(text.contains("appfl_local_update"), "{text}");
        assert!(text.contains("appfl_update_norm"), "{text}");
    }

    #[test]
    fn comm_topology_runs_with_round_control() {
        let (mut fed, test) = setup(2);
        let sink = Arc::new(MemorySink::new());
        let outcome = Federation::builder()
            .transport(InProcNetwork::new(4))
            .population(
                Participants::new(fed.server, fed.clients)
                    .rounds(2)
                    .dataset("MNIST")
                    .evaluation(fed.template.as_mut(), &test),
            )
            .resilience(Resilience::none().round_control(RoundControlConfig::default()))
            .observe(Observe::none().telemetry(sink.clone()))
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(outcome.completed_rounds, 2);
        assert!(outcome.model.iter().all(|x| x.is_finite()));
        // The controller publishes its working deadline every round.
        let events = sink.events();
        assert_eq!(
            events
                .iter()
                .filter(|e| e.name == "adaptive_deadline")
                .count(),
            2,
            "one adaptive_deadline gauge per round"
        );
    }

    #[test]
    fn rpc_topology_runs_pull_mode() {
        let (fed, _test) = setup(2);
        let outcome = Federation::builder()
            .topology(Topology::Rpc)
            .transport(InProcNetwork::new(4))
            .population(Participants::new(fed.server, fed.clients).rounds(2))
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(outcome.completed_rounds, 2);
        assert!(outcome.history.is_none(), "pull mode has no history");
    }

    #[test]
    fn pubsub_topology_runs_over_a_broker() {
        let (fed, _test) = setup(1);
        let broker = Broker::new();
        let outcome = Federation::builder()
            .topology(Topology::PubSub)
            .population(Participants::new(fed.server, fed.clients).rounds(2))
            .broker(&broker)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(outcome.completed_rounds, 2);
        assert!(outcome.model.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn async_topology_applies_max_updates() {
        let (fed, _test) = setup(1);
        let clients = fed.clients.len();
        let outcome = Federation::builder()
            .topology(Topology::Async)
            .transport(InProcNetwork::new(4))
            .population(Participants::new(fed.server, fed.clients).rounds(2))
            .max_updates(2 * clients)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(outcome.completed_rounds, 2 * clients);
        assert!(outcome.history.is_none());
    }
}
