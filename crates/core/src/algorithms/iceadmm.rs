//! ICEADMM — the inexact communication-efficient ADMM of Zhou & Li \[8\],
//! as characterised in §III-A of the APPFL paper.
//!
//! Per the paper: "ICEADMM conducts multiple local primal and dual updates
//! without using the batches of data, namely, iteratively solving (4) and
//! (3c) for L times while B_p = 1", and consequently "communicating not
//! only primal but also dual information from clients to the server for
//! every communication round":
//!
//! ```text
//! client (×L, full gradient):  z ← z − (g(z) − λ − ρ(w − z)) / (ρ + ζ)
//!                              λ ← λ + ρ(w − z)
//! upload:                      (z_p, λ_p)            ← 2m floats
//! server:                      w ← (1/P) Σ_p (z_p − λ_p/ρ)
//! ```
//!
//! Unlike IIADMM, the client's local iterate `z` persists across rounds
//! (it is *not* re-anchored at `w^{t+1}`), which is what makes transmitting
//! the dual necessary.

use crate::api::{ClientAlgorithm, ClientUpload, ConvergenceDiagnostics, ServerAlgorithm};
use crate::trainer::LocalTrainer;
use appfl_privacy::{PrivacyConfig, SensitivityRule};
use appfl_tensor::vecops::sq_dist;
use appfl_tensor::{Result, TensorError};
use rand::rngs::StdRng;

/// ICEADMM server: reconstructs `w` from received primal+dual pairs.
pub struct IceAdmmServer {
    global: Vec<f32>,
    num_clients: usize,
    rho: f32,
    last_primal_residual: f64,
    last_dual_residual: f64,
}

impl IceAdmmServer {
    /// Starts from an initial global model.
    pub fn new(initial: Vec<f32>, num_clients: usize, rho: f32) -> Self {
        assert!(rho > 0.0, "ICEADMM requires ρ > 0");
        assert!(num_clients > 0, "ICEADMM requires at least one client");
        IceAdmmServer {
            global: initial,
            num_clients,
            rho,
            last_primal_residual: 0.0,
            last_dual_residual: 0.0,
        }
    }
}

impl ServerAlgorithm for IceAdmmServer {
    fn global_model(&self) -> Vec<f32> {
        self.global.clone()
    }

    fn update(&mut self, uploads: &[ClientUpload]) -> Result<()> {
        if uploads.len() != self.num_clients {
            return Err(TensorError::InvalidArgument(format!(
                "ICEADMM expects {} uploads, got {}",
                self.num_clients,
                uploads.len()
            )));
        }
        let mut w = vec![0.0f32; self.global.len()];
        for u in uploads {
            let dual = u.dual.as_ref().ok_or_else(|| {
                TensorError::InvalidArgument(format!(
                    "ICEADMM upload from client {} is missing the dual",
                    u.client_id
                ))
            })?;
            if u.primal.len() != w.len() || dual.len() != w.len() {
                return Err(TensorError::InvalidArgument(format!(
                    "bad ICEADMM upload from client {}",
                    u.client_id
                )));
            }
            for ((w, &z), &l) in w.iter_mut().zip(u.primal.iter()).zip(dual.iter()) {
                *w += z - l / self.rho;
            }
        }
        let inv = 1.0 / self.num_clients as f32;
        for w in w.iter_mut() {
            *w *= inv;
        }
        self.last_primal_residual = uploads.iter().map(|u| sq_dist(&w, &u.primal).sqrt()).sum();
        self.last_dual_residual = self.rho as f64 * sq_dist(&w, &self.global).sqrt();
        self.global = w;
        Ok(())
    }

    fn name(&self) -> &'static str {
        "ICEADMM"
    }

    fn dim(&self) -> usize {
        self.global.len()
    }

    fn diagnostics(&self) -> Option<ConvergenceDiagnostics> {
        Some(ConvergenceDiagnostics {
            primal_residual: self.last_primal_residual,
            dual_residual: self.last_dual_residual,
            rho: self.rho as f64,
        })
    }
}

/// ICEADMM client: persistent primal and dual iterates.
pub struct IceAdmmClient {
    id: usize,
    trainer: LocalTrainer,
    rho: f32,
    zeta: f32,
    local_steps: usize,
    privacy: PrivacyConfig,
    primal: Vec<f32>,
    dual: Vec<f32>,
    rng: StdRng,
    initialized: bool,
}

impl IceAdmmClient {
    /// Builds a client; `z` is initialised to the first broadcast `w`,
    /// `λ¹ = 0`.
    pub fn new(
        id: usize,
        trainer: LocalTrainer,
        rho: f32,
        zeta: f32,
        local_steps: usize,
        privacy: PrivacyConfig,
        rng: StdRng,
    ) -> Self {
        assert!(rho > 0.0 && zeta >= 0.0, "ICEADMM requires ρ > 0, ζ ≥ 0");
        let dim = trainer.dim();
        IceAdmmClient {
            id,
            trainer,
            rho,
            zeta,
            local_steps,
            privacy,
            primal: vec![0.0; dim],
            dual: vec![0.0; dim],
            rng,
            initialized: false,
        }
    }
}

impl ClientAlgorithm for IceAdmmClient {
    fn update(&mut self, global: &[f32]) -> Result<ClientUpload> {
        if !self.initialized {
            self.primal = global.to_vec();
            self.initialized = true;
        }
        let clip = if self.privacy.is_private() {
            self.privacy.clip
        } else {
            f64::INFINITY
        };
        let denom = self.rho + self.zeta;
        // Full-gradient mode: one batch containing the entire shard.
        let full = self.trainer.full_batch()?;
        let mut loss_sum = 0.0f64;
        for _ in 0..self.local_steps {
            let (g, loss) = self.trainer.grad_at(&self.primal, &full, clip)?;
            loss_sum += loss as f64;
            // Inexact primal step (4).
            for (((z, &g), &l), &w) in self
                .primal
                .iter_mut()
                .zip(g.iter())
                .zip(self.dual.iter())
                .zip(global.iter())
            {
                *z -= (g - l - self.rho * (w - *z)) / denom;
            }
            // Dual step (3c) inside the local loop — the defining ICEADMM
            // behaviour that forces dual communication.
            for ((l, &w), &z) in self
                .dual
                .iter_mut()
                .zip(global.iter())
                .zip(self.primal.iter())
            {
                *l += self.rho * (w - z);
            }
        }
        // Output perturbation on the transmitted primal (§III-B).
        let mut z_out = self.primal.clone();
        let rule = SensitivityRule::AdmmOutput {
            clip: self.privacy.clip,
            rho: self.rho as f64,
            zeta: self.zeta as f64,
        };
        let scale = self.privacy.noise_scale(&rule);
        self.privacy
            .build_mechanism()
            .perturb(&mut z_out, scale, &mut self.rng);

        Ok(ClientUpload {
            client_id: self.id,
            primal: z_out,
            dual: Some(self.dual.clone()),
            num_samples: self.trainer.num_samples(),
            local_loss: (loss_sum / self.local_steps.max(1) as f64) as f32,
        })
    }

    fn id(&self) -> usize {
        self.id
    }

    fn num_samples(&self) -> usize {
        self.trainer.num_samples()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::tiny_trainer;
    use rand::SeedableRng;

    fn client(id: usize) -> IceAdmmClient {
        IceAdmmClient::new(
            id,
            tiny_trainer(id as u64),
            1.0,
            0.5,
            3,
            PrivacyConfig::none(),
            StdRng::seed_from_u64(7 + id as u64),
        )
    }

    #[test]
    fn uploads_carry_primal_and_dual() {
        let mut c = client(0);
        let dim = c.trainer.dim();
        let u = c.update(&vec![0.0; dim]).unwrap();
        assert!(u.dual.is_some());
        assert_eq!(u.payload_bytes(), 8 * dim); // 2m floats
    }

    #[test]
    fn server_requires_duals() {
        let mut s = IceAdmmServer::new(vec![0.0; 2], 1, 1.0);
        let missing = ClientUpload {
            client_id: 0,
            primal: vec![1.0, 1.0],
            dual: None,
            num_samples: 1,
            local_loss: 0.0,
        };
        assert!(s.update(&[missing]).is_err());
    }

    #[test]
    fn server_aggregation_formula() {
        let mut s = IceAdmmServer::new(vec![0.0; 2], 2, 2.0);
        let u = |z: f32, l: f32, id: usize| ClientUpload {
            client_id: id,
            primal: vec![z; 2],
            dual: Some(vec![l; 2]),
            num_samples: 1,
            local_loss: 0.0,
        };
        s.update(&[u(4.0, 2.0, 0), u(2.0, -2.0, 1)]).unwrap();
        // ((4 − 1) + (2 + 1)) / 2 = 3
        assert!(s.global_model().iter().all(|&w| (w - 3.0).abs() < 1e-6));
    }

    #[test]
    fn local_iterates_persist_across_rounds() {
        let mut c = client(0);
        let dim = c.trainer.dim();
        let w = vec![0.0; dim];
        c.update(&w).unwrap();
        let z_after_round1 = c.primal.clone();
        assert!(z_after_round1.iter().any(|&z| z != 0.0));
        c.update(&w).unwrap();
        // Second round continues from z, not from w.
        assert_ne!(c.primal, z_after_round1);
    }

    #[test]
    fn duals_become_nonzero_after_training() {
        let mut c = client(1);
        let dim = c.trainer.dim();
        c.update(&vec![0.0; dim]).unwrap();
        assert!(c.dual.iter().any(|&l| l != 0.0));
    }

    #[test]
    fn diagnostics_report_residuals_and_rho() {
        let mut clients: Vec<IceAdmmClient> = (0..2).map(client).collect();
        let dim = clients[0].trainer.dim();
        let mut server = IceAdmmServer::new(vec![0.0; dim], 2, 1.0);
        let d0 = server.diagnostics().unwrap();
        assert_eq!((d0.primal_residual, d0.dual_residual), (0.0, 0.0));
        assert_eq!(d0.rho, 1.0);
        let w = server.global_model();
        let uploads: Vec<ClientUpload> =
            clients.iter_mut().map(|c| c.update(&w).unwrap()).collect();
        server.update(&uploads).unwrap();
        let d = server.diagnostics().unwrap();
        assert!(d.primal_residual > 0.0);
        assert!(d.dual_residual > 0.0, "global model moved off the origin");
    }

    #[test]
    fn federation_converges_on_shared_objective() {
        let mut clients: Vec<IceAdmmClient> = (0..3).map(client).collect();
        let dim = clients[0].trainer.dim();
        let mut server = IceAdmmServer::new(vec![0.0; dim], 3, 1.0);
        let mut losses = Vec::new();
        for _ in 0..8 {
            let w = server.global_model();
            let uploads: Vec<ClientUpload> =
                clients.iter_mut().map(|c| c.update(&w).unwrap()).collect();
            losses.push(uploads.iter().map(|u| u.local_loss).sum::<f32>() / uploads.len() as f32);
            server.update(&uploads).unwrap();
        }
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "losses {losses:?}"
        );
    }
}
