//! Federated averaging (FedAvg) \[10\].
//!
//! Server: `w^{t+1} ← Σ_p (I_p/I) · z_p^t` — the sample-weighted average of
//! client models (eq. (1)'s weighting). Client: `L` epochs of mini-batch
//! SGD with momentum starting from the broadcast `w`, per §IV-B.
//!
//! With DP enabled, each per-batch gradient is clipped to `C` and the final
//! `z_p` is Laplace-perturbed with scale `Δ̄/ε̄`, `Δ̄ = 2Cη` (the
//! learning-rate-dependent sensitivity the paper notes in §IV-B).

use crate::api::{ClientAlgorithm, ClientUpload, ServerAlgorithm};
use crate::trainer::LocalTrainer;
use appfl_privacy::{PrivacyConfig, SensitivityRule};
use appfl_tensor::vecops::weighted_sum;
use appfl_tensor::{Result, TensorError};
use rand::rngs::StdRng;

/// FedAvg server state: the current global model.
///
/// Also serves client algorithms that only need weighted averaging on the
/// server side (FedProx); `with_name` relabels the run accordingly.
pub struct FedAvgServer {
    global: Vec<f32>,
    name: &'static str,
}

impl FedAvgServer {
    /// Starts from an initial global model (all clients share it).
    pub fn new(initial: Vec<f32>) -> Self {
        FedAvgServer {
            global: initial,
            name: "FedAvg",
        }
    }

    /// Relabels the server (e.g. "FedProx" when paired with proximal
    /// clients).
    pub fn with_name(mut self, name: &'static str) -> Self {
        self.name = name;
        self
    }
}

impl ServerAlgorithm for FedAvgServer {
    fn global_model(&self) -> Vec<f32> {
        self.global.clone()
    }

    fn update(&mut self, uploads: &[ClientUpload]) -> Result<()> {
        if uploads.is_empty() {
            return Err(TensorError::InvalidArgument(
                "FedAvg update with no uploads".into(),
            ));
        }
        let total: usize = uploads.iter().map(|u| u.num_samples).sum();
        if total == 0 {
            return Err(TensorError::InvalidArgument(
                "FedAvg update with zero total samples".into(),
            ));
        }
        let weights: Vec<f32> = uploads
            .iter()
            .map(|u| u.num_samples as f32 / total as f32)
            .collect();
        let vectors: Vec<&[f32]> = uploads.iter().map(|u| u.primal.as_slice()).collect();
        self.global = weighted_sum(&vectors, &weights);
        Ok(())
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn dim(&self) -> usize {
        self.global.len()
    }

    /// FedAvg's entire server state *is* the global model, so resuming
    /// from a persisted `w` is exact.
    fn restore(&mut self, w: &[f32]) -> Result<()> {
        if w.len() != self.global.len() {
            return Err(TensorError::ShapeDataMismatch {
                expected: self.global.len(),
                actual: w.len(),
            });
        }
        self.global.copy_from_slice(w);
        Ok(())
    }
}

/// FedAvg client: stateless between rounds except for its data and RNG.
pub struct FedAvgClient {
    id: usize,
    trainer: LocalTrainer,
    lr: f32,
    momentum: f32,
    local_steps: usize,
    privacy: PrivacyConfig,
    rng: StdRng,
}

impl FedAvgClient {
    /// Builds a client over a model replica and data shard.
    pub fn new(
        id: usize,
        trainer: LocalTrainer,
        lr: f32,
        momentum: f32,
        local_steps: usize,
        privacy: PrivacyConfig,
        rng: StdRng,
    ) -> Self {
        FedAvgClient {
            id,
            trainer,
            lr,
            momentum,
            local_steps,
            privacy,
            rng,
        }
    }
}

impl ClientAlgorithm for FedAvgClient {
    fn update(&mut self, global: &[f32]) -> Result<ClientUpload> {
        let clip = if self.privacy.is_private() {
            self.privacy.clip
        } else {
            f64::INFINITY
        };
        let mut z = global.to_vec();
        let mut velocity = vec![0.0f32; z.len()];
        let mut loss_sum = 0.0f64;
        let mut loss_count = 0usize;
        for _ in 0..self.local_steps {
            let batches = self.trainer.batches(&mut self.rng)?;
            for batch in &batches {
                let (g, loss) = self.trainer.grad_at(&z, batch, clip)?;
                loss_sum += loss as f64;
                loss_count += 1;
                // Classical momentum: v ← μv + g; z ← z − ηv.
                for ((v, &g), z) in velocity.iter_mut().zip(g.iter()).zip(z.iter_mut()) {
                    *v = self.momentum * *v + g;
                    *z -= self.lr * *v;
                }
            }
        }
        // Output perturbation (§III-B): noise on the transmitted model.
        let rule = SensitivityRule::SgdOutput {
            clip: self.privacy.clip,
            lr: self.lr as f64,
        };
        let scale = self.privacy.noise_scale(&rule);
        self.privacy
            .build_mechanism()
            .perturb(&mut z, scale, &mut self.rng);

        Ok(ClientUpload {
            client_id: self.id,
            primal: z,
            dual: None,
            num_samples: self.trainer.num_samples(),
            local_loss: if loss_count == 0 {
                0.0
            } else {
                (loss_sum / loss_count as f64) as f32
            },
        })
    }

    fn id(&self) -> usize {
        self.id
    }

    fn num_samples(&self) -> usize {
        self.trainer.num_samples()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upload(id: usize, value: f32, n: usize) -> ClientUpload {
        ClientUpload {
            client_id: id,
            primal: vec![value; 3],
            dual: None,
            num_samples: n,
            local_loss: 0.0,
        }
    }

    #[test]
    fn server_weights_by_sample_count() {
        let mut s = FedAvgServer::new(vec![0.0; 3]);
        s.update(&[upload(0, 1.0, 30), upload(1, 4.0, 10)]).unwrap();
        // (30·1 + 10·4)/40 = 1.75
        for &w in &s.global_model() {
            assert!((w - 1.75).abs() < 1e-6);
        }
        assert_eq!(s.name(), "FedAvg");
        assert_eq!(s.dim(), 3);
    }

    #[test]
    fn server_rejects_degenerate_uploads() {
        let mut s = FedAvgServer::new(vec![0.0; 3]);
        assert!(s.update(&[]).is_err());
        assert!(s.update(&[upload(0, 1.0, 0)]).is_err());
    }

    #[test]
    fn restore_is_exact_and_dim_checked() {
        let mut s = FedAvgServer::new(vec![0.0; 3]);
        s.restore(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.global_model(), vec![1.0, 2.0, 3.0]);
        assert!(s.restore(&[1.0]).is_err(), "dimension mismatch rejected");
    }

    #[test]
    fn equal_weights_reduce_to_plain_mean() {
        let mut s = FedAvgServer::new(vec![0.0; 3]);
        s.update(&[upload(0, 2.0, 5), upload(1, 6.0, 5)]).unwrap();
        for &w in &s.global_model() {
            assert!((w - 4.0).abs() < 1e-6);
        }
    }
}
