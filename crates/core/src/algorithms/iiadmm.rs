//! IIADMM — the paper's Algorithm 1.
//!
//! The improved inexact ADMM performs (i) *batched* multiple local primal
//! updates and (ii) two independent-but-identical dual updates at the server
//! and the client, eliminating dual communication entirely:
//!
//! ```text
//! server, line 3 : w^{t+1} ← (1/P) Σ_p (z_p^t − λ_p^t/ρ)
//! client, 11–20  : z^{1,1} ← w^{t+1};
//!                  repeat L times over batches b:
//!                      z ← z − (g − λ_p − ρ(w − z)) / (ρ + ζ)
//! client, line 21: λ_p ← λ_p + ρ(w^{t+1} − z_p^{t+1})
//! server, line 6 : identical λ update with the received z_p^{t+1}
//! ```
//!
//! Because both sides start from the same `(z¹, λ¹)` (shared once at t=1)
//! and apply the same recurrence to the same transmitted values, the
//! mirrored duals remain bit-equal forever — asserted by
//! `server_and_client_duals_stay_identical` below. Note that with DP the
//! client's own dual update must use the *perturbed* `z` it actually
//! transmitted, otherwise the mirrors diverge.

use crate::api::{ClientAlgorithm, ClientUpload, ConvergenceDiagnostics, ServerAlgorithm};
use crate::trainer::LocalTrainer;
use appfl_privacy::{PrivacyConfig, SensitivityRule};
use appfl_tensor::{Result, TensorError};
use rand::rngs::StdRng;

/// IIADMM server: stores per-client primal copies and mirrored duals.
pub struct IiAdmmServer {
    /// Last received `z_p^t` per client (initialised to the shared `z¹`).
    primal: Vec<Vec<f32>>,
    /// Mirrored duals `λ_p^t` (initialised to the shared `λ¹ = 0`).
    dual: Vec<Vec<f32>>,
    /// Penalty ρ.
    rho: f32,
    /// Cached `w^{t+1}` recomputed on every `update`.
    global: Vec<f32>,
    /// `ρ‖w^{t+1} − w^t‖` from the most recent update (0 before any).
    last_dual_residual: f64,
}

impl IiAdmmServer {
    /// Initialises with the shared starting point: `z_p^1 = w^1`,
    /// `λ_p^1 = 0` for all clients.
    pub fn new(initial: Vec<f32>, num_clients: usize, rho: f32) -> Self {
        assert!(rho > 0.0, "IIADMM requires ρ > 0");
        assert!(num_clients > 0, "IIADMM requires at least one client");
        let dim = initial.len();
        let mut s = IiAdmmServer {
            primal: vec![initial.clone(); num_clients],
            dual: vec![vec![0.0; dim]; num_clients],
            rho,
            global: Vec::new(),
            last_dual_residual: 0.0,
        };
        s.global = s.compute_global();
        s
    }

    /// Algorithm 1 line 3.
    fn compute_global(&self) -> Vec<f32> {
        let p = self.primal.len() as f32;
        let dim = self.primal[0].len();
        let mut w = vec![0.0f32; dim];
        for (z, l) in self.primal.iter().zip(self.dual.iter()) {
            for ((w, &z), &l) in w.iter_mut().zip(z.iter()).zip(l.iter()) {
                *w += z - l / self.rho;
            }
        }
        for w in w.iter_mut() {
            *w /= p;
        }
        w
    }

    /// The mirrored dual of client `p` (exposed for the mirroring tests and
    /// the adaptive-ρ extension).
    pub fn dual_of(&self, p: usize) -> &[f32] {
        &self.dual[p]
    }

    /// Current penalty ρ.
    pub fn rho(&self) -> f32 {
        self.rho
    }

    /// Replaces ρ (adaptive-penalty extension; must be mirrored by clients).
    pub fn set_rho(&mut self, rho: f32) {
        assert!(rho > 0.0, "IIADMM requires ρ > 0");
        self.rho = rho;
        self.global = self.compute_global();
    }

    /// Sum of per-client primal residuals `‖w − z_p‖` (adaptive ρ uses it).
    pub fn primal_residual(&self) -> f64 {
        self.primal
            .iter()
            .map(|z| appfl_tensor::vecops::sq_dist(&self.global, z).sqrt())
            .sum()
    }

    /// Recomputes `w` after an update, tracking `ρ‖w^{t+1} − w^t‖`.
    fn advance_global(&mut self) {
        let next = self.compute_global();
        self.last_dual_residual =
            self.rho as f64 * appfl_tensor::vecops::sq_dist(&next, &self.global).sqrt();
        self.global = next;
    }
}

impl ServerAlgorithm for IiAdmmServer {
    fn global_model(&self) -> Vec<f32> {
        self.global.clone()
    }

    fn update(&mut self, uploads: &[ClientUpload]) -> Result<()> {
        if uploads.len() != self.primal.len() {
            return Err(TensorError::InvalidArgument(format!(
                "IIADMM expects {} uploads, got {}",
                self.primal.len(),
                uploads.len()
            )));
        }
        for u in uploads {
            if u.dual.is_some() {
                return Err(TensorError::InvalidArgument(
                    "IIADMM clients must not transmit duals".into(),
                ));
            }
            let p = u.client_id;
            if p >= self.primal.len() || u.primal.len() != self.global.len() {
                return Err(TensorError::InvalidArgument(format!(
                    "bad IIADMM upload from client {p}"
                )));
            }
            // Line 6: λ_p ← λ_p + ρ(w^{t+1} − z_p^{t+1}), identical to the
            // client-side line 21.
            for ((l, &w), &z) in self.dual[p]
                .iter_mut()
                .zip(self.global.iter())
                .zip(u.primal.iter())
            {
                *l += self.rho * (w - z);
            }
            self.primal[p] = u.primal.clone();
        }
        self.advance_global();
        Ok(())
    }

    fn update_degraded(&mut self, uploads: &[ClientUpload]) -> Result<()> {
        // Degraded round: only a quorum reported. Advance the mirrored
        // duals and stored primals of the clients that did; absentees keep
        // their `(z_p^t, λ_p^t)` and line 3 recomputes w over the full
        // roster, exactly as if those clients had returned `z` unchanged.
        if uploads.is_empty() {
            return Err(TensorError::InvalidArgument(
                "IIADMM degraded update needs at least one upload".into(),
            ));
        }
        for u in uploads {
            if u.dual.is_some() {
                return Err(TensorError::InvalidArgument(
                    "IIADMM clients must not transmit duals".into(),
                ));
            }
            let p = u.client_id;
            if p >= self.primal.len() || u.primal.len() != self.global.len() {
                return Err(TensorError::InvalidArgument(format!(
                    "bad IIADMM upload from client {p}"
                )));
            }
            for ((l, &w), &z) in self.dual[p]
                .iter_mut()
                .zip(self.global.iter())
                .zip(u.primal.iter())
            {
                *l += self.rho * (w - z);
            }
            self.primal[p] = u.primal.clone();
        }
        self.advance_global();
        Ok(())
    }

    fn name(&self) -> &'static str {
        "IIADMM"
    }

    fn dim(&self) -> usize {
        self.global.len()
    }

    fn diagnostics(&self) -> Option<ConvergenceDiagnostics> {
        Some(ConvergenceDiagnostics {
            primal_residual: self.primal_residual(),
            dual_residual: self.last_dual_residual,
            rho: self.rho as f64,
        })
    }
}

/// IIADMM client: keeps its dual `λ_p` across rounds (never transmitted).
pub struct IiAdmmClient {
    id: usize,
    trainer: LocalTrainer,
    rho: f32,
    zeta: f32,
    local_steps: usize,
    privacy: PrivacyConfig,
    dual: Vec<f32>,
    rng: StdRng,
}

impl IiAdmmClient {
    /// Builds a client with the shared initial dual `λ¹ = 0`.
    pub fn new(
        id: usize,
        trainer: LocalTrainer,
        rho: f32,
        zeta: f32,
        local_steps: usize,
        privacy: PrivacyConfig,
        rng: StdRng,
    ) -> Self {
        assert!(rho > 0.0 && zeta >= 0.0, "IIADMM requires ρ > 0, ζ ≥ 0");
        let dim = trainer.dim();
        IiAdmmClient {
            id,
            trainer,
            rho,
            zeta,
            local_steps,
            privacy,
            dual: vec![0.0; dim],
            rng,
        }
    }

    /// The client's dual (for mirroring tests).
    pub fn dual(&self) -> &[f32] {
        &self.dual
    }

    /// Replaces ρ (adaptive-penalty extension, mirrored with the server).
    pub fn set_rho(&mut self, rho: f32) {
        assert!(rho > 0.0, "IIADMM requires ρ > 0");
        self.rho = rho;
    }
}

impl ClientAlgorithm for IiAdmmClient {
    fn update(&mut self, global: &[f32]) -> Result<ClientUpload> {
        let clip = if self.privacy.is_private() {
            self.privacy.clip
        } else {
            f64::INFINITY
        };
        let denom = self.rho + self.zeta;
        // Line 11: z^{1,1} ← w^{t+1}.
        let mut z = global.to_vec();
        let mut loss_sum = 0.0f64;
        let mut loss_count = 0usize;
        // Lines 13–19: L sweeps over the batches.
        for _ in 0..self.local_steps {
            let batches = self.trainer.batches(&mut self.rng)?;
            for batch in &batches {
                let (g, loss) = self.trainer.grad_at(&z, batch, clip)?;
                loss_sum += loss as f64;
                loss_count += 1;
                // Line 16: z ← z − (g − λ − ρ(w − z)) / (ρ + ζ).
                for (((z, &g), &l), &w) in z
                    .iter_mut()
                    .zip(g.iter())
                    .zip(self.dual.iter())
                    .zip(global.iter())
                {
                    *z -= (g - l - self.rho * (w - *z)) / denom;
                }
            }
        }
        // Line 20 + §III-B: perturb the transmitted primal.
        let rule = SensitivityRule::AdmmOutput {
            clip: self.privacy.clip,
            rho: self.rho as f64,
            zeta: self.zeta as f64,
        };
        let scale = self.privacy.noise_scale(&rule);
        self.privacy
            .build_mechanism()
            .perturb(&mut z, scale, &mut self.rng);

        // Line 21 on the *transmitted* value, so the server mirror stays
        // identical even under DP.
        for ((l, &w), &z) in self.dual.iter_mut().zip(global.iter()).zip(z.iter()) {
            *l += self.rho * (w - z);
        }

        Ok(ClientUpload {
            client_id: self.id,
            primal: z,
            dual: None,
            num_samples: self.trainer.num_samples(),
            local_loss: if loss_count == 0 {
                0.0
            } else {
                (loss_sum / loss_count as f64) as f32
            },
        })
    }

    fn id(&self) -> usize {
        self.id
    }

    fn num_samples(&self) -> usize {
        self.trainer.num_samples()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{tiny_shard, tiny_trainer};
    use appfl_privacy::PrivacyConfig;
    use rand::SeedableRng;

    fn client(id: usize, privacy: PrivacyConfig) -> IiAdmmClient {
        IiAdmmClient::new(
            id,
            tiny_trainer(id as u64),
            1.0,
            0.5,
            2,
            privacy,
            StdRng::seed_from_u64(100 + id as u64),
        )
    }

    #[test]
    fn server_global_is_average_of_z_minus_scaled_dual() {
        let s = IiAdmmServer::new(vec![2.0; 4], 3, 2.0);
        // Fresh state: duals zero, all primals = 2 → w = 2.
        assert!(s.global_model().iter().all(|&w| (w - 2.0).abs() < 1e-6));
    }

    #[test]
    fn server_rejects_duals_and_bad_arity() {
        let mut s = IiAdmmServer::new(vec![0.0; 2], 2, 1.0);
        let good = ClientUpload {
            client_id: 0,
            primal: vec![1.0, 1.0],
            dual: None,
            num_samples: 1,
            local_loss: 0.0,
        };
        let with_dual = ClientUpload {
            dual: Some(vec![0.0, 0.0]),
            client_id: 1,
            ..good.clone()
        };
        assert!(s.update(std::slice::from_ref(&good)).is_err()); // arity 1 != 2
        assert!(s.update(&[good, with_dual]).is_err()); // dual present
    }

    #[test]
    fn server_and_client_duals_stay_identical() {
        // The paper's central claim for IIADMM: line 6 ≡ line 21, so
        // mirrored duals never diverge — including under DP noise.
        for privacy in [PrivacyConfig::none(), PrivacyConfig::laplace(5.0, 1.0)] {
            let mut clients: Vec<IiAdmmClient> = (0..3).map(|i| client(i, privacy)).collect();
            let dim = clients[0].trainer.dim();
            let mut server = IiAdmmServer::new(vec![0.0; dim], 3, 1.0);
            for _round in 0..3 {
                let w = server.global_model();
                let uploads: Vec<ClientUpload> =
                    clients.iter_mut().map(|c| c.update(&w).unwrap()).collect();
                server.update(&uploads).unwrap();
                for (i, c) in clients.iter().enumerate() {
                    let sd = server.dual_of(i);
                    let cd = c.dual();
                    let max_diff = sd
                        .iter()
                        .zip(cd.iter())
                        .map(|(a, b)| (a - b).abs())
                        .fold(0.0f32, f32::max);
                    assert!(
                        max_diff < 1e-5,
                        "dual divergence {max_diff} at client {i} (privacy={})",
                        privacy.is_private()
                    );
                }
            }
        }
    }

    #[test]
    fn degraded_update_accepts_partial_cohort() {
        let mut s = IiAdmmServer::new(vec![0.0; 2], 3, 1.0);
        let partial = [ClientUpload {
            client_id: 1,
            primal: vec![3.0, 3.0],
            dual: None,
            num_samples: 1,
            local_loss: 0.0,
        }];
        // Strict update refuses 1-of-3, the degraded path accepts it…
        assert!(s.update(&partial).is_err());
        s.update_degraded(&partial).unwrap();
        // …advancing only client 1's state while the absentees keep theirs.
        assert!(s.dual_of(1).iter().any(|&l| l != 0.0));
        assert!(s.dual_of(0).iter().all(|&l| l == 0.0));
        assert!(s.dual_of(2).iter().all(|&l| l == 0.0));
        // And an empty degraded round is rejected rather than dividing by
        // nothing.
        assert!(s.update_degraded(&[]).is_err());
    }

    #[test]
    fn uploads_carry_primal_only() {
        let mut c = client(0, PrivacyConfig::none());
        let w = vec![0.0; c.trainer.dim()];
        let u = c.update(&w).unwrap();
        assert!(u.dual.is_none());
        assert_eq!(u.primal.len(), w.len());
        assert_eq!(u.payload_bytes(), 4 * w.len());
    }

    #[test]
    fn consensus_contracts_over_rounds() {
        // On a shared objective the per-client primals must approach the
        // global model (the consensus constraint (2b) at work).
        let mut clients: Vec<IiAdmmClient> =
            (0..3).map(|i| client(i, PrivacyConfig::none())).collect();
        let dim = clients[0].trainer.dim();
        let mut server = IiAdmmServer::new(vec![0.0; dim], 3, 1.0);
        let mut first_residual = None;
        let mut last_residual = 0.0;
        for round in 0..8 {
            let w = server.global_model();
            let uploads: Vec<ClientUpload> =
                clients.iter_mut().map(|c| c.update(&w).unwrap()).collect();
            server.update(&uploads).unwrap();
            let r = server.primal_residual();
            if round == 0 {
                first_residual = Some(r);
            }
            last_residual = r;
        }
        assert!(
            last_residual < first_residual.unwrap(),
            "residual {first_residual:?} -> {last_residual}"
        );
    }

    #[test]
    fn diagnostics_report_residuals_and_rho() {
        let mut clients: Vec<IiAdmmClient> =
            (0..3).map(|i| client(i, PrivacyConfig::none())).collect();
        let dim = clients[0].trainer.dim();
        let mut server = IiAdmmServer::new(vec![0.0; dim], 3, 1.0);
        let d0 = server.diagnostics().unwrap();
        assert_eq!(d0.dual_residual, 0.0, "no update yet");
        assert_eq!(d0.rho, 1.0);
        let w = server.global_model();
        let uploads: Vec<ClientUpload> =
            clients.iter_mut().map(|c| c.update(&w).unwrap()).collect();
        server.update(&uploads).unwrap();
        let d = server.diagnostics().unwrap();
        assert!(d.primal_residual > 0.0, "clients moved off consensus");
        assert!(d.dual_residual > 0.0, "global model moved");
        assert!((d.primal_residual - server.primal_residual()).abs() < 1e-12);
    }

    #[test]
    fn dp_noise_perturbs_the_upload() {
        let w = vec![0.0; client(0, PrivacyConfig::none()).trainer.dim()];
        let clean = client(0, PrivacyConfig::none()).update(&w).unwrap();
        let noisy = client(0, PrivacyConfig::laplace(1.0, 1.0))
            .update(&w)
            .unwrap();
        let diff: f32 = clean
            .primal
            .iter()
            .zip(noisy.primal.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-3, "noise had no effect");
    }

    #[test]
    fn shard_sizes_are_reported() {
        let c = client(0, PrivacyConfig::none());
        assert_eq!(c.num_samples(), tiny_shard(0).0);
    }
}
