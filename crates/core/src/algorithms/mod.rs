//! FL algorithm implementations and the job factory.

pub mod factory;
pub mod fedavg;
pub mod fedprox;
pub mod iceadmm;
pub mod iiadmm;

#[allow(deprecated)]
pub use factory::Federation;
pub use factory::{build_federation, FederationSetup};
pub use fedavg::{FedAvgClient, FedAvgServer};
pub use fedprox::FedProxClient;
pub use iceadmm::{IceAdmmClient, IceAdmmServer};
pub use iiadmm::{IiAdmmClient, IiAdmmServer};
