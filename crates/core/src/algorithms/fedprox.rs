//! FedProx — the proximal special case of the paper's IADMM family.
//!
//! §III-A shows FedAvg is ICEADMM with `λᵗ = 0, ζᵗ = 0, ρᵗ = 1/η`. Keeping
//! `λ = 0` but a *nonzero* proximity term recovers FedProx (Li et al.): the
//! client minimises `f(z) + (μ/2)‖z − w‖²`, i.e. SGD steps
//!
//! ```text
//! z ← z − η·(g(z) + μ·(z − w))
//! ```
//!
//! anchored at the broadcast `w` — heterogeneity-robust local training
//! without any dual state. Implemented through the same `ClientAlgorithm`
//! trait as the paper's algorithms (aggregation reuses [`super::FedAvgServer`]),
//! demonstrating the plug-and-play architecture with a third point on the
//! IADMM spectrum: FedAvg (λ=0, ζ=0) — FedProx (λ=0, ζ=μ) — IIADMM (λ≠0).

use crate::api::{ClientAlgorithm, ClientUpload};
use crate::trainer::LocalTrainer;
use appfl_privacy::{PrivacyConfig, SensitivityRule};
use appfl_tensor::Result;
use rand::rngs::StdRng;

/// FedProx client: proximal SGD anchored at the global model.
pub struct FedProxClient {
    id: usize,
    trainer: LocalTrainer,
    lr: f32,
    /// Proximal coefficient μ (0 recovers plain FedAvg without momentum).
    mu: f32,
    local_steps: usize,
    privacy: PrivacyConfig,
    rng: StdRng,
}

impl FedProxClient {
    /// Builds a client over a model replica and data shard.
    pub fn new(
        id: usize,
        trainer: LocalTrainer,
        lr: f32,
        mu: f32,
        local_steps: usize,
        privacy: PrivacyConfig,
        rng: StdRng,
    ) -> Self {
        assert!(mu >= 0.0, "FedProx requires μ ≥ 0");
        FedProxClient {
            id,
            trainer,
            lr,
            mu,
            local_steps,
            privacy,
            rng,
        }
    }
}

impl ClientAlgorithm for FedProxClient {
    fn update(&mut self, global: &[f32]) -> Result<ClientUpload> {
        let clip = if self.privacy.is_private() {
            self.privacy.clip
        } else {
            f64::INFINITY
        };
        let mut z = global.to_vec();
        let mut loss_sum = 0.0f64;
        let mut loss_count = 0usize;
        for _ in 0..self.local_steps {
            let batches = self.trainer.batches(&mut self.rng)?;
            for batch in &batches {
                let (g, loss) = self.trainer.grad_at(&z, batch, clip)?;
                loss_sum += loss as f64;
                loss_count += 1;
                // Proximal step: z ← z − η·(g + μ(z − w)).
                for ((z, &g), &w) in z.iter_mut().zip(g.iter()).zip(global.iter()) {
                    *z -= self.lr * (g + self.mu * (*z - w));
                }
            }
        }
        // Output perturbation: the data-dependent part of the step is the
        // clipped gradient, so the FedAvg sensitivity rule Δ̄ = 2Cη applies.
        let rule = SensitivityRule::SgdOutput {
            clip: self.privacy.clip,
            lr: self.lr as f64,
        };
        let scale = self.privacy.noise_scale(&rule);
        self.privacy
            .build_mechanism()
            .perturb(&mut z, scale, &mut self.rng);

        Ok(ClientUpload {
            client_id: self.id,
            primal: z,
            dual: None,
            num_samples: self.trainer.num_samples(),
            local_loss: if loss_count == 0 {
                0.0
            } else {
                (loss_sum / loss_count as f64) as f32
            },
        })
    }

    fn id(&self) -> usize {
        self.id
    }

    fn num_samples(&self) -> usize {
        self.trainer.num_samples()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{FedAvgClient, FedAvgServer};
    use crate::api::ServerAlgorithm;
    use crate::test_support::tiny_trainer;
    use appfl_tensor::vecops::sq_dist;
    use rand::SeedableRng;

    fn prox_client(id: usize, mu: f32) -> FedProxClient {
        FedProxClient::new(
            id,
            tiny_trainer(id as u64),
            0.1,
            mu,
            2,
            PrivacyConfig::none(),
            StdRng::seed_from_u64(600 + id as u64),
        )
    }

    #[test]
    fn mu_zero_matches_momentum_free_fedavg() {
        let w = vec![0.0; prox_client(0, 0.0).trainer.dim()];
        let mut prox = prox_client(0, 0.0);
        let mut avg = FedAvgClient::new(
            0,
            tiny_trainer(0),
            0.1,
            0.0, // no momentum
            2,
            PrivacyConfig::none(),
            StdRng::seed_from_u64(600),
        );
        let up = prox.update(&w).unwrap();
        let ua = avg.update(&w).unwrap();
        let max_diff = up
            .primal
            .iter()
            .zip(ua.primal.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_diff < 1e-6, "μ=0 FedProx deviates by {max_diff}");
    }

    #[test]
    fn larger_mu_stays_closer_to_the_anchor() {
        let dim = prox_client(0, 0.0).trainer.dim();
        let w = vec![0.0; dim];
        let free = prox_client(0, 0.0).update(&w).unwrap();
        let tight = prox_client(0, 10.0).update(&w).unwrap();
        let d_free = sq_dist(&free.primal, &w);
        let d_tight = sq_dist(&tight.primal, &w);
        assert!(
            d_tight < d_free * 0.5,
            "μ=10 drift {d_tight} vs μ=0 drift {d_free}"
        );
    }

    #[test]
    fn federates_through_the_fedavg_server() {
        let dim = prox_client(0, 1.0).trainer.dim();
        let mut server = FedAvgServer::new(vec![0.0; dim]);
        let mut clients: Vec<FedProxClient> = (0..3).map(|i| prox_client(i, 1.0)).collect();
        let mut losses = Vec::new();
        for _ in 0..6 {
            let w = server.global_model();
            let uploads: Vec<ClientUpload> =
                clients.iter_mut().map(|c| c.update(&w).unwrap()).collect();
            losses.push(uploads.iter().map(|u| u.local_loss).sum::<f32>() / 3.0);
            server.update(&uploads).unwrap();
        }
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "losses {losses:?}"
        );
    }

    #[test]
    fn dp_noise_applies() {
        let dim = prox_client(0, 1.0).trainer.dim();
        let w = vec![0.0; dim];
        let clean = prox_client(0, 1.0).update(&w).unwrap();
        let mut noisy_client = FedProxClient::new(
            0,
            tiny_trainer(0),
            0.1,
            1.0,
            2,
            PrivacyConfig::laplace(1.0, 1.0),
            StdRng::seed_from_u64(600),
        );
        let noisy = noisy_client.update(&w).unwrap();
        let diff: f32 = clean
            .primal
            .iter()
            .zip(noisy.primal.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-3);
    }

    #[test]
    #[should_panic(expected = "μ ≥ 0")]
    fn negative_mu_panics() {
        prox_client(0, -1.0);
    }
}
