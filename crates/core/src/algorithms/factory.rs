//! Wires a [`FedConfig`], a dataset and a model builder into a runnable
//! federation — the plug-and-play assembly the APPFL architecture diagram
//! (Fig. 1) describes: algorithm × privacy × model × data.

use crate::algorithms::{
    FedAvgClient, FedAvgServer, FedProxClient, IceAdmmClient, IceAdmmServer, IiAdmmClient,
    IiAdmmServer,
};
use crate::api::{ClientAlgorithm, ServerAlgorithm};
use crate::config::{AlgorithmConfig, FedConfig};
use crate::trainer::LocalTrainer;
use appfl_data::FederatedDataset;
use appfl_nn::module::{flatten_params, Module};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// An assembled federation ready to run.
pub struct FederationSetup {
    /// The server-side algorithm.
    pub server: Box<dyn ServerAlgorithm>,
    /// One client per data shard.
    pub clients: Vec<Box<dyn ClientAlgorithm>>,
    /// A model replica used for server-side validation (§II-A.5).
    pub template: Box<dyn Module>,
    /// The run configuration.
    pub config: FedConfig,
}

/// Former name of [`FederationSetup`]; the bare name now belongs to the
/// [`Federation`](crate::federation::Federation) run API.
#[deprecated(since = "0.7.0", note = "renamed to FederationSetup")]
pub type Federation = FederationSetup;

/// Builds a federation. `model_builder` is invoked once per replica with a
/// seeded RNG; all replicas share the same initial weights (seeded from
/// `config.seed`), matching the paper's shared initialisation.
pub fn build_federation(
    config: FedConfig,
    data: &FederatedDataset,
    model_builder: impl Fn(&mut StdRng) -> Box<dyn Module>,
) -> FederationSetup {
    let mut model_rng = StdRng::seed_from_u64(config.seed);
    let template = model_builder(&mut model_rng);
    let initial = flatten_params(template.as_ref());
    let num_clients = data.num_clients();

    let server: Box<dyn ServerAlgorithm> = match config.algorithm {
        AlgorithmConfig::FedAvg { .. } => Box::new(FedAvgServer::new(initial.clone())),
        AlgorithmConfig::FedProx { .. } => {
            Box::new(FedAvgServer::new(initial.clone()).with_name("FedProx"))
        }
        AlgorithmConfig::IceAdmm { rho, .. } => {
            Box::new(IceAdmmServer::new(initial.clone(), num_clients, rho))
        }
        AlgorithmConfig::IiAdmm { rho, .. } => {
            Box::new(IiAdmmServer::new(initial.clone(), num_clients, rho))
        }
    };

    let clients: Vec<Box<dyn ClientAlgorithm>> = data
        .clients
        .iter()
        .enumerate()
        .map(|(id, shard)| {
            let replica = template.clone_module();
            let trainer = LocalTrainer::new(replica, shard.clone(), config.batch_size);
            let rng = StdRng::seed_from_u64(config.seed.wrapping_add(1000 + id as u64));
            match config.algorithm {
                AlgorithmConfig::FedAvg { lr, momentum } => Box::new(FedAvgClient::new(
                    id,
                    trainer,
                    lr,
                    momentum,
                    config.local_steps,
                    config.privacy,
                    rng,
                ))
                    as Box<dyn ClientAlgorithm>,
                AlgorithmConfig::FedProx { lr, mu } => Box::new(FedProxClient::new(
                    id,
                    trainer,
                    lr,
                    mu,
                    config.local_steps,
                    config.privacy,
                    rng,
                )),
                AlgorithmConfig::IceAdmm { rho, zeta } => Box::new(IceAdmmClient::new(
                    id,
                    trainer,
                    rho,
                    zeta,
                    config.local_steps,
                    config.privacy,
                    rng,
                )),
                AlgorithmConfig::IiAdmm { rho, zeta } => Box::new(IiAdmmClient::new(
                    id,
                    trainer,
                    rho,
                    zeta,
                    config.local_steps,
                    config.privacy,
                    rng,
                )),
            }
        })
        .collect();

    FederationSetup {
        server,
        clients,
        template,
        config,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use appfl_data::federated::{build_benchmark, Benchmark};
    use appfl_nn::models::{mlp_classifier, InputSpec};
    use appfl_privacy::PrivacyConfig;

    fn tiny_fed() -> FederatedDataset {
        build_benchmark(Benchmark::Mnist, 3, 48, 24, 5).unwrap()
    }

    fn build(algo: AlgorithmConfig) -> FederationSetup {
        let data = tiny_fed();
        let spec = InputSpec {
            channels: 1,
            height: 28,
            width: 28,
            classes: 10,
        };
        let config = FedConfig {
            algorithm: algo,
            rounds: 2,
            local_steps: 1,
            batch_size: 16,
            privacy: PrivacyConfig::none(),
            seed: 3,
        };
        build_federation(config, &data, move |rng| {
            Box::new(mlp_classifier(spec, 8, rng))
        })
    }

    #[test]
    fn builds_every_algorithm() {
        for algo in [
            AlgorithmConfig::FedAvg {
                lr: 0.01,
                momentum: 0.9,
            },
            AlgorithmConfig::FedProx { lr: 0.01, mu: 0.1 },
            AlgorithmConfig::IceAdmm {
                rho: 1.0,
                zeta: 1.0,
            },
            AlgorithmConfig::IiAdmm {
                rho: 1.0,
                zeta: 1.0,
            },
        ] {
            let fed = build(algo);
            assert_eq!(fed.clients.len(), 3);
            assert_eq!(fed.server.name(), algo.name());
            assert_eq!(fed.server.dim(), fed.template.num_params());
        }
    }

    #[test]
    fn initial_global_model_matches_template() {
        let fed = build(AlgorithmConfig::FedAvg {
            lr: 0.01,
            momentum: 0.9,
        });
        assert_eq!(
            fed.server.global_model(),
            flatten_params(fed.template.as_ref())
        );
    }

    #[test]
    fn same_seed_same_initialisation() {
        let a = build(AlgorithmConfig::IiAdmm {
            rho: 1.0,
            zeta: 1.0,
        });
        let b = build(AlgorithmConfig::IiAdmm {
            rho: 1.0,
            zeta: 1.0,
        });
        assert_eq!(a.server.global_model(), b.server.global_model());
    }
}
