//! The crate-level error type.
//!
//! Historically every runner returned [`TensorError`] — including paths
//! that never touch a tensor (quorum validation, transport failures),
//! which forced communication errors through a lossy
//! `TensorError::InvalidArgument(String)` shim. [`Error`] gives each failure
//! domain its own variant; `From` impls keep `?` ergonomic across both
//! underlying error types.

use appfl_comm::transport::CommError;
use appfl_tensor::TensorError;
use std::fmt;

/// Any failure a federation run can surface.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A tensor/model operation failed (shape mismatch, bad layout…).
    Tensor(TensorError),
    /// The transport failed (disconnect, timeout, frame corruption…).
    Comm(CommError),
    /// The run was misconfigured (bad quorum, missing evaluation setup…).
    Config(String),
    /// The chosen transport lacks a capability the runner requires
    /// (e.g. `recv_any` multiplexing for pull-mode serving).
    Unsupported(&'static str),
    /// Durable state could not be written or read back (checkpoint IO,
    /// encode/decode failures).
    Persist(String),
    /// The coordinator was killed by an injected [`CrashPoint`] — only
    /// ever produced by the crash-recovery test harness, after the named
    /// phase's store write committed.
    ///
    /// [`CrashPoint`]: crate::store::CrashPoint
    Crashed(&'static str),
    /// The coordinator phase machine was driven with an event its current
    /// phase does not accept (e.g. an upload while `Idle`). Every
    /// `(phase, event)` pair is either handled or rejected with this —
    /// never silently ignored.
    InvalidTransition {
        /// Phase the machine was in.
        phase: &'static str,
        /// Event that arrived.
        event: &'static str,
    },
}

impl Error {
    /// Convenience constructor for configuration errors.
    pub fn config(msg: impl Into<String>) -> Self {
        Error::Config(msg.into())
    }

    /// Convenience constructor for persistence errors.
    pub fn persist(msg: impl Into<String>) -> Self {
        Error::Persist(msg.into())
    }

    /// Lossy downgrade for the deprecated shims that still promise
    /// `TensorError`: tensor errors pass through, everything else is
    /// stringified into `TensorError::InvalidArgument`.
    pub fn into_tensor(self) -> TensorError {
        match self {
            Error::Tensor(e) => e,
            other => TensorError::InvalidArgument(other.to_string()),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Tensor(e) => write!(f, "tensor error: {e}"),
            Error::Comm(e) => write!(f, "communication error: {e}"),
            Error::Config(msg) => write!(f, "configuration error: {msg}"),
            Error::Unsupported(what) => write!(f, "transport capability missing: {what}"),
            Error::Persist(msg) => write!(f, "persistence error: {msg}"),
            Error::Crashed(phase) => {
                write!(f, "coordinator crashed (injected) after {phase} phase")
            }
            Error::InvalidTransition { phase, event } => {
                write!(f, "invalid phase transition: {event} while {phase}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Tensor(e) => Some(e),
            Error::Comm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for Error {
    fn from(e: TensorError) -> Self {
        Error::Tensor(e)
    }
}

impl From<CommError> for Error {
    fn from(e: CommError) -> Self {
        Error::Comm(e)
    }
}

/// Crate-level result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_impls_wrap_both_error_domains() {
        let t: Error = TensorError::InvalidArgument("x".into()).into();
        assert!(matches!(t, Error::Tensor(_)));
        let c: Error = CommError::Timeout { peer: None }.into();
        assert!(matches!(c, Error::Comm(_)));
    }

    #[test]
    fn display_names_the_domain() {
        let e = Error::Comm(CommError::Disconnected { peer: 3 });
        assert!(e.to_string().contains("communication error"));
        assert!(e.to_string().contains("peer 3"));
        let e = Error::config("quorum 0 is invalid");
        assert!(e.to_string().contains("configuration error"));
    }

    #[test]
    fn persist_variant_displays_its_domain() {
        let e = Error::persist("checkpoint write: disk full");
        assert!(e.to_string().contains("persistence error"));
        assert!(e.to_string().contains("disk full"));
    }

    #[test]
    fn into_tensor_preserves_tensor_errors_and_stringifies_others() {
        let t = Error::Tensor(TensorError::InvalidArgument("inner".into())).into_tensor();
        assert_eq!(t, TensorError::InvalidArgument("inner".into()));
        let c = Error::Comm(CommError::Timeout { peer: Some(1) }).into_tensor();
        match c {
            TensorError::InvalidArgument(msg) => assert!(msg.contains("timed out")),
            other => panic!("expected InvalidArgument, got {other:?}"),
        }
    }
}
