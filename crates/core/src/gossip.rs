//! Decentralized neighbour averaging — future-work item 1 of §V.
//!
//! "We will also develop decentralized privacy-preserving algorithms that
//! allow the neighboring communication without the central server for
//! learning." This module provides that prototype: clients sit on an
//! undirected communication graph and each round (i) train locally, then
//! (ii) replace their model with a Metropolis-weighted average of their
//! neighbourhood — classic decentralized SGD / gossip averaging. Combined
//! with the same output-perturbation DP as the centralised algorithms, it
//! gives a serverless PPFL baseline.

use appfl_tensor::{Result, TensorError};

/// An undirected communication topology over `n` nodes.
///
/// ```
/// use appfl_core::gossip::{gossip_average, Topology};
/// let ring = Topology::ring(4);
/// let models = vec![vec![4.0_f32], vec![0.0], vec![2.0], vec![2.0]];
/// let next = gossip_average(&ring, &models).unwrap();
/// // Metropolis weights conserve the network mean (here 2.0).
/// let mean: f32 = next.iter().map(|m| m[0]).sum::<f32>() / 4.0;
/// assert!((mean - 2.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    n: usize,
    adj: Vec<Vec<usize>>,
}

impl Topology {
    /// A ring: node `i` talks to `i±1 (mod n)`.
    pub fn ring(n: usize) -> Self {
        assert!(n >= 2, "ring needs at least two nodes");
        let adj = (0..n)
            .map(|i| {
                let mut v = vec![(i + n - 1) % n, (i + 1) % n];
                v.sort_unstable();
                v.dedup(); // n = 2 has a single neighbour
                v
            })
            .collect();
        Topology { n, adj }
    }

    /// A complete graph (every pair connected).
    pub fn complete(n: usize) -> Self {
        assert!(n >= 2, "complete graph needs at least two nodes");
        let adj = (0..n)
            .map(|i| (0..n).filter(|&j| j != i).collect())
            .collect();
        Topology { n, adj }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the topology is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Neighbours of node `i`.
    pub fn neighbors(&self, i: usize) -> &[usize] {
        &self.adj[i]
    }

    /// Node degree.
    pub fn degree(&self, i: usize) -> usize {
        self.adj[i].len()
    }
}

/// One Metropolis–Hastings gossip averaging step: every node mixes its
/// vector with its neighbours' using weights
/// `W_ij = 1 / (1 + max(deg_i, deg_j))`, which keeps the mixing matrix
/// doubly stochastic (so the network average is conserved).
pub fn gossip_average(topology: &Topology, models: &[Vec<f32>]) -> Result<Vec<Vec<f32>>> {
    if models.len() != topology.len() {
        return Err(TensorError::InvalidArgument(format!(
            "{} models for {} nodes",
            models.len(),
            topology.len()
        )));
    }
    let dim = models.first().map_or(0, Vec::len);
    if models.iter().any(|m| m.len() != dim) {
        return Err(TensorError::InvalidArgument(
            "ragged model dimensions".into(),
        ));
    }
    let mut out = Vec::with_capacity(models.len());
    for i in 0..topology.len() {
        let mut next = models[i].clone();
        let mut self_weight = 1.0f32;
        for &j in topology.neighbors(i) {
            let w = 1.0 / (1.0 + topology.degree(i).max(topology.degree(j)) as f32);
            self_weight -= w;
            for (n, (&mj, &mi)) in next.iter_mut().zip(models[j].iter().zip(models[i].iter())) {
                *n += w * (mj - mi);
            }
            debug_assert!(self_weight >= -1e-6);
        }
        out.push(next);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_topology_shape() {
        let t = Topology::ring(5);
        assert_eq!(t.len(), 5);
        assert_eq!(t.neighbors(0), &[1, 4]);
        assert_eq!(t.degree(2), 2);
        let t2 = Topology::ring(2);
        assert_eq!(t2.degree(0), 1);
    }

    #[test]
    fn complete_topology_shape() {
        let t = Topology::complete(4);
        assert_eq!(t.degree(0), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn gossip_conserves_the_mean() {
        let t = Topology::ring(4);
        let models = vec![
            vec![4.0f32, 0.0],
            vec![0.0, 4.0],
            vec![2.0, 2.0],
            vec![-2.0, 6.0],
        ];
        let mean0: Vec<f32> = (0..2)
            .map(|d| models.iter().map(|m| m[d]).sum::<f32>() / 4.0)
            .collect();
        let next = gossip_average(&t, &models).unwrap();
        let mean1: Vec<f32> = (0..2)
            .map(|d| next.iter().map(|m| m[d]).sum::<f32>() / 4.0)
            .collect();
        for (a, b) in mean0.iter().zip(mean1.iter()) {
            assert!((a - b).abs() < 1e-5, "mean drifted {a} -> {b}");
        }
    }

    #[test]
    fn gossip_contracts_disagreement() {
        let t = Topology::ring(6);
        let mut models: Vec<Vec<f32>> = (0..6).map(|i| vec![i as f32]).collect();
        let spread = |ms: &[Vec<f32>]| {
            let max = ms.iter().map(|m| m[0]).fold(f32::MIN, f32::max);
            let min = ms.iter().map(|m| m[0]).fold(f32::MAX, f32::min);
            max - min
        };
        let s0 = spread(&models);
        for _ in 0..30 {
            models = gossip_average(&t, &models).unwrap();
        }
        let s1 = spread(&models);
        assert!(s1 < s0 * 0.2, "spread {s0} -> {s1}");
    }

    #[test]
    fn complete_graph_converges_in_one_step_towards_mean() {
        let t = Topology::complete(3);
        let models = vec![vec![3.0f32], vec![0.0], vec![0.0]];
        let next = gossip_average(&t, &models).unwrap();
        // All nodes move strictly toward the mean (1.0).
        assert!(next[0][0] < 3.0);
        assert!(next[1][0] > 0.0);
    }

    #[test]
    fn validates_inputs() {
        let t = Topology::ring(3);
        assert!(gossip_average(&t, &[vec![0.0], vec![0.0]]).is_err());
        assert!(gossip_average(&t, &[vec![0.0], vec![0.0, 1.0], vec![0.0]]).is_err());
    }
}
