//! Shared fixtures for the crate's unit tests.

use crate::trainer::LocalTrainer;
use appfl_data::{DataSpec, InMemoryDataset};
use appfl_nn::models::{linear_classifier, InputSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic 12-sample, 2-class, 1×2×2 shard. Returns `(len, shard)`.
pub fn tiny_shard(seed: u64) -> (usize, InMemoryDataset) {
    let spec = DataSpec {
        channels: 1,
        height: 2,
        width: 2,
        classes: 2,
    };
    let n = 12usize;
    let mut data = Vec::with_capacity(n * 4);
    let mut labels = Vec::with_capacity(n);
    // Class 0 clusters near +1, class 1 near −1, with a seed-dependent tilt
    // so different "clients" hold slightly different distributions.
    let tilt = (seed as f32 * 0.13).sin() * 0.3;
    for i in 0..n {
        let label = i % 2;
        let sign = if label == 0 { 1.0f32 } else { -1.0 };
        let wobble = ((i as f32) * 0.7 + seed as f32).sin() * 0.2;
        data.extend_from_slice(&[
            sign + wobble + tilt,
            sign - wobble,
            sign * 0.5 + tilt,
            -sign * 0.25 + wobble,
        ]);
        labels.push(label);
    }
    (
        n,
        InMemoryDataset::new(spec, data, labels).expect("valid fixture"),
    )
}

/// A [`LocalTrainer`] over [`tiny_shard`] with a linear model (22 params).
pub fn tiny_trainer(seed: u64) -> LocalTrainer {
    let (_, shard) = tiny_shard(seed);
    let mut rng = StdRng::seed_from_u64(999); // same model init for all
    let model = linear_classifier(
        InputSpec {
            channels: 1,
            height: 2,
            width: 2,
            classes: 2,
        },
        &mut rng,
    );
    LocalTrainer::new(Box::new(model), shard, 4)
}
