//! Round-indexed parameter schedules.
//!
//! The paper's ADMM steps (3a)–(3c) index the penalty as ρᵗ and proximity
//! as ζᵗ — round-dependent by construction — and notes their choice "may be
//! sensitive to the learning performance, similar to the learning rate of
//! SGD". This module provides the standard schedules for any such scalar
//! (ρᵗ, ζᵗ, or a FedAvg learning rate ηᵗ); the residual-balancing
//! controller in [`crate::adaptive`] is the feedback-driven alternative.

use serde::{Deserialize, Serialize};

/// A deterministic scalar schedule over communication rounds (1-based, as
/// in Algorithm 1).
///
/// ```
/// use appfl_core::schedule::Schedule;
/// let rho = Schedule::StepDecay { initial: 10.0, factor: 0.5, every: 20 };
/// assert_eq!(rho.value_at(1), 10.0);
/// assert_eq!(rho.value_at(21), 5.0);
/// assert_eq!(rho.value_at(41), 2.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Schedule {
    /// Fixed value for every round.
    Constant(f32),
    /// Multiply by `factor` every `every` rounds.
    StepDecay {
        /// Round-1 value.
        initial: f32,
        /// Multiplier applied at each step (e.g. 0.5).
        factor: f32,
        /// Rounds between steps.
        every: usize,
    },
    /// Cosine interpolation from `initial` to `final_value` over
    /// `total_rounds`.
    Cosine {
        /// Round-1 value.
        initial: f32,
        /// Value at and beyond `total_rounds`.
        final_value: f32,
        /// Horizon.
        total_rounds: usize,
    },
    /// `initial / √t` — the classical diminishing step size that ADMM
    /// convergence analyses assume for ζᵗ.
    InverseSqrt {
        /// Round-1 value.
        initial: f32,
    },
}

impl Schedule {
    /// The scheduled value at round `t ≥ 1`.
    pub fn value_at(&self, t: usize) -> f32 {
        let t = t.max(1);
        match *self {
            Schedule::Constant(v) => v,
            Schedule::StepDecay {
                initial,
                factor,
                every,
            } => {
                let steps = (t - 1) / every.max(1);
                initial * factor.powi(steps as i32)
            }
            Schedule::Cosine {
                initial,
                final_value,
                total_rounds,
            } => {
                if t >= total_rounds {
                    return final_value;
                }
                let progress = (t - 1) as f32 / (total_rounds.max(2) - 1) as f32;
                let cos = (std::f32::consts::PI * progress).cos();
                final_value + 0.5 * (initial - final_value) * (1.0 + cos)
            }
            Schedule::InverseSqrt { initial } => initial / (t as f32).sqrt(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_never_moves() {
        let s = Schedule::Constant(0.3);
        assert_eq!(s.value_at(1), 0.3);
        assert_eq!(s.value_at(1000), 0.3);
    }

    #[test]
    fn step_decay_halves_on_schedule() {
        let s = Schedule::StepDecay {
            initial: 1.0,
            factor: 0.5,
            every: 10,
        };
        assert_eq!(s.value_at(1), 1.0);
        assert_eq!(s.value_at(10), 1.0);
        assert_eq!(s.value_at(11), 0.5);
        assert_eq!(s.value_at(21), 0.25);
    }

    #[test]
    fn cosine_interpolates_endpoints() {
        let s = Schedule::Cosine {
            initial: 1.0,
            final_value: 0.1,
            total_rounds: 50,
        };
        assert!((s.value_at(1) - 1.0).abs() < 1e-6);
        assert!((s.value_at(50) - 0.1).abs() < 1e-6);
        assert!((s.value_at(100) - 0.1).abs() < 1e-6);
        // Midpoint near the arithmetic mean.
        let mid = s.value_at(25);
        assert!((mid - 0.55).abs() < 0.05, "mid {mid}");
        // Monotone decreasing.
        for t in 1..50 {
            assert!(s.value_at(t) >= s.value_at(t + 1) - 1e-6);
        }
    }

    #[test]
    fn inverse_sqrt_diminishes() {
        let s = Schedule::InverseSqrt { initial: 2.0 };
        assert_eq!(s.value_at(1), 2.0);
        assert!((s.value_at(4) - 1.0).abs() < 1e-6);
        assert!((s.value_at(100) - 0.2).abs() < 1e-6);
    }

    #[test]
    fn round_zero_clamps_to_one() {
        let s = Schedule::InverseSqrt { initial: 1.0 };
        assert_eq!(s.value_at(0), s.value_at(1));
    }

    #[test]
    fn serializes() {
        let s = Schedule::Cosine {
            initial: 1.0,
            final_value: 0.0,
            total_rounds: 10,
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: Schedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
