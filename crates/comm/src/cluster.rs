//! Device and cluster layout models (§IV-C strong scaling, §IV-E
//! heterogeneity).
//!
//! The paper's absolute numbers come from V100s (Summit) and A100s (Swing);
//! this module encodes the *relative* throughput the paper reports — one
//! FEMNIST local update takes 6.96 s on a V100 vs 4.24 s on an A100, a 1.64×
//! gap — plus the worker layout used in the Summit study (203 clients packed
//! onto `W` MPI processes, one GPU each).

use serde::{Deserialize, Serialize};

/// A GPU model with a calibrated local-update time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuModel {
    /// Device name.
    pub name: &'static str,
    /// Seconds for one client's full local update (L epochs) on the
    /// FEMNIST reference workload.
    pub secs_per_client_update: f64,
}

/// NVIDIA V100 (Summit): 6.96 s per client local update (§IV-E).
pub const V100: GpuModel = GpuModel {
    name: "V100",
    secs_per_client_update: 6.96,
};

/// NVIDIA A100 (Swing): 4.24 s per client local update — 1.64× faster.
pub const A100: GpuModel = GpuModel {
    name: "A100",
    secs_per_client_update: 4.24,
};

impl GpuModel {
    /// Time to run local updates for `clients` clients serially on this
    /// device, scaled by relative workload `work` (1.0 = the reference
    /// FEMNIST client).
    pub fn update_time(&self, clients: usize, work: f64) -> f64 {
        self.secs_per_client_update * clients as f64 * work
    }

    /// Speed ratio versus another device (>1 means `self` is faster).
    pub fn speedup_over(&self, other: &GpuModel) -> f64 {
        other.secs_per_client_update / self.secs_per_client_update
    }
}

/// The Summit layout: `clients` FL clients divided over `processes` worker
/// processes (one GPU each), plus one reserved server process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerLayout {
    /// Total FL clients (203 in the paper's FEMNIST study).
    pub clients: usize,
    /// Worker processes sharing them.
    pub processes: usize,
}

impl WorkerLayout {
    /// Clients handled by worker `rank` (near-equal split, like the paper's
    /// "equally divided" assignment).
    pub fn clients_of(&self, rank: usize) -> usize {
        assert!(rank < self.processes, "rank out of range");
        let base = self.clients / self.processes;
        let extra = self.clients % self.processes;
        base + usize::from(rank < extra)
    }

    /// The busiest worker's client count — the round's critical path, since
    /// a worker runs its clients serially.
    pub fn max_clients_per_process(&self) -> usize {
        self.clients.div_ceil(self.processes)
    }

    /// Wall time for one round of local updates on `gpu` (workers run in
    /// parallel; each runs its clients serially).
    pub fn round_compute_time(&self, gpu: &GpuModel, work: f64) -> f64 {
        gpu.update_time(self.max_clients_per_process(), work)
    }
}

/// A heterogeneous two-silo federation (§IV-E): one institution on A100s,
/// another on V100s. Computes the per-round load imbalance.
#[derive(Debug, Clone, Copy)]
pub struct HeterogeneousPair {
    /// First silo's device.
    pub fast: GpuModel,
    /// Second silo's device.
    pub slow: GpuModel,
}

impl HeterogeneousPair {
    /// With synchronous aggregation the round takes the slower silo's time;
    /// returns `(round_time, idle_time_on_fast_silo)`.
    pub fn sync_round(&self, clients_each: usize, work: f64) -> (f64, f64) {
        let tf = self.fast.update_time(clients_each, work);
        let ts = self.slow.update_time(clients_each, work);
        let round = tf.max(ts);
        (round, round - tf.min(ts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_v100_ratio_matches_paper() {
        let r = A100.speedup_over(&V100);
        assert!((r - 1.64).abs() < 0.01, "ratio {r}");
        assert!((V100.secs_per_client_update - 6.96).abs() < 1e-9);
        assert!((A100.secs_per_client_update - 4.24).abs() < 1e-9);
    }

    #[test]
    fn layout_splits_near_equally() {
        let l = WorkerLayout {
            clients: 203,
            processes: 5,
        };
        let total: usize = (0..5).map(|r| l.clients_of(r)).sum();
        assert_eq!(total, 203);
        assert_eq!(l.max_clients_per_process(), 41);
        for r in 0..5 {
            assert!(l.clients_of(r) == 40 || l.clients_of(r) == 41);
        }
    }

    #[test]
    fn compute_time_scales_with_processes() {
        let work = 1.0;
        let t5 = WorkerLayout {
            clients: 203,
            processes: 5,
        }
        .round_compute_time(&V100, work);
        let t203 = WorkerLayout {
            clients: 203,
            processes: 203,
        }
        .round_compute_time(&V100, work);
        // Perfect compute scaling: 41 clients vs 1 client per process.
        assert!((t5 / t203 - 41.0).abs() < 1e-9);
    }

    #[test]
    fn heterogeneous_round_is_bound_by_slow_silo() {
        let pair = HeterogeneousPair {
            fast: A100,
            slow: V100,
        };
        let (round, idle) = pair.sync_round(2, 1.0);
        assert!((round - 13.92).abs() < 1e-9); // 2 × 6.96
        assert!((idle - (13.92 - 8.48)).abs() < 1e-9);
        assert!(idle > 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rank_bounds_checked() {
        WorkerLayout {
            clients: 10,
            processes: 2,
        }
        .clients_of(2);
    }
}
