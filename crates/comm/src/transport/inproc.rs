//! In-process transport over crossbeam channels.
//!
//! Functionally equivalent to an MPI communicator inside one machine: each
//! participant runs on its own thread and exchanges owned byte buffers over
//! unbounded channels. This is how the FL runners execute server + clients
//! concurrently, and its `gather` is the analogue of the `MPI.gather()` the
//! paper instruments in §IV-C.

use super::{CommError, Communicator, TrafficSnapshot, TrafficStats};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One participant's endpoint in an [`InProcNetwork`].
pub struct InProcEndpoint {
    rank: usize,
    size: usize,
    /// `senders[j]` delivers to rank `j`.
    senders: Vec<Sender<Vec<u8>>>,
    /// `receivers[j]` yields messages sent by rank `j`.
    receivers: Vec<Receiver<Vec<u8>>>,
    stats: Arc<TrafficStats>,
    /// `per_peer[j]` counts only traffic exchanged with rank `j`.
    per_peer: Vec<TrafficStats>,
}

/// Builder for a fully-connected in-process network.
pub struct InProcNetwork;

#[allow(clippy::new_ret_no_self)] // builder: returns the endpoint set
impl InProcNetwork {
    /// Creates `size` endpoints, all pairwise connected (including a
    /// loopback channel so collectives can treat every rank uniformly).
    pub fn new(size: usize) -> Vec<InProcEndpoint> {
        assert!(size > 0, "network needs at least one rank");
        // matrix[i][j] = (sender into, receiver out of) the i→j channel.
        let mut senders: Vec<Vec<Option<Sender<Vec<u8>>>>> = (0..size)
            .map(|_| (0..size).map(|_| None).collect())
            .collect();
        let mut receivers: Vec<Vec<Option<Receiver<Vec<u8>>>>> = (0..size)
            .map(|_| (0..size).map(|_| None).collect())
            .collect();
        for i in 0..size {
            for j in 0..size {
                let (tx, rx) = unbounded();
                senders[i][j] = Some(tx); // i sends to j
                receivers[j][i] = Some(rx); // j receives from i
            }
        }
        senders
            .into_iter()
            .zip(receivers)
            .enumerate()
            .map(|(rank, (s_row, r_row))| InProcEndpoint {
                rank,
                size,
                senders: s_row.into_iter().map(|s| s.expect("filled")).collect(),
                receivers: r_row.into_iter().map(|r| r.expect("filled")).collect(),
                stats: Arc::new(TrafficStats::default()),
                per_peer: (0..size).map(|_| TrafficStats::default()).collect(),
            })
            .collect()
    }
}

impl Communicator for InProcEndpoint {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send(&self, to: usize, payload: Vec<u8>) -> Result<(), CommError> {
        let sender = self.senders.get(to).ok_or(CommError::InvalidRank {
            rank: to,
            size: self.size,
        })?;
        self.stats.record_send(payload.len());
        self.per_peer[to].record_send(payload.len());
        sender
            .send(payload)
            .map_err(|_| CommError::Disconnected { peer: to })
    }

    fn recv(&self, from: usize) -> Result<Vec<u8>, CommError> {
        let receiver = self.receivers.get(from).ok_or(CommError::InvalidRank {
            rank: from,
            size: self.size,
        })?;
        let payload = receiver
            .recv()
            .map_err(|_| CommError::Disconnected { peer: from })?;
        self.stats.record_recv(payload.len());
        self.per_peer[from].record_recv(payload.len());
        Ok(payload)
    }

    fn supports_recv_any(&self) -> bool {
        true
    }

    fn recv_any(&self) -> Result<(usize, Vec<u8>), CommError> {
        self.recv_any_deadline(None)
    }

    fn recv_timeout(&self, from: usize, timeout: Duration) -> Result<Vec<u8>, CommError> {
        let receiver = self.receivers.get(from).ok_or(CommError::InvalidRank {
            rank: from,
            size: self.size,
        })?;
        let payload = receiver.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => CommError::Timeout { peer: Some(from) },
            RecvTimeoutError::Disconnected => CommError::Disconnected { peer: from },
        })?;
        self.stats.record_recv(payload.len());
        self.per_peer[from].record_recv(payload.len());
        Ok(payload)
    }

    fn recv_any_timeout(&self, timeout: Duration) -> Result<(usize, Vec<u8>), CommError> {
        self.recv_any_deadline(Some(Instant::now() + timeout))
    }

    fn stats(&self) -> TrafficSnapshot {
        self.stats.snapshot()
    }

    fn peer_stats(&self, peer: usize) -> Option<TrafficSnapshot> {
        self.per_peer.get(peer).map(TrafficStats::snapshot)
    }
}

impl InProcEndpoint {
    /// Multiplexes over all live peers (skipping loopback, which only the
    /// collectives use) with crossbeam's Select. Peers whose endpoints were
    /// dropped are excluded and the select rebuilt, so one departing client
    /// cannot wedge the server. With a deadline, waiting stops at the
    /// deadline and reports [`CommError::Timeout`].
    fn recv_any_deadline(&self, deadline: Option<Instant>) -> Result<(usize, Vec<u8>), CommError> {
        let mut dead = vec![false; self.size];
        loop {
            let mut select = crossbeam::channel::Select::new();
            let mut ranks = Vec::with_capacity(self.size.saturating_sub(1));
            for (rank, rx) in self.receivers.iter().enumerate() {
                if rank == self.rank || dead[rank] {
                    continue;
                }
                select.recv(rx);
                ranks.push(rank);
            }
            if ranks.is_empty() {
                return Err(CommError::Disconnected { peer: self.rank });
            }
            let op = match deadline {
                Some(d) => match select.select_deadline(d) {
                    Ok(op) => op,
                    Err(_) => return Err(CommError::Timeout { peer: None }),
                },
                None => select.select(),
            };
            let rank = ranks[op.index()];
            match op.recv(&self.receivers[rank]) {
                Ok(payload) => {
                    self.stats.record_recv(payload.len());
                    self.per_peer[rank].record_recv(payload.len());
                    return Ok((rank, payload));
                }
                Err(_) => dead[rank] = true,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn point_to_point_delivery() {
        let mut eps = InProcNetwork::new(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        a.send(1, vec![1, 2, 3]).unwrap();
        assert_eq!(b.recv(0).unwrap(), vec![1, 2, 3]);
        let s = a.stats();
        assert_eq!(s.msgs_sent, 1);
        assert_eq!(s.bytes_sent, 3);
        assert_eq!(b.stats().bytes_recv, 3);
    }

    #[test]
    fn per_peer_counters_split_traffic_by_rank() {
        let mut eps = InProcNetwork::new(3);
        let c = eps.pop().unwrap();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        a.send(1, vec![0; 4]).unwrap();
        a.send(2, vec![0; 9]).unwrap();
        b.recv(0).unwrap();
        c.recv(0).unwrap();
        let to_b = a.peer_stats(1).unwrap();
        let to_c = a.peer_stats(2).unwrap();
        assert_eq!((to_b.msgs_sent, to_b.bytes_sent), (1, 4));
        assert_eq!((to_c.msgs_sent, to_c.bytes_sent), (1, 9));
        assert_eq!(b.peer_stats(0).unwrap().bytes_recv, 4);
        assert_eq!(a.peer_stats(7), None, "invalid rank");
        // Aggregate view still sums everything.
        assert_eq!(a.stats().bytes_sent, 13);
    }

    #[test]
    fn inproc_advertises_recv_any() {
        let mut eps = InProcNetwork::new(2);
        let a = eps.remove(0);
        assert!(a.supports_recv_any());
    }

    #[test]
    fn messages_from_same_peer_preserve_order() {
        let mut eps = InProcNetwork::new(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        for i in 0..10u8 {
            a.send(1, vec![i]).unwrap();
        }
        for i in 0..10u8 {
            assert_eq!(b.recv(0).unwrap(), vec![i]);
        }
    }

    #[test]
    fn invalid_rank_is_rejected() {
        let mut eps = InProcNetwork::new(1);
        let a = eps.pop().unwrap();
        assert!(matches!(
            a.send(5, vec![]),
            Err(CommError::InvalidRank { rank: 5, size: 1 })
        ));
        assert!(a.recv(3).is_err());
    }

    #[test]
    fn disconnected_peer_is_reported() {
        let mut eps = InProcNetwork::new(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        drop(b);
        assert!(matches!(
            a.send(1, vec![1]),
            Err(CommError::Disconnected { peer: 1 })
        ));
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let eps = InProcNetwork::new(4);
        let mut handles = Vec::new();
        for ep in eps {
            handles.push(thread::spawn(move || {
                let payload = vec![ep.rank() as u8; ep.rank() + 1];
                ep.gather(0, payload)
            }));
        }
        let mut root_result = None;
        for h in handles {
            if let Some(v) = h.join().unwrap().unwrap() {
                root_result = Some(v);
            }
        }
        let v = root_result.expect("root saw the gather");
        assert_eq!(v.len(), 4);
        for (r, payload) in v.iter().enumerate() {
            assert_eq!(payload, &vec![r as u8; r + 1]);
        }
    }

    #[test]
    fn broadcast_reaches_all_ranks() {
        let eps = InProcNetwork::new(3);
        let mut handles = Vec::new();
        for ep in eps {
            handles.push(thread::spawn(move || {
                let payload = if ep.rank() == 1 { vec![42] } else { Vec::new() };
                ep.broadcast(1, payload)
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap().unwrap(), vec![42]);
        }
    }

    #[test]
    fn barrier_synchronises() {
        let eps = InProcNetwork::new(5);
        let mut handles = Vec::new();
        for ep in eps {
            handles.push(thread::spawn(move || ep.barrier()));
        }
        for h in handles {
            h.join().unwrap().unwrap();
        }
    }

    #[test]
    fn gather_rejects_invalid_root() {
        let mut eps = InProcNetwork::new(2);
        let a = eps.remove(0);
        assert!(a.gather(9, vec![]).is_err());
        assert!(a.broadcast(9, vec![]).is_err());
    }

    #[test]
    fn recv_timeout_expires_then_delivers() {
        let mut eps = InProcNetwork::new(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        assert_eq!(
            b.recv_timeout(0, Duration::from_millis(10)),
            Err(CommError::Timeout { peer: Some(0) })
        );
        a.send(1, vec![5]).unwrap();
        assert_eq!(
            b.recv_timeout(0, Duration::from_millis(200)).unwrap(),
            vec![5]
        );
    }

    #[test]
    fn recv_any_timeout_expires_then_delivers() {
        let mut eps = InProcNetwork::new(3);
        let c = eps.pop().unwrap();
        let _b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        assert_eq!(
            a.recv_any_timeout(Duration::from_millis(10)),
            Err(CommError::Timeout { peer: None })
        );
        c.send(0, vec![7]).unwrap();
        assert_eq!(
            a.recv_any_timeout(Duration::from_millis(200)).unwrap(),
            (2, vec![7])
        );
    }

    #[test]
    fn recv_timeout_reports_dropped_peer() {
        let mut eps = InProcNetwork::new(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        drop(b);
        assert_eq!(
            a.recv_timeout(1, Duration::from_millis(10)),
            Err(CommError::Disconnected { peer: 1 })
        );
    }
}
