//! A composable, seeded chaos timeline over [`FaultyCommunicator`].
//!
//! A [`FaultPlan`] answers "what happens to the `round`-th message on
//! this link"; a [`ChaosSchedule`] answers the operator's question one
//! level up: *"rounds 3–5 ride through a latency spike, rounds 6–7 a
//! drop storm, and the coordinator dies after round 4's aggregate"*. It
//! is a list of [`ChaosSegment`]s — round windows, each carrying one
//! [`ChaosKind`] — plus the coordinator-side [`CrashPoint`]s, and it
//! *compiles* down to the explicit per-`(peer, round)` entries of a
//! [`FaultPlan`]. Compilation is a pure function of the schedule (every
//! probabilistic decision derives from the schedule seed through the
//! shared splitmix64 stream), so a chaos run replays bit for bit and a
//! failing combination can be re-run from its exported JSON description.
//!
//! Because the FL runners exchange exactly one message per link per
//! federation round, segment windows line up with federation rounds.

use super::faults::{FaultKind, FaultPlan};
use crate::policy::{lane3, seeded_unit, CrashPoint};
use std::time::Duration;

/// One kind of scheduled chaos, active across a segment's round window.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosKind {
    /// Each message in the window is independently delayed by
    /// `delay_ms` with probability `prob`.
    LatencySpike {
        /// Per-message delay probability in `[0, 1]`.
        prob: f64,
        /// Injected delay, in milliseconds.
        delay_ms: u64,
    },
    /// Each message in the window is independently dropped with
    /// probability `prob`.
    DropStorm {
        /// Per-message drop probability in `[0, 1]`.
        prob: f64,
    },
    /// The listed peers are unreachable for the whole window: every
    /// message to them is dropped (they rejoin when the window ends —
    /// unlike [`FaultKind::Disconnect`], which is permanent).
    Partition {
        /// Ranks cut off for the window.
        peers: Vec<usize>,
    },
    /// Each peer independently churns out for the *whole* window with
    /// probability `prob` (one draw per peer per segment, not per
    /// message): a churned peer's messages all drop until the window
    /// ends, modelling devices leaving and rejoining the fleet.
    ChurnBurst {
        /// Per-peer churn probability in `[0, 1]`.
        prob: f64,
    },
}

impl ChaosKind {
    /// Stable label for telemetry, JSON export and test matrices.
    pub fn as_str(&self) -> &'static str {
        match self {
            ChaosKind::LatencySpike { .. } => "latency_spike",
            ChaosKind::DropStorm { .. } => "drop_storm",
            ChaosKind::Partition { .. } => "partition",
            ChaosKind::ChurnBurst { .. } => "churn_burst",
        }
    }
}

/// One chaos window: `kind` is active for rounds
/// `from_round..=to_round` (1-based, inclusive).
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSegment {
    /// First affected round (1-based).
    pub from_round: usize,
    /// Last affected round (inclusive).
    pub to_round: usize,
    /// The fault mode active in the window.
    pub kind: ChaosKind,
}

/// A seeded timeline of chaos segments plus coordinator crash points —
/// the full description of one resilience scenario. Build it fluently,
/// export it with [`ChaosSchedule::to_json`], and hand
/// [`ChaosSchedule::compile`]'s plan to a [`FaultyCommunicator`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChaosSchedule {
    /// Determinism seed for every probabilistic decision.
    pub seed: u64,
    /// The fault timeline, in declaration order. Overlapping windows
    /// are legal; for a `(peer, round)` claimed by several segments the
    /// *last-declared* segment wins (compilation inserts in order).
    pub segments: Vec<ChaosSegment>,
    /// Coordinator crashes to inject alongside the transport faults
    /// (consumed by the durable coordinator, not the [`FaultPlan`]).
    pub crashes: Vec<CrashPoint>,
}

impl ChaosSchedule {
    /// An empty schedule with the given determinism seed.
    pub fn new(seed: u64) -> Self {
        ChaosSchedule {
            seed,
            ..ChaosSchedule::default()
        }
    }

    /// Appends a chaos window for rounds `from..=to` (1-based).
    pub fn segment(mut self, from: usize, to: usize, kind: ChaosKind) -> Self {
        assert!(from >= 1, "rounds are 1-based");
        assert!(from <= to, "empty window {from}..={to}");
        self.segments.push(ChaosSegment {
            from_round: from,
            to_round: to,
            kind,
        });
        self
    }

    /// Appends a coordinator crash point.
    pub fn crash(mut self, crash: CrashPoint) -> Self {
        self.crashes.push(crash);
        self
    }

    /// Crash points for the durable-coordinator side of the scenario.
    pub fn crash_points(&self) -> &[CrashPoint] {
        &self.crashes
    }

    /// Compiles the timeline into a concrete [`FaultPlan`] for a
    /// transport with ranks `0..num_ranks` (rank 0 is the coordinator;
    /// faults target its links to peers `1..num_ranks`). Pure function
    /// of `(self, num_ranks)`: same schedule, same plan.
    pub fn compile(&self, num_ranks: usize) -> FaultPlan {
        let mut plan = FaultPlan::new(self.seed);
        for (si, seg) in self.segments.iter().enumerate() {
            let salt = 0xC4A0 ^ si as u64;
            for peer in 1..num_ranks {
                // ChurnBurst decides once per (peer, segment); the
                // per-message kinds decide per (peer, round).
                let churned = match &seg.kind {
                    ChaosKind::ChurnBurst { prob } => {
                        seeded_unit(self.seed, lane3(peer as u64, salt, 0xB0)) < *prob
                    }
                    _ => false,
                };
                for round in seg.from_round..=seg.to_round {
                    let draw = seeded_unit(self.seed, lane3(peer as u64, round as u64, salt));
                    let fault = match &seg.kind {
                        ChaosKind::LatencySpike { prob, delay_ms } if draw < *prob => {
                            Some(FaultKind::Delay(Duration::from_millis(*delay_ms)))
                        }
                        ChaosKind::DropStorm { prob } if draw < *prob => Some(FaultKind::Drop),
                        ChaosKind::Partition { peers } if peers.contains(&peer) => {
                            Some(FaultKind::Drop)
                        }
                        ChaosKind::ChurnBurst { .. } if churned => Some(FaultKind::Drop),
                        _ => None,
                    };
                    if let Some(kind) = fault {
                        plan = plan.fault_at(peer, round, kind);
                    }
                }
            }
        }
        plan
    }

    /// Emits the schedule onto `telemetry` as round-tagged marks — one
    /// `chaos_segment` mark per `(segment, round)` with the kind as the
    /// detail, plus one `chaos_crash_point` mark per scheduled crash.
    /// With a flight recorder attached these land in the `chaos`
    /// category, so a post-mortem dump's timeline interleaves *scheduled*
    /// chaos with the round-control and recovery events it provoked.
    pub fn emit_timeline(&self, telemetry: &appfl_telemetry::Telemetry) {
        for seg in &self.segments {
            for round in seg.from_round..=seg.to_round {
                telemetry.mark(
                    "chaos_segment",
                    Some(round as u64),
                    None,
                    Some(seg.kind.as_str()),
                );
            }
        }
        for c in &self.crashes {
            telemetry.mark(
                "chaos_crash_point",
                Some(c.round as u64),
                None,
                Some(c.phase.as_str()),
            );
        }
    }

    /// The schedule as a self-contained JSON document (hand-rolled so it
    /// works without a JSON dependency) — the artifact a failing chaos
    /// run exports so the exact scenario can be replayed.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"seed\": {}, \"segments\": [", self.seed));
        for (i, seg) in self.segments.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"from_round\": {}, \"to_round\": {}, \"kind\": \"{}\"",
                seg.from_round,
                seg.to_round,
                seg.kind.as_str()
            ));
            match &seg.kind {
                ChaosKind::LatencySpike { prob, delay_ms } => {
                    out.push_str(&format!(", \"prob\": {prob}, \"delay_ms\": {delay_ms}"));
                }
                ChaosKind::DropStorm { prob } | ChaosKind::ChurnBurst { prob } => {
                    out.push_str(&format!(", \"prob\": {prob}"));
                }
                ChaosKind::Partition { peers } => {
                    let list: Vec<String> = peers.iter().map(usize::to_string).collect();
                    out.push_str(&format!(", \"peers\": [{}]", list.join(", ")));
                }
            }
            out.push('}');
        }
        out.push_str("], \"crashes\": [");
        for (i, c) in self.crashes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"round\": {}, \"phase\": \"{}\"}}",
                c.round,
                c.phase.as_str()
            ));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::CrashPhase;
    use crate::transport::{Communicator, FaultyCommunicator, InProcNetwork};
    use std::time::Duration as StdDuration;

    #[test]
    fn partition_drops_every_windowed_message_and_releases_after() {
        let schedule =
            ChaosSchedule::new(11).segment(2, 3, ChaosKind::Partition { peers: vec![1] });
        let mut eps = InProcNetwork::new(2);
        let b = eps.pop().unwrap();
        let a = FaultyCommunicator::new(eps.pop().unwrap(), schedule.compile(2));
        for round in 1..=4u8 {
            a.send(1, vec![round]).unwrap();
        }
        let mut got = Vec::new();
        while let Ok(m) = b.recv_timeout(0, StdDuration::from_millis(10)) {
            got.push(m[0]);
        }
        assert_eq!(got, vec![1, 4], "rounds 2 and 3 fall in the partition");
        assert_eq!(a.fault_stats().dropped, 2);
    }

    #[test]
    fn compilation_is_a_pure_function_of_the_schedule() {
        let make = || {
            ChaosSchedule::new(7)
                .segment(1, 4, ChaosKind::DropStorm { prob: 0.5 })
                .segment(
                    5,
                    8,
                    ChaosKind::LatencySpike {
                        prob: 0.5,
                        delay_ms: 5,
                    },
                )
                .segment(2, 6, ChaosKind::ChurnBurst { prob: 0.4 })
        };
        let survived = |schedule: &ChaosSchedule| -> Vec<u8> {
            let mut eps = InProcNetwork::new(3);
            let b = eps.remove(1);
            let a = FaultyCommunicator::new(eps.remove(0), schedule.compile(3));
            for round in 1..=8u8 {
                a.send(1, vec![round]).unwrap();
            }
            let mut got = Vec::new();
            while let Ok(m) = b.recv_timeout(0, StdDuration::from_millis(10)) {
                got.push(m[0]);
            }
            got
        };
        let s = make();
        let first = survived(&s);
        assert_eq!(
            first,
            survived(&make()),
            "same schedule must replay identically"
        );
        assert!(
            first.len() < 8,
            "half-probability storms must claim someone"
        );
        let other = ChaosSchedule::new(8)
            .segment(1, 4, ChaosKind::DropStorm { prob: 0.5 })
            .segment(
                5,
                8,
                ChaosKind::LatencySpike {
                    prob: 0.5,
                    delay_ms: 5,
                },
            )
            .segment(2, 6, ChaosKind::ChurnBurst { prob: 0.4 });
        assert_ne!(
            first,
            survived(&other),
            "different seed, different timeline"
        );
    }

    #[test]
    fn churn_decides_once_per_peer_per_segment() {
        // With prob 1.0 every peer churns for the whole window.
        let schedule = ChaosSchedule::new(3).segment(1, 5, ChaosKind::ChurnBurst { prob: 1.0 });
        let plan = schedule.compile(3);
        let mut eps = InProcNetwork::new(3);
        let _b = eps.remove(1);
        let a = FaultyCommunicator::new(eps.remove(0), plan);
        for round in 1..=5u8 {
            a.send(1, vec![round]).unwrap();
            a.send(2, vec![round]).unwrap();
        }
        assert_eq!(a.fault_stats().dropped, 10, "all windowed messages drop");
    }

    #[test]
    fn json_export_describes_the_whole_scenario() {
        let schedule = ChaosSchedule::new(42)
            .segment(
                1,
                2,
                ChaosKind::LatencySpike {
                    prob: 0.3,
                    delay_ms: 20,
                },
            )
            .segment(3, 4, ChaosKind::Partition { peers: vec![1, 3] })
            .crash(CrashPoint {
                round: 2,
                phase: CrashPhase::Aggregate,
            });
        let json = schedule.to_json();
        assert!(json.contains("\"seed\": 42"), "{json}");
        assert!(json.contains("\"kind\": \"latency_spike\""), "{json}");
        assert!(json.contains("\"delay_ms\": 20"), "{json}");
        assert!(json.contains("\"peers\": [1, 3]"), "{json}");
        assert!(json.contains("\"phase\": \"aggregate\""), "{json}");
        // Balanced braces/brackets — cheap shape check without a parser.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    #[should_panic(expected = "empty window")]
    fn inverted_windows_are_rejected() {
        let _ = ChaosSchedule::new(1).segment(3, 2, ChaosKind::DropStorm { prob: 0.1 });
    }
}
