//! gRPC-style framing over an inner transport.
//!
//! The paper measures gRPC to be up to 10× slower than RDMA-enabled MPI and
//! attributes it to (i) protobuf serialisation/deserialisation and (ii)
//! staging copies between device and host buffers (§IV-D). This wrapper
//! reproduces both costs *physically*: every outgoing message is
//! protobuf-framed (HTTP/2 DATA frame header + gRPC 5-byte message prefix)
//! and staged through an extra buffer copy, so real-time benchmarks of the
//! two transports show the same asymmetry the paper reports.

use super::{CommError, Communicator, TrafficSnapshot};

/// Framing constants (HTTP/2 + gRPC wire prefixes).
#[derive(Debug, Clone, Copy)]
pub struct GrpcFraming {
    /// Bytes of HTTP/2 frame header per DATA frame (9 in HTTP/2).
    pub http2_header: usize,
    /// Bytes of gRPC length-prefix per message (5: 1 compressed flag + 4 len).
    pub grpc_prefix: usize,
    /// Maximum DATA frame payload (HTTP/2 default 16 KiB).
    pub max_frame: usize,
}

impl Default for GrpcFraming {
    fn default() -> Self {
        GrpcFraming {
            http2_header: 9,
            grpc_prefix: 5,
            max_frame: 16 * 1024,
        }
    }
}

impl GrpcFraming {
    /// Total bytes on the wire for a `payload_len`-byte message.
    pub fn wire_bytes(&self, payload_len: usize) -> usize {
        let framed = payload_len + self.grpc_prefix;
        let frames = framed.div_ceil(self.max_frame).max(1);
        framed + frames * self.http2_header
    }
}

/// A gRPC-like channel: wraps any [`Communicator`] and applies message
/// framing plus a host-staging copy on both directions.
pub struct GrpcChannel<C: Communicator> {
    inner: C,
    framing: GrpcFraming,
}

impl<C: Communicator> GrpcChannel<C> {
    /// Wraps an inner transport with default framing.
    pub fn new(inner: C) -> Self {
        GrpcChannel {
            inner,
            framing: GrpcFraming::default(),
        }
    }

    /// Wraps with custom framing constants.
    pub fn with_framing(inner: C, framing: GrpcFraming) -> Self {
        GrpcChannel { inner, framing }
    }

    /// The framing in effect.
    pub fn framing(&self) -> GrpcFraming {
        self.framing
    }

    fn encode_frames(&self, payload: &[u8]) -> Vec<u8> {
        // gRPC message prefix: compressed flag (0) + u32 big-endian length.
        let mut message = Vec::with_capacity(payload.len() + self.framing.grpc_prefix);
        message.push(0u8);
        message.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        message.extend_from_slice(payload); // host-staging copy #1

        // Split into HTTP/2 DATA frames: [len:3][type:1][flags:1][stream:4].
        let mut wire = Vec::with_capacity(self.framing.wire_bytes(payload.len()));
        for (i, chunk) in message.chunks(self.framing.max_frame).enumerate() {
            let len = chunk.len() as u32;
            wire.extend_from_slice(&len.to_be_bytes()[1..]); // 24-bit length
            wire.push(0x0); // DATA
            let last = (i + 1) * self.framing.max_frame >= message.len();
            wire.push(if last { 0x1 } else { 0x0 }); // END_STREAM flag
            wire.extend_from_slice(&1u32.to_be_bytes()); // stream id 1
            wire.extend_from_slice(chunk); // host-staging copy #2
        }
        wire
    }

    fn decode_frames(&self, wire: &[u8]) -> Result<Vec<u8>, CommError> {
        let mut message = Vec::new();
        let mut cursor = 0usize;
        while cursor < wire.len() {
            if wire.len() - cursor < self.framing.http2_header {
                return Err(CommError::Frame("truncated HTTP/2 header".into()));
            }
            let len =
                u32::from_be_bytes([0, wire[cursor], wire[cursor + 1], wire[cursor + 2]]) as usize;
            if wire[cursor + 3] != 0x0 {
                return Err(CommError::Frame(format!(
                    "unexpected frame type {}",
                    wire[cursor + 3]
                )));
            }
            cursor += self.framing.http2_header;
            if wire.len() - cursor < len {
                return Err(CommError::Frame("truncated DATA frame".into()));
            }
            message.extend_from_slice(&wire[cursor..cursor + len]);
            cursor += len;
        }
        if message.len() < self.framing.grpc_prefix {
            return Err(CommError::Frame("missing gRPC prefix".into()));
        }
        let declared =
            u32::from_be_bytes([message[1], message[2], message[3], message[4]]) as usize;
        let payload = &message[self.framing.grpc_prefix..];
        if declared != payload.len() {
            return Err(CommError::Frame(format!(
                "gRPC length prefix {declared} != payload {}",
                payload.len()
            )));
        }
        Ok(payload.to_vec()) // host-staging copy #3
    }
}

impl<C: Communicator> Communicator for GrpcChannel<C> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn supports_recv_any(&self) -> bool {
        self.inner.supports_recv_any()
    }

    fn send(&self, to: usize, payload: Vec<u8>) -> Result<(), CommError> {
        let wire = self.encode_frames(&payload);
        self.inner.send(to, wire)
    }

    fn recv(&self, from: usize) -> Result<Vec<u8>, CommError> {
        let wire = self.inner.recv(from)?;
        self.decode_frames(&wire)
    }

    fn recv_any(&self) -> Result<(usize, Vec<u8>), CommError> {
        let (from, wire) = self.inner.recv_any()?;
        Ok((from, self.decode_frames(&wire)?))
    }

    fn recv_timeout(
        &self,
        from: usize,
        timeout: std::time::Duration,
    ) -> Result<Vec<u8>, CommError> {
        let wire = self.inner.recv_timeout(from, timeout)?;
        self.decode_frames(&wire)
    }

    fn recv_any_timeout(
        &self,
        timeout: std::time::Duration,
    ) -> Result<(usize, Vec<u8>), CommError> {
        let (from, wire) = self.inner.recv_any_timeout(timeout)?;
        Ok((from, self.decode_frames(&wire)?))
    }

    fn stats(&self) -> TrafficSnapshot {
        self.inner.stats()
    }

    fn peer_stats(&self, peer: usize) -> Option<TrafficSnapshot> {
        self.inner.peer_stats(peer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::inproc::InProcNetwork;

    fn pair() -> (
        GrpcChannel<crate::transport::InProcEndpoint>,
        GrpcChannel<crate::transport::InProcEndpoint>,
    ) {
        let mut eps = InProcNetwork::new(2);
        let b = GrpcChannel::new(eps.pop().unwrap());
        let a = GrpcChannel::new(eps.pop().unwrap());
        (a, b)
    }

    #[test]
    fn roundtrip_small_message() {
        let (a, b) = pair();
        a.send(1, b"hello grpc".to_vec()).unwrap();
        assert_eq!(b.recv(0).unwrap(), b"hello grpc");
    }

    #[test]
    fn roundtrip_multi_frame_message() {
        let (a, b) = pair();
        let big: Vec<u8> = (0..100_000).map(|i| (i % 251) as u8).collect();
        a.send(1, big.clone()).unwrap();
        assert_eq!(b.recv(0).unwrap(), big);
    }

    #[test]
    fn wire_carries_framing_overhead() {
        let (a, b) = pair();
        let payload = vec![0u8; 40_000];
        a.send(1, payload.clone()).unwrap();
        b.recv(0).unwrap();
        let sent = a.stats().bytes_sent;
        let expected = GrpcFraming::default().wire_bytes(payload.len());
        assert_eq!(sent, expected);
        assert!(sent > payload.len());
        // 40005 bytes → 3 frames → 27 bytes of headers + 5 prefix.
        assert_eq!(sent, 40_000 + 5 + 3 * 9);
    }

    #[test]
    fn empty_message_roundtrips() {
        let (a, b) = pair();
        a.send(1, Vec::new()).unwrap();
        assert_eq!(b.recv(0).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn corrupt_frame_is_rejected() {
        let mut eps = InProcNetwork::new(2);
        let raw_b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let b = GrpcChannel::new(raw_b);
        // Send garbage directly on the raw transport.
        a.send(1, vec![1, 2, 3]).unwrap();
        assert!(matches!(b.recv(0), Err(CommError::Frame(_))));
    }

    #[test]
    fn timeouts_pass_through_framing() {
        use std::time::Duration;
        let (a, b) = pair();
        assert_eq!(
            b.recv_timeout(0, Duration::from_millis(10)),
            Err(CommError::Timeout { peer: Some(0) })
        );
        assert_eq!(
            b.recv_any_timeout(Duration::from_millis(10)),
            Err(CommError::Timeout { peer: None })
        );
        a.send(1, b"late".to_vec()).unwrap();
        assert_eq!(
            b.recv_timeout(0, Duration::from_millis(200)).unwrap(),
            b"late"
        );
    }

    #[test]
    fn gather_works_through_grpc_channels() {
        let eps = InProcNetwork::new(3);
        let mut handles = Vec::new();
        for ep in eps {
            let ch = GrpcChannel::new(ep);
            handles.push(std::thread::spawn(move || {
                let payload = vec![ch.rank() as u8 + 10];
                ch.gather(0, payload)
            }));
        }
        let mut root = None;
        for h in handles {
            if let Some(v) = h.join().unwrap().unwrap() {
                root = Some(v);
            }
        }
        assert_eq!(root.unwrap(), vec![vec![10], vec![11], vec![12]]);
    }
}
