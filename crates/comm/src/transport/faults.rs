//! Deterministic fault injection for any [`Communicator`].
//!
//! Production FL treats client dropout, message loss and payload corruption
//! as the normal case (xaynet's round state machine, pfl-research's
//! simulation harness), yet a naive transport wedges the server the first
//! time a peer misses a round. [`FaultyCommunicator`] wraps a real
//! transport and injects faults from a [`FaultPlan`] — seeded and fully
//! deterministic, so a failing run replays bit-for-bit regardless of thread
//! scheduling: every probabilistic decision is a pure function of
//! `(seed, peer, per-link message index)`.
//!
//! Faults are applied on the **send path** (the wire loses, delays or
//! mangles messages in flight; the receiver just sees the consequences) —
//! except permanent disconnects, which also poison the receive path the
//! way a torn-down TCP connection would.
//!
//! A "round" in a [`FaultPlan`] schedule is the 1-based index of the
//! message on that link. The FL runners exchange exactly one message per
//! link per federation round, so link round == federation round there.

use super::{CommError, Communicator, TrafficSnapshot};
use appfl_telemetry::Telemetry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The message is silently lost in flight.
    Drop,
    /// Delivery is delayed by the given duration.
    Delay(Duration),
    /// One payload bit is flipped.
    BitFlip,
    /// The payload loses its trailing half.
    Truncate,
    /// The link to the peer goes down permanently.
    Disconnect,
}

/// A deterministic, seedable schedule of faults.
///
/// Combines explicit per-peer, per-round entries (`fault_at`) with
/// probabilistic modes (`drop_prob`, `corrupt_prob`, `delay`) whose
/// decisions are derived from the seed and the per-link message counter —
/// never from wall-clock time or a shared RNG — so two runs with the same
/// plan and the same message sequence inject identical faults.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    drop_prob: f64,
    corrupt_prob: f64,
    delay_prob: f64,
    delay: Duration,
    /// `(peer, round) → fault` explicit schedule.
    scheduled: HashMap<(usize, usize), FaultKind>,
    /// `peer → round` after which the link is permanently down
    /// (`0` = down from the start).
    disconnect_after: HashMap<usize, usize>,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given determinism seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Drops each outgoing message independently with probability `p`.
    pub fn drop_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.drop_prob = p;
        self
    }

    /// Corrupts (bit-flip or truncation, chosen deterministically) each
    /// outgoing message independently with probability `p`.
    pub fn corrupt_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.corrupt_prob = p;
        self
    }

    /// Delays each outgoing message by `delay` with probability `p`.
    pub fn delay(mut self, p: f64, delay: Duration) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.delay_prob = p;
        self.delay = delay;
        self
    }

    /// Schedules `kind` for the `round`-th (1-based) message to `peer`.
    pub fn fault_at(mut self, peer: usize, round: usize, kind: FaultKind) -> Self {
        assert!(round >= 1, "rounds are 1-based");
        self.scheduled.insert((peer, round), kind);
        self
    }

    /// Permanently disconnects the link to `peer` after its `round`-th
    /// message (`0` = dead from the start).
    pub fn disconnect_after(mut self, peer: usize, round: usize) -> Self {
        self.disconnect_after.insert(peer, round);
        self
    }

    /// A uniform draw in `[0, 1)` that depends only on the plan seed, the
    /// link, the message index and a salt — deterministic across runs
    /// (the shared splitmix64 primitive from [`crate::policy`]).
    fn draw(&self, peer: usize, round: usize, salt: u64) -> f64 {
        let lane = crate::policy::lane3(peer as u64, round as u64, salt);
        crate::policy::seeded_unit(self.seed, lane)
    }

    /// The fault (if any) for the `round`-th message to `peer`.
    fn fault_for(&self, peer: usize, round: usize) -> Option<FaultKind> {
        if let Some(&kind) = self.scheduled.get(&(peer, round)) {
            return Some(kind);
        }
        if self.drop_prob > 0.0 && self.draw(peer, round, 1) < self.drop_prob {
            return Some(FaultKind::Drop);
        }
        if self.corrupt_prob > 0.0 && self.draw(peer, round, 2) < self.corrupt_prob {
            return Some(if self.draw(peer, round, 3) < 0.5 {
                FaultKind::BitFlip
            } else {
                FaultKind::Truncate
            });
        }
        if self.delay_prob > 0.0 && self.draw(peer, round, 4) < self.delay_prob {
            return Some(FaultKind::Delay(self.delay));
        }
        None
    }
}

/// Counters of injected faults (for assertions and run reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages silently lost.
    pub dropped: usize,
    /// Messages bit-flipped or truncated.
    pub corrupted: usize,
    /// Messages delayed.
    pub delayed: usize,
    /// Sends/recvs refused because the link was down.
    pub disconnects: usize,
}

#[derive(Debug, Default)]
struct FaultState {
    /// Per-peer count of messages sent on this endpoint's link.
    sent: HashMap<usize, usize>,
    /// Peers whose link has gone down permanently.
    dead: HashMap<usize, bool>,
    stats: FaultStats,
}

/// A [`Communicator`] decorator injecting faults from a [`FaultPlan`].
///
/// Collectives (`gather`, `broadcast`, `barrier`) route through the
/// decorated `send`/`recv`, so they experience the same faults.
pub struct FaultyCommunicator<C: Communicator> {
    inner: C,
    plan: FaultPlan,
    state: Mutex<FaultState>,
    retries_hint: AtomicUsize,
    telemetry: Telemetry,
}

impl<C: Communicator> FaultyCommunicator<C> {
    /// Wraps a transport with a fault plan.
    pub fn new(inner: C, plan: FaultPlan) -> Self {
        FaultyCommunicator {
            inner,
            plan,
            state: Mutex::new(FaultState::default()),
            retries_hint: AtomicUsize::new(0),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Emits a `fault` mark (detail = fault kind, peer = destination,
    /// round = link message index) for every injected fault.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Counters of faults injected so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.state.lock().expect("fault state poisoned").stats
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    fn link_dead(&self, peer: usize) -> bool {
        let mut st = self.state.lock().expect("fault state poisoned");
        if st.dead.get(&peer).copied().unwrap_or(false) {
            st.stats.disconnects += 1;
            return true;
        }
        if let Some(&after) = self.plan.disconnect_after.get(&peer) {
            let sent = st.sent.get(&peer).copied().unwrap_or(0);
            if sent >= after {
                st.dead.insert(peer, true);
                st.stats.disconnects += 1;
                return true;
            }
        }
        false
    }
}

impl<C: Communicator> Communicator for FaultyCommunicator<C> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn send(&self, to: usize, mut payload: Vec<u8>) -> Result<(), CommError> {
        if self.link_dead(to) {
            return Err(CommError::Disconnected { peer: to });
        }
        let (round, fault) = {
            let mut st = self.state.lock().expect("fault state poisoned");
            let counter = st.sent.entry(to).or_insert(0);
            *counter += 1;
            let round = *counter;
            let fault = self.plan.fault_for(to, round);
            match fault {
                Some(FaultKind::Drop) => st.stats.dropped += 1,
                Some(FaultKind::BitFlip) | Some(FaultKind::Truncate) => st.stats.corrupted += 1,
                Some(FaultKind::Delay(_)) => st.stats.delayed += 1,
                Some(FaultKind::Disconnect) => {
                    st.dead.insert(to, true);
                    st.stats.disconnects += 1;
                }
                None => {}
            }
            (round, fault)
        };
        if let Some(kind) = fault {
            let detail = match kind {
                FaultKind::Drop => "drop",
                FaultKind::Delay(_) => "delay",
                FaultKind::BitFlip => "bitflip",
                FaultKind::Truncate => "truncate",
                FaultKind::Disconnect => "disconnect",
            };
            self.telemetry
                .mark("fault", Some(round as u64), Some(to as u64), Some(detail));
        }
        match fault {
            None => self.inner.send(to, payload),
            Some(FaultKind::Drop) => Ok(()), // lost in flight; sender can't tell
            Some(FaultKind::Disconnect) => Err(CommError::Disconnected { peer: to }),
            Some(FaultKind::Delay(d)) => {
                std::thread::sleep(d);
                self.inner.send(to, payload)
            }
            Some(FaultKind::BitFlip) => {
                if !payload.is_empty() {
                    let bit = (self.plan.draw(to, round, 5) * (payload.len() * 8) as f64) as usize;
                    let bit = bit.min(payload.len() * 8 - 1);
                    payload[bit / 8] ^= 1 << (bit % 8);
                }
                self.inner.send(to, payload)
            }
            Some(FaultKind::Truncate) => {
                payload.truncate(payload.len() / 2);
                self.inner.send(to, payload)
            }
        }
    }

    fn recv(&self, from: usize) -> Result<Vec<u8>, CommError> {
        if self.link_dead(from) {
            return Err(CommError::Disconnected { peer: from });
        }
        self.inner.recv(from)
    }

    fn supports_recv_any(&self) -> bool {
        self.inner.supports_recv_any()
    }

    fn recv_any(&self) -> Result<(usize, Vec<u8>), CommError> {
        self.inner.recv_any()
    }

    fn recv_timeout(&self, from: usize, timeout: Duration) -> Result<Vec<u8>, CommError> {
        if self.link_dead(from) {
            return Err(CommError::Disconnected { peer: from });
        }
        self.inner.recv_timeout(from, timeout)
    }

    fn recv_any_timeout(&self, timeout: Duration) -> Result<(usize, Vec<u8>), CommError> {
        self.inner.recv_any_timeout(timeout)
    }

    fn stats(&self) -> TrafficSnapshot {
        self.inner.stats()
    }

    fn peer_stats(&self, peer: usize) -> Option<TrafficSnapshot> {
        self.inner.peer_stats(peer)
    }
}

impl<C: Communicator> FaultyCommunicator<C> {
    /// Scratch counter a retry loop may bump to expose its attempt count to
    /// the party that owns the endpoint (used by run reports).
    pub fn note_retry(&self) {
        self.retries_hint.fetch_add(1, Ordering::Relaxed);
    }

    /// Retries noted via [`FaultyCommunicator::note_retry`].
    pub fn noted_retries(&self) -> usize {
        self.retries_hint.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::InProcNetwork;

    fn faulty_pair(
        plan: FaultPlan,
    ) -> (
        FaultyCommunicator<crate::transport::InProcEndpoint>,
        crate::transport::InProcEndpoint,
    ) {
        let mut eps = InProcNetwork::new(2);
        let b = eps.pop().unwrap();
        let a = FaultyCommunicator::new(eps.pop().unwrap(), plan);
        (a, b)
    }

    #[test]
    fn no_faults_is_transparent() {
        let (a, b) = faulty_pair(FaultPlan::new(1));
        a.send(1, vec![1, 2, 3]).unwrap();
        assert_eq!(b.recv(0).unwrap(), vec![1, 2, 3]);
        assert_eq!(a.fault_stats(), FaultStats::default());
    }

    #[test]
    fn scheduled_drop_loses_exactly_that_message() {
        let plan = FaultPlan::new(2).fault_at(1, 2, FaultKind::Drop);
        let (a, b) = faulty_pair(plan);
        a.send(1, vec![1]).unwrap();
        a.send(1, vec![2]).unwrap(); // dropped
        a.send(1, vec![3]).unwrap();
        assert_eq!(b.recv(0).unwrap(), vec![1]);
        assert_eq!(b.recv(0).unwrap(), vec![3]);
        assert_eq!(a.fault_stats().dropped, 1);
    }

    #[test]
    fn scheduled_bitflip_corrupts_payload() {
        let plan = FaultPlan::new(3).fault_at(1, 1, FaultKind::BitFlip);
        let (a, b) = faulty_pair(plan);
        a.send(1, vec![0u8; 8]).unwrap();
        let got = b.recv(0).unwrap();
        assert_eq!(got.len(), 8);
        assert_ne!(got, vec![0u8; 8], "exactly one bit must differ");
        let ones: u32 = got.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1);
        assert_eq!(a.fault_stats().corrupted, 1);
    }

    #[test]
    fn scheduled_truncate_halves_payload() {
        let plan = FaultPlan::new(4).fault_at(1, 1, FaultKind::Truncate);
        let (a, b) = faulty_pair(plan);
        a.send(1, vec![9u8; 10]).unwrap();
        assert_eq!(b.recv(0).unwrap(), vec![9u8; 5]);
    }

    #[test]
    fn disconnect_poisons_the_link_permanently() {
        let plan = FaultPlan::new(5).fault_at(1, 2, FaultKind::Disconnect);
        let (a, b) = faulty_pair(plan);
        a.send(1, vec![1]).unwrap();
        assert!(matches!(
            a.send(1, vec![2]),
            Err(CommError::Disconnected { peer: 1 })
        ));
        // Every later op on the link fails too.
        assert!(a.send(1, vec![3]).is_err());
        assert!(a.recv(1).is_err());
        assert_eq!(b.recv(0).unwrap(), vec![1]);
    }

    #[test]
    fn disconnect_after_zero_means_dead_from_the_start() {
        let plan = FaultPlan::new(6).disconnect_after(1, 0);
        let (a, _b) = faulty_pair(plan);
        assert!(matches!(
            a.send(1, vec![1]),
            Err(CommError::Disconnected { peer: 1 })
        ));
        assert!(a.recv_timeout(1, Duration::from_millis(5)).is_err());
        assert!(a.fault_stats().disconnects >= 1);
    }

    #[test]
    fn probabilistic_drops_are_deterministic_across_runs() {
        let delivered = |seed: u64| -> Vec<u8> {
            let (a, b) = faulty_pair(FaultPlan::new(seed).drop_prob(0.5));
            for i in 0..20u8 {
                a.send(1, vec![i]).unwrap();
            }
            let mut got = Vec::new();
            while let Ok(m) = b.recv_timeout(0, Duration::from_millis(10)) {
                got.push(m[0]);
            }
            got
        };
        let first = delivered(42);
        assert_eq!(first, delivered(42), "same seed must replay identically");
        assert!(first.len() < 20, "some messages must drop at p=0.5");
        assert!(!first.is_empty(), "some messages must survive at p=0.5");
        assert_ne!(first, delivered(43), "different seed, different schedule");
    }

    #[test]
    fn corrupted_messages_fail_grpc_decoding_cleanly() {
        use crate::transport::GrpcChannel;
        let mut eps = InProcNetwork::new(2);
        let b = GrpcChannel::new(eps.pop().unwrap());
        let a = GrpcChannel::new(FaultyCommunicator::new(
            eps.pop().unwrap(),
            FaultPlan::new(7).fault_at(1, 1, FaultKind::Truncate),
        ));
        a.send(1, vec![1u8; 64]).unwrap();
        assert!(matches!(b.recv(0), Err(CommError::Frame(_))));
    }

    #[test]
    fn injected_faults_emit_marks_with_kind_and_peer() {
        use appfl_telemetry::MemorySink;
        use std::sync::Arc;
        let sink = Arc::new(MemorySink::new());
        let plan =
            FaultPlan::new(9)
                .fault_at(1, 1, FaultKind::Drop)
                .fault_at(1, 2, FaultKind::BitFlip);
        let mut eps = InProcNetwork::new(2);
        let _b = eps.pop().unwrap();
        let a = FaultyCommunicator::new(eps.pop().unwrap(), plan)
            .with_telemetry(Telemetry::new(sink.clone()));
        a.send(1, vec![1]).unwrap();
        a.send(1, vec![2, 3]).unwrap();
        a.send(1, vec![4]).unwrap(); // clean: no mark
        let marks = sink.events();
        assert_eq!(marks.len(), 2);
        assert_eq!(marks[0].detail.as_deref(), Some("drop"));
        assert_eq!(marks[0].peer, Some(1));
        assert_eq!(marks[0].round, Some(1));
        assert_eq!(marks[1].detail.as_deref(), Some("bitflip"));
    }

    #[test]
    fn wrapper_delegates_capability_probe() {
        let mut eps = InProcNetwork::new(2);
        let a = FaultyCommunicator::new(eps.remove(0), FaultPlan::new(1));
        assert!(
            a.supports_recv_any(),
            "inproc supports it; wrapper must too"
        );
        assert!(a.peer_stats(1).is_some());
    }

    #[test]
    fn gather_survives_fault_free_plan() {
        let eps = InProcNetwork::new(3);
        let mut handles = Vec::new();
        for ep in eps {
            let ch = FaultyCommunicator::new(ep, FaultPlan::new(8));
            handles.push(std::thread::spawn(move || {
                let payload = vec![ch.rank() as u8];
                ch.gather(0, payload)
            }));
        }
        let mut root = None;
        for h in handles {
            if let Some(v) = h.join().unwrap().unwrap() {
                root = Some(v);
            }
        }
        assert_eq!(root.unwrap(), vec![vec![0], vec![1], vec![2]]);
    }
}
