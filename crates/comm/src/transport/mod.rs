//! Message transports with MPI-style collectives.

pub mod chaos;
pub mod faults;
pub mod grpc;
pub mod inproc;

pub use chaos::{ChaosKind, ChaosSchedule, ChaosSegment};
pub use faults::{FaultKind, FaultPlan, FaultStats, FaultyCommunicator};
pub use grpc::{GrpcChannel, GrpcFraming};
pub use inproc::{InProcEndpoint, InProcNetwork};

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Transport errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The peer's endpoint has been dropped.
    Disconnected {
        /// The peer rank involved.
        peer: usize,
    },
    /// A rank argument is outside `0..size`.
    InvalidRank {
        /// The offending rank.
        rank: usize,
        /// Communicator size.
        size: usize,
    },
    /// A framed message failed to decode.
    Frame(String),
    /// A deadline elapsed before a message arrived.
    Timeout {
        /// The peer waited on (`None` for `recv_any_timeout`).
        peer: Option<usize>,
    },
    /// The transport does not implement the named operation.
    Unsupported(&'static str),
}

impl CommError {
    /// Whether retrying the operation can plausibly succeed. Timeouts and
    /// frame corruption are transient (the next attempt may see a clean
    /// message); a dropped endpoint, a bad rank, or a missing capability
    /// will fail identically forever.
    pub fn is_retryable(&self) -> bool {
        matches!(self, CommError::Timeout { .. } | CommError::Frame(_))
    }
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Disconnected { peer } => write!(f, "peer {peer} disconnected"),
            CommError::InvalidRank { rank, size } => {
                write!(f, "rank {rank} out of range for size {size}")
            }
            CommError::Frame(msg) => write!(f, "frame error: {msg}"),
            CommError::Timeout { peer: Some(p) } => write!(f, "timed out waiting for peer {p}"),
            CommError::Timeout { peer: None } => write!(f, "timed out waiting for any peer"),
            CommError::Unsupported(op) => write!(f, "transport does not support {op}"),
        }
    }
}

impl std::error::Error for CommError {}

/// Point-to-point and collective communication in the image of an MPI
/// communicator (§II-A.3). One endpoint per participant; rank 0 is the
/// server by convention in the FL runners.
pub trait Communicator: Send {
    /// This endpoint's rank.
    fn rank(&self) -> usize;

    /// Number of participants.
    fn size(&self) -> usize;

    /// Sends `payload` to `to` (non-blocking enqueue).
    fn send(&self, to: usize, payload: Vec<u8>) -> Result<(), CommError>;

    /// Blocks until a message from `from` arrives.
    fn recv(&self, from: usize) -> Result<Vec<u8>, CommError>;

    /// Whether this transport can multiplex receives across peers
    /// ([`Communicator::recv_any`] / [`Communicator::recv_any_timeout`]).
    ///
    /// This is the documented capability probe: runner selection should
    /// branch on it up front instead of calling `recv_any` and matching
    /// on [`CommError::Unsupported`] by trial and error. The default is
    /// `false`, matching the default `recv_any` implementation; any
    /// transport that overrides `recv_any` must override this too.
    /// Wrappers (fault injectors, codecs) must delegate to their inner
    /// transport so the probe survives composition.
    fn supports_recv_any(&self) -> bool {
        false
    }

    /// Blocks until a message from *any* peer arrives, returning
    /// `(sender_rank, payload)`. Required by request/response services
    /// (rank 0 serving many clients); transports that cannot multiplex
    /// report [`CommError::Unsupported`]. Probe
    /// [`Communicator::supports_recv_any`] before relying on it.
    fn recv_any(&self) -> Result<(usize, Vec<u8>), CommError> {
        Err(CommError::Unsupported("recv_any"))
    }

    /// Like [`Communicator::recv`] but gives up with
    /// [`CommError::Timeout`] once `timeout` elapses without a message
    /// from `from`. Transports without deadline support report
    /// [`CommError::Unsupported`] rather than silently blocking forever.
    fn recv_timeout(&self, from: usize, timeout: Duration) -> Result<Vec<u8>, CommError> {
        let _ = (from, timeout);
        Err(CommError::Unsupported("recv_timeout"))
    }

    /// Like [`Communicator::recv_any`] but gives up with
    /// [`CommError::Timeout`] once `timeout` elapses without any message.
    fn recv_any_timeout(&self, timeout: Duration) -> Result<(usize, Vec<u8>), CommError> {
        let _ = timeout;
        Err(CommError::Unsupported("recv_any_timeout"))
    }

    /// `MPI.gather()`: every rank contributes `payload`; the root receives
    /// all contributions ordered by rank (`Some(vec)`), other ranks get
    /// `None`.
    fn gather(&self, root: usize, payload: Vec<u8>) -> Result<Option<Vec<Vec<u8>>>, CommError> {
        let size = self.size();
        if root >= size {
            return Err(CommError::InvalidRank { rank: root, size });
        }
        if self.rank() == root {
            let mut out = Vec::with_capacity(size);
            for r in 0..size {
                if r == root {
                    out.push(payload.clone());
                } else {
                    out.push(self.recv(r)?);
                }
            }
            Ok(Some(out))
        } else {
            self.send(root, payload)?;
            Ok(None)
        }
    }

    /// `MPI.bcast()`: the root's payload is delivered to every rank.
    fn broadcast(&self, root: usize, payload: Vec<u8>) -> Result<Vec<u8>, CommError> {
        let size = self.size();
        if root >= size {
            return Err(CommError::InvalidRank { rank: root, size });
        }
        if self.rank() == root {
            for r in 0..size {
                if r != root {
                    self.send(r, payload.clone())?;
                }
            }
            Ok(payload)
        } else {
            self.recv(root)
        }
    }

    /// Synchronises all ranks (gather + broadcast of empty messages).
    fn barrier(&self) -> Result<(), CommError> {
        self.gather(0, Vec::new())?;
        self.broadcast(0, Vec::new())?;
        Ok(())
    }

    /// Cumulative traffic counters for this endpoint.
    fn stats(&self) -> TrafficSnapshot;

    /// Traffic counters split by remote peer, when the transport tracks
    /// them: `peer_stats(p)` covers only messages exchanged with rank
    /// `p`. Returns `None` for an invalid rank or a transport that only
    /// keeps aggregate counters (the default).
    fn peer_stats(&self, peer: usize) -> Option<TrafficSnapshot> {
        let _ = peer;
        None
    }
}

/// Atomic traffic counters shared by transports.
#[derive(Debug, Default)]
pub struct TrafficStats {
    msgs_sent: AtomicUsize,
    bytes_sent: AtomicUsize,
    msgs_recv: AtomicUsize,
    bytes_recv: AtomicUsize,
}

impl TrafficStats {
    /// Records an outgoing message.
    pub fn record_send(&self, bytes: usize) {
        self.msgs_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records an incoming message.
    pub fn record_recv(&self, bytes: usize) {
        self.msgs_recv.fetch_add(1, Ordering::Relaxed);
        self.bytes_recv.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Current values.
    pub fn snapshot(&self) -> TrafficSnapshot {
        TrafficSnapshot {
            msgs_sent: self.msgs_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            msgs_recv: self.msgs_recv.load(Ordering::Relaxed),
            bytes_recv: self.bytes_recv.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of traffic counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrafficSnapshot {
    /// Messages sent.
    pub msgs_sent: usize,
    /// Payload bytes sent.
    pub bytes_sent: usize,
    /// Messages received.
    pub msgs_recv: usize,
    /// Payload bytes received.
    pub bytes_recv: usize,
}

impl TrafficSnapshot {
    /// Difference against an earlier snapshot (per-round accounting).
    pub fn since(&self, earlier: &TrafficSnapshot) -> TrafficSnapshot {
        TrafficSnapshot {
            msgs_sent: self.msgs_sent - earlier.msgs_sent,
            bytes_sent: self.bytes_sent - earlier.bytes_sent,
            msgs_recv: self.msgs_recv - earlier.msgs_recv,
            bytes_recv: self.bytes_recv - earlier.bytes_recv,
        }
    }
}
