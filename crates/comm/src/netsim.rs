//! Virtual-clock network cost models for the timing studies of §IV-C/D.
//!
//! No InfiniBand fabric or 34-node Summit allocation exists in this
//! reproduction, so communication *time* (as opposed to communication
//! *semantics*, which run for real over [`crate::transport`]) comes from a
//! deterministic, seeded cost model. Constants are calibrated so the
//! reproduced curves match the paper's reported shapes:
//!
//! * MPI gather: per-process payload shrinks 40× from 5 → 203 processes
//!   while gather time improves only ~8× (§IV-C) — captured by a
//!   per-participant software overhead that grows with process count plus a
//!   bandwidth term on the per-process payload.
//! * gRPC: ~10× slower cumulative communication than MPI over 49 rounds
//!   (Fig. 4a), with round-to-round jitter spanning a ~30× range per client
//!   (Fig. 4b) — captured by serialisation + staging-copy costs per byte and
//!   a heavy-tailed lognormal traffic multiplier.

use rand::Rng;
use rand_distr::{Distribution, LogNormal};

/// RDMA-enabled MPI gather model (InfiniBand-class fabric, driven from
/// Python/mpi4py with GPU-resident tensors, as in the paper's setup).
#[derive(Debug, Clone, Copy)]
pub struct MpiGatherModel {
    /// Software/latency overhead charged per participating process (s).
    pub per_process_overhead: f64,
    /// **Effective** end-to-end gather throughput in bytes/second. This is
    /// deliberately far below raw InfiniBand line rate: it reflects the
    /// measured throughput of `MPI.gather()` on large GPU tensors through
    /// the mpi4py layer (buffer preparation, progress engine, per-round
    /// Python overhead), which is what the paper's timings capture.
    pub bandwidth: f64,
    /// Fixed per-collective latency (s).
    pub base_latency: f64,
}

impl Default for MpiGatherModel {
    fn default() -> Self {
        // Calibration targets from §IV-C with 203 clients × ~2.4 MB:
        // per-process payload shrinks 41× going from 5 → 203 processes while
        // gather time improves only ≈8×, and the gather share of the round
        // (Fig. 3b) grows from single digits to tens of percent against a
        // 6.96 s/client V100 compute time. The α·P term (per-rank handshake
        // at the root) is what caps the speedup.
        MpiGatherModel {
            per_process_overhead: 1.22e-2,
            bandwidth: 4.0e6,
            base_latency: 5.0e-6,
        }
    }
}

impl MpiGatherModel {
    /// Time for `MPI.gather()` of `per_process_bytes` from each of
    /// `processes` ranks to the root: a fixed collective latency, a per-rank
    /// handshake that grows with the process count, and a bandwidth term on
    /// the per-process payload (RDMA drains ranks concurrently over the
    /// fabric, so the payload term scales with the *per-process* bytes).
    pub fn gather_time(&self, processes: usize, per_process_bytes: usize) -> f64 {
        assert!(processes > 0, "gather needs at least one process");
        self.base_latency
            + self.per_process_overhead * processes as f64
            + per_process_bytes as f64 / self.bandwidth
    }
}

/// gRPC/TCP cost model with protobuf and staging-copy charges.
#[derive(Debug, Clone)]
pub struct GrpcLinkModel {
    /// Connection/RPC overhead per message (s).
    pub per_message_overhead: f64,
    /// **Effective** TCP stream throughput in bytes/second for one upload
    /// (no RDMA; includes HTTP/2 flow control and the Python gRPC stack,
    /// which is what the paper's timings capture).
    pub bandwidth: f64,
    /// Protobuf serialisation + deserialisation cost per byte (s/B).
    pub serde_per_byte: f64,
    /// Device→host→device staging copies per byte (s/B); the paper names
    /// these copies as a main cause of gRPC's slowdown.
    pub copy_per_byte: f64,
    /// σ of the lognormal traffic multiplier (0 disables jitter).
    pub jitter_sigma: f64,
}

impl Default for GrpcLinkModel {
    fn default() -> Self {
        // Calibration: at 203 clients × 2.4 MB with 4 concurrent server
        // streams, cumulative gRPC time over 49 rounds lands ≈10× above the
        // MPI gather of the same payload (Fig. 4a's headline), with the
        // serde + copy terms supplying the per-byte penalty the paper blames.
        GrpcLinkModel {
            per_message_overhead: 1.0e-3,
            bandwidth: 1.0e7,
            serde_per_byte: 1.0e-7,
            copy_per_byte: 2.9e-8,
            jitter_sigma: 0.85,
        }
    }
}

impl GrpcLinkModel {
    /// Deterministic (jitter-free) time to move one `bytes`-sized message.
    pub fn base_message_time(&self, bytes: usize) -> f64 {
        self.per_message_overhead
            + bytes as f64 * (1.0 / self.bandwidth + self.serde_per_byte + self.copy_per_byte)
    }

    /// One message transfer with traffic jitter: base time multiplied by a
    /// lognormal(0, σ) draw, whose heavy tail produces the ~30× spread
    /// between a client's fastest and slowest rounds seen in Fig. 4b.
    pub fn message_time(&self, bytes: usize, rng: &mut impl Rng) -> f64 {
        let base = self.base_message_time(bytes);
        if self.jitter_sigma <= 0.0 {
            return base;
        }
        let jitter = LogNormal::new(0.0, self.jitter_sigma)
            .expect("valid lognormal")
            .sample(rng);
        base * jitter
    }
}

/// One federated round's communication timing under both protocols.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundCommTimes {
    /// Round index (0-based).
    pub round: usize,
    /// MPI gather time for this round (s).
    pub mpi: f64,
    /// gRPC time for this round (s) — server-side wall time to collect all
    /// client uploads over `concurrency` parallel streams.
    pub grpc: f64,
}

/// Simulates per-round upload communication for `clients` clients each
/// sending `bytes_per_client`, over `rounds` rounds, under both protocols.
///
/// `processes` is the MPI world size (clients are packed onto processes, so
/// each process contributes `clients/processes × bytes_per_client`).
/// `concurrency` is the number of simultaneous gRPC streams the server
/// serves (34 nodes × 6 clients in the paper's setup still funnel into one
/// server process).
pub struct CommSimulation {
    /// MPI cost model.
    pub mpi: MpiGatherModel,
    /// gRPC cost model.
    pub grpc: GrpcLinkModel,
    /// Number of FL clients.
    pub clients: usize,
    /// MPI world size (processes).
    pub processes: usize,
    /// Parallel gRPC streams at the server.
    pub concurrency: usize,
    /// Upload size per client per round (bytes).
    pub bytes_per_client: usize,
}

impl CommSimulation {
    /// Per-round times for `rounds` rounds; gRPC per-client samples for the
    /// given round/client are reproducible from the seed.
    pub fn run(&self, rounds: usize, rng: &mut impl Rng) -> Vec<RoundCommTimes> {
        let per_proc = self.per_process_bytes();
        (0..rounds)
            .map(|round| {
                let mpi = self.mpi.gather_time(self.processes, per_proc);
                let grpc = self.grpc_round_time(rng);
                RoundCommTimes { round, mpi, grpc }
            })
            .collect()
    }

    /// Bytes each MPI process contributes to the gather.
    pub fn per_process_bytes(&self) -> usize {
        let clients_per_proc = self.clients.div_ceil(self.processes.max(1));
        clients_per_proc * self.bytes_per_client
    }

    /// Per-client gRPC upload times for one round (Fig. 4b's box-plot data).
    pub fn grpc_client_times(&self, rng: &mut impl Rng) -> Vec<f64> {
        (0..self.clients)
            .map(|_| self.grpc.message_time(self.bytes_per_client, rng))
            .collect()
    }

    /// Server wall time to drain one round of gRPC uploads: greedy
    /// list-scheduling of per-client transfer times onto `concurrency`
    /// parallel streams.
    pub fn grpc_round_time(&self, rng: &mut impl Rng) -> f64 {
        let times = self.grpc_client_times(rng);
        let lanes = self.concurrency.max(1);
        let mut lane_busy = vec![0.0f64; lanes];
        for t in times {
            // Next upload goes to the least-busy stream.
            let (idx, _) = lane_busy
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .expect("lanes non-empty");
            lane_busy[idx] += t;
        }
        lane_busy.iter().copied().fold(0.0, f64::max)
    }
}

/// Five-number summary for box plots (Fig. 4b).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiveNumber {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

/// Computes the five-number summary of a sample (linear interpolation).
pub fn five_number_summary(values: &[f64]) -> Option<FiveNumber> {
    if values.is_empty() {
        return None;
    }
    let mut v = values.to_vec();
    v.sort_by(f64::total_cmp);
    let q = |p: f64| -> f64 {
        let idx = p * (v.len() - 1) as f64;
        let lo = idx.floor() as usize;
        let hi = idx.ceil() as usize;
        if lo == hi {
            v[lo]
        } else {
            v[lo] + (idx - lo as f64) * (v[hi] - v[lo])
        }
    };
    Some(FiveNumber {
        min: v[0],
        q1: q(0.25),
        median: q(0.5),
        q3: q(0.75),
        max: v[v.len() - 1],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sim(processes: usize) -> CommSimulation {
        CommSimulation {
            mpi: MpiGatherModel::default(),
            grpc: GrpcLinkModel::default(),
            clients: 203,
            processes,
            concurrency: 4,
            bytes_per_client: 2_400_000, // ~600k f32 params
        }
    }

    #[test]
    fn mpi_gather_scales_sublinearly_like_the_paper() {
        // Per-process data shrinks 40.6× from 5 → 203 processes but gather
        // time must improve by only roughly 8× (§IV-C reports exactly this).
        let s5 = sim(5);
        let s203 = sim(203);
        let t5 = s5.mpi.gather_time(5, s5.per_process_bytes());
        let t203 = s203.mpi.gather_time(203, s203.per_process_bytes());
        let speedup = t5 / t203;
        assert!(
            (4.0..16.0).contains(&speedup),
            "gather speedup {speedup}, expected near 8×"
        );
        let data_ratio = s5.per_process_bytes() as f64 / s203.per_process_bytes() as f64;
        assert!(data_ratio > 35.0, "data ratio {data_ratio}");
        assert!(
            speedup < data_ratio / 2.0,
            "comm must scale worse than data"
        );
    }

    #[test]
    fn grpc_is_roughly_ten_times_slower_than_mpi() {
        let s = sim(34);
        let mut rng = StdRng::seed_from_u64(7);
        let rounds = s.run(49, &mut rng);
        let mpi_total: f64 = rounds.iter().map(|r| r.mpi).sum();
        let grpc_total: f64 = rounds.iter().map(|r| r.grpc).sum();
        let ratio = grpc_total / mpi_total;
        assert!(
            (4.0..30.0).contains(&ratio),
            "gRPC/MPI cumulative ratio {ratio}, paper reports up to ~10×"
        );
    }

    #[test]
    fn grpc_jitter_spans_a_wide_range_per_client() {
        // Fig. 4b: one client's comm time varies by ~30× across 49 rounds.
        let s = sim(34);
        let mut rng = StdRng::seed_from_u64(3);
        let mut per_round: Vec<f64> = Vec::new();
        for _ in 0..49 {
            per_round.push(s.grpc.message_time(s.bytes_per_client, &mut rng));
        }
        let max = per_round.iter().copied().fold(0.0f64, f64::max);
        let min = per_round.iter().copied().fold(f64::INFINITY, f64::min);
        let spread = max / min;
        assert!(spread > 5.0, "spread {spread} too small for Fig 4b");
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let s = sim(10);
        let a = s.run(5, &mut StdRng::seed_from_u64(1));
        let b = s.run(5, &mut StdRng::seed_from_u64(1));
        assert_eq!(a, b);
    }

    #[test]
    fn jitter_free_grpc_is_deterministic_base_time() {
        let g = GrpcLinkModel {
            jitter_sigma: 0.0,
            ..GrpcLinkModel::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(g.message_time(1000, &mut rng), g.base_message_time(1000));
    }

    #[test]
    fn concurrency_reduces_round_time() {
        let mut s = sim(34);
        let t8 = s.grpc_round_time(&mut StdRng::seed_from_u64(5));
        s.concurrency = 1;
        let t1 = s.grpc_round_time(&mut StdRng::seed_from_u64(5));
        assert!(t1 > t8 * 2.0, "serial {t1} vs 8-way {t8}");
    }

    #[test]
    fn five_number_summary_on_known_data() {
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let f = five_number_summary(&v).unwrap();
        assert_eq!(f.min, 1.0);
        assert_eq!(f.q1, 2.0);
        assert_eq!(f.median, 3.0);
        assert_eq!(f.q3, 4.0);
        assert_eq!(f.max, 5.0);
        assert!(five_number_summary(&[]).is_none());
    }
}
