//! Shared fault/retry policy vocabulary.
//!
//! Every resilience layer in the workspace needs the same two things: a
//! description of *when to keep trying* ([`RetryPolicy`]) and a
//! description of *where to give up on purpose* ([`CrashPoint`], the
//! coordinator-side fault injection the crash-recovery e2e drives). They
//! grew up in different crates with near-identical builder idioms and
//! three private copies of the same splitmix64 jitter helper; this module
//! is the single boundary both live behind now. The deterministic-draw
//! helpers ([`splitmix64`], [`seeded_unit`]) are public so fault plans,
//! retry jitter, poisoned-client adversaries and the virtual-clock
//! simulator all replay bit-identically from the same primitive.
//!
//! Everything here is a *plan*, not a mechanism: `RetryPolicy` says how a
//! transport call backs off, `CrashPoint` says which durable commit kills
//! the coordinator, and neither owns a thread or a socket.

use crate::transport::CommError;
use appfl_telemetry::{Phase, Telemetry};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Weyl-sequence increment splitmix64 seeds advance by.
pub const SPLITMIX64_GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
/// First multiplier of the splitmix64 finalizer.
pub const SPLITMIX64_MIX1: u64 = 0xBF58_476D_1CE4_E5B9;
/// Second multiplier of the splitmix64 finalizer.
pub const SPLITMIX64_MIX2: u64 = 0x94D0_49BB_1331_11EB;

/// The splitmix64 finalizer: a cheap, high-quality bijective mix.
///
/// This is the one deterministic-jitter primitive in the workspace —
/// retry backoff, fault-plan draws, poisoned-client triggers and the
/// simulator's per-client traits all derive from it, so a seed replays
/// the same decisions everywhere regardless of thread scheduling.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(SPLITMIX64_MIX1);
    x = (x ^ (x >> 27)).wrapping_mul(SPLITMIX64_MIX2);
    x ^ (x >> 31)
}

/// Maps a mixed 64-bit word onto `[0, 1)` using its top 53 bits.
#[inline]
pub fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// A uniform draw in `[0, 1)` from `(seed, lane)` — a pure function, so
/// the same pair always yields the same value. Compose multi-part lanes
/// with [`lane2`]/[`lane3`] to keep distinct decision streams decorrelated.
#[inline]
pub fn seeded_unit(seed: u64, lane: u64) -> f64 {
    unit_f64(splitmix64(
        seed.wrapping_mul(SPLITMIX64_GOLDEN).wrapping_add(lane),
    ))
}

/// Folds two indices into one decorrelated lane.
#[inline]
pub fn lane2(a: u64, b: u64) -> u64 {
    a.wrapping_mul(SPLITMIX64_MIX1)
        .wrapping_add(b.wrapping_mul(SPLITMIX64_MIX2))
}

/// Folds three indices into one decorrelated lane.
#[inline]
pub fn lane3(a: u64, b: u64, c: u64) -> u64 {
    lane2(a, b).wrapping_add(c)
}

/// Bounded exponential backoff with deterministic jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (`1` = no retries).
    pub max_attempts: u32,
    /// Sleep before the first retry.
    pub base_backoff: Duration,
    /// Growth factor per retry.
    pub multiplier: f64,
    /// Ceiling on any single backoff.
    pub max_backoff: Duration,
    /// Fraction of the backoff added/removed as jitter (`0.0..=1.0`),
    /// derived deterministically from `seed` so runs replay identically.
    pub jitter: f64,
    /// Give up once this much wall-clock time has elapsed since the first
    /// attempt, even if attempts remain.
    pub budget: Option<Duration>,
    /// Seed for the jitter sequence.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(10),
            multiplier: 2.0,
            max_backoff: Duration::from_secs(1),
            jitter: 0.2,
            budget: None,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Sets the wall-clock budget.
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Sets the jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Backoff before retry number `retry` (1-based), jittered
    /// deterministically by the seed. Saturates at `max_backoff` for
    /// arbitrarily large retry counts: the exponent is clamped before the
    /// `i32` cast (a bare `as i32` wraps negative past `i32::MAX`, turning
    /// the largest retry counts into the *smallest* backoffs) and a
    /// non-finite intermediate (`powi` overflow) lands on the cap.
    pub fn backoff_for(&self, retry: u32) -> Duration {
        let exp = retry.saturating_sub(1).min(i32::MAX as u32) as i32;
        let raw = self.base_backoff.as_secs_f64() * self.multiplier.powi(exp);
        let max = self.max_backoff.as_secs_f64();
        let capped = if raw.is_finite() { raw.min(max) } else { max };
        // splitmix64 on (seed, retry) → uniform in [-jitter, +jitter].
        let unit = seeded_unit(self.seed, retry as u64);
        let jittered = capped * (1.0 + self.jitter * (2.0 * unit - 1.0));
        Duration::from_secs_f64(jittered.max(0.0))
    }

    /// Runs `op` until it succeeds, fails fatally, or the policy is
    /// exhausted. `op` receives the 1-based attempt number. Each retry
    /// (not the first attempt) bumps `retries`, letting callers surface a
    /// shared counter in run metrics.
    pub fn run<T>(
        &self,
        retries: Option<&AtomicUsize>,
        op: impl FnMut(u32) -> Result<T, CommError>,
    ) -> Result<T, CommError> {
        self.run_observed(retries, &Telemetry::disabled(), "op", op)
    }

    /// [`RetryPolicy::run`] with telemetry: every transient timeout emits
    /// a `timeout` mark, every retry emits a `retry` mark (both tagged
    /// with `op_name`), and each backoff sleep is recorded as a
    /// comm-phase span so blocked-on-transport time is attributable.
    pub fn run_observed<T>(
        &self,
        retries: Option<&AtomicUsize>,
        telemetry: &Telemetry,
        op_name: &str,
        mut op: impl FnMut(u32) -> Result<T, CommError>,
    ) -> Result<T, CommError> {
        let start = Instant::now();
        let mut attempt = 1u32;
        loop {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) if !e.is_retryable() => return Err(e),
                Err(e) => {
                    if matches!(e, CommError::Timeout { .. }) {
                        telemetry.mark("timeout", None, None, Some(op_name));
                    }
                    if attempt >= self.max_attempts.max(1) {
                        return Err(e);
                    }
                    let backoff = self.backoff_for(attempt);
                    if let Some(budget) = self.budget {
                        if start.elapsed() + backoff >= budget {
                            return Err(e);
                        }
                    }
                    std::thread::sleep(backoff);
                    telemetry.span_secs("backoff", Phase::Comm, backoff.as_secs_f64(), None, None);
                    telemetry.mark("retry", None, None, Some(op_name));
                    if let Some(counter) = retries {
                        counter.fetch_add(1, Ordering::Relaxed);
                    }
                    attempt += 1;
                }
            }
        }
    }
}

/// The coordinator phase a [`CrashPoint`] fires after.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPhase {
    /// After the round's `RoundStarted` record is durable.
    Select,
    /// After the round's *first* `UpdateReceived` record is durable.
    Collect,
    /// After the round's `RoundAggregated` record is durable.
    Aggregate,
    /// After the round's `RoundPublished` record is durable.
    Publish,
}

impl CrashPhase {
    /// Phase label for error messages and telemetry.
    pub fn as_str(self) -> &'static str {
        match self {
            CrashPhase::Select => "select",
            CrashPhase::Collect => "collect",
            CrashPhase::Aggregate => "aggregate",
            CrashPhase::Publish => "publish",
        }
    }
}

/// Coordinator fault injection: kill the coordinator immediately *after*
/// the given phase of the given round commits to the store — the
/// server-side sibling of the transport's `FaultyCommunicator`, driven by
/// the crash-recovery e2e to prove every phase transition is a safe
/// restart point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    /// 1-based round to crash in.
    pub round: usize,
    /// Phase whose commit triggers the crash.
    pub phase: CrashPhase,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(1),
            multiplier: 2.0,
            max_backoff: Duration::from_millis(8),
            jitter: 0.0,
            budget: None,
            seed: 1,
        }
    }

    #[test]
    fn first_success_needs_no_retry() {
        let counter = AtomicUsize::new(0);
        let out = quick().run(Some(&counter), |_| Ok::<_, CommError>(7));
        assert_eq!(out.unwrap(), 7);
        assert_eq!(counter.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn retries_transient_errors_until_success() {
        let counter = AtomicUsize::new(0);
        let out = quick().run(Some(&counter), |attempt| {
            if attempt < 3 {
                Err(CommError::Timeout { peer: Some(1) })
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(out.unwrap(), 3);
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn fatal_errors_fail_fast() {
        let counter = AtomicUsize::new(0);
        let mut calls = 0;
        let out: Result<(), _> = quick().run(Some(&counter), |_| {
            calls += 1;
            Err(CommError::Disconnected { peer: 2 })
        });
        assert_eq!(out.unwrap_err(), CommError::Disconnected { peer: 2 });
        assert_eq!(calls, 1);
        assert_eq!(counter.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn exhaustion_returns_last_error() {
        let mut calls = 0;
        let out: Result<(), _> = quick().run(None, |_| {
            calls += 1;
            Err(CommError::Frame("garbled".into()))
        });
        assert!(matches!(out.unwrap_err(), CommError::Frame(_)));
        assert_eq!(calls, 4);
    }

    #[test]
    fn budget_caps_total_wait() {
        let policy = RetryPolicy {
            max_attempts: 100,
            base_backoff: Duration::from_millis(20),
            budget: Some(Duration::from_millis(30)),
            jitter: 0.0,
            ..quick()
        };
        let start = Instant::now();
        let out: Result<(), _> = policy.run(None, |_| Err(CommError::Timeout { peer: None }));
        assert!(out.is_err());
        assert!(start.elapsed() < Duration::from_millis(500));
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = quick();
        assert_eq!(p.backoff_for(1), Duration::from_millis(1));
        assert_eq!(p.backoff_for(2), Duration::from_millis(2));
        assert_eq!(p.backoff_for(3), Duration::from_millis(4));
        assert_eq!(p.backoff_for(4), Duration::from_millis(8));
        assert_eq!(p.backoff_for(10), Duration::from_millis(8), "capped");
    }

    #[test]
    fn backoff_saturates_for_huge_retry_counts() {
        // Pins the capped schedule far past any sane attempt count. Before
        // the exponent clamp, `retry as i32` wrapped negative for retries
        // beyond i32::MAX and `powi` returned a fraction — the backoff
        // *shrank* toward zero exactly when a pathological caller had been
        // retrying longest. Every entry here must sit exactly on the cap.
        let p = quick(); // jitter = 0.0: schedule is exact
        let cap = Duration::from_millis(8);
        for retry in [64, 1_000, i32::MAX as u32, i32::MAX as u32 + 1, u32::MAX] {
            assert_eq!(p.backoff_for(retry), cap, "retry {retry} must cap");
        }
        // powi overflow to +inf (1000^2e9) also saturates instead of
        // poisoning Duration::from_secs_f64.
        let explosive = RetryPolicy {
            multiplier: 1000.0,
            ..quick()
        };
        assert_eq!(explosive.backoff_for(u32::MAX), cap);
    }

    #[test]
    fn run_observed_emits_retry_and_timeout_events() {
        use appfl_telemetry::MemorySink;
        use std::sync::Arc;
        let sink = Arc::new(MemorySink::new());
        let t = Telemetry::new(sink.clone());
        let out = quick().run_observed(None, &t, "get_weight", |attempt| {
            if attempt < 3 {
                Err(CommError::Timeout { peer: Some(1) })
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(out.unwrap(), 3);
        let events = sink.events();
        assert_eq!(events.iter().filter(|e| e.name == "retry").count(), 2);
        assert_eq!(events.iter().filter(|e| e.name == "timeout").count(), 2);
        assert!(events
            .iter()
            .all(|e| e.name == "backoff" || e.detail.as_deref() == Some("get_weight")));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy {
            jitter: 0.5,
            seed: 9,
            ..quick()
        };
        let a = p.backoff_for(2);
        let b = p.backoff_for(2);
        assert_eq!(a, b, "same seed, same jitter");
        let nominal = Duration::from_millis(2).as_secs_f64();
        let got = a.as_secs_f64();
        assert!(got >= nominal * 0.5 && got <= nominal * 1.5);
        let other = RetryPolicy { seed: 10, ..p }.backoff_for(2);
        assert_ne!(a, other, "different seed, different jitter");
    }

    #[test]
    fn seeded_unit_is_deterministic_and_uniform_ish() {
        assert_eq!(seeded_unit(7, 3), seeded_unit(7, 3));
        assert_ne!(seeded_unit(7, 3), seeded_unit(8, 3));
        assert_ne!(seeded_unit(7, 3), seeded_unit(7, 4));
        let mean: f64 = (0..1000).map(|i| seeded_unit(42, i)).sum::<f64>() / 1000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from uniform");
        for i in 0..1000 {
            let u = seeded_unit(42, i);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn crash_phase_labels_are_stable() {
        assert_eq!(CrashPhase::Select.as_str(), "select");
        assert_eq!(CrashPhase::Publish.as_str(), "publish");
        let p = CrashPoint {
            round: 2,
            phase: CrashPhase::Collect,
        };
        assert_eq!(p, p);
    }
}
