//! # appfl-comm
//!
//! Communication substrates for appfl-rs, standing in for the two protocols
//! the paper implements (§II-A.3): **MPI** for cluster simulation and
//! **gRPC** for heterogeneous cross-silo deployments — plus the MQTT-style
//! publish/subscribe layer the paper lists as planned work.
//!
//! Layers, bottom-up:
//!
//! * [`wire`] — a from-scratch Protocol Buffers **wire-format** codec
//!   (varints, zigzag, length-delimited fields) and the message schema a
//!   gRPC deployment of APPFL exchanges (tensors, jobs, learning results).
//!   Built because the paper attributes gRPC's 10× slowdown partly to
//!   protobuf serialisation; we need a real serialiser to measure.
//! * [`transport`] — the [`transport::Communicator`] trait with collective
//!   operations (`gather`, `broadcast`, `barrier`) in the image of
//!   `MPI.gather()`; an in-process channel implementation runs real
//!   multi-threaded federations, and a gRPC-style framing wrapper adds
//!   protobuf encode/decode plus host-staging copies on every message.
//! * [`netsim`] — a deterministic virtual-clock cost model for network
//!   timing studies (Figs. 3 and 4): an RDMA/InfiniBand-like link model and
//!   a gRPC/TCP-like model with serialisation cost, copy cost and
//!   heavy-tailed round-to-round jitter.
//! * [`cluster`] — device throughput models (A100 vs V100, §IV-E) and the
//!   worker-process layout used for the Summit strong-scaling study.
//! * [`pubsub`] — an in-process MQTT-like broker (future-work extension).
//! * [`policy`] — the shared fault/retry vocabulary: [`RetryPolicy`],
//!   coordinator [`CrashPoint`] injection, and the deterministic
//!   splitmix64 jitter primitive every resilience layer draws from.

pub mod cluster;
pub mod compress;
pub mod netsim;
pub mod policy;
pub mod pubsub;
pub mod retry;
pub mod rpc;
pub mod transport;
pub mod wire;

pub use policy::{CrashPhase, CrashPoint, RetryPolicy};
pub use rpc::ServeOptions;
pub use transport::{
    ChaosKind, ChaosSchedule, Communicator, FaultPlan, FaultyCommunicator, InProcNetwork,
};
