//! Request/response RPC layer — the analogue of APPFL's gRPC *service*.
//!
//! The reference framework exposes a gRPC servicer with unary methods the
//! clients call: fetch the current global weights, upload learning results,
//! signal completion. This module provides that call surface over any
//! [`Communicator`]: requests and responses are protobuf messages prefixed
//! with a one-byte method tag, and the server multiplexes clients with
//! [`Communicator::recv_any`]. Unlike the collective-style runner (where
//! the server *pushes* models), this is the pull-based flow of a real
//! cross-silo deployment: clients poll whenever they are ready, which is
//! also what makes asynchronous aggregation natural.

use crate::retry::RetryPolicy;
use crate::transport::{CommError, Communicator};
use crate::wire::messages::GlobalWeights;
use crate::wire::{JobDone, LearningResults, WeightRequest, WireWriter};
use appfl_telemetry::{Phase, Telemetry};
use std::sync::atomic::AtomicUsize;
use std::time::Duration;

/// Method tags on the wire (one byte before the protobuf payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Method {
    /// `GetWeight(WeightRequest) -> GlobalWeights`.
    GetWeight = 1,
    /// `SendResults(LearningResults) -> Ack`.
    SendResults = 2,
    /// `Done(JobDone) -> Ack`.
    Done = 3,
}

impl Method {
    fn from_u8(v: u8) -> Option<Method> {
        match v {
            1 => Some(Method::GetWeight),
            2 => Some(Method::SendResults),
            3 => Some(Method::Done),
            _ => None,
        }
    }
}

/// A decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Fetch the global model.
    GetWeight(WeightRequest),
    /// Upload one round's results.
    SendResults(Box<LearningResults>),
    /// Client is finished.
    Done(JobDone),
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The global model (reply to `GetWeight`).
    Weights(Box<GlobalWeights>),
    /// Acknowledgement (reply to `SendResults`/`Done`).
    Ack {
        /// Whether the server accepted the message.
        ok: bool,
    },
}

impl Request {
    /// Encodes with the method tag. The protobuf body serialises straight
    /// into the tagged buffer — for `SendResults` that means the tensor
    /// payload is written once, directly from the parameter vectors, with
    /// no intermediate body buffer copied behind the tag.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = match self {
            Request::GetWeight(_) => WireWriter::tagged(Method::GetWeight as u8, 16),
            Request::SendResults(m) => {
                WireWriter::tagged(Method::SendResults as u8, m.encoded_len())
            }
            Request::Done(_) => WireWriter::tagged(Method::Done as u8, 8),
        };
        match self {
            Request::GetWeight(m) => m.write_into(&mut w),
            Request::SendResults(m) => m.write_into(&mut w),
            Request::Done(m) => m.write_into(&mut w),
        }
        w.finish()
    }

    /// Decodes a tagged request.
    pub fn decode(buf: &[u8]) -> Result<Request, CommError> {
        let (&tag, body) = buf
            .split_first()
            .ok_or_else(|| CommError::Frame("empty RPC frame".into()))?;
        let method = Method::from_u8(tag)
            .ok_or_else(|| CommError::Frame(format!("bad method tag {tag}")))?;
        let err = |e: crate::wire::WireError| CommError::Frame(e.to_string());
        Ok(match method {
            Method::GetWeight => Request::GetWeight(WeightRequest::decode(body).map_err(err)?),
            Method::SendResults => {
                Request::SendResults(Box::new(LearningResults::decode(body).map_err(err)?))
            }
            Method::Done => Request::Done(JobDone::decode(body).map_err(err)?),
        })
    }
}

/// Response tags: 1 = weights, 2 = ack-ok, 3 = ack-fail.
impl Response {
    /// Encodes with a response tag. A weights reply serialises the model
    /// tensors once, straight into the tagged buffer.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Weights(weights) => {
                let mut w = WireWriter::tagged(1, weights.encoded_len());
                weights.write_into(&mut w);
                w.finish()
            }
            Response::Ack { ok: true } => vec![2],
            Response::Ack { ok: false } => vec![3],
        }
    }

    /// Decodes a tagged response.
    pub fn decode(buf: &[u8]) -> Result<Response, CommError> {
        let (&tag, body) = buf
            .split_first()
            .ok_or_else(|| CommError::Frame("empty RPC frame".into()))?;
        match tag {
            1 => Ok(Response::Weights(Box::new(
                GlobalWeights::decode(body).map_err(|e| CommError::Frame(e.to_string()))?,
            ))),
            2 => Ok(Response::Ack { ok: true }),
            3 => Ok(Response::Ack { ok: false }),
            other => Err(CommError::Frame(format!("bad response tag {other}"))),
        }
    }
}

/// The service a federated server implements (APPFL's servicer interface).
pub trait FlService {
    /// Returns the current global model for a requesting client.
    fn get_weight(&mut self, request: &WeightRequest) -> GlobalWeights;

    /// Ingests one round of learning results; `false` rejects the upload.
    fn send_results(&mut self, results: LearningResults) -> bool;

    /// Notes a finished client; `true` acknowledges.
    fn done(&mut self, done: &JobDone) -> bool;

    /// Whether the federation has reached its natural end (all rounds
    /// complete) regardless of how many `Done` messages arrived. Lets
    /// [`serve_ft`] stop even when dead clients can never say goodbye.
    fn finished(&self) -> bool {
        false
    }
}

fn dispatch(service: &mut dyn FlService, request: Request, done: &mut usize) -> Response {
    match request {
        Request::GetWeight(req) => Response::Weights(Box::new(service.get_weight(&req))),
        Request::SendResults(res) => Response::Ack {
            ok: service.send_results(*res),
        },
        Request::Done(d) => {
            *done += 1;
            Response::Ack {
                ok: service.done(&d),
            }
        }
    }
}

/// Options for [`serve_with`], the single entry point behind the legacy
/// `serve`/`serve_ft` pair.
#[derive(Clone, Default)]
pub struct ServeOptions {
    /// Wait at most this long per message. `None` (the default) blocks
    /// indefinitely and treats every transport failure as fatal — the
    /// strict mode appropriate when clients are in-process and trusted.
    /// `Some(t)` enables the lenient fault-tolerant mode: quiet periods
    /// are counted against `max_idle`, a vanished peer set ends serving,
    /// reply failures are ignored, and [`FlService::finished`] is
    /// consulted so dead clients cannot park the server.
    pub idle_timeout: Option<Duration>,
    /// Consecutive quiet periods tolerated before giving up (clamped to
    /// ≥ 1; only meaningful with an `idle_timeout`).
    pub max_idle: usize,
    /// Telemetry: idle timeouts emit `timeout` marks, request decode and
    /// response encode are recorded as serialize-phase spans.
    pub telemetry: Telemetry,
}

/// Serves requests over `comm` until `expected_done` clients have sent
/// `Done` (or, in the fault-tolerant mode, the service reports itself
/// finished / the idle cap fires). Returns the number of requests
/// handled. A request frame that fails to decode is nacked and skipped —
/// one corrupted message must not abort the whole federation. Requires a
/// multiplexing transport: probe [`Communicator::supports_recv_any`]
/// before choosing this serving model.
pub fn serve_with<C: Communicator>(
    service: &mut dyn FlService,
    comm: &C,
    expected_done: usize,
    options: &ServeOptions,
) -> Result<usize, CommError> {
    let lenient = options.idle_timeout.is_some();
    let mut done = 0usize;
    let mut handled = 0usize;
    let mut idle = 0usize;
    while done < expected_done && !(lenient && service.finished()) {
        let (from, payload) = match options.idle_timeout {
            None => comm.recv_any()?,
            Some(timeout) => match comm.recv_any_timeout(timeout) {
                Ok(msg) => msg,
                Err(CommError::Timeout { .. }) => {
                    options.telemetry.mark("timeout", None, None, Some("serve"));
                    idle += 1;
                    if idle >= options.max_idle.max(1) {
                        break;
                    }
                    continue;
                }
                Err(CommError::Disconnected { .. }) => break, // no live peers left
                Err(e) => return Err(e),
            },
        };
        idle = 0;
        let decode_span = options.telemetry.span("rpc_decode", Phase::Serialize);
        let request = Request::decode(&payload);
        drop(decode_span);
        let request = match request {
            Ok(r) => r,
            Err(_) => {
                let nack = Response::Ack { ok: false }.encode();
                if lenient {
                    let _ = comm.send(from, nack);
                } else {
                    comm.send(from, nack)?;
                }
                continue;
            }
        };
        handled += 1;
        let response = dispatch(service, request, &mut done);
        let encode_span = options.telemetry.span("rpc_encode", Phase::Serialize);
        let encoded = response.encode();
        drop(encode_span);
        if lenient {
            let _ = comm.send(from, encoded);
        } else {
            comm.send(from, encoded)?;
        }
    }
    Ok(handled)
}

/// Strict serving loop.
#[deprecated(note = "use `serve_with` with default `ServeOptions`")]
pub fn serve<C: Communicator>(
    service: &mut dyn FlService,
    comm: &C,
    expected_done: usize,
) -> Result<usize, CommError> {
    serve_with(service, comm, expected_done, &ServeOptions::default())
}

/// Fault-tolerant serving loop.
#[deprecated(note = "use `serve_with` with `ServeOptions { idle_timeout: Some(..), .. }`")]
pub fn serve_ft<C: Communicator>(
    service: &mut dyn FlService,
    comm: &C,
    expected_done: usize,
    idle_timeout: Duration,
    max_idle: usize,
) -> Result<usize, CommError> {
    serve_with(
        service,
        comm,
        expected_done,
        &ServeOptions {
            idle_timeout: Some(idle_timeout),
            max_idle,
            telemetry: Telemetry::disabled(),
        },
    )
}

/// Client-side stub: one blocking unary call to the server at rank 0.
pub fn call<C: Communicator>(comm: &C, request: &Request) -> Result<Response, CommError> {
    comm.send(0, request.encode())?;
    let payload = comm.recv(0)?;
    Response::decode(&payload)
}

/// Client-side stub with fault tolerance: the request is (re)sent under
/// `policy`, each attempt waiting at most `timeout` for the response.
/// Before a resend any stale responses from a previous attempt are
/// drained, keeping request/response pairing intact after a timeout. A
/// nacked `GetWeight` (the server saw a corrupted fetch) is treated as
/// transient and retried. Each retry bumps `retries` when provided.
pub fn call_with_retry<C: Communicator>(
    comm: &C,
    request: &Request,
    policy: &RetryPolicy,
    timeout: Duration,
    retries: Option<&AtomicUsize>,
) -> Result<Response, CommError> {
    call_with_retry_observed(
        comm,
        request,
        policy,
        timeout,
        retries,
        &Telemetry::disabled(),
    )
}

/// [`call_with_retry`] with telemetry: the blocking send + response wait
/// of each attempt is recorded as a comm-phase span named after the RPC
/// method, and the retry policy emits `retry`/`timeout` marks.
pub fn call_with_retry_observed<C: Communicator>(
    comm: &C,
    request: &Request,
    policy: &RetryPolicy,
    timeout: Duration,
    retries: Option<&AtomicUsize>,
    telemetry: &Telemetry,
) -> Result<Response, CommError> {
    let method = match request {
        Request::GetWeight(_) => "get_weight",
        Request::SendResults(_) => "send_results",
        Request::Done(_) => "done",
    };
    policy.run_observed(retries, telemetry, method, |attempt| {
        if attempt > 1 {
            while comm.recv_timeout(0, Duration::from_millis(1)).is_ok() {}
        }
        let encoded = request.encode();
        let start = telemetry.enabled().then(std::time::Instant::now);
        comm.send(0, encoded)?;
        let payload = comm.recv_timeout(0, timeout);
        if let Some(start) = start {
            telemetry.span_secs(
                "rpc_call",
                Phase::Comm,
                start.elapsed().as_secs_f64(),
                None,
                None,
            );
        }
        let response = Response::decode(&payload?)?;
        if matches!(request, Request::GetWeight(_))
            && matches!(response, Response::Ack { ok: false })
        {
            return Err(CommError::Frame("fetch nacked by server".into()));
        }
        Ok(response)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::InProcNetwork;
    use crate::wire::TensorMsg;
    use std::thread;

    struct EchoService {
        weights: Vec<f32>,
        uploads: usize,
    }

    impl FlService for EchoService {
        fn get_weight(&mut self, request: &WeightRequest) -> GlobalWeights {
            GlobalWeights {
                round: request.round,
                finished: false,
                tensors: vec![TensorMsg::flat("w", self.weights.clone())],
            }
        }

        fn send_results(&mut self, results: LearningResults) -> bool {
            self.uploads += 1;
            !results.primal.is_empty()
        }

        fn done(&mut self, _done: &JobDone) -> bool {
            true
        }
    }

    #[test]
    fn request_response_roundtrip_encoding() {
        let reqs = [
            Request::GetWeight(WeightRequest {
                client_id: 3,
                round: 9,
            }),
            Request::SendResults(Box::new(LearningResults {
                client_id: 3,
                round: 9,
                penalty: 1.0,
                primal: vec![TensorMsg::flat("z", vec![1.0, 2.0])],
                dual: vec![],
            })),
            Request::Done(JobDone { client_id: 3 }),
        ];
        for r in reqs {
            assert_eq!(Request::decode(&r.encode()).unwrap(), r);
        }
        let resps = [
            Response::Weights(Box::new(GlobalWeights {
                round: 1,
                finished: true,
                tensors: vec![],
            })),
            Response::Ack { ok: true },
            Response::Ack { ok: false },
        ];
        for r in resps {
            assert_eq!(Response::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn bad_frames_are_rejected() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[99, 0, 0]).is_err());
        assert!(Response::decode(&[9]).is_err());
    }

    #[test]
    fn server_multiplexes_concurrent_clients() {
        let mut eps = InProcNetwork::new(4);
        let server_ep = eps.remove(0);
        let mut handles = Vec::new();
        for ep in eps {
            handles.push(thread::spawn(move || {
                let id = ep.rank() as u32;
                // Fetch, upload, finish.
                let w = match call(
                    &ep,
                    &Request::GetWeight(WeightRequest {
                        client_id: id,
                        round: 0,
                    }),
                )
                .unwrap()
                {
                    Response::Weights(w) => w,
                    other => panic!("expected weights, got {other:?}"),
                };
                assert_eq!(w.tensors[0].data, vec![0.5, 0.5]);
                let ok = matches!(
                    call(
                        &ep,
                        &Request::SendResults(Box::new(LearningResults {
                            client_id: id,
                            round: 0,
                            penalty: 0.0,
                            primal: vec![TensorMsg::flat("z", vec![id as f32])],
                            dual: vec![],
                        }))
                    )
                    .unwrap(),
                    Response::Ack { ok: true }
                );
                assert!(ok);
                call(&ep, &Request::Done(JobDone { client_id: id })).unwrap();
            }));
        }
        let mut service = EchoService {
            weights: vec![0.5, 0.5],
            uploads: 0,
        };
        let handled = serve_with(&mut service, &server_ep, 3, &ServeOptions::default()).unwrap();
        assert_eq!(handled, 9); // 3 clients × 3 calls
        assert_eq!(service.uploads, 3);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn corrupted_request_is_nacked_not_fatal() {
        let mut eps = InProcNetwork::new(2);
        let server_ep = eps.remove(0);
        let client_ep = eps.remove(0);
        let h = thread::spawn(move || {
            // Raw garbage first: the server must nack and keep serving.
            client_ep.send(0, vec![0xFF, 0xEE]).unwrap();
            let nack = Response::decode(&client_ep.recv(0).unwrap()).unwrap();
            assert_eq!(nack, Response::Ack { ok: false });
            call(&client_ep, &Request::Done(JobDone { client_id: 1 })).unwrap();
        });
        let mut service = EchoService {
            weights: vec![],
            uploads: 0,
        };
        let handled = serve_with(&mut service, &server_ep, 1, &ServeOptions::default()).unwrap();
        assert_eq!(handled, 1, "garbage frame is not counted as handled");
        h.join().unwrap();
    }

    #[test]
    fn serve_ft_stops_when_clients_go_silent() {
        use std::time::Duration;
        let mut eps = InProcNetwork::new(3);
        let server_ep = eps.remove(0);
        let live = eps.remove(0);
        let _dead = eps.remove(0); // never sends Done
        let h = thread::spawn(move || {
            call(&live, &Request::Done(JobDone { client_id: 1 })).unwrap();
        });
        let mut service = EchoService {
            weights: vec![],
            uploads: 0,
        };
        // Expecting 2 Dones but only 1 arrives: the idle cap must fire.
        let handled = serve_with(
            &mut service,
            &server_ep,
            2,
            &ServeOptions {
                idle_timeout: Some(Duration::from_millis(20)),
                max_idle: 3,
                telemetry: Telemetry::disabled(),
            },
        )
        .unwrap();
        assert_eq!(handled, 1);
        h.join().unwrap();
    }

    #[test]
    fn serve_with_emits_timeout_marks_when_idle() {
        use appfl_telemetry::MemorySink;
        use std::sync::Arc;
        use std::time::Duration;
        let mut eps = InProcNetwork::new(2);
        let server_ep = eps.remove(0);
        let _client = eps.remove(0); // silent
        let sink = Arc::new(MemorySink::new());
        let mut service = EchoService {
            weights: vec![],
            uploads: 0,
        };
        let handled = serve_with(
            &mut service,
            &server_ep,
            1,
            &ServeOptions {
                idle_timeout: Some(Duration::from_millis(5)),
                max_idle: 2,
                telemetry: Telemetry::new(sink.clone()),
            },
        )
        .unwrap();
        assert_eq!(handled, 0);
        let timeouts = sink.events().iter().filter(|e| e.name == "timeout").count();
        assert_eq!(timeouts, 2, "one mark per quiet period");
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_serve_shims_still_work() {
        use std::time::Duration;
        let mut eps = InProcNetwork::new(2);
        let server_ep = eps.remove(0);
        let client_ep = eps.remove(0);
        let h = thread::spawn(move || {
            call(&client_ep, &Request::Done(JobDone { client_id: 1 })).unwrap();
        });
        let mut service = EchoService {
            weights: vec![],
            uploads: 0,
        };
        assert_eq!(serve(&mut service, &server_ep, 1).unwrap(), 1);
        h.join().unwrap();
        // serve_ft on a now-silent network stops via the idle cap.
        assert_eq!(
            serve_ft(&mut service, &server_ep, 1, Duration::from_millis(5), 1).unwrap(),
            0
        );
    }

    #[test]
    fn call_with_retry_survives_dropped_requests() {
        use crate::transport::{FaultKind, FaultPlan, FaultyCommunicator};
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::time::Duration;
        let mut eps = InProcNetwork::new(2);
        let server_ep = eps.remove(0);
        // Drop the client's first two request frames on the floor.
        let plan =
            FaultPlan::new(11)
                .fault_at(0, 1, FaultKind::Drop)
                .fault_at(0, 2, FaultKind::Drop);
        let client_ep = FaultyCommunicator::new(eps.remove(0), plan);
        let h = thread::spawn(move || {
            let retries = AtomicUsize::new(0);
            let policy = RetryPolicy {
                max_attempts: 5,
                base_backoff: Duration::from_millis(1),
                jitter: 0.0,
                ..RetryPolicy::default()
            };
            let resp = call_with_retry(
                &client_ep,
                &Request::Done(JobDone { client_id: 1 }),
                &policy,
                Duration::from_millis(30),
                Some(&retries),
            )
            .unwrap();
            assert_eq!(resp, Response::Ack { ok: true });
            assert_eq!(retries.load(Ordering::Relaxed), 2);
        });
        let mut service = EchoService {
            weights: vec![],
            uploads: 0,
        };
        serve_with(&mut service, &server_ep, 1, &ServeOptions::default()).unwrap();
        h.join().unwrap();
    }

    #[test]
    fn empty_upload_is_nacked() {
        let mut eps = InProcNetwork::new(2);
        let server_ep = eps.remove(0);
        let client_ep = eps.remove(0);
        let h = thread::spawn(move || {
            let resp = call(
                &client_ep,
                &Request::SendResults(Box::new(LearningResults {
                    client_id: 1,
                    round: 0,
                    penalty: 0.0,
                    primal: vec![],
                    dual: vec![],
                })),
            )
            .unwrap();
            assert_eq!(resp, Response::Ack { ok: false });
            call(&client_ep, &Request::Done(JobDone { client_id: 1 })).unwrap();
        });
        let mut service = EchoService {
            weights: vec![],
            uploads: 0,
        };
        serve_with(&mut service, &server_ep, 1, &ServeOptions::default()).unwrap();
        h.join().unwrap();
    }
}
