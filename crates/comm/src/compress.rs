//! Update compression codecs — the broader communication-efficiency toolbox
//! the paper's introduction frames (cf. \[9\], "Communication-efficient
//! federated learning"). IIADMM halves traffic structurally; these codecs
//! shrink whatever is still sent:
//!
//! * [`quantize_u8`] — linear 8-bit quantisation (4× smaller, bounded
//!   per-coordinate error);
//! * [`sparsify_top_k`] — magnitude top-k sparsification (send the k
//!   largest coordinates as index/value pairs).
//!
//! Both are lossy; the A7 ablation measures the bytes/accuracy trade-off.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Typed errors for malformed compressed representations (a decoded
/// [`SparseVec`] arrives from the wire, so its invariants cannot be
/// trusted — rebuilding the dense vector must fail cleanly, never panic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressError {
    /// A sparse index points outside the original vector.
    IndexOutOfRange {
        /// The offending index.
        index: u32,
        /// The claimed original length.
        len: usize,
    },
    /// `indices` and `values` disagree in length.
    LengthMismatch {
        /// Number of indices present.
        indices: usize,
        /// Number of values present.
        values: usize,
    },
}

impl fmt::Display for CompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompressError::IndexOutOfRange { index, len } => {
                write!(f, "sparse index {index} out of range for length {len}")
            }
            CompressError::LengthMismatch { indices, values } => {
                write!(f, "{indices} indices but {values} values")
            }
        }
    }
}

impl std::error::Error for CompressError {}

/// An 8-bit linearly quantised vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedVec {
    /// Minimum of the original range.
    pub lo: f32,
    /// Maximum of the original range.
    pub hi: f32,
    /// Original length.
    pub len: usize,
    /// One byte per coordinate.
    pub codes: Vec<u8>,
}

impl QuantizedVec {
    /// Bytes this representation occupies on the wire (codes + header).
    pub fn wire_bytes(&self) -> usize {
        self.codes.len() + 4 + 4 + 8
    }
}

/// Quantises to 8 bits per coordinate over the vector's own range.
///
/// ```
/// use appfl_comm::compress::{dequantize_u8, quantization_error_bound, quantize_u8};
/// let update = vec![0.0_f32, 0.5, 1.0, -1.0];
/// let q = quantize_u8(&update);
/// let restored = dequantize_u8(&q);
/// let bound = quantization_error_bound(&q);
/// for (a, b) in update.iter().zip(restored.iter()) {
///     assert!((a - b).abs() <= bound * 1.001);
/// }
/// ```
pub fn quantize_u8(v: &[f32]) -> QuantizedVec {
    let lo = v.iter().copied().fold(f32::INFINITY, f32::min);
    let hi = v.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if v.is_empty() || !lo.is_finite() || !hi.is_finite() || lo == hi {
        return QuantizedVec {
            lo: if lo.is_finite() { lo } else { 0.0 },
            hi: if hi.is_finite() { hi } else { 0.0 },
            len: v.len(),
            codes: vec![0; v.len()],
        };
    }
    let scale = 255.0 / (hi - lo);
    let codes = v
        .iter()
        .map(|&x| (((x - lo) * scale).round().clamp(0.0, 255.0)) as u8)
        .collect();
    QuantizedVec {
        lo,
        hi,
        len: v.len(),
        codes,
    }
}

/// Reconstructs the vector from its quantised form.
pub fn dequantize_u8(q: &QuantizedVec) -> Vec<f32> {
    if q.hi == q.lo {
        return vec![q.lo; q.len];
    }
    let step = (q.hi - q.lo) / 255.0;
    q.codes.iter().map(|&c| q.lo + c as f32 * step).collect()
}

/// Maximum absolute error introduced by [`quantize_u8`]: half a step.
pub fn quantization_error_bound(q: &QuantizedVec) -> f32 {
    (q.hi - q.lo) / 255.0 / 2.0
}

/// A magnitude-sparsified vector: the `k` largest-|value| coordinates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseVec {
    /// Original length.
    pub len: usize,
    /// Kept coordinate indices (ascending).
    pub indices: Vec<u32>,
    /// Kept values, aligned with `indices`.
    pub values: Vec<f32>,
}

impl SparseVec {
    /// Bytes on the wire: 4 per index + 4 per value + header.
    pub fn wire_bytes(&self) -> usize {
        self.indices.len() * 8 + 8
    }
}

/// Keeps the `k` coordinates of largest magnitude (all if `k >= len`).
pub fn sparsify_top_k(v: &[f32], k: usize) -> SparseVec {
    if k >= v.len() {
        return SparseVec {
            len: v.len(),
            indices: (0..v.len() as u32).collect(),
            values: v.to_vec(),
        };
    }
    let mut order: Vec<usize> = (0..v.len()).collect();
    // Partial selection of the top-k by |value|, ties broken by index so
    // the kept set is a pure function of the values (an unstable select
    // on equal magnitudes would make it depend on input order).
    order.select_nth_unstable_by(k, |&a, &b| {
        v[b].abs().total_cmp(&v[a].abs()).then(a.cmp(&b))
    });
    let mut kept: Vec<usize> = order[..k].to_vec();
    kept.sort_unstable();
    SparseVec {
        len: v.len(),
        indices: kept.iter().map(|&i| i as u32).collect(),
        values: kept.iter().map(|&i| v[i]).collect(),
    }
}

/// Expands a sparse vector back to dense form (zeros elsewhere).
///
/// The input may come off the wire, so both invariants are checked:
/// `indices` and `values` must agree in length, and every index must fall
/// inside the original vector.
pub fn densify(s: &SparseVec) -> Result<Vec<f32>, CompressError> {
    if s.indices.len() != s.values.len() {
        return Err(CompressError::LengthMismatch {
            indices: s.indices.len(),
            values: s.values.len(),
        });
    }
    let mut out = vec![0.0f32; s.len];
    for (&i, &x) in s.indices.iter().zip(s.values.iter()) {
        *out
            .get_mut(i as usize)
            .ok_or(CompressError::IndexOutOfRange {
                index: i,
                len: s.len,
            })? = x;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_roundtrip_within_bound() {
        let v: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.37).sin() * 3.0).collect();
        let q = quantize_u8(&v);
        let back = dequantize_u8(&q);
        let bound = quantization_error_bound(&q);
        for (a, b) in v.iter().zip(back.iter()) {
            assert!((a - b).abs() <= bound * 1.001, "{a} vs {b} (bound {bound})");
        }
        // 4x compression (modulo the 16-byte header).
        assert!(q.wire_bytes() < v.len() * 4 / 3);
    }

    #[test]
    fn quantize_handles_degenerate_inputs() {
        let q = quantize_u8(&[]);
        assert!(dequantize_u8(&q).is_empty());
        let q = quantize_u8(&[5.0; 7]);
        assert_eq!(dequantize_u8(&q), vec![5.0; 7]);
    }

    #[test]
    fn top_k_keeps_the_largest_magnitudes() {
        let v = vec![0.1f32, -5.0, 0.2, 3.0, -0.05];
        let s = sparsify_top_k(&v, 2);
        assert_eq!(s.indices, vec![1, 3]);
        assert_eq!(s.values, vec![-5.0, 3.0]);
        let d = densify(&s).unwrap();
        assert_eq!(d, vec![0.0, -5.0, 0.0, 3.0, 0.0]);
    }

    #[test]
    fn top_k_with_large_k_is_lossless() {
        let v = vec![1.0f32, 2.0, 3.0];
        let s = sparsify_top_k(&v, 10);
        assert_eq!(densify(&s).unwrap(), v);
    }

    #[test]
    fn top_k_ties_break_by_index_deterministically() {
        // All-equal magnitudes: the kept set must be the lowest indices,
        // whatever the sign pattern or input permutation.
        let v = vec![2.0f32, -2.0, 2.0, -2.0, 2.0, -2.0];
        let s = sparsify_top_k(&v, 3);
        assert_eq!(s.indices, vec![0, 1, 2]);
        // A mixed vector where the boundary magnitude is tied.
        let v = vec![1.0f32, 5.0, -1.0, 1.0, -5.0, 1.0];
        let s = sparsify_top_k(&v, 3);
        assert_eq!(s.indices, vec![0, 1, 4], "boundary tie goes to index 0");
    }

    #[test]
    fn densify_rejects_malformed_sparse_vectors() {
        let oob = SparseVec {
            len: 4,
            indices: vec![0, 9],
            values: vec![1.0, 2.0],
        };
        assert_eq!(
            densify(&oob),
            Err(CompressError::IndexOutOfRange { index: 9, len: 4 })
        );
        let skew = SparseVec {
            len: 4,
            indices: vec![0, 1],
            values: vec![1.0],
        };
        assert_eq!(
            densify(&skew),
            Err(CompressError::LengthMismatch {
                indices: 2,
                values: 1
            })
        );
    }

    #[test]
    fn sparsification_shrinks_the_wire() {
        let v = vec![0.01f32; 10_000];
        let s = sparsify_top_k(&v, 100);
        assert!(s.wire_bytes() < 10_000 * 4 / 10);
    }

    #[test]
    fn top_k_error_is_bounded_by_dropped_mass() {
        let v: Vec<f32> = (0..100).map(|i| if i < 5 { 10.0 } else { 0.001 }).collect();
        let s = sparsify_top_k(&v, 5);
        let d = densify(&s).unwrap();
        let err: f32 = v.iter().zip(d.iter()).map(|(a, b)| (a - b).abs()).sum();
        assert!(err < 0.1); // only the tiny tail is dropped
    }
}
