//! In-process MQTT-style publish/subscribe broker.
//!
//! §II-A.3: "we plan to support MQTT, a lightweight, publish-subscribe
//! network protocol that transports messages between devices." This module
//! implements that planned layer as an in-process broker: topics, QoS-0
//! delivery (fire-and-forget fan-out), retained messages, and wildcard-free
//! exact-topic matching — sufficient for cross-device FL experiments where
//! many clients subscribe to a `global-model` topic and publish to
//! `updates/<id>`.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// A subscription handle yielding `(topic, payload)` pairs.
pub struct Subscription {
    rx: Receiver<TopicMessage>,
}

impl Subscription {
    /// Blocks until the next message on any subscribed topic.
    pub fn recv(&self) -> Option<(String, Vec<u8>)> {
        self.rx.recv().ok()
    }

    /// Non-blocking poll.
    pub fn try_recv(&self) -> Option<(String, Vec<u8>)> {
        self.rx.try_recv().ok()
    }
}

/// A published message: `(topic, payload)`.
type TopicMessage = (String, Vec<u8>);

#[derive(Default)]
struct BrokerState {
    subscribers: HashMap<String, Vec<Sender<TopicMessage>>>,
    retained: HashMap<String, Vec<u8>>,
}

/// An MQTT-like broker: QoS-0 fan-out with optional retained messages.
///
/// ```
/// use appfl_comm::pubsub::Broker;
/// let broker = Broker::new();
/// broker.publish_retained("fl/global", vec![1, 2, 3]);
/// // A late subscriber still receives the retained model immediately.
/// let device = broker.subscribe("fl/global");
/// assert_eq!(device.recv().unwrap().1, vec![1, 2, 3]);
/// ```
#[derive(Clone, Default)]
pub struct Broker {
    state: Arc<Mutex<BrokerState>>,
}

impl Broker {
    /// A fresh broker.
    pub fn new() -> Self {
        Broker::default()
    }

    /// Subscribes to an exact topic. If a retained message exists it is
    /// delivered immediately (MQTT retained-message semantics).
    pub fn subscribe(&self, topic: &str) -> Subscription {
        let (tx, rx) = unbounded();
        let mut state = self.state.lock();
        if let Some(retained) = state.retained.get(topic) {
            let _ = tx.send((topic.to_string(), retained.clone()));
        }
        state
            .subscribers
            .entry(topic.to_string())
            .or_default()
            .push(tx);
        Subscription { rx }
    }

    /// Publishes to a topic, fanning out to current subscribers. Returns the
    /// number of subscribers reached.
    pub fn publish(&self, topic: &str, payload: Vec<u8>) -> usize {
        self.publish_inner(topic, payload, false)
    }

    /// Publishes with the retain flag: late subscribers receive the last
    /// retained payload on subscribe.
    pub fn publish_retained(&self, topic: &str, payload: Vec<u8>) -> usize {
        self.publish_inner(topic, payload, true)
    }

    fn publish_inner(&self, topic: &str, payload: Vec<u8>, retain: bool) -> usize {
        let mut state = self.state.lock();
        if retain {
            state.retained.insert(topic.to_string(), payload.clone());
        }
        let mut delivered = 0;
        if let Some(subs) = state.subscribers.get_mut(topic) {
            // Drop senders whose subscription was dropped (QoS 0: no retry).
            subs.retain(|tx| {
                let ok = tx.send((topic.to_string(), payload.clone())).is_ok();
                delivered += usize::from(ok);
                ok
            });
        }
        delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_out_to_multiple_subscribers() {
        let broker = Broker::new();
        let a = broker.subscribe("global-model");
        let b = broker.subscribe("global-model");
        let n = broker.publish("global-model", vec![1, 2]);
        assert_eq!(n, 2);
        assert_eq!(a.recv().unwrap().1, vec![1, 2]);
        assert_eq!(b.recv().unwrap().1, vec![1, 2]);
    }

    #[test]
    fn topics_are_isolated() {
        let broker = Broker::new();
        let a = broker.subscribe("updates/1");
        broker.publish("updates/2", vec![9]);
        assert!(a.try_recv().is_none());
    }

    #[test]
    fn retained_message_reaches_late_subscriber() {
        let broker = Broker::new();
        broker.publish_retained("global-model", vec![7]);
        let late = broker.subscribe("global-model");
        assert_eq!(late.recv().unwrap().1, vec![7]);
    }

    #[test]
    fn dropped_subscribers_are_pruned() {
        let broker = Broker::new();
        let a = broker.subscribe("t");
        drop(a);
        assert_eq!(broker.publish("t", vec![1]), 0);
    }

    #[test]
    fn publish_without_subscribers_is_ok() {
        let broker = Broker::new();
        assert_eq!(broker.publish("nobody", vec![0]), 0);
    }

    #[test]
    fn cross_thread_delivery() {
        let broker = Broker::new();
        let sub = broker.subscribe("work");
        let b2 = broker.clone();
        let h = std::thread::spawn(move || {
            b2.publish("work", vec![42]);
        });
        assert_eq!(sub.recv().unwrap().1, vec![42]);
        h.join().unwrap();
    }
}
