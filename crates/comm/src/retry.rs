//! Retry with exponential backoff for transient transport failures.
//!
//! Client-side send/upload paths wrap their calls in a [`RetryPolicy`]: a
//! bounded number of attempts, exponential backoff with deterministic
//! jitter, and an optional wall-clock budget. Only errors that can
//! plausibly clear on their own are retried (see
//! [`CommError::is_retryable`](crate::transport::CommError::is_retryable)):
//! timeouts and frame corruption, but never a dropped endpoint or an
//! invalid rank.
//!
//! The policy itself lives in [`crate::policy`] alongside the rest of the
//! shared fault/retry vocabulary ([`CrashPoint`](crate::policy::CrashPoint)
//! and the deterministic splitmix64 draw helpers); this module re-exports
//! it so the long-standing `appfl_comm::retry::RetryPolicy` path keeps
//! resolving.

pub use crate::policy::RetryPolicy;
