//! Retry with exponential backoff for transient transport failures.
//!
//! Client-side send/upload paths wrap their calls in a [`RetryPolicy`]: a
//! bounded number of attempts, exponential backoff with deterministic
//! jitter, and an optional wall-clock budget. Only errors that can
//! plausibly clear on their own are retried (see
//! [`CommError::is_retryable`]): timeouts and frame corruption, but never
//! a dropped endpoint or an invalid rank.

use crate::transport::CommError;
use appfl_telemetry::{Phase, Telemetry};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Bounded exponential backoff with deterministic jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (`1` = no retries).
    pub max_attempts: u32,
    /// Sleep before the first retry.
    pub base_backoff: Duration,
    /// Growth factor per retry.
    pub multiplier: f64,
    /// Ceiling on any single backoff.
    pub max_backoff: Duration,
    /// Fraction of the backoff added/removed as jitter (`0.0..=1.0`),
    /// derived deterministically from `seed` so runs replay identically.
    pub jitter: f64,
    /// Give up once this much wall-clock time has elapsed since the first
    /// attempt, even if attempts remain.
    pub budget: Option<Duration>,
    /// Seed for the jitter sequence.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(10),
            multiplier: 2.0,
            max_backoff: Duration::from_secs(1),
            jitter: 0.2,
            budget: None,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Sets the wall-clock budget.
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Sets the jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Backoff before retry number `retry` (1-based), jittered
    /// deterministically by the seed. Saturates at `max_backoff` for
    /// arbitrarily large retry counts: the exponent is clamped before the
    /// `i32` cast (a bare `as i32` wraps negative past `i32::MAX`, turning
    /// the largest retry counts into the *smallest* backoffs) and a
    /// non-finite intermediate (`powi` overflow) lands on the cap.
    pub fn backoff_for(&self, retry: u32) -> Duration {
        let exp = retry.saturating_sub(1).min(i32::MAX as u32) as i32;
        let raw = self.base_backoff.as_secs_f64() * self.multiplier.powi(exp);
        let max = self.max_backoff.as_secs_f64();
        let capped = if raw.is_finite() { raw.min(max) } else { max };
        // splitmix64 on (seed, retry) → uniform in [-jitter, +jitter].
        let mut x = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(retry as u64);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        let unit = (x >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        let jittered = capped * (1.0 + self.jitter * (2.0 * unit - 1.0));
        Duration::from_secs_f64(jittered.max(0.0))
    }

    /// Runs `op` until it succeeds, fails fatally, or the policy is
    /// exhausted. `op` receives the 1-based attempt number. Each retry
    /// (not the first attempt) bumps `retries`, letting callers surface a
    /// shared counter in run metrics.
    pub fn run<T>(
        &self,
        retries: Option<&AtomicUsize>,
        op: impl FnMut(u32) -> Result<T, CommError>,
    ) -> Result<T, CommError> {
        self.run_observed(retries, &Telemetry::disabled(), "op", op)
    }

    /// [`RetryPolicy::run`] with telemetry: every transient timeout emits
    /// a `timeout` mark, every retry emits a `retry` mark (both tagged
    /// with `op_name`), and each backoff sleep is recorded as a
    /// comm-phase span so blocked-on-transport time is attributable.
    pub fn run_observed<T>(
        &self,
        retries: Option<&AtomicUsize>,
        telemetry: &Telemetry,
        op_name: &str,
        mut op: impl FnMut(u32) -> Result<T, CommError>,
    ) -> Result<T, CommError> {
        let start = Instant::now();
        let mut attempt = 1u32;
        loop {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) if !e.is_retryable() => return Err(e),
                Err(e) => {
                    if matches!(e, CommError::Timeout { .. }) {
                        telemetry.mark("timeout", None, None, Some(op_name));
                    }
                    if attempt >= self.max_attempts.max(1) {
                        return Err(e);
                    }
                    let backoff = self.backoff_for(attempt);
                    if let Some(budget) = self.budget {
                        if start.elapsed() + backoff >= budget {
                            return Err(e);
                        }
                    }
                    std::thread::sleep(backoff);
                    telemetry.span_secs("backoff", Phase::Comm, backoff.as_secs_f64(), None, None);
                    telemetry.mark("retry", None, None, Some(op_name));
                    if let Some(counter) = retries {
                        counter.fetch_add(1, Ordering::Relaxed);
                    }
                    attempt += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(1),
            multiplier: 2.0,
            max_backoff: Duration::from_millis(8),
            jitter: 0.0,
            budget: None,
            seed: 1,
        }
    }

    #[test]
    fn first_success_needs_no_retry() {
        let counter = AtomicUsize::new(0);
        let out = quick().run(Some(&counter), |_| Ok::<_, CommError>(7));
        assert_eq!(out.unwrap(), 7);
        assert_eq!(counter.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn retries_transient_errors_until_success() {
        let counter = AtomicUsize::new(0);
        let out = quick().run(Some(&counter), |attempt| {
            if attempt < 3 {
                Err(CommError::Timeout { peer: Some(1) })
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(out.unwrap(), 3);
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn fatal_errors_fail_fast() {
        let counter = AtomicUsize::new(0);
        let mut calls = 0;
        let out: Result<(), _> = quick().run(Some(&counter), |_| {
            calls += 1;
            Err(CommError::Disconnected { peer: 2 })
        });
        assert_eq!(out.unwrap_err(), CommError::Disconnected { peer: 2 });
        assert_eq!(calls, 1);
        assert_eq!(counter.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn exhaustion_returns_last_error() {
        let mut calls = 0;
        let out: Result<(), _> = quick().run(None, |_| {
            calls += 1;
            Err(CommError::Frame("garbled".into()))
        });
        assert!(matches!(out.unwrap_err(), CommError::Frame(_)));
        assert_eq!(calls, 4);
    }

    #[test]
    fn budget_caps_total_wait() {
        let policy = RetryPolicy {
            max_attempts: 100,
            base_backoff: Duration::from_millis(20),
            budget: Some(Duration::from_millis(30)),
            jitter: 0.0,
            ..quick()
        };
        let start = Instant::now();
        let out: Result<(), _> = policy.run(None, |_| Err(CommError::Timeout { peer: None }));
        assert!(out.is_err());
        assert!(start.elapsed() < Duration::from_millis(500));
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = quick();
        assert_eq!(p.backoff_for(1), Duration::from_millis(1));
        assert_eq!(p.backoff_for(2), Duration::from_millis(2));
        assert_eq!(p.backoff_for(3), Duration::from_millis(4));
        assert_eq!(p.backoff_for(4), Duration::from_millis(8));
        assert_eq!(p.backoff_for(10), Duration::from_millis(8), "capped");
    }

    #[test]
    fn backoff_saturates_for_huge_retry_counts() {
        // Pins the capped schedule far past any sane attempt count. Before
        // the exponent clamp, `retry as i32` wrapped negative for retries
        // beyond i32::MAX and `powi` returned a fraction — the backoff
        // *shrank* toward zero exactly when a pathological caller had been
        // retrying longest. Every entry here must sit exactly on the cap.
        let p = quick(); // jitter = 0.0: schedule is exact
        let cap = Duration::from_millis(8);
        for retry in [64, 1_000, i32::MAX as u32, i32::MAX as u32 + 1, u32::MAX] {
            assert_eq!(p.backoff_for(retry), cap, "retry {retry} must cap");
        }
        // powi overflow to +inf (1000^2e9) also saturates instead of
        // poisoning Duration::from_secs_f64.
        let explosive = RetryPolicy {
            multiplier: 1000.0,
            ..quick()
        };
        assert_eq!(explosive.backoff_for(u32::MAX), cap);
    }

    #[test]
    fn run_observed_emits_retry_and_timeout_events() {
        use appfl_telemetry::MemorySink;
        use std::sync::Arc;
        let sink = Arc::new(MemorySink::new());
        let t = Telemetry::new(sink.clone());
        let out = quick().run_observed(None, &t, "get_weight", |attempt| {
            if attempt < 3 {
                Err(CommError::Timeout { peer: Some(1) })
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(out.unwrap(), 3);
        let events = sink.events();
        assert_eq!(events.iter().filter(|e| e.name == "retry").count(), 2);
        assert_eq!(events.iter().filter(|e| e.name == "timeout").count(), 2);
        assert!(events
            .iter()
            .all(|e| e.name == "backoff" || e.detail.as_deref() == Some("get_weight")));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy {
            jitter: 0.5,
            seed: 9,
            ..quick()
        };
        let a = p.backoff_for(2);
        let b = p.backoff_for(2);
        assert_eq!(a, b, "same seed, same jitter");
        let nominal = Duration::from_millis(2).as_secs_f64();
        let got = a.as_secs_f64();
        assert!(got >= nominal * 0.5 && got <= nominal * 1.5);
        let other = RetryPolicy { seed: 10, ..p }.backoff_for(2);
        assert_ne!(a, other, "different seed, different jitter");
    }
}
