//! Protocol Buffers wire format, from scratch.
//!
//! Only the wire layer is implemented (no descriptor/IDL machinery): varint
//! and zigzag integer encodings, the four wire types used by proto3, and a
//! reader/writer pair that the [`messages`] schema builds on. This is enough
//! to byte-serialise everything APPFL's gRPC service exchanges and therefore
//! to charge realistic serialisation costs in the communication experiments.

pub mod chunking;
pub mod codec;
pub mod messages;
pub mod varint;

pub use chunking::{split_message, Chunk, Reassembler};
pub use codec::{WireError, WireReader, WireType, WireWriter};
pub use messages::{GlobalWeights, JobDone, LearningResults, TensorMsg, WeightRequest};
