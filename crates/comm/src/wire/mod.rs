//! Protocol Buffers wire format, from scratch — plus the negotiated
//! codec pipeline layered on top of it.
//!
//! Only the wire layer is implemented (no descriptor/IDL machinery): varint
//! and zigzag integer encodings, the four wire types used by proto3, and a
//! reader/writer pair that the [`messages`] schema builds on. This is enough
//! to byte-serialise everything APPFL's gRPC service exchanges and therefore
//! to charge realistic serialisation costs in the communication experiments.
//!
//! On top of that sit the wire-efficiency layers: [`frame`] (versioned
//! self-describing frames), [`pipeline`] (the negotiated compression codec
//! stacks with error feedback), and [`stream`] (chunked streaming with
//! loss resynchronisation over any transport).

pub mod chunking;
pub mod codec;
pub mod frame;
pub mod messages;
pub mod pipeline;
pub mod stream;
pub mod varint;

pub use chunking::{split_message, Chunk, Reassembler};
pub use codec::{WireError, WireReader, WireType, WireWriter};
pub use frame::{Frame, FrameKind, FRAME_MAGIC, FRAME_VERSION};
pub use messages::{
    GlobalWeights, GlobalWeightsRef, JobDone, LearningResults, LearningResultsRef, TensorMsg,
    TensorMsgRef, WeightRequest,
};
pub use pipeline::{
    CodecAck, CodecHello, CodecStack, CodecStage, CodedUpload, StackDecoder, StackEncoder,
    WireConfig, CODEC_VERSION, QUANT_BLOCK,
};
pub use stream::{recv_chunked, recv_chunked_timeout, send_chunked, ChunkDemux};
