//! Chunked streaming of large messages.
//!
//! gRPC deployments cap unary message sizes (4 MiB by default), so the
//! reference framework streams model tensors as a sequence of chunks. This
//! module provides the chunk framing and a strict reassembler: each chunk
//! carries `(stream_id, seq, total, payload)`; the reassembler validates
//! ordering, duplication, stream mixing and total-size consistency so a
//! faulty peer cannot corrupt a model silently.
//!
//! The payload path is zero-copy: a [`Chunk`] *borrows* its payload, so
//! splitting a message yields views into the original buffer and decoding
//! a chunk yields a view into the received bytes. The only copies left are
//! the unavoidable ones — serialising onto the wire and accumulating the
//! reassembly buffer.

use super::codec::{WireError, WireReader, WireWriter};
use super::varint::varint_len;

/// One chunk of a larger message. Borrows its payload from the message
/// being split (sender side) or the receive buffer (receiver side).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk<'a> {
    /// Identifies the logical message the chunk belongs to.
    pub stream_id: u64,
    /// Zero-based sequence number.
    pub seq: u32,
    /// Total chunks in the stream.
    pub total: u32,
    /// Payload slice.
    pub payload: &'a [u8],
}

impl<'a> Chunk<'a> {
    /// Encodes to protobuf bytes. The output buffer is sized exactly: the
    /// payload is copied once, straight into its wire position.
    pub fn encode(&self) -> Vec<u8> {
        let cap = 1
            + varint_len(self.stream_id)
            + 1
            + varint_len(u64::from(self.seq))
            + 1
            + varint_len(u64::from(self.total))
            + 1
            + varint_len(self.payload.len() as u64)
            + self.payload.len();
        let mut w = WireWriter::with_capacity(cap);
        w.uint(1, self.stream_id);
        w.uint(2, u64::from(self.seq));
        w.uint(3, u64::from(self.total));
        w.bytes(4, self.payload);
        debug_assert_eq!(w.len(), cap);
        w.finish()
    }

    /// Decodes from protobuf bytes, borrowing the payload from `buf`.
    pub fn decode(buf: &'a [u8]) -> Result<Self, WireError> {
        let (mut stream_id, mut seq, mut total) = (None, None, None);
        let mut payload: &[u8] = &[];
        let mut r = WireReader::new(buf);
        while let Some((f, v)) = r.next_field()? {
            match f {
                1 => stream_id = Some(v.as_uint(f)?),
                2 => seq = Some(v.as_uint(f)? as u32),
                3 => total = Some(v.as_uint(f)? as u32),
                4 => payload = v.as_bytes(f)?,
                _ => {}
            }
        }
        Ok(Chunk {
            stream_id: stream_id.ok_or(WireError::MissingField("stream_id"))?,
            seq: seq.ok_or(WireError::MissingField("seq"))?,
            total: total.ok_or(WireError::MissingField("total"))?,
            payload,
        })
    }
}

/// Splits `message` into chunks of at most `chunk_size` payload bytes.
/// Each chunk borrows its slice of `message` — nothing is copied. Empty
/// messages become a single empty chunk so the receiver still gets a
/// completion signal.
pub fn split_message(stream_id: u64, message: &[u8], chunk_size: usize) -> Vec<Chunk<'_>> {
    assert!(chunk_size > 0, "chunk size must be positive");
    if message.is_empty() {
        return vec![Chunk {
            stream_id,
            seq: 0,
            total: 1,
            payload: &[],
        }];
    }
    let total = message.len().div_ceil(chunk_size) as u32;
    message
        .chunks(chunk_size)
        .enumerate()
        .map(|(i, part)| Chunk {
            stream_id,
            seq: i as u32,
            total,
            payload: part,
        })
        .collect()
}

/// Strict in-order reassembler for one stream at a time.
#[derive(Debug, Default)]
pub struct Reassembler {
    current: Option<(u64, u32)>, // (stream_id, total)
    next_seq: u32,
    buffer: Vec<u8>,
}

impl Reassembler {
    /// A fresh reassembler.
    pub fn new() -> Self {
        Reassembler::default()
    }

    /// Whether a stream is partially assembled.
    pub fn in_progress(&self) -> bool {
        self.current.is_some()
    }

    /// Drops any partially assembled stream (used to resynchronise after
    /// a lost chunk: the stream is unrecoverable, the next one is not).
    pub fn reset(&mut self) {
        self.current = None;
        self.next_seq = 0;
        self.buffer.clear();
    }

    /// Feeds one chunk. Returns `Some(message)` when the stream completes.
    pub fn push(&mut self, chunk: Chunk<'_>) -> Result<Option<Vec<u8>>, WireError> {
        match self.current {
            None => {
                if chunk.seq != 0 {
                    return Err(WireError::Invalid(format!(
                        "stream {} began at seq {}",
                        chunk.stream_id, chunk.seq
                    )));
                }
                if chunk.total == 0 {
                    return Err(WireError::Invalid("stream with zero chunks".into()));
                }
                self.current = Some((chunk.stream_id, chunk.total));
                self.next_seq = 0;
                self.buffer.clear();
            }
            Some((stream_id, total)) => {
                if chunk.stream_id != stream_id {
                    return Err(WireError::Invalid(format!(
                        "chunk from stream {} interleaved into stream {stream_id}",
                        chunk.stream_id
                    )));
                }
                if chunk.total != total {
                    return Err(WireError::Invalid("inconsistent chunk total".into()));
                }
            }
        }
        if chunk.seq != self.next_seq {
            return Err(WireError::Invalid(format!(
                "expected seq {}, got {}",
                self.next_seq, chunk.seq
            )));
        }
        self.buffer.extend_from_slice(chunk.payload);
        self.next_seq += 1;
        let (_, total) = self.current.expect("set above");
        if self.next_seq == total {
            self.current = None;
            self.next_seq = 0;
            Ok(Some(std::mem::take(&mut self.buffer)))
        } else {
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_roundtrip() {
        let payload = vec![1u8, 2, 3];
        let c = Chunk {
            stream_id: 7,
            seq: 3,
            total: 9,
            payload: &payload,
        };
        let buf = c.encode();
        assert_eq!(Chunk::decode(&buf).unwrap(), c);
    }

    #[test]
    fn decode_borrows_from_the_input_buffer() {
        let payload = vec![9u8; 64];
        let buf = Chunk {
            stream_id: 1,
            seq: 0,
            total: 1,
            payload: &payload,
        }
        .encode();
        let decoded = Chunk::decode(&buf).unwrap();
        // The payload is a view into `buf`, not a copy.
        let buf_range = buf.as_ptr() as usize..buf.as_ptr() as usize + buf.len();
        assert!(buf_range.contains(&(decoded.payload.as_ptr() as usize)));
    }

    #[test]
    fn split_and_reassemble_large_message() {
        let message: Vec<u8> = (0..100_000).map(|i| (i % 251) as u8).collect();
        let chunks = split_message(42, &message, 4096);
        assert_eq!(chunks.len(), 100_000usize.div_ceil(4096));
        let mut r = Reassembler::new();
        let mut out = None;
        for c in chunks {
            out = r.push(c).unwrap();
        }
        assert_eq!(out.unwrap(), message);
    }

    #[test]
    fn empty_message_is_one_empty_chunk() {
        let chunks = split_message(1, &[], 1024);
        assert_eq!(chunks.len(), 1);
        let mut r = Reassembler::new();
        assert_eq!(r.push(chunks[0]).unwrap(), Some(Vec::new()));
    }

    #[test]
    fn out_of_order_chunks_are_rejected() {
        let msg = [0u8; 10];
        let chunks = split_message(1, &msg, 4);
        let mut r = Reassembler::new();
        r.push(chunks[0]).unwrap();
        assert!(r.push(chunks[2]).is_err());
    }

    #[test]
    fn interleaved_streams_are_rejected() {
        let msg = [0u8; 10];
        let a = split_message(1, &msg, 4);
        let b = split_message(2, &msg, 4);
        let mut r = Reassembler::new();
        r.push(a[0]).unwrap();
        assert!(r.push(b[1]).is_err());
    }

    #[test]
    fn duplicate_chunk_is_rejected() {
        let msg = [0u8; 10];
        let chunks = split_message(1, &msg, 4);
        let mut r = Reassembler::new();
        r.push(chunks[0]).unwrap();
        assert!(r.push(chunks[0]).is_err());
    }

    #[test]
    fn stream_must_start_at_zero() {
        let msg = [0u8; 10];
        let chunks = split_message(1, &msg, 4);
        let mut r = Reassembler::new();
        assert!(r.push(chunks[1]).is_err());
    }

    #[test]
    fn reset_resynchronises_after_a_lost_chunk() {
        let msg = [7u8; 12];
        let chunks = split_message(5, &msg, 4);
        let mut r = Reassembler::new();
        r.push(chunks[0]).unwrap();
        assert!(r.in_progress());
        // chunks[1] is lost; chunks[2] errors, reset recovers the slot.
        assert!(r.push(chunks[2]).is_err());
        r.reset();
        assert!(!r.in_progress());
        let next = split_message(6, &msg, 4);
        let mut out = None;
        for c in next {
            out = r.push(c).unwrap();
        }
        assert_eq!(out.unwrap(), msg);
    }

    #[test]
    fn reassembler_is_reusable_across_streams() {
        let mut r = Reassembler::new();
        for stream in 0..3u64 {
            let msg = vec![stream as u8; 9];
            let mut out = None;
            for c in split_message(stream, &msg, 4) {
                out = r.push(c).unwrap();
            }
            assert_eq!(out.unwrap(), msg);
        }
    }
}
