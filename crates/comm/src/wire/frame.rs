//! Versioned, self-describing frames for the negotiated wire protocol.
//!
//! Every logical message on a codec-enabled link is wrapped in a 4-byte
//! header — magic `b"AW"`, a protocol version, and a [`FrameKind`] — before
//! being chunked onto the transport. Self-describing frames are what make
//! the codec negotiation loss-tolerant: a peer never has to *know* whether
//! the other side compressed, it reads the kind byte. A client whose
//! [`super::pipeline::CodecHello`] was dropped simply keeps sending
//! [`FrameKind::Plain`] uploads and the server keeps decoding them.
//!
//! The body is borrowed on decode ([`Frame`] holds `&[u8]`), so unwrapping
//! a frame costs four bytes of header inspection and no copy.

use super::codec::WireError;

/// Two-byte frame magic (`b"AW"`, "APPFL wire").
pub const FRAME_MAGIC: [u8; 2] = *b"AW";

/// Current frame protocol version.
pub const FRAME_VERSION: u8 = 1;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Server → client codec offer ([`super::pipeline::CodecHello`]).
    Hello = 1,
    /// Client → server codec acceptance ([`super::pipeline::CodecAck`]).
    Ack = 2,
    /// An uncompressed protobuf message (the pre-codec wire format).
    Plain = 3,
    /// A codec-pipeline blob ([`super::pipeline::CodedUpload`]).
    Coded = 4,
}

impl FrameKind {
    fn from_u8(v: u8) -> Option<FrameKind> {
        match v {
            1 => Some(FrameKind::Hello),
            2 => Some(FrameKind::Ack),
            3 => Some(FrameKind::Plain),
            4 => Some(FrameKind::Coded),
            _ => None,
        }
    }
}

/// A decoded frame: kind plus a borrowed view of the body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame<'a> {
    /// What the body contains.
    pub kind: FrameKind,
    /// Protocol version from the header.
    pub version: u8,
    /// The framed payload (borrowed from the receive buffer).
    pub body: &'a [u8],
}

impl<'a> Frame<'a> {
    /// Wraps `body` in a frame header.
    pub fn encode(kind: FrameKind, body: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + body.len());
        out.extend_from_slice(&FRAME_MAGIC);
        out.push(FRAME_VERSION);
        out.push(kind as u8);
        out.extend_from_slice(body);
        out
    }

    /// Parses a frame header, borrowing the body from `buf`.
    pub fn decode(buf: &'a [u8]) -> Result<Frame<'a>, WireError> {
        if buf.len() < 4 {
            return Err(WireError::Truncated);
        }
        if buf[..2] != FRAME_MAGIC {
            return Err(WireError::Invalid("bad frame magic".into()));
        }
        let version = buf[2];
        if version == 0 || version > FRAME_VERSION {
            return Err(WireError::Invalid(format!(
                "unsupported frame version {version}"
            )));
        }
        let kind = FrameKind::from_u8(buf[3])
            .ok_or_else(|| WireError::Invalid(format!("unknown frame kind {}", buf[3])))?;
        Ok(Frame {
            kind,
            version,
            body: &buf[4..],
        })
    }

    /// Whether `buf` even looks like a frame (magic check only) — used to
    /// tell framed traffic apart from legacy raw protobuf on mixed links.
    pub fn looks_framed(buf: &[u8]) -> bool {
        buf.len() >= 4 && buf[..2] == FRAME_MAGIC
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_kinds() {
        for kind in [
            FrameKind::Hello,
            FrameKind::Ack,
            FrameKind::Plain,
            FrameKind::Coded,
        ] {
            let buf = Frame::encode(kind, b"payload");
            let f = Frame::decode(&buf).unwrap();
            assert_eq!(f.kind, kind);
            assert_eq!(f.version, FRAME_VERSION);
            assert_eq!(f.body, b"payload");
        }
    }

    #[test]
    fn body_is_borrowed_not_copied() {
        let buf = Frame::encode(FrameKind::Plain, &[5u8; 32]);
        let f = Frame::decode(&buf).unwrap();
        let range = buf.as_ptr() as usize..buf.as_ptr() as usize + buf.len();
        assert!(range.contains(&(f.body.as_ptr() as usize)));
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(Frame::decode(&[]), Err(WireError::Truncated));
        assert_eq!(Frame::decode(b"AW"), Err(WireError::Truncated));
        assert!(matches!(
            Frame::decode(b"XXxxxx"),
            Err(WireError::Invalid(_))
        ));
        // Version 0 and future versions are refused.
        assert!(matches!(
            Frame::decode(&[b'A', b'W', 0, 3]),
            Err(WireError::Invalid(_))
        ));
        assert!(matches!(
            Frame::decode(&[b'A', b'W', 9, 3]),
            Err(WireError::Invalid(_))
        ));
        // Unknown kind byte.
        assert!(matches!(
            Frame::decode(&[b'A', b'W', 1, 99]),
            Err(WireError::Invalid(_))
        ));
    }

    #[test]
    fn empty_body_is_fine() {
        let buf = Frame::encode(FrameKind::Ack, &[]);
        let f = Frame::decode(&buf).unwrap();
        assert!(f.body.is_empty());
    }
}
