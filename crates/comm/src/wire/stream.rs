//! Chunked message streaming over any [`Communicator`].
//!
//! Every logical message on a wire-configured link travels as a sequence
//! of [`Chunk`]s (one `send` per chunk), so large models never hit a
//! transport's unary-size cap and the fault injector's per-message faults
//! hit individual chunks, exactly as a lossy network would. The helpers
//! here do the splitting, the strict reassembly, and the *resynchronise*
//! step a lossy link needs: when a chunk goes missing the current stream
//! is unrecoverable, but the next stream must still be receivable — the
//! reassembler is reset, and a chunk that starts a new stream (`seq == 0`)
//! is re-fed so the fresh stream is not lost with the old one.

use super::chunking::{split_message, Chunk, Reassembler};
use crate::transport::{CommError, Communicator};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Sends `message` to `to` as chunks of at most `chunk_bytes` payload.
/// Returns the total bytes actually put on the wire (chunk framing
/// included) for telemetry.
pub fn send_chunked<C: Communicator + ?Sized>(
    comm: &C,
    to: usize,
    message: &[u8],
    chunk_bytes: usize,
    stream_id: u64,
) -> Result<usize, CommError> {
    let mut sent = 0;
    for chunk in split_message(stream_id, message, chunk_bytes) {
        let buf = chunk.encode();
        sent += buf.len();
        comm.send(to, buf)?;
    }
    Ok(sent)
}

/// Feeds one received buffer into a reassembler with loss resync: a chunk
/// that cannot extend the current stream resets it, and if that chunk
/// *starts* a new stream it is re-fed so the new stream survives the old
/// one's loss. Returns the completed message, if any.
fn push_with_resync(
    r: &mut Reassembler,
    buf: &[u8],
) -> Result<Option<Vec<u8>>, CommError> {
    let chunk = Chunk::decode(buf).map_err(|e| {
        r.reset();
        CommError::Frame(e.to_string())
    })?;
    match r.push(chunk) {
        Ok(done) => Ok(done),
        Err(_) if chunk.seq == 0 => {
            // The in-flight stream lost a chunk; this one opens the next.
            r.reset();
            r.push(chunk).map_err(|e| CommError::Frame(e.to_string()))
        }
        Err(e) => {
            r.reset();
            Err(CommError::Frame(e.to_string()))
        }
    }
}

/// Receives one complete chunked message from `from`, blocking.
pub fn recv_chunked<C: Communicator + ?Sized>(
    comm: &C,
    from: usize,
    r: &mut Reassembler,
) -> Result<Vec<u8>, CommError> {
    loop {
        let buf = comm.recv(from)?;
        if let Some(message) = push_with_resync(r, &buf)? {
            return Ok(message);
        }
    }
}

/// Receives one complete chunked message from `from` within `timeout`
/// (the deadline covers the whole message, not each chunk).
pub fn recv_chunked_timeout<C: Communicator + ?Sized>(
    comm: &C,
    from: usize,
    r: &mut Reassembler,
    timeout: Duration,
) -> Result<Vec<u8>, CommError> {
    let deadline = Instant::now() + timeout;
    loop {
        let remaining = deadline
            .checked_duration_since(Instant::now())
            .ok_or(CommError::Timeout { peer: Some(from) })?;
        let buf = comm.recv_timeout(from, remaining)?;
        if let Some(message) = push_with_resync(r, &buf)? {
            return Ok(message);
        }
    }
}

/// Per-peer reassembly for a server multiplexing `recv_any`: one
/// [`Reassembler`] slot per peer, with the same loss-resync policy.
#[derive(Debug, Default)]
pub struct ChunkDemux {
    slots: HashMap<usize, Reassembler>,
}

impl ChunkDemux {
    /// An empty demultiplexer.
    pub fn new() -> Self {
        ChunkDemux::default()
    }

    /// Feeds one raw buffer received from `peer`. Returns the completed
    /// message once that peer's stream closes.
    pub fn push(&mut self, peer: usize, buf: &[u8]) -> Result<Option<Vec<u8>>, CommError> {
        push_with_resync(self.slots.entry(peer).or_default(), buf)
    }

    /// Drops any partial stream from `peer` (e.g. when the roster evicts
    /// it mid-round).
    pub fn reset_peer(&mut self, peer: usize) {
        if let Some(r) = self.slots.get_mut(&peer) {
            r.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::InProcNetwork;

    #[test]
    fn chunked_send_recv_roundtrip() {
        let mut net = InProcNetwork::new(2);
        let b = net.pop().unwrap();
        let a = net.pop().unwrap();
        let message: Vec<u8> = (0..10_000).map(|i| (i % 255) as u8).collect();
        let sent = send_chunked(&a, 1, &message, 512, 7).unwrap();
        assert!(sent > message.len(), "chunk framing adds overhead");
        let mut r = Reassembler::new();
        assert_eq!(recv_chunked(&b, 0, &mut r).unwrap(), message);
    }

    #[test]
    fn lost_chunk_resyncs_on_the_next_stream() {
        let mut r = Reassembler::new();
        let msg_a = vec![1u8; 100];
        let msg_b = vec![2u8; 100];
        let chunks_a = split_message(1, &msg_a, 40);
        // First chunk of stream 1 arrives, the rest are lost.
        let buf = chunks_a[0].encode();
        assert_eq!(push_with_resync(&mut r, &buf).unwrap(), None);
        // Stream 2 arrives complete: its first chunk collides with the
        // half-open stream, resync recovers it, and the message lands.
        let mut out = None;
        for c in split_message(2, &msg_b, 40) {
            let buf = c.encode();
            out = push_with_resync(&mut r, &buf).unwrap();
        }
        assert_eq!(out.unwrap(), msg_b);
    }

    #[test]
    fn mid_stream_garbage_is_a_clean_frame_error() {
        let mut r = Reassembler::new();
        assert!(matches!(
            push_with_resync(&mut r, &[0xFF, 0xFF, 0xFF]),
            Err(CommError::Frame(_))
        ));
        // And the slot is usable again afterwards.
        let msg = vec![9u8; 30];
        let mut out = None;
        for c in split_message(3, &msg, 16) {
            let buf = c.encode();
            out = push_with_resync(&mut r, &buf).unwrap();
        }
        assert_eq!(out.unwrap(), msg);
    }

    #[test]
    fn demux_keeps_per_peer_streams_apart() {
        let mut d = ChunkDemux::new();
        let msg_a = vec![7u8; 50];
        let msg_b = vec![8u8; 70];
        let chunks_a: Vec<Vec<u8>> = split_message(1, &msg_a, 16).iter().map(Chunk::encode).collect();
        let chunks_b: Vec<Vec<u8>> = split_message(1, &msg_b, 16).iter().map(Chunk::encode).collect();
        // Interleave peers 1 and 2 — per-peer slots keep them apart even
        // with the same stream id.
        let mut done_a = None;
        let mut done_b = None;
        for i in 0..chunks_a.len().max(chunks_b.len()) {
            if let Some(c) = chunks_a.get(i) {
                done_a = d.push(1, c).unwrap().or(done_a);
            }
            if let Some(c) = chunks_b.get(i) {
                done_b = d.push(2, c).unwrap().or(done_b);
            }
        }
        assert_eq!(done_a.unwrap(), msg_a);
        assert_eq!(done_b.unwrap(), msg_b);
    }

    #[test]
    fn timeout_covers_the_whole_message() {
        let mut net = InProcNetwork::new(2);
        let b = net.pop().unwrap();
        let a = net.pop().unwrap();
        let msg = vec![1u8; 100];
        // Send only the first chunk: the receiver must time out rather
        // than block forever waiting for the rest.
        let chunks = split_message(9, &msg, 40);
        a.send(1, chunks[0].encode()).unwrap();
        let mut r = Reassembler::new();
        let err = recv_chunked_timeout(&b, 0, &mut r, Duration::from_millis(50)).unwrap_err();
        assert!(matches!(err, CommError::Timeout { .. }), "{err:?}");
    }
}
