//! The gRPC message schema of an APPFL deployment.
//!
//! Mirrors the reference framework's protobuf service surface: clients
//! request the current global weights, stream back `LearningResults`
//! carrying their primal (and, for ICEADMM, dual) tensors, and signal job
//! completion. The byte sizes these encoders produce are exactly what the
//! communication experiments charge to the gRPC cost model — and they make
//! the IIADMM-vs-ICEADMM traffic ablation concrete: ICEADMM's results carry
//! a second tensor list.

use super::codec::{WireError, WireReader, WireWriter};

/// A named tensor on the wire: shape as packed varints, data as packed
/// little-endian floats (proto3 `repeated float` packing).
#[derive(Debug, Clone, PartialEq)]
pub struct TensorMsg {
    /// Layer/parameter name (e.g. `"conv1.weight"`).
    pub name: String,
    /// Dimension extents.
    pub shape: Vec<u64>,
    /// Row-major values.
    pub data: Vec<f32>,
}

impl TensorMsg {
    /// A tensor message over a flat vector (rank 1).
    pub fn flat(name: impl Into<String>, data: Vec<f32>) -> Self {
        TensorMsg {
            name: name.into(),
            shape: vec![data.len() as u64],
            data,
        }
    }

    /// Encodes to protobuf bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::with_capacity(self.data.len() * 4 + self.name.len() + 16);
        w.string(1, &self.name);
        w.packed_uints(2, &self.shape);
        w.packed_floats(3, &self.data);
        w.finish()
    }

    /// Decodes from protobuf bytes, validating shape/data consistency.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut name = None;
        let mut shape = Vec::new();
        let mut data = Vec::new();
        let mut r = WireReader::new(buf);
        while let Some((f, v)) = r.next_field()? {
            match f {
                1 => {
                    name = Some(
                        String::from_utf8(v.as_bytes(f)?.to_vec())
                            .map_err(|_| WireError::Invalid("tensor name not UTF-8".into()))?,
                    )
                }
                2 => shape = v.as_packed_uints(f)?,
                3 => data = v.as_packed_floats(f)?,
                _ => {} // unknown fields are skipped, proto3 style
            }
        }
        let name = name.ok_or(WireError::MissingField("name"))?;
        let numel: u64 = shape.iter().product();
        if numel != data.len() as u64 {
            return Err(WireError::Invalid(format!(
                "shape implies {numel} elements, payload has {}",
                data.len()
            )));
        }
        Ok(TensorMsg { name, shape, data })
    }
}

/// Client → server request for the round-`round` global model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightRequest {
    /// Requesting client id.
    pub client_id: u32,
    /// Communication round.
    pub round: u32,
}

impl WeightRequest {
    /// Encodes to protobuf bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.uint(1, u64::from(self.client_id));
        w.uint(2, u64::from(self.round));
        w.finish()
    }

    /// Decodes from protobuf bytes.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let (mut client_id, mut round) = (None, None);
        let mut r = WireReader::new(buf);
        while let Some((f, v)) = r.next_field()? {
            match f {
                1 => client_id = Some(v.as_uint(f)? as u32),
                2 => round = Some(v.as_uint(f)? as u32),
                _ => {}
            }
        }
        Ok(WeightRequest {
            client_id: client_id.ok_or(WireError::MissingField("client_id"))?,
            round: round.ok_or(WireError::MissingField("round"))?,
        })
    }
}

/// Client → server upload of one round's local training output.
///
/// For IIADMM `dual` is empty (the server mirrors the dual update locally —
/// the paper's headline communication saving); for ICEADMM it carries the
/// client's λ_p tensors.
#[derive(Debug, Clone, PartialEq)]
pub struct LearningResults {
    /// Reporting client id.
    pub client_id: u32,
    /// Communication round.
    pub round: u32,
    /// Penalty parameter ρ used this round (needed by adaptive servers).
    pub penalty: f64,
    /// Primal tensors `z_p`.
    pub primal: Vec<TensorMsg>,
    /// Dual tensors `λ_p` (ICEADMM only).
    pub dual: Vec<TensorMsg>,
}

impl LearningResults {
    /// Encodes to protobuf bytes.
    pub fn encode(&self) -> Vec<u8> {
        let payload: usize = self
            .primal
            .iter()
            .chain(self.dual.iter())
            .map(|t| t.data.len() * 4 + 32)
            .sum();
        let mut w = WireWriter::with_capacity(payload + 32);
        w.uint(1, u64::from(self.client_id));
        w.uint(2, u64::from(self.round));
        w.double(3, self.penalty);
        for t in &self.primal {
            w.message(4, &t.encode());
        }
        for t in &self.dual {
            w.message(5, &t.encode());
        }
        w.finish()
    }

    /// Decodes from protobuf bytes.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let (mut client_id, mut round, mut penalty) = (None, None, 0.0f64);
        let mut primal = Vec::new();
        let mut dual = Vec::new();
        let mut r = WireReader::new(buf);
        while let Some((f, v)) = r.next_field()? {
            match f {
                1 => client_id = Some(v.as_uint(f)? as u32),
                2 => round = Some(v.as_uint(f)? as u32),
                3 => penalty = v.as_double(f)?,
                4 => primal.push(TensorMsg::decode(v.as_bytes(f)?)?),
                5 => dual.push(TensorMsg::decode(v.as_bytes(f)?)?),
                _ => {}
            }
        }
        Ok(LearningResults {
            client_id: client_id.ok_or(WireError::MissingField("client_id"))?,
            round: round.ok_or(WireError::MissingField("round"))?,
            penalty,
            primal,
            dual,
        })
    }

    /// Total tensor payload in bytes (the number the comm ablation reports).
    pub fn payload_bytes(&self) -> usize {
        self.primal
            .iter()
            .chain(self.dual.iter())
            .map(|t| t.data.len() * 4)
            .sum()
    }
}

/// Server → client reply carrying the current global model.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalWeights {
    /// Round the weights belong to.
    pub round: u32,
    /// Whether the job has finished (clients should stop polling).
    pub finished: bool,
    /// Model tensors.
    pub tensors: Vec<TensorMsg>,
}

impl GlobalWeights {
    /// Encodes to protobuf bytes.
    pub fn encode(&self) -> Vec<u8> {
        let payload: usize = self.tensors.iter().map(|t| t.data.len() * 4 + 32).sum();
        let mut w = WireWriter::with_capacity(payload + 16);
        w.uint(1, u64::from(self.round));
        w.uint(2, u64::from(self.finished));
        for t in &self.tensors {
            w.message(3, &t.encode());
        }
        w.finish()
    }

    /// Decodes from protobuf bytes.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut round = None;
        let mut finished = false;
        let mut tensors = Vec::new();
        let mut r = WireReader::new(buf);
        while let Some((f, v)) = r.next_field()? {
            match f {
                1 => round = Some(v.as_uint(f)? as u32),
                2 => finished = v.as_uint(f)? != 0,
                3 => tensors.push(TensorMsg::decode(v.as_bytes(f)?)?),
                _ => {}
            }
        }
        Ok(GlobalWeights {
            round: round.ok_or(WireError::MissingField("round"))?,
            finished,
            tensors,
        })
    }
}

/// Client → server end-of-job notification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobDone {
    /// Finishing client id.
    pub client_id: u32,
}

impl JobDone {
    /// Encodes to protobuf bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.uint(1, u64::from(self.client_id));
        w.finish()
    }

    /// Decodes from protobuf bytes.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut client_id = None;
        let mut r = WireReader::new(buf);
        while let Some((f, v)) = r.next_field()? {
            if f == 1 {
                client_id = Some(v.as_uint(f)? as u32);
            }
        }
        Ok(JobDone {
            client_id: client_id.ok_or(WireError::MissingField("client_id"))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor(n: usize) -> TensorMsg {
        TensorMsg::flat("layer.weight", (0..n).map(|i| i as f32).collect())
    }

    #[test]
    fn tensor_roundtrip() {
        let t = TensorMsg {
            name: "conv1.weight".into(),
            shape: vec![4, 3, 3, 3],
            data: (0..108).map(|i| i as f32 * 0.1).collect(),
        };
        let decoded = TensorMsg::decode(&t.encode()).unwrap();
        assert_eq!(decoded, t);
    }

    #[test]
    fn tensor_rejects_shape_mismatch() {
        let mut w = WireWriter::new();
        w.string(1, "bad");
        w.packed_uints(2, &[5]);
        w.packed_floats(3, &[1.0, 2.0]);
        assert!(matches!(
            TensorMsg::decode(&w.finish()),
            Err(WireError::Invalid(_))
        ));
    }

    #[test]
    fn tensor_requires_name() {
        let mut w = WireWriter::new();
        w.packed_uints(2, &[0]);
        assert_eq!(
            TensorMsg::decode(&w.finish()),
            Err(WireError::MissingField("name"))
        );
    }

    #[test]
    fn weight_request_roundtrip() {
        let m = WeightRequest {
            client_id: 150,
            round: 49,
        };
        assert_eq!(WeightRequest::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn learning_results_roundtrip_and_payload() {
        let m = LearningResults {
            client_id: 3,
            round: 12,
            penalty: 0.5,
            primal: vec![tensor(100)],
            dual: vec![tensor(100)],
        };
        let decoded = LearningResults::decode(&m.encode()).unwrap();
        assert_eq!(decoded, m);
        assert_eq!(m.payload_bytes(), 800);
    }

    #[test]
    fn iiadmm_results_are_half_the_bytes_of_iceadmm() {
        // The paper's headline: IIADMM sends only primal; ICEADMM primal+dual.
        let primal_only = LearningResults {
            client_id: 0,
            round: 0,
            penalty: 1.0,
            primal: vec![tensor(10_000)],
            dual: vec![],
        };
        let with_dual = LearningResults {
            dual: vec![tensor(10_000)],
            ..primal_only.clone()
        };
        let a = primal_only.encode().len();
        let b = with_dual.encode().len();
        assert!(b as f64 / a as f64 > 1.95, "{b} vs {a}");
    }

    #[test]
    fn job_done_roundtrip() {
        let m = JobDone { client_id: 202 };
        assert_eq!(JobDone::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn unknown_fields_are_ignored() {
        let mut w = WireWriter::new();
        w.uint(1, 7).uint(2, 3).uint(99, 1234);
        let m = WeightRequest::decode(&w.finish()).unwrap();
        assert_eq!(m.client_id, 7);
    }
}
