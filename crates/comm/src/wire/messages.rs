//! The gRPC message schema of an APPFL deployment.
//!
//! Mirrors the reference framework's protobuf service surface: clients
//! request the current global weights, stream back `LearningResults`
//! carrying their primal (and, for ICEADMM, dual) tensors, and signal job
//! completion. The byte sizes these encoders produce are exactly what the
//! communication experiments charge to the gRPC cost model — and they make
//! the IIADMM-vs-ICEADMM traffic ablation concrete: ICEADMM's results carry
//! a second tensor list.

use super::codec::{WireError, WireReader, WireWriter};
use super::varint::varint_len;

/// A named tensor on the wire: shape as packed varints, data as packed
/// little-endian floats (proto3 `repeated float` packing).
#[derive(Debug, Clone, PartialEq)]
pub struct TensorMsg {
    /// Layer/parameter name (e.g. `"conv1.weight"`).
    pub name: String,
    /// Dimension extents.
    pub shape: Vec<u64>,
    /// Row-major values.
    pub data: Vec<f32>,
}

impl TensorMsg {
    /// A tensor message over a flat vector (rank 1).
    pub fn flat(name: impl Into<String>, data: Vec<f32>) -> Self {
        TensorMsg {
            name: name.into(),
            shape: vec![data.len() as u64],
            data,
        }
    }

    /// Exact encoded size in bytes (every field is fixed-width or
    /// varint-over-known-value), so containing messages can embed this
    /// tensor with a length prefix in a single pass.
    pub fn encoded_len(&self) -> usize {
        let name_len = self.name.len();
        let shape_body: usize = self.shape.iter().map(|&d| varint_len(d)).sum();
        let data_body = self.data.len() * 4;
        1 + varint_len(name_len as u64) + name_len
            + 1 + varint_len(shape_body as u64) + shape_body
            + 1 + varint_len(data_body as u64) + data_body
    }

    /// Writes the tensor's fields into `w` (no intermediate buffer).
    pub fn write_into(&self, w: &mut WireWriter) {
        w.string(1, &self.name);
        w.packed_uints(2, &self.shape);
        w.packed_floats(3, &self.data);
    }

    /// Encodes to protobuf bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::with_capacity(self.encoded_len());
        self.write_into(&mut w);
        debug_assert_eq!(w.len(), self.encoded_len());
        w.finish()
    }

    /// Decodes from protobuf bytes, validating shape/data consistency.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut name = None;
        let mut shape = Vec::new();
        let mut data = Vec::new();
        let mut r = WireReader::new(buf);
        while let Some((f, v)) = r.next_field()? {
            match f {
                1 => {
                    name = Some(
                        String::from_utf8(v.as_bytes(f)?.to_vec())
                            .map_err(|_| WireError::Invalid("tensor name not UTF-8".into()))?,
                    )
                }
                2 => shape = v.as_packed_uints(f)?,
                3 => data = v.as_packed_floats(f)?,
                _ => {} // unknown fields are skipped, proto3 style
            }
        }
        let name = name.ok_or(WireError::MissingField("name"))?;
        let numel: u64 = shape.iter().product();
        if numel != data.len() as u64 {
            return Err(WireError::Invalid(format!(
                "shape implies {numel} elements, payload has {}",
                data.len()
            )));
        }
        Ok(TensorMsg { name, shape, data })
    }
}

/// Zero-copy encoder for a flat (rank-1) tensor: borrows the name and the
/// parameter slice, and serialises the floats straight from the borrowed
/// data into their wire position. Produces bytes identical to
/// `TensorMsg::flat(name, data.to_vec()).encode()` — without cloning the
/// parameter vector first, which is the hot-path cost on every broadcast
/// and upload.
#[derive(Debug, Clone, Copy)]
pub struct TensorMsgRef<'a> {
    name: &'a str,
    shape: [u64; 1],
    data: &'a [f32],
}

impl<'a> TensorMsgRef<'a> {
    /// A flat tensor view over a parameter slice.
    pub fn flat(name: &'a str, data: &'a [f32]) -> Self {
        TensorMsgRef {
            name,
            shape: [data.len() as u64],
            data,
        }
    }

    /// Exact encoded size in bytes. Every field is either fixed-width
    /// (floats) or varint-over-known-value, so the length is computable
    /// without serialising — that is what lets containing messages embed
    /// this tensor with a length prefix in a single pass.
    pub fn encoded_len(&self) -> usize {
        let name_len = self.name.len();
        let shape_body: usize = self.shape.iter().map(|&d| varint_len(d)).sum();
        let data_body = self.data.len() * 4;
        1 + varint_len(name_len as u64) + name_len
            + 1 + varint_len(shape_body as u64) + shape_body
            + 1 + varint_len(data_body as u64) + data_body
    }

    /// Writes the tensor's fields into `w` (no intermediate buffer).
    pub fn write_into(&self, w: &mut WireWriter) {
        w.string(1, self.name);
        w.packed_uints(2, &self.shape);
        w.packed_floats(3, self.data);
    }

    /// Encodes to a standalone buffer, sized exactly.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::with_capacity(self.encoded_len());
        self.write_into(&mut w);
        debug_assert_eq!(w.len(), self.encoded_len());
        w.finish()
    }
}

/// Zero-copy encoder for a client upload: borrows the primal (and
/// optional dual) parameter slices and serialises them directly, with the
/// nested tensor lengths precomputed so no per-tensor buffer is built.
/// Byte-identical to the equivalent [`LearningResults`] encoding.
#[derive(Debug, Clone, Copy)]
pub struct LearningResultsRef<'a> {
    /// Reporting client id.
    pub client_id: u32,
    /// Communication round.
    pub round: u32,
    /// Penalty parameter ρ (or the local loss, per the runner's contract).
    pub penalty: f64,
    /// The primal parameter slice.
    pub primal: TensorMsgRef<'a>,
    /// The dual parameter slice (ICEADMM only).
    pub dual: Option<TensorMsgRef<'a>>,
}

impl LearningResultsRef<'_> {
    /// Encodes to protobuf bytes in one pass.
    pub fn encode(&self) -> Vec<u8> {
        let primal_len = self.primal.encoded_len();
        let dual_len = self.dual.map(|d| d.encoded_len());
        let mut cap = 1
            + varint_len(u64::from(self.client_id))
            + 1
            + varint_len(u64::from(self.round))
            + 9
            + 1
            + varint_len(primal_len as u64)
            + primal_len;
        if let Some(dl) = dual_len {
            cap += 1 + varint_len(dl as u64) + dl;
        }
        let mut w = WireWriter::with_capacity(cap);
        w.uint(1, u64::from(self.client_id));
        w.uint(2, u64::from(self.round));
        w.double(3, self.penalty);
        let primal = self.primal;
        w.message_with(4, primal_len, |w| primal.write_into(w));
        if let (Some(dual), Some(dl)) = (self.dual, dual_len) {
            w.message_with(5, dl, |w| dual.write_into(w));
        }
        debug_assert_eq!(w.len(), cap);
        w.finish()
    }
}

/// Zero-copy encoder for a global-model broadcast carrying one flat
/// tensor, serialised straight from the server's parameter vector.
/// Byte-identical to the equivalent [`GlobalWeights`] encoding.
#[derive(Debug, Clone, Copy)]
pub struct GlobalWeightsRef<'a> {
    /// Round the weights belong to.
    pub round: u32,
    /// Whether the job has finished.
    pub finished: bool,
    /// The model parameter slice.
    pub tensor: TensorMsgRef<'a>,
}

impl GlobalWeightsRef<'_> {
    /// Encodes to protobuf bytes in one pass.
    pub fn encode(&self) -> Vec<u8> {
        let tensor_len = self.tensor.encoded_len();
        let cap = 1
            + varint_len(u64::from(self.round))
            + 2
            + 1
            + varint_len(tensor_len as u64)
            + tensor_len;
        let mut w = WireWriter::with_capacity(cap);
        w.uint(1, u64::from(self.round));
        w.uint(2, u64::from(self.finished));
        let tensor = self.tensor;
        w.message_with(3, tensor_len, |w| tensor.write_into(w));
        debug_assert_eq!(w.len(), cap);
        w.finish()
    }
}

/// Client → server request for the round-`round` global model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightRequest {
    /// Requesting client id.
    pub client_id: u32,
    /// Communication round.
    pub round: u32,
}

impl WeightRequest {
    /// Writes the request's fields into `w`.
    pub fn write_into(&self, w: &mut WireWriter) {
        w.uint(1, u64::from(self.client_id));
        w.uint(2, u64::from(self.round));
    }

    /// Encodes to protobuf bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        self.write_into(&mut w);
        w.finish()
    }

    /// Decodes from protobuf bytes.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let (mut client_id, mut round) = (None, None);
        let mut r = WireReader::new(buf);
        while let Some((f, v)) = r.next_field()? {
            match f {
                1 => client_id = Some(v.as_uint(f)? as u32),
                2 => round = Some(v.as_uint(f)? as u32),
                _ => {}
            }
        }
        Ok(WeightRequest {
            client_id: client_id.ok_or(WireError::MissingField("client_id"))?,
            round: round.ok_or(WireError::MissingField("round"))?,
        })
    }
}

/// Client → server upload of one round's local training output.
///
/// For IIADMM `dual` is empty (the server mirrors the dual update locally —
/// the paper's headline communication saving); for ICEADMM it carries the
/// client's λ_p tensors.
#[derive(Debug, Clone, PartialEq)]
pub struct LearningResults {
    /// Reporting client id.
    pub client_id: u32,
    /// Communication round.
    pub round: u32,
    /// Penalty parameter ρ used this round (needed by adaptive servers).
    pub penalty: f64,
    /// Primal tensors `z_p`.
    pub primal: Vec<TensorMsg>,
    /// Dual tensors `λ_p` (ICEADMM only).
    pub dual: Vec<TensorMsg>,
}

impl LearningResults {
    /// Exact encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        let tensors: usize = self
            .primal
            .iter()
            .chain(self.dual.iter())
            .map(|t| {
                let tl = t.encoded_len();
                1 + varint_len(tl as u64) + tl
            })
            .sum();
        1 + varint_len(u64::from(self.client_id)) + 1 + varint_len(u64::from(self.round)) + 9
            + tensors
    }

    /// Writes the upload's fields into `w`, serialising each tensor
    /// directly into its wire position (no per-tensor buffer).
    pub fn write_into(&self, w: &mut WireWriter) {
        w.uint(1, u64::from(self.client_id));
        w.uint(2, u64::from(self.round));
        w.double(3, self.penalty);
        for t in &self.primal {
            w.message_with(4, t.encoded_len(), |w| t.write_into(w));
        }
        for t in &self.dual {
            w.message_with(5, t.encoded_len(), |w| t.write_into(w));
        }
    }

    /// Encodes to protobuf bytes in one pass.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::with_capacity(self.encoded_len());
        self.write_into(&mut w);
        debug_assert_eq!(w.len(), self.encoded_len());
        w.finish()
    }

    /// Decodes from protobuf bytes.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let (mut client_id, mut round, mut penalty) = (None, None, 0.0f64);
        let mut primal = Vec::new();
        let mut dual = Vec::new();
        let mut r = WireReader::new(buf);
        while let Some((f, v)) = r.next_field()? {
            match f {
                1 => client_id = Some(v.as_uint(f)? as u32),
                2 => round = Some(v.as_uint(f)? as u32),
                3 => penalty = v.as_double(f)?,
                4 => primal.push(TensorMsg::decode(v.as_bytes(f)?)?),
                5 => dual.push(TensorMsg::decode(v.as_bytes(f)?)?),
                _ => {}
            }
        }
        Ok(LearningResults {
            client_id: client_id.ok_or(WireError::MissingField("client_id"))?,
            round: round.ok_or(WireError::MissingField("round"))?,
            penalty,
            primal,
            dual,
        })
    }

    /// Total tensor payload in bytes (the number the comm ablation reports).
    pub fn payload_bytes(&self) -> usize {
        self.primal
            .iter()
            .chain(self.dual.iter())
            .map(|t| t.data.len() * 4)
            .sum()
    }
}

/// Server → client reply carrying the current global model.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalWeights {
    /// Round the weights belong to.
    pub round: u32,
    /// Whether the job has finished (clients should stop polling).
    pub finished: bool,
    /// Model tensors.
    pub tensors: Vec<TensorMsg>,
}

impl GlobalWeights {
    /// Exact encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        let tensors: usize = self
            .tensors
            .iter()
            .map(|t| {
                let tl = t.encoded_len();
                1 + varint_len(tl as u64) + tl
            })
            .sum();
        1 + varint_len(u64::from(self.round)) + 2 + tensors
    }

    /// Writes the broadcast's fields into `w`, serialising each tensor
    /// directly into its wire position (no per-tensor buffer).
    pub fn write_into(&self, w: &mut WireWriter) {
        w.uint(1, u64::from(self.round));
        w.uint(2, u64::from(self.finished));
        for t in &self.tensors {
            w.message_with(3, t.encoded_len(), |w| t.write_into(w));
        }
    }

    /// Encodes to protobuf bytes in one pass.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::with_capacity(self.encoded_len());
        self.write_into(&mut w);
        debug_assert_eq!(w.len(), self.encoded_len());
        w.finish()
    }

    /// Decodes from protobuf bytes.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut round = None;
        let mut finished = false;
        let mut tensors = Vec::new();
        let mut r = WireReader::new(buf);
        while let Some((f, v)) = r.next_field()? {
            match f {
                1 => round = Some(v.as_uint(f)? as u32),
                2 => finished = v.as_uint(f)? != 0,
                3 => tensors.push(TensorMsg::decode(v.as_bytes(f)?)?),
                _ => {}
            }
        }
        Ok(GlobalWeights {
            round: round.ok_or(WireError::MissingField("round"))?,
            finished,
            tensors,
        })
    }
}

/// Client → server end-of-job notification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobDone {
    /// Finishing client id.
    pub client_id: u32,
}

impl JobDone {
    /// Writes the notification's fields into `w`.
    pub fn write_into(&self, w: &mut WireWriter) {
        w.uint(1, u64::from(self.client_id));
    }

    /// Encodes to protobuf bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        self.write_into(&mut w);
        w.finish()
    }

    /// Decodes from protobuf bytes.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut client_id = None;
        let mut r = WireReader::new(buf);
        while let Some((f, v)) = r.next_field()? {
            if f == 1 {
                client_id = Some(v.as_uint(f)? as u32);
            }
        }
        Ok(JobDone {
            client_id: client_id.ok_or(WireError::MissingField("client_id"))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor(n: usize) -> TensorMsg {
        TensorMsg::flat("layer.weight", (0..n).map(|i| i as f32).collect())
    }

    #[test]
    fn tensor_roundtrip() {
        let t = TensorMsg {
            name: "conv1.weight".into(),
            shape: vec![4, 3, 3, 3],
            data: (0..108).map(|i| i as f32 * 0.1).collect(),
        };
        let decoded = TensorMsg::decode(&t.encode()).unwrap();
        assert_eq!(decoded, t);
    }

    #[test]
    fn tensor_rejects_shape_mismatch() {
        let mut w = WireWriter::new();
        w.string(1, "bad");
        w.packed_uints(2, &[5]);
        w.packed_floats(3, &[1.0, 2.0]);
        assert!(matches!(
            TensorMsg::decode(&w.finish()),
            Err(WireError::Invalid(_))
        ));
    }

    #[test]
    fn tensor_requires_name() {
        let mut w = WireWriter::new();
        w.packed_uints(2, &[0]);
        assert_eq!(
            TensorMsg::decode(&w.finish()),
            Err(WireError::MissingField("name"))
        );
    }

    #[test]
    fn weight_request_roundtrip() {
        let m = WeightRequest {
            client_id: 150,
            round: 49,
        };
        assert_eq!(WeightRequest::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn learning_results_roundtrip_and_payload() {
        let m = LearningResults {
            client_id: 3,
            round: 12,
            penalty: 0.5,
            primal: vec![tensor(100)],
            dual: vec![tensor(100)],
        };
        let decoded = LearningResults::decode(&m.encode()).unwrap();
        assert_eq!(decoded, m);
        assert_eq!(m.payload_bytes(), 800);
    }

    #[test]
    fn iiadmm_results_are_half_the_bytes_of_iceadmm() {
        // The paper's headline: IIADMM sends only primal; ICEADMM primal+dual.
        let primal_only = LearningResults {
            client_id: 0,
            round: 0,
            penalty: 1.0,
            primal: vec![tensor(10_000)],
            dual: vec![],
        };
        let with_dual = LearningResults {
            dual: vec![tensor(10_000)],
            ..primal_only.clone()
        };
        let a = primal_only.encode().len();
        let b = with_dual.encode().len();
        assert!(b as f64 / a as f64 > 1.95, "{b} vs {a}");
    }

    #[test]
    fn job_done_roundtrip() {
        let m = JobDone { client_id: 202 };
        assert_eq!(JobDone::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn tensor_ref_encoding_is_byte_identical_to_owned() {
        for n in [0usize, 1, 100, 5000] {
            let data: Vec<f32> = (0..n).map(|i| i as f32 * 0.3 - 1.0).collect();
            let owned = TensorMsg::flat("global/round7", data.clone()).encode();
            let zero_copy = TensorMsgRef::flat("global/round7", &data);
            assert_eq!(zero_copy.encoded_len(), owned.len(), "n = {n}");
            assert_eq!(zero_copy.encode(), owned, "n = {n}");
        }
    }

    #[test]
    fn learning_results_ref_is_byte_identical_to_owned() {
        let primal: Vec<f32> = (0..777).map(|i| i as f32).collect();
        let dual: Vec<f32> = (0..777).map(|i| -(i as f32)).collect();
        for with_dual in [false, true] {
            let owned = LearningResults {
                client_id: 42,
                round: 260,
                penalty: 0.75,
                primal: vec![TensorMsg::flat("primal", primal.clone())],
                dual: if with_dual {
                    vec![TensorMsg::flat("dual", dual.clone())]
                } else {
                    vec![]
                },
            }
            .encode();
            let zero_copy = LearningResultsRef {
                client_id: 42,
                round: 260,
                penalty: 0.75,
                primal: TensorMsgRef::flat("primal", &primal),
                dual: with_dual.then(|| TensorMsgRef::flat("dual", &dual)),
            }
            .encode();
            assert_eq!(zero_copy, owned, "with_dual = {with_dual}");
        }
    }

    #[test]
    fn global_weights_ref_is_byte_identical_to_owned() {
        let w: Vec<f32> = (0..6362).map(|i| (i as f32).sin()).collect();
        for (round, finished) in [(1u32, false), (300, true)] {
            let owned = GlobalWeights {
                round,
                finished,
                tensors: vec![TensorMsg::flat("global", w.clone())],
            }
            .encode();
            let zero_copy = GlobalWeightsRef {
                round,
                finished,
                tensor: TensorMsgRef::flat("global", &w),
            }
            .encode();
            assert_eq!(zero_copy, owned, "round {round}");
        }
    }

    #[test]
    fn unknown_fields_are_ignored() {
        let mut w = WireWriter::new();
        w.uint(1, 7).uint(2, 3).uint(99, 1234);
        let m = WeightRequest::decode(&w.finish()).unwrap();
        assert_eq!(m.client_id, 7);
    }
}
