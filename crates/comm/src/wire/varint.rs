//! Base-128 varints and zigzag encoding (the protobuf integer formats).

/// Maximum bytes a u64 varint can occupy.
pub const MAX_VARINT_LEN: usize = 10;

/// Appends a base-128 varint to `out`.
pub fn encode_varint(mut value: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Exact encoded length of `value` as a varint, without encoding it —
/// lets writers precompute length prefixes and serialise nested messages
/// in one pass, with no intermediate buffer.
pub const fn varint_len(value: u64) -> usize {
    // 1 byte per 7 significant bits; zero still takes one byte.
    (64 - (value | 1).leading_zeros() as usize).div_ceil(7)
}

/// Decodes a varint from the front of `buf`, returning `(value, bytes_read)`.
pub fn decode_varint(buf: &[u8]) -> Option<(u64, usize)> {
    let mut value = 0u64;
    for (i, &byte) in buf.iter().enumerate().take(MAX_VARINT_LEN) {
        value |= u64::from(byte & 0x7F) << (7 * i);
        if byte & 0x80 == 0 {
            // Reject non-canonical 10th byte overflow.
            if i == MAX_VARINT_LEN - 1 && byte > 1 {
                return None;
            }
            return Some((value, i + 1));
        }
    }
    None
}

/// Zigzag-encodes a signed integer so small magnitudes stay small.
pub fn zigzag_encode(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
pub fn zigzag_decode(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_byte_values() {
        for v in [0u64, 1, 127] {
            let mut out = Vec::new();
            encode_varint(v, &mut out);
            assert_eq!(out.len(), 1);
            assert_eq!(decode_varint(&out), Some((v, 1)));
        }
    }

    #[test]
    fn multi_byte_roundtrip() {
        for v in [128u64, 300, 16_384, u32::MAX as u64, u64::MAX] {
            let mut out = Vec::new();
            encode_varint(v, &mut out);
            let (decoded, n) = decode_varint(&out).unwrap();
            assert_eq!(decoded, v);
            assert_eq!(n, out.len());
        }
    }

    #[test]
    fn known_encoding_of_300() {
        // Protobuf documentation example: 300 = 0b1010_1100 0b0000_0010.
        let mut out = Vec::new();
        encode_varint(300, &mut out);
        assert_eq!(out, vec![0xAC, 0x02]);
    }

    #[test]
    fn truncated_input_fails() {
        assert_eq!(decode_varint(&[0x80]), None);
        assert_eq!(decode_varint(&[]), None);
    }

    #[test]
    fn overlong_input_fails() {
        // 11 continuation bytes can't be a valid u64 varint.
        let bad = vec![0xFFu8; 11];
        assert_eq!(decode_varint(&bad), None);
    }

    #[test]
    fn varint_len_matches_encoding() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut out = Vec::new();
            encode_varint(v, &mut out);
            assert_eq!(varint_len(v), out.len(), "value {v}");
        }
    }

    #[test]
    fn zigzag_pairs() {
        // Spec examples: 0→0, -1→1, 1→2, -2→3.
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
        for v in [-1_000_000i64, -1, 0, 1, i64::MAX, i64::MIN] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    #[test]
    fn decode_reports_length_with_trailing_data() {
        let mut out = Vec::new();
        encode_varint(300, &mut out);
        out.extend_from_slice(&[0xDE, 0xAD]);
        assert_eq!(decode_varint(&out), Some((300, 2)));
    }
}
