//! The negotiated wire-codec pipeline: composable, versioned, lossy-but-
//! convergence-preserving update compression.
//!
//! "Advances in APPFL" ships a compressor menu — quantisation,
//! sparsification, residual coding — for exactly one reason: at deployment
//! scale the dominant cost is bytes on the wire. This module turns that
//! menu into a [`CodecStack`]: an ordered list of [`CodecStage`]s applied
//! to the client's update *residual* (update − reference model), where the
//! reference is the round's broadcast that both ends already hold.
//!
//! Stages:
//!
//! * [`CodecStage::TopK`] — magnitude sparsification keeping `permille`/1000
//!   of the coordinates. Paired with **error feedback** in
//!   [`StackEncoder`]: the dropped (and quantisation-rounded) mass is
//!   carried into the next round's residual, so the information is delayed,
//!   never destroyed — the standard fix that preserves convergence.
//! * [`CodecStage::QuantQ8`] / [`CodecStage::QuantQ4`] — per-block (1024
//!   coordinates) symmetric linear quantisation to 8 or 4 bits. Per-block
//!   scaling bounds the pointwise error by `block_max/levels/2` instead of
//!   letting one outlier coordinate flatten the whole tensor's resolution.
//! * [`CodecStage::RunLength`] — PackBits-style run-length coding of the
//!   quantised code bytes (residuals cluster hard around the zero code).
//!
//! A stack is negotiated once per connection: the server offers its
//! supported stacks in a [`CodecHello`], the client picks one and replies
//! with a [`CodecAck`]. Every blob is also *self-describing* (it embeds its
//! own stack descriptor and a version), so a decoder never has to guess —
//! and a lost hello degrades to uncompressed traffic, never to corruption.

use super::codec::{WireError, WireReader, WireWriter};
use crate::compress::sparsify_top_k;
use serde::{Deserialize, Serialize};

/// Version stamped into every [`CodecHello`] and coded blob.
pub const CODEC_VERSION: u8 = 1;

/// Coordinates per quantisation block: each block carries its own scale.
pub const QUANT_BLOCK: usize = 1024;

/// One composable stage of the codec pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CodecStage {
    /// 8-bit per-block symmetric quantisation (~4× on dense residuals).
    QuantQ8,
    /// 4-bit per-block symmetric quantisation (~8× on dense residuals).
    QuantQ4,
    /// Keep the `permille`/1000 largest-magnitude residual coordinates.
    TopK {
        /// Kept fraction in thousandths (1..=1000).
        permille: u16,
    },
    /// PackBits run-length coding over the quantised code bytes.
    RunLength,
}

impl CodecStage {
    /// Quantisation levels per side of zero, if this is a quant stage.
    pub fn levels(&self) -> Option<f32> {
        match self {
            CodecStage::QuantQ8 => Some(127.0),
            CodecStage::QuantQ4 => Some(7.0),
            _ => None,
        }
    }

    fn descriptor_pair(&self) -> (u64, u64) {
        match self {
            CodecStage::QuantQ8 => (1, 0),
            CodecStage::QuantQ4 => (2, 0),
            CodecStage::TopK { permille } => (3, u64::from(*permille)),
            CodecStage::RunLength => (4, 0),
        }
    }

    fn from_descriptor_pair(op: u64, param: u64) -> Result<CodecStage, WireError> {
        match op {
            1 => Ok(CodecStage::QuantQ8),
            2 => Ok(CodecStage::QuantQ4),
            3 => {
                let permille = u16::try_from(param)
                    .ok()
                    .filter(|p| (1..=1000).contains(p))
                    .ok_or_else(|| {
                        WireError::Invalid(format!("top-k permille {param} out of range"))
                    })?;
                Ok(CodecStage::TopK { permille })
            }
            4 => Ok(CodecStage::RunLength),
            other => Err(WireError::Invalid(format!("unknown codec op {other}"))),
        }
    }

    fn label_fragment(&self) -> String {
        match self {
            CodecStage::QuantQ8 => "q8".into(),
            CodecStage::QuantQ4 => "q4".into(),
            CodecStage::TopK { permille } => format!("topk{permille}"),
            CodecStage::RunLength => "rle".into(),
        }
    }
}

/// An ordered, validated stack of codec stages. The empty stack is the
/// identity codec ("none").
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CodecStack {
    /// Stages in application order (sparsify → quantise → entropy-code).
    pub stages: Vec<CodecStage>,
}

impl CodecStack {
    /// The identity stack: no compression.
    pub fn none() -> Self {
        CodecStack::default()
    }

    /// 8-bit quantisation only.
    pub fn int8() -> Self {
        CodecStack {
            stages: vec![CodecStage::QuantQ8],
        }
    }

    /// 4-bit quantisation only.
    pub fn int4() -> Self {
        CodecStack {
            stages: vec![CodecStage::QuantQ4],
        }
    }

    /// Top-k sparsification only (pair with error feedback).
    pub fn top_k(permille: u16) -> Self {
        CodecStack {
            stages: vec![CodecStage::TopK { permille }],
        }
    }

    /// The full pipeline: sparsify, quantise to 8 bits, run-length code.
    pub fn top_k_int8_rle(permille: u16) -> Self {
        CodecStack {
            stages: vec![
                CodecStage::TopK { permille },
                CodecStage::QuantQ8,
                CodecStage::RunLength,
            ],
        }
    }

    /// Whether this is the identity codec.
    pub fn is_identity(&self) -> bool {
        self.stages.is_empty()
    }

    /// Human label for telemetry and reports (`"none"`, `"topk200+q8+rle"`).
    pub fn label(&self) -> String {
        if self.stages.is_empty() {
            return "none".into();
        }
        self.stages
            .iter()
            .map(CodecStage::label_fragment)
            .collect::<Vec<_>>()
            .join("+")
    }

    /// The quant stage, if any.
    fn quant(&self) -> Option<CodecStage> {
        self.stages
            .iter()
            .copied()
            .find(|s| matches!(s, CodecStage::QuantQ8 | CodecStage::QuantQ4))
    }

    /// The top-k stage's permille, if any.
    fn top_k_permille(&self) -> Option<u16> {
        self.stages.iter().find_map(|s| match s {
            CodecStage::TopK { permille } => Some(*permille),
            _ => None,
        })
    }

    fn has_rle(&self) -> bool {
        self.stages.contains(&CodecStage::RunLength)
    }

    /// Checks stage composition rules. Returns a human-readable reason on
    /// rejection (surfaced as a typed config error by the federation
    /// builder).
    pub fn validate(&self) -> Result<(), String> {
        let quants = self
            .stages
            .iter()
            .filter(|s| matches!(s, CodecStage::QuantQ8 | CodecStage::QuantQ4))
            .count();
        if quants > 1 {
            return Err("at most one quantisation stage is allowed".into());
        }
        let topks: Vec<usize> = self
            .stages
            .iter()
            .enumerate()
            .filter_map(|(i, s)| matches!(s, CodecStage::TopK { .. }).then_some(i))
            .collect();
        if topks.len() > 1 {
            return Err("at most one top-k stage is allowed".into());
        }
        if let Some(&ti) = topks.first() {
            if let Some(permille) = self.top_k_permille() {
                if !(1..=1000).contains(&permille) {
                    return Err(format!("top-k permille {permille} outside 1..=1000"));
                }
            }
            if let Some(qi) = self
                .stages
                .iter()
                .position(|s| matches!(s, CodecStage::QuantQ8 | CodecStage::QuantQ4))
            {
                if qi < ti {
                    return Err("top-k must precede quantisation".into());
                }
            }
        }
        if let Some(ri) = self
            .stages
            .iter()
            .position(|s| matches!(s, CodecStage::RunLength))
        {
            if ri != self.stages.len() - 1 {
                return Err("run-length coding must be the last stage".into());
            }
            if self.quant().is_none() {
                return Err("run-length coding requires a quantisation stage".into());
            }
        }
        Ok(())
    }

    /// Flat `(op, param)` descriptor pairs for the wire.
    pub fn descriptor(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.stages.len() * 2);
        for s in &self.stages {
            let (op, param) = s.descriptor_pair();
            out.push(op);
            out.push(param);
        }
        out
    }

    /// Rebuilds a stack from its wire descriptor, re-validating it (the
    /// descriptor may come from an untrusted peer).
    pub fn from_descriptor(pairs: &[u64]) -> Result<CodecStack, WireError> {
        if pairs.len() % 2 != 0 {
            return Err(WireError::Invalid("odd-length codec descriptor".into()));
        }
        let stages = pairs
            .chunks_exact(2)
            .map(|p| CodecStage::from_descriptor_pair(p[0], p[1]))
            .collect::<Result<Vec<_>, _>>()?;
        let stack = CodecStack { stages };
        stack.validate().map_err(WireError::Invalid)?;
        Ok(stack)
    }
}

/// Per-connection wire configuration, negotiated through the typed
/// federation builder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireConfig {
    /// The codec stack to offer (uplink compression).
    pub stack: CodecStack,
    /// Chunk payload size for streaming large messages.
    #[serde(default = "default_chunk_bytes")]
    pub chunk_bytes: usize,
    /// Whether clients carry dropped/rounded residual mass into the next
    /// round (keep on for lossy stacks — this is what preserves
    /// convergence).
    #[serde(default = "default_error_feedback")]
    pub error_feedback: bool,
}

fn default_chunk_bytes() -> usize {
    256 * 1024
}

fn default_error_feedback() -> bool {
    true
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig {
            stack: CodecStack::none(),
            chunk_bytes: default_chunk_bytes(),
            error_feedback: default_error_feedback(),
        }
    }
}

impl WireConfig {
    /// A config for the given stack with default chunking and error
    /// feedback on.
    pub fn new(stack: CodecStack) -> Self {
        WireConfig {
            stack,
            ..WireConfig::default()
        }
    }

    /// Overrides the streaming chunk size.
    pub fn chunk_bytes(mut self, bytes: usize) -> Self {
        self.chunk_bytes = bytes;
        self
    }

    /// Enables or disables error feedback.
    pub fn error_feedback(mut self, on: bool) -> Self {
        self.error_feedback = on;
        self
    }
}

// ---------------------------------------------------------------------
// PackBits run-length coding
// ---------------------------------------------------------------------

/// PackBits-style RLE: control byte `n < 128` ⇒ the next `n + 1` bytes are
/// literal; `n >= 128` ⇒ the next byte repeats `n - 126` times (runs of
/// 2..=129). Worst-case expansion is 1/128; best case is 64× on the long
/// zero-code runs a sparsified residual produces.
fn rle_encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 4 + 8);
    let mut i = 0;
    while i < data.len() {
        // Measure the run at i.
        let b = data[i];
        let mut run = 1;
        while run < 129 && i + run < data.len() && data[i + run] == b {
            run += 1;
        }
        if run >= 2 {
            out.push((run + 126) as u8);
            out.push(b);
            i += run;
        } else {
            // Collect a literal span up to the next run of ≥ 3 (a run of 2
            // inside literals is cheaper left literal than split).
            let start = i;
            i += 1;
            while i < data.len() && i - start < 128 {
                let b = data[i];
                let mut run = 1;
                while run < 3 && i + run < data.len() && data[i + run] == b {
                    run += 1;
                }
                if run >= 3 {
                    break;
                }
                i += 1;
            }
            out.push((i - start - 1) as u8);
            out.extend_from_slice(&data[start..i]);
        }
    }
    out
}

/// Inverse of [`rle_encode`], bounded by `expected` output bytes so a
/// hostile blob cannot balloon memory.
fn rle_decode(data: &[u8], expected: usize) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::with_capacity(expected);
    let mut i = 0;
    while i < data.len() {
        let ctl = data[i];
        i += 1;
        if ctl < 128 {
            let n = ctl as usize + 1;
            if i + n > data.len() {
                return Err(WireError::Truncated);
            }
            if out.len() + n > expected {
                return Err(WireError::Invalid("rle output exceeds declared size".into()));
            }
            out.extend_from_slice(&data[i..i + n]);
            i += n;
        } else {
            let n = ctl as usize - 126;
            if i >= data.len() {
                return Err(WireError::Truncated);
            }
            if out.len() + n > expected {
                return Err(WireError::Invalid("rle output exceeds declared size".into()));
            }
            let b = data[i];
            i += 1;
            out.resize(out.len() + n, b);
        }
    }
    if out.len() != expected {
        return Err(WireError::Invalid(format!(
            "rle produced {} bytes, expected {expected}",
            out.len()
        )));
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Per-block symmetric quantisation
// ---------------------------------------------------------------------

/// Quantises `values` per block: returns `(scales, codes)`. `levels` is
/// 127 for q8, 7 for q4; codes are stored biased by `levels` so they fit
/// an unsigned byte/nibble.
fn quantize_blocks(values: &[f32], levels: f32) -> (Vec<f32>, Vec<u8>) {
    let mut scales = Vec::with_capacity(values.len().div_ceil(QUANT_BLOCK));
    let mut codes = Vec::with_capacity(values.len());
    for block in values.chunks(QUANT_BLOCK) {
        let max_abs = block.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let scale = if max_abs.is_finite() && max_abs > 0.0 {
            max_abs / levels
        } else {
            0.0
        };
        scales.push(scale);
        for &v in block {
            let q = if scale > 0.0 {
                (v / scale).round().clamp(-levels, levels)
            } else {
                0.0
            };
            codes.push((q + levels) as u8);
        }
    }
    (scales, codes)
}

/// Inverse of [`quantize_blocks`].
fn dequantize_blocks(scales: &[f32], codes: &[u8], levels: f32) -> Vec<f32> {
    let mut out = Vec::with_capacity(codes.len());
    for (bi, block) in codes.chunks(QUANT_BLOCK).enumerate() {
        let scale = scales.get(bi).copied().unwrap_or(0.0);
        for &c in block {
            out.push((f32::from(c) - levels) * scale);
        }
    }
    out
}

/// Packs q4 codes (values 0..=14) two per byte, low nibble first. A
/// trailing odd code is padded with the zero code (7).
fn pack_nibbles(codes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(codes.len().div_ceil(2));
    for pair in codes.chunks(2) {
        let lo = pair[0] & 0x0F;
        let hi = pair.get(1).copied().unwrap_or(7) & 0x0F;
        out.push(lo | (hi << 4));
    }
    out
}

/// Inverse of [`pack_nibbles`], producing exactly `count` codes.
fn unpack_nibbles(packed: &[u8], count: usize) -> Result<Vec<u8>, WireError> {
    if packed.len() != count.div_ceil(2) {
        return Err(WireError::Invalid(format!(
            "{} nibble bytes cannot hold {count} codes",
            packed.len()
        )));
    }
    let mut out = Vec::with_capacity(count);
    for &b in packed {
        out.push(b & 0x0F);
        if out.len() < count {
            out.push(b >> 4);
        }
    }
    out.truncate(count);
    Ok(out)
}

// ---------------------------------------------------------------------
// The coded blob
// ---------------------------------------------------------------------

/// Intermediate kept-coordinate form shared by encode and decode.
struct Kept {
    indices: Option<Vec<u32>>,
    values: Vec<f32>,
}

fn apply_stack_front(stack: &CodecStack, residual: &[f32]) -> Kept {
    if let Some(permille) = stack.top_k_permille() {
        let k = (residual.len() * usize::from(permille)).div_ceil(1000).max(1);
        let s = sparsify_top_k(residual, k);
        Kept {
            indices: Some(s.indices),
            values: s.values,
        }
    } else {
        Kept {
            indices: None,
            values: residual.to_vec(),
        }
    }
}

/// Serialises the kept coordinates through the quant/RLE tail of the
/// stack into a self-describing blob.
fn encode_blob(stack: &CodecStack, n: usize, kept: &Kept) -> Vec<u8> {
    let mut w = WireWriter::with_capacity(kept.values.len() * 2 + 64);
    w.uint(1, u64::from(CODEC_VERSION));
    w.packed_uints(2, &stack.descriptor());
    w.uint(3, n as u64);
    if let Some(indices) = &kept.indices {
        // Delta gaps: first index, then strictly positive differences —
        // small varints instead of 4 bytes each.
        let mut gaps = Vec::with_capacity(indices.len());
        let mut prev = 0u64;
        for (i, &idx) in indices.iter().enumerate() {
            let idx = u64::from(idx);
            gaps.push(if i == 0 { idx } else { idx - prev });
            prev = idx;
        }
        w.packed_uints(4, &gaps);
    }
    match stack.quant() {
        Some(q) => {
            let levels = q.levels().expect("quant stage has levels");
            let (scales, codes) = quantize_blocks(&kept.values, levels);
            let packed = if matches!(q, CodecStage::QuantQ4) {
                pack_nibbles(&codes)
            } else {
                codes
            };
            let coded = if stack.has_rle() {
                rle_encode(&packed)
            } else {
                packed
            };
            w.packed_floats(5, &scales);
            w.bytes(6, &coded);
            w.uint(7, QUANT_BLOCK as u64);
        }
        None => {
            // No quant stage: kept values travel as raw little-endian f32.
            let mut raw = Vec::with_capacity(kept.values.len() * 4);
            for v in &kept.values {
                raw.extend_from_slice(&v.to_le_bytes());
            }
            w.bytes(6, &raw);
        }
    }
    w.finish()
}

/// Reconstructs the dense residual a blob encodes, along with the stack
/// that produced it. Shared by the decoder and the encoder's
/// error-feedback self-reconstruction (both sides must see the *same*
/// lossy reconstruction for the carry algebra to hold).
fn decode_blob(blob: &[u8], expected_len: usize) -> Result<(CodecStack, Vec<f32>), WireError> {
    let mut version = None;
    let mut descriptor = Vec::new();
    let mut n = None;
    let mut gaps: Option<Vec<u64>> = None;
    let mut scales: Vec<f32> = Vec::new();
    let mut codes: &[u8] = &[];
    let mut block = QUANT_BLOCK as u64;
    let mut r = WireReader::new(blob);
    while let Some((f, v)) = r.next_field()? {
        match f {
            1 => version = Some(v.as_uint(f)?),
            2 => descriptor = v.as_packed_uints(f)?,
            3 => n = Some(v.as_uint(f)?),
            4 => gaps = Some(v.as_packed_uints(f)?),
            5 => scales = v.as_packed_floats(f)?,
            6 => codes = v.as_bytes(f)?,
            7 => block = v.as_uint(f)?,
            _ => {}
        }
    }
    let version = version.ok_or(WireError::MissingField("codec version"))?;
    if version != u64::from(CODEC_VERSION) {
        return Err(WireError::Invalid(format!(
            "unsupported codec version {version}"
        )));
    }
    if block != QUANT_BLOCK as u64 {
        return Err(WireError::Invalid(format!(
            "unsupported quant block size {block}"
        )));
    }
    let stack = CodecStack::from_descriptor(&descriptor)?;
    let n = n.ok_or(WireError::MissingField("original length"))? as usize;
    if n != expected_len {
        return Err(WireError::Invalid(format!(
            "blob encodes {n} coordinates, reference has {expected_len}"
        )));
    }

    // Rebuild absolute indices (and the kept count) from the gaps.
    let indices: Option<Vec<usize>> = match (&gaps, stack.top_k_permille()) {
        (Some(gaps), Some(_)) => {
            let mut out = Vec::with_capacity(gaps.len());
            let mut pos = 0u64;
            for (i, &g) in gaps.iter().enumerate() {
                if i > 0 && g == 0 {
                    return Err(WireError::Invalid("non-increasing sparse index".into()));
                }
                pos = pos
                    .checked_add(g)
                    .ok_or_else(|| WireError::Invalid("sparse index overflow".into()))?;
                if pos >= n as u64 {
                    return Err(WireError::Invalid(format!(
                        "sparse index {pos} out of range for length {n}"
                    )));
                }
                out.push(pos as usize);
            }
            Some(out)
        }
        (None, None) => None,
        (Some(_), None) => {
            return Err(WireError::Invalid("indices present without a top-k stage".into()));
        }
        (None, Some(_)) => {
            return Err(WireError::MissingField("sparse indices"));
        }
    };
    let kept_count = indices.as_ref().map_or(n, Vec::len);

    // Undo the quant/RLE tail.
    let values: Vec<f32> = match stack.quant() {
        Some(q) => {
            let levels = q.levels().expect("quant stage has levels");
            let packed_len = if matches!(q, CodecStage::QuantQ4) {
                kept_count.div_ceil(2)
            } else {
                kept_count
            };
            let packed: Vec<u8> = if stack.has_rle() {
                rle_decode(codes, packed_len)?
            } else {
                if codes.len() != packed_len {
                    return Err(WireError::Invalid(format!(
                        "{} code bytes for {kept_count} coordinates",
                        codes.len()
                    )));
                }
                codes.to_vec()
            };
            let raw_codes = if matches!(q, CodecStage::QuantQ4) {
                unpack_nibbles(&packed, kept_count)?
            } else {
                packed
            };
            if scales.len() != kept_count.div_ceil(QUANT_BLOCK) {
                return Err(WireError::Invalid(format!(
                    "{} block scales for {kept_count} coordinates",
                    scales.len()
                )));
            }
            dequantize_blocks(&scales, &raw_codes, levels)
        }
        None => {
            if codes.len() != kept_count * 4 {
                return Err(WireError::Invalid(format!(
                    "{} raw bytes for {kept_count} float coordinates",
                    codes.len()
                )));
            }
            codes
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect()
        }
    };

    // Scatter back to dense.
    match indices {
        Some(indices) => {
            let mut out = vec![0.0f32; n];
            for (&i, &v) in indices.iter().zip(values.iter()) {
                out[i] = v;
            }
            Ok((stack, out))
        }
        None => Ok((stack, values)),
    }
}

/// Stateful per-connection encoder: applies the stack to each update's
/// residual against the round's reference model, carrying the lossy
/// remainder forward when error feedback is on.
#[derive(Debug)]
pub struct StackEncoder {
    stack: CodecStack,
    error_feedback: bool,
    carry: Vec<f32>,
}

impl StackEncoder {
    /// A fresh encoder for one connection.
    pub fn new(stack: CodecStack, error_feedback: bool) -> Self {
        StackEncoder {
            stack,
            error_feedback,
            carry: Vec::new(),
        }
    }

    /// The stack this encoder applies.
    pub fn stack(&self) -> &CodecStack {
        &self.stack
    }

    /// Encodes `x` against `reference` (what the receiver already holds).
    /// Returns the self-describing blob.
    pub fn encode(&mut self, x: &[f32], reference: &[f32]) -> Result<Vec<u8>, WireError> {
        if x.len() != reference.len() {
            return Err(WireError::Invalid(format!(
                "update has {} coordinates, reference {}",
                x.len(),
                reference.len()
            )));
        }
        if self.stack.is_identity() {
            // Identity stacks carry the value itself, bit-exactly: raw
            // f32 coordinates with no reference delta, so `(x − r) + r`
            // float rounding can never perturb an uncompressed transfer.
            let kept = apply_stack_front(&self.stack, x);
            return Ok(encode_blob(&self.stack, x.len(), &kept));
        }
        if self.carry.len() != x.len() {
            self.carry = vec![0.0; x.len()];
        }
        let residual: Vec<f32> = x
            .iter()
            .zip(reference.iter())
            .zip(self.carry.iter())
            .map(|((&xi, &ri), &ci)| xi - ri + if self.error_feedback { ci } else { 0.0 })
            .collect();
        let kept = apply_stack_front(&self.stack, &residual);
        let blob = encode_blob(&self.stack, residual.len(), &kept);
        if self.error_feedback {
            // carry = residual − what the receiver will reconstruct.
            let (_, reconstructed) = decode_blob(&blob, residual.len())
                .expect("an encoder-produced blob must decode");
            for ((c, &r), &d) in self
                .carry
                .iter_mut()
                .zip(residual.iter())
                .zip(reconstructed.iter())
            {
                *c = r - d;
            }
        }
        Ok(blob)
    }

    /// Total absolute mass currently parked in the error-feedback carry —
    /// update signal that has been measured but not yet delivered. Useful
    /// for diagnostics and for asserting the EF conservation invariant
    /// (delivered + carried = injected).
    pub fn carry_l1(&self) -> f32 {
        self.carry.iter().map(|c| c.abs()).sum()
    }
}

/// Stateless decoder: reconstructs the update from a blob plus the same
/// reference the encoder used.
#[derive(Debug, Default)]
pub struct StackDecoder;

impl StackDecoder {
    /// Decodes a blob produced by [`StackEncoder::encode`] with the same
    /// `reference`, returning the (lossily) reconstructed update.
    pub fn decode(blob: &[u8], reference: &[f32]) -> Result<Vec<f32>, WireError> {
        let (stack, residual) = decode_blob(blob, reference.len())?;
        if stack.is_identity() {
            // Identity blobs carry the value itself (see the encoder) —
            // adding the reference back would double it.
            return Ok(residual);
        }
        Ok(residual
            .iter()
            .zip(reference.iter())
            .map(|(&d, &r)| d + r)
            .collect())
    }
}

// ---------------------------------------------------------------------
// Negotiation messages
// ---------------------------------------------------------------------

/// Server → client codec offer: the stacks the server can decode, in
/// preference order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecHello {
    /// Protocol version.
    pub version: u8,
    /// Supported stacks, most preferred first.
    pub stacks: Vec<CodecStack>,
}

impl CodecHello {
    /// Encodes to protobuf bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.uint(1, u64::from(self.version));
        for s in &self.stacks {
            w.packed_uints(2, &s.descriptor());
        }
        w.finish()
    }

    /// Decodes from protobuf bytes, validating every offered stack.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut version = None;
        let mut stacks = Vec::new();
        let mut r = WireReader::new(buf);
        while let Some((f, v)) = r.next_field()? {
            match f {
                1 => version = Some(v.as_uint(f)? as u8),
                2 => stacks.push(CodecStack::from_descriptor(&v.as_packed_uints(f)?)?),
                _ => {}
            }
        }
        Ok(CodecHello {
            version: version.ok_or(WireError::MissingField("version"))?,
            stacks,
        })
    }
}

/// Client → server codec acceptance: the stack the client will use for
/// its uploads (possibly the identity).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecAck {
    /// Protocol version.
    pub version: u8,
    /// The accepted stack.
    pub stack: CodecStack,
}

impl CodecAck {
    /// Encodes to protobuf bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.uint(1, u64::from(self.version));
        w.packed_uints(2, &self.stack.descriptor());
        w.finish()
    }

    /// Decodes from protobuf bytes, validating the accepted stack.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut version = None;
        let mut stack = CodecStack::none();
        let mut r = WireReader::new(buf);
        while let Some((f, v)) = r.next_field()? {
            match f {
                1 => version = Some(v.as_uint(f)? as u8),
                2 => stack = CodecStack::from_descriptor(&v.as_packed_uints(f)?)?,
                _ => {}
            }
        }
        Ok(CodecAck {
            version: version.ok_or(WireError::MissingField("version"))?,
            stack,
        })
    }
}

/// A compressed client upload: routing metadata in cleartext (the server
/// must gate decoding on the round tag — a stale blob references an old
/// broadcast), the residual blob opaque.
#[derive(Debug, Clone, PartialEq)]
pub struct CodedUpload {
    /// Reporting client id.
    pub client_id: u32,
    /// Round whose broadcast the blob is coded against.
    pub round: u32,
    /// The client's local training loss.
    pub loss: f64,
    /// The [`StackEncoder`] blob for the primal update.
    pub blob: Vec<u8>,
}

impl CodedUpload {
    /// Encodes to protobuf bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::with_capacity(self.blob.len() + 32);
        w.uint(1, u64::from(self.client_id));
        w.uint(2, u64::from(self.round));
        w.double(3, self.loss);
        w.bytes(4, &self.blob);
        w.finish()
    }

    /// Decodes from protobuf bytes.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let (mut client_id, mut round, mut loss) = (None, None, 0.0f64);
        let mut blob = Vec::new();
        let mut r = WireReader::new(buf);
        while let Some((f, v)) = r.next_field()? {
            match f {
                1 => client_id = Some(v.as_uint(f)? as u32),
                2 => round = Some(v.as_uint(f)? as u32),
                3 => loss = v.as_double(f)?,
                4 => blob = v.as_bytes(f)?.to_vec(),
                _ => {}
            }
        }
        Ok(CodedUpload {
            client_id: client_id.ok_or(WireError::MissingField("client_id"))?,
            round: round.ok_or(WireError::MissingField("round"))?,
            loss,
            blob,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * 0.37).sin() * 2.0).collect()
    }

    #[test]
    fn labels_and_ctors() {
        assert_eq!(CodecStack::none().label(), "none");
        assert_eq!(CodecStack::int8().label(), "q8");
        assert_eq!(CodecStack::int4().label(), "q4");
        assert_eq!(CodecStack::top_k(200).label(), "topk200");
        assert_eq!(CodecStack::top_k_int8_rle(100).label(), "topk100+q8+rle");
    }

    #[test]
    fn validate_rejects_bad_compositions() {
        for stack in [
            CodecStack {
                stages: vec![CodecStage::QuantQ8, CodecStage::QuantQ4],
            },
            CodecStack {
                stages: vec![CodecStage::QuantQ8, CodecStage::TopK { permille: 10 }],
            },
            CodecStack {
                stages: vec![CodecStage::RunLength],
            },
            CodecStack {
                stages: vec![CodecStage::RunLength, CodecStage::QuantQ8],
            },
            CodecStack {
                stages: vec![
                    CodecStage::TopK { permille: 10 },
                    CodecStage::TopK { permille: 20 },
                ],
            },
        ] {
            assert!(stack.validate().is_err(), "{stack:?} should be rejected");
        }
        for stack in [
            CodecStack::none(),
            CodecStack::int8(),
            CodecStack::int4(),
            CodecStack::top_k(50),
            CodecStack::top_k_int8_rle(100),
        ] {
            assert!(stack.validate().is_ok(), "{stack:?} should pass");
        }
    }

    #[test]
    fn descriptor_roundtrips() {
        for stack in [
            CodecStack::none(),
            CodecStack::int8(),
            CodecStack::int4(),
            CodecStack::top_k(333),
            CodecStack::top_k_int8_rle(50),
        ] {
            let back = CodecStack::from_descriptor(&stack.descriptor()).unwrap();
            assert_eq!(back, stack);
        }
        // A hostile descriptor is rejected, not trusted.
        assert!(CodecStack::from_descriptor(&[99, 0]).is_err());
        assert!(CodecStack::from_descriptor(&[3, 0]).is_err()); // permille 0
        assert!(CodecStack::from_descriptor(&[3, 2000]).is_err());
        assert!(CodecStack::from_descriptor(&[1]).is_err()); // odd length
    }

    #[test]
    fn rle_roundtrips_and_compresses_runs() {
        let mut data = vec![127u8; 1000];
        data[3] = 9;
        data[500] = 200;
        let coded = rle_encode(&data);
        assert!(coded.len() < 40, "runs must collapse, got {}", coded.len());
        assert_eq!(rle_decode(&coded, data.len()).unwrap(), data);
        // Worst case: no runs at all — bounded overhead.
        let noisy: Vec<u8> = (0..1000).map(|i| (i % 251) as u8).collect();
        let coded = rle_encode(&noisy);
        assert!(coded.len() <= noisy.len() + noisy.len() / 128 + 2);
        assert_eq!(rle_decode(&coded, noisy.len()).unwrap(), noisy);
        // Hostile: declared size mismatch errors cleanly.
        assert!(rle_decode(&coded, 10).is_err());
        assert!(rle_decode(&[130], 4).is_err());
    }

    #[test]
    fn q8_roundtrip_within_block_bound() {
        let v = wave(3000);
        let (scales, codes) = quantize_blocks(&v, 127.0);
        let back = dequantize_blocks(&scales, &codes, 127.0);
        for (bi, block) in v.chunks(QUANT_BLOCK).enumerate() {
            let bound = scales[bi] / 2.0 + 1e-7;
            for (a, b) in block
                .iter()
                .zip(back[bi * QUANT_BLOCK..].iter())
            {
                assert!((a - b).abs() <= bound, "{a} vs {b} (bound {bound})");
            }
        }
    }

    #[test]
    fn q4_nibble_packing_roundtrips() {
        for n in [0usize, 1, 2, 7, 8, 2049] {
            let codes: Vec<u8> = (0..n).map(|i| (i % 15) as u8).collect();
            let packed = pack_nibbles(&codes);
            assert_eq!(packed.len(), n.div_ceil(2));
            assert_eq!(unpack_nibbles(&packed, n).unwrap(), codes);
        }
        assert!(unpack_nibbles(&[0, 0], 5).is_err());
    }

    #[test]
    fn every_stack_roundtrips_through_encoder_and_decoder() {
        let reference = wave(2500);
        let x: Vec<f32> = reference.iter().map(|r| r + 0.01 * r.cos()).collect();
        for stack in [
            CodecStack::none(),
            CodecStack::int8(),
            CodecStack::int4(),
            CodecStack::top_k(100),
            CodecStack::top_k_int8_rle(100),
        ] {
            let mut enc = StackEncoder::new(stack.clone(), true);
            let blob = enc.encode(&x, &reference).unwrap();
            let back = StackDecoder::decode(&blob, &reference).unwrap();
            assert_eq!(back.len(), x.len());
            // The residual is tiny, so even a lossy stack lands close.
            let err: f32 = x
                .iter()
                .zip(back.iter())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f32::max);
            assert!(err < 0.05, "{}: max err {err}", stack.label());
        }
    }

    #[test]
    fn identity_stack_is_lossless() {
        let reference = wave(100);
        let x: Vec<f32> = reference.iter().map(|r| r * 1.5 - 0.3).collect();
        let mut enc = StackEncoder::new(CodecStack::none(), true);
        let blob = enc.encode(&x, &reference).unwrap();
        assert_eq!(StackDecoder::decode(&blob, &reference).unwrap(), x);
    }

    #[test]
    fn error_feedback_carries_dropped_mass_into_the_next_round() {
        // A tiny constant drift that top-k alone would silently delete
        // forever: with error feedback the carry accumulates until it
        // crosses the keep threshold, so the mean reconstruction tracks.
        let n = 400;
        let reference = vec![0.0f32; n];
        let drift = 0.01f32;
        let x: Vec<f32> = vec![drift; n];
        let mut with_ef = StackEncoder::new(CodecStack::top_k(50), true);
        let mut without_ef = StackEncoder::new(CodecStack::top_k(50), false);
        let mut recon_ef = 0.0f32;
        let mut recon_no = 0.0f32;
        for _ in 0..20 {
            let blob = with_ef.encode(&x, &reference).unwrap();
            let d = StackDecoder::decode(&blob, &reference).unwrap();
            recon_ef += d.iter().sum::<f32>();
            let blob = without_ef.encode(&x, &reference).unwrap();
            let d = StackDecoder::decode(&blob, &reference).unwrap();
            recon_no += d.iter().sum::<f32>();
        }
        let target = drift * n as f32 * 20.0;
        // EF conservation: every unit of update mass is either delivered
        // or parked in the carry — none is silently deleted.
        let accounted = recon_ef + with_ef.carry_l1();
        assert!(
            (accounted - target).abs() / target < 0.01,
            "EF delivered ({recon_ef}) + carried ({}) should equal {target}",
            with_ef.carry_l1()
        );
        // And EF must actually deliver far more than plain top-k, which
        // re-drops the same small coordinates every round.
        assert!(
            recon_no < recon_ef * 0.5,
            "without EF ({recon_no}) must lose mass vs EF ({recon_ef})"
        );
    }

    #[test]
    fn q8_compresses_about_four_x_and_q4_about_eight_x() {
        let n = 6362; // the e2e MLP's parameter count
        let reference = vec![0.0f32; n];
        let x = wave(n);
        let raw = n * 4;
        let mut q8 = StackEncoder::new(CodecStack::int8(), true);
        let blob8 = q8.encode(&x, &reference).unwrap();
        assert!(
            raw as f64 / blob8.len() as f64 >= 3.9,
            "q8 ratio {}",
            raw as f64 / blob8.len() as f64
        );
        let mut q4 = StackEncoder::new(CodecStack::int4(), true);
        let blob4 = q4.encode(&x, &reference).unwrap();
        assert!(
            raw as f64 / blob4.len() as f64 >= 7.0,
            "q4 ratio {}",
            raw as f64 / blob4.len() as f64
        );
    }

    #[test]
    fn length_mismatch_and_garbage_blobs_error_cleanly() {
        let reference = wave(100);
        let mut enc = StackEncoder::new(CodecStack::int8(), true);
        assert!(enc.encode(&[1.0; 5], &reference).is_err());
        let blob = enc.encode(&reference.clone(), &reference).unwrap();
        // Wrong reference length at decode.
        assert!(StackDecoder::decode(&blob, &[0.0; 5]).is_err());
        // Arbitrary garbage.
        assert!(StackDecoder::decode(&[1, 2, 3, 4], &reference).is_err());
        assert!(StackDecoder::decode(&[], &reference).is_err());
    }

    #[test]
    fn hello_and_ack_roundtrip() {
        let hello = CodecHello {
            version: CODEC_VERSION,
            stacks: vec![
                CodecStack::top_k_int8_rle(100),
                CodecStack::int8(),
                CodecStack::none(),
            ],
        };
        assert_eq!(CodecHello::decode(&hello.encode()).unwrap(), hello);
        let ack = CodecAck {
            version: CODEC_VERSION,
            stack: CodecStack::int8(),
        };
        assert_eq!(CodecAck::decode(&ack.encode()).unwrap(), ack);
        // Identity ack survives too.
        let ack = CodecAck {
            version: CODEC_VERSION,
            stack: CodecStack::none(),
        };
        assert_eq!(CodecAck::decode(&ack.encode()).unwrap(), ack);
    }

    #[test]
    fn coded_upload_roundtrips() {
        let u = CodedUpload {
            client_id: 3,
            round: 9,
            loss: 0.125,
            blob: vec![1, 2, 3, 4, 5],
        };
        assert_eq!(CodedUpload::decode(&u.encode()).unwrap(), u);
        assert!(CodedUpload::decode(&[0xFF, 0xFF]).is_err());
    }

    #[test]
    fn wire_config_serde_defaults_are_era_compatible() {
        // A config written before chunk_bytes/error_feedback existed.
        let old = r#"{"stack":{"stages":["QuantQ8"]}}"#;
        let cfg: WireConfig = serde_json::from_str(old).unwrap();
        assert_eq!(cfg.stack, CodecStack::int8());
        assert_eq!(cfg.chunk_bytes, 256 * 1024);
        assert!(cfg.error_feedback);
    }
}
