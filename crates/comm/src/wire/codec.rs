//! Field-level wire reader/writer (proto3 semantics).

use super::varint::{decode_varint, encode_varint, zigzag_decode, zigzag_encode};
use std::fmt;

/// Protobuf wire types (proto3 subset; groups are long-deprecated).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireType {
    /// Varint-encoded integers and booleans.
    Varint = 0,
    /// Little-endian 8-byte scalars (`double`, `fixed64`).
    Fixed64 = 1,
    /// Length-delimited payloads (strings, bytes, submessages, packed
    /// repeated scalars).
    LengthDelimited = 2,
    /// Little-endian 4-byte scalars (`float`, `fixed32`).
    Fixed32 = 5,
}

impl WireType {
    fn from_u8(v: u8) -> Option<WireType> {
        match v {
            0 => Some(WireType::Varint),
            1 => Some(WireType::Fixed64),
            2 => Some(WireType::LengthDelimited),
            5 => Some(WireType::Fixed32),
            _ => None,
        }
    }
}

/// Decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Buffer ended inside a value.
    Truncated,
    /// Unknown or reserved wire type in a tag.
    BadWireType(u8),
    /// A length prefix exceeded the remaining buffer.
    BadLength(u64),
    /// A field had an unexpected wire type for the requested decode.
    TypeMismatch {
        /// Field number involved.
        field: u32,
        /// The wire type actually present.
        found: WireType,
    },
    /// Field number zero is reserved.
    ZeroField,
    /// A required field was missing from a message.
    MissingField(&'static str),
    /// Semantic validation of a decoded message failed.
    Invalid(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "buffer truncated"),
            WireError::BadWireType(v) => write!(f, "unknown wire type {v}"),
            WireError::BadLength(n) => write!(f, "length {n} exceeds buffer"),
            WireError::TypeMismatch { field, found } => {
                write!(f, "field {field} has unexpected wire type {found:?}")
            }
            WireError::ZeroField => write!(f, "field number 0 is reserved"),
            WireError::MissingField(name) => write!(f, "missing required field `{name}`"),
            WireError::Invalid(msg) => write!(f, "invalid message: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Serialises fields into a protobuf byte stream.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> Self {
        WireWriter::default()
    }

    /// A writer with preallocated capacity (use for tensor payloads).
    pub fn with_capacity(cap: usize) -> Self {
        WireWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// A writer whose buffer starts with one raw envelope byte. The RPC
    /// layer prefixes every protobuf payload with a method/response tag;
    /// seeding the writer with that byte lets the message body serialise
    /// straight into its final position instead of being encoded to a
    /// temporary buffer and copied behind the tag.
    pub fn tagged(tag: u8, cap: usize) -> Self {
        let mut buf = Vec::with_capacity(cap + 1);
        buf.push(tag);
        WireWriter { buf }
    }

    fn tag(&mut self, field: u32, wt: WireType) {
        debug_assert!(field != 0, "field number 0 is reserved");
        encode_varint(u64::from(field) << 3 | wt as u64, &mut self.buf);
    }

    /// Writes a varint field (`uint32`/`uint64`/`bool`).
    pub fn uint(&mut self, field: u32, value: u64) -> &mut Self {
        self.tag(field, WireType::Varint);
        encode_varint(value, &mut self.buf);
        self
    }

    /// Writes a zigzag-encoded signed field (`sint64`).
    pub fn sint(&mut self, field: u32, value: i64) -> &mut Self {
        self.uint(field, zigzag_encode(value));
        self
    }

    /// Writes a `double` field.
    pub fn double(&mut self, field: u32, value: f64) -> &mut Self {
        self.tag(field, WireType::Fixed64);
        self.buf.extend_from_slice(&value.to_le_bytes());
        self
    }

    /// Writes a `float` field.
    pub fn float(&mut self, field: u32, value: f32) -> &mut Self {
        self.tag(field, WireType::Fixed32);
        self.buf.extend_from_slice(&value.to_le_bytes());
        self
    }

    /// Writes a length-delimited `bytes`/`string` field.
    pub fn bytes(&mut self, field: u32, value: &[u8]) -> &mut Self {
        self.tag(field, WireType::LengthDelimited);
        encode_varint(value.len() as u64, &mut self.buf);
        self.buf.extend_from_slice(value);
        self
    }

    /// Writes a UTF-8 string field.
    pub fn string(&mut self, field: u32, value: &str) -> &mut Self {
        self.bytes(field, value.as_bytes())
    }

    /// Writes a packed repeated `float` field (protobuf packs floats as a
    /// length-delimited run of little-endian 4-byte values) — the encoding
    /// of a model-parameter tensor on the wire.
    pub fn packed_floats(&mut self, field: u32, values: &[f32]) -> &mut Self {
        self.tag(field, WireType::LengthDelimited);
        encode_varint(values.len() as u64 * 4, &mut self.buf);
        self.buf.reserve(values.len() * 4);
        for v in values {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
        self
    }

    /// Writes a packed repeated varint field (tensor shapes).
    pub fn packed_uints(&mut self, field: u32, values: &[u64]) -> &mut Self {
        let mut body = Vec::with_capacity(values.len());
        for &v in values {
            encode_varint(v, &mut body);
        }
        self.bytes(field, &body)
    }

    /// Writes an embedded message field from its encoded bytes.
    pub fn message(&mut self, field: u32, encoded: &[u8]) -> &mut Self {
        self.bytes(field, encoded)
    }

    /// Writes an embedded message field *in place*: the caller declares the
    /// exact body length up front and then writes it directly into this
    /// writer, so nested messages with precomputable sizes (fixed-width
    /// tensor payloads) serialise without an intermediate buffer.
    pub fn message_with(
        &mut self,
        field: u32,
        len: usize,
        body: impl FnOnce(&mut WireWriter),
    ) -> &mut Self {
        self.tag(field, WireType::LengthDelimited);
        encode_varint(len as u64, &mut self.buf);
        self.buf.reserve(len);
        let before = self.buf.len();
        body(self);
        debug_assert_eq!(
            self.buf.len() - before,
            len,
            "message_with body wrote a different length than declared"
        );
        self
    }

    /// Finishes, returning the encoded buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// A decoded field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue<'a> {
    /// Varint payload.
    Varint(u64),
    /// 8-byte scalar payload.
    Fixed64(u64),
    /// Length-delimited payload.
    Bytes(&'a [u8]),
    /// 4-byte scalar payload.
    Fixed32(u32),
}

impl<'a> FieldValue<'a> {
    /// Interprets as `u64`, failing on non-varint payloads.
    pub fn as_uint(&self, field: u32) -> Result<u64, WireError> {
        match self {
            FieldValue::Varint(v) => Ok(*v),
            FieldValue::Fixed64(_) => Err(WireError::TypeMismatch {
                field,
                found: WireType::Fixed64,
            }),
            FieldValue::Bytes(_) => Err(WireError::TypeMismatch {
                field,
                found: WireType::LengthDelimited,
            }),
            FieldValue::Fixed32(_) => Err(WireError::TypeMismatch {
                field,
                found: WireType::Fixed32,
            }),
        }
    }

    /// Interprets as zigzag `i64`.
    pub fn as_sint(&self, field: u32) -> Result<i64, WireError> {
        Ok(zigzag_decode(self.as_uint(field)?))
    }

    /// Interprets as `f64`.
    pub fn as_double(&self, field: u32) -> Result<f64, WireError> {
        match self {
            FieldValue::Fixed64(v) => Ok(f64::from_bits(*v)),
            other => Err(WireError::TypeMismatch {
                field,
                found: other.wire_type(),
            }),
        }
    }

    /// Interprets as `f32`.
    pub fn as_float(&self, field: u32) -> Result<f32, WireError> {
        match self {
            FieldValue::Fixed32(v) => Ok(f32::from_bits(*v)),
            other => Err(WireError::TypeMismatch {
                field,
                found: other.wire_type(),
            }),
        }
    }

    /// Interprets as raw bytes.
    pub fn as_bytes(&self, field: u32) -> Result<&'a [u8], WireError> {
        match self {
            FieldValue::Bytes(b) => Ok(b),
            other => Err(WireError::TypeMismatch {
                field,
                found: other.wire_type(),
            }),
        }
    }

    /// Interprets as a packed float run.
    pub fn as_packed_floats(&self, field: u32) -> Result<Vec<f32>, WireError> {
        let b = self.as_bytes(field)?;
        if b.len() % 4 != 0 {
            return Err(WireError::BadLength(b.len() as u64));
        }
        Ok(b.chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    /// Interprets as a packed varint run.
    pub fn as_packed_uints(&self, field: u32) -> Result<Vec<u64>, WireError> {
        let mut b = self.as_bytes(field)?;
        let mut out = Vec::new();
        while !b.is_empty() {
            let (v, n) = decode_varint(b).ok_or(WireError::Truncated)?;
            out.push(v);
            b = &b[n..];
        }
        Ok(out)
    }

    fn wire_type(&self) -> WireType {
        match self {
            FieldValue::Varint(_) => WireType::Varint,
            FieldValue::Fixed64(_) => WireType::Fixed64,
            FieldValue::Bytes(_) => WireType::LengthDelimited,
            FieldValue::Fixed32(_) => WireType::Fixed32,
        }
    }
}

/// Streaming field reader over an encoded buffer.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
}

impl<'a> WireReader<'a> {
    /// Wraps an encoded buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf }
    }

    /// Whether the reader is exhausted.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Reads the next `(field_number, value)` pair.
    pub fn next_field(&mut self) -> Result<Option<(u32, FieldValue<'a>)>, WireError> {
        if self.buf.is_empty() {
            return Ok(None);
        }
        let (tag, n) = decode_varint(self.buf).ok_or(WireError::Truncated)?;
        self.buf = &self.buf[n..];
        let field = (tag >> 3) as u32;
        if field == 0 {
            return Err(WireError::ZeroField);
        }
        let wt =
            WireType::from_u8((tag & 7) as u8).ok_or(WireError::BadWireType((tag & 7) as u8))?;
        let value = match wt {
            WireType::Varint => {
                let (v, n) = decode_varint(self.buf).ok_or(WireError::Truncated)?;
                self.buf = &self.buf[n..];
                FieldValue::Varint(v)
            }
            WireType::Fixed64 => {
                if self.buf.len() < 8 {
                    return Err(WireError::Truncated);
                }
                let mut b = [0u8; 8];
                b.copy_from_slice(&self.buf[..8]);
                self.buf = &self.buf[8..];
                FieldValue::Fixed64(u64::from_le_bytes(b))
            }
            WireType::Fixed32 => {
                if self.buf.len() < 4 {
                    return Err(WireError::Truncated);
                }
                let mut b = [0u8; 4];
                b.copy_from_slice(&self.buf[..4]);
                self.buf = &self.buf[4..];
                FieldValue::Fixed32(u32::from_le_bytes(b))
            }
            WireType::LengthDelimited => {
                let (len, n) = decode_varint(self.buf).ok_or(WireError::Truncated)?;
                self.buf = &self.buf[n..];
                if len as usize > self.buf.len() {
                    return Err(WireError::BadLength(len));
                }
                let (head, tail) = self.buf.split_at(len as usize);
                self.buf = tail;
                FieldValue::Bytes(head)
            }
        };
        Ok(Some((field, value)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut w = WireWriter::new();
        w.uint(1, 42)
            .sint(2, -7)
            .double(3, 2.5)
            .float(4, -1.5)
            .string(5, "hello");
        let buf = w.finish();

        let mut r = WireReader::new(&buf);
        let (f, v) = r.next_field().unwrap().unwrap();
        assert_eq!((f, v.as_uint(f).unwrap()), (1, 42));
        let (f, v) = r.next_field().unwrap().unwrap();
        assert_eq!((f, v.as_sint(f).unwrap()), (2, -7));
        let (f, v) = r.next_field().unwrap().unwrap();
        assert_eq!((f, v.as_double(f).unwrap()), (3, 2.5));
        let (f, v) = r.next_field().unwrap().unwrap();
        assert_eq!((f, v.as_float(f).unwrap()), (4, -1.5));
        let (f, v) = r.next_field().unwrap().unwrap();
        assert_eq!(v.as_bytes(f).unwrap(), b"hello");
        assert!(r.next_field().unwrap().is_none());
    }

    #[test]
    fn packed_floats_roundtrip() {
        let vals: Vec<f32> = (0..100).map(|i| i as f32 * 0.5 - 10.0).collect();
        let mut w = WireWriter::new();
        w.packed_floats(7, &vals);
        let buf = w.finish();
        // 4 bytes/float + tag + length varint.
        assert!(buf.len() >= 400 && buf.len() <= 405);
        let mut r = WireReader::new(&buf);
        let (f, v) = r.next_field().unwrap().unwrap();
        assert_eq!(f, 7);
        assert_eq!(v.as_packed_floats(f).unwrap(), vals);
    }

    #[test]
    fn packed_uints_roundtrip() {
        let vals = vec![0u64, 1, 127, 300, 1 << 40];
        let mut w = WireWriter::new();
        w.packed_uints(2, &vals);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        let (f, v) = r.next_field().unwrap().unwrap();
        assert_eq!(v.as_packed_uints(f).unwrap(), vals);
    }

    #[test]
    fn nested_message_roundtrip() {
        let mut inner = WireWriter::new();
        inner.uint(1, 9).string(2, "inner");
        let inner_buf = inner.finish();
        let mut outer = WireWriter::new();
        outer.message(3, &inner_buf).uint(4, 1);
        let buf = outer.finish();

        let mut r = WireReader::new(&buf);
        let (f, v) = r.next_field().unwrap().unwrap();
        assert_eq!(f, 3);
        let mut ir = WireReader::new(v.as_bytes(f).unwrap());
        let (inf, inv) = ir.next_field().unwrap().unwrap();
        assert_eq!((inf, inv.as_uint(inf).unwrap()), (1, 9));
    }

    #[test]
    fn type_mismatch_is_detected() {
        let mut w = WireWriter::new();
        w.uint(1, 5);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        let (f, v) = r.next_field().unwrap().unwrap();
        assert!(matches!(
            v.as_bytes(f),
            Err(WireError::TypeMismatch { field: 1, .. })
        ));
    }

    #[test]
    fn truncated_payloads_error() {
        let mut w = WireWriter::new();
        w.packed_floats(1, &[1.0, 2.0]);
        let mut buf = w.finish();
        buf.truncate(buf.len() - 3);
        let mut r = WireReader::new(&buf);
        assert!(matches!(r.next_field(), Err(WireError::BadLength(_))));

        let mut w = WireWriter::new();
        w.double(1, 1.0);
        let mut buf = w.finish();
        buf.truncate(4);
        let mut r = WireReader::new(&buf);
        assert_eq!(r.next_field(), Err(WireError::Truncated));
    }

    #[test]
    fn zero_field_rejected() {
        // Tag with field 0, wire type 0 → varint 0.
        let buf = vec![0x00, 0x01];
        let mut r = WireReader::new(&buf);
        assert_eq!(r.next_field(), Err(WireError::ZeroField));
    }

    #[test]
    fn bad_wire_type_rejected() {
        // Field 1, wire type 3 (deprecated group start).
        let buf = vec![0x0B];
        let mut r = WireReader::new(&buf);
        assert_eq!(r.next_field(), Err(WireError::BadWireType(3)));
    }

    #[test]
    fn misaligned_packed_floats_rejected() {
        let mut w = WireWriter::new();
        w.bytes(1, &[0, 1, 2]); // 3 bytes is not a multiple of 4
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        let (f, v) = r.next_field().unwrap().unwrap();
        assert!(v.as_packed_floats(f).is_err());
    }
}
