//! The declarative SLO health engine.
//!
//! An [`SloPolicy`] is a list of [`SloRule`]s — machine-checkable
//! definitions of "this run is healthy" — evaluated once per Publish
//! transition against the round's [`RoundSnapshot`]. Each evaluation
//! yields a [`HealthVerdict`]; the run observer re-emits verdicts as
//! `health_verdict` events, publishes per-rule burn-rate gauges
//! (`slo_burn_rate{rule="…"}`), and triggers a flight-recorder dump on
//! the first breach of each rule so the offending rounds can be audited
//! post-mortem.

use crate::series::RoundSnapshot;

/// One declarative health rule.
#[derive(Debug, Clone, PartialEq)]
pub enum SloRule {
    /// The streaming p90 of round wall time must stay below
    /// `factor ×` a baseline p90 frozen after the first
    /// `baseline_rounds` rounds (e.g. `round_wall_p90 < 2×baseline`).
    RoundWallP90Below {
        /// Multiplier over the frozen baseline.
        factor: f64,
        /// Rounds used to establish the baseline (no flagging during).
        baseline_rounds: u64,
    },
    /// Each round's accept ratio (accepted / cohort outcomes) must be at
    /// least `min`.
    AcceptRatioAtLeast {
        /// Minimum acceptable ratio in [0, 1].
        min: f64,
    },
    /// Coordinator recoveries across the run must not exceed `max`.
    RecoveriesAtMost {
        /// Maximum tolerated recoveries.
        max: u64,
    },
}

impl SloRule {
    /// Stable rule name (labels the burn-rate gauge and the breach
    /// entries).
    pub fn name(&self) -> &'static str {
        match self {
            SloRule::RoundWallP90Below { .. } => "round_wall_p90",
            SloRule::AcceptRatioAtLeast { .. } => "accept_ratio",
            SloRule::RecoveriesAtMost { .. } => "recoveries",
        }
    }
}

/// One rule's failure at one evaluation point.
#[derive(Debug, Clone, PartialEq)]
pub struct Breach {
    /// Which rule failed ([`SloRule::name`]).
    pub rule: &'static str,
    /// The measured value.
    pub value: f64,
    /// The limit it crossed.
    pub limit: f64,
}

/// The health decision for one Publish transition.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthVerdict {
    /// Round evaluated.
    pub round: u64,
    /// Whether every rule held.
    pub healthy: bool,
    /// The rules that failed, with measured value and limit.
    pub breaches: Vec<Breach>,
}

struct RuleState {
    rule: SloRule,
    evaluations: u64,
    breaches: u64,
    offending_rounds: Vec<u64>,
}

/// Inputs a rule evaluation needs beyond the snapshot itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct SloInputs {
    /// Streaming p90 of round wall seconds across the run so far.
    pub wall_p90: f64,
    /// Coordinator recoveries observed so far.
    pub recoveries: u64,
}

/// A declarative set of health rules evaluated at each Publish.
#[derive(Default)]
pub struct SloPolicy {
    rules: Vec<RuleState>,
    evaluated_rounds: u64,
    baseline_p90: Option<f64>,
}

impl SloPolicy {
    /// An empty policy (always healthy).
    pub fn new() -> Self {
        SloPolicy::default()
    }

    /// Adds a rule.
    pub fn rule(mut self, rule: SloRule) -> Self {
        self.rules.push(RuleState {
            rule,
            evaluations: 0,
            breaches: 0,
            offending_rounds: Vec::new(),
        });
        self
    }

    /// The default operator policy: round wall p90 under 2× baseline
    /// (baseline = first 3 rounds), accept ratio ≥ 0.8, at most one
    /// coordinator recovery.
    pub fn standard() -> Self {
        SloPolicy::new()
            .rule(SloRule::RoundWallP90Below {
                factor: 2.0,
                baseline_rounds: 3,
            })
            .rule(SloRule::AcceptRatioAtLeast { min: 0.8 })
            .rule(SloRule::RecoveriesAtMost { max: 1 })
    }

    /// Whether the policy carries any rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Evaluates every rule against this round. Call once per Publish.
    pub fn evaluate(&mut self, snap: &RoundSnapshot, inputs: SloInputs) -> HealthVerdict {
        self.evaluated_rounds += 1;
        if self
            .rules
            .iter()
            .any(|r| matches!(r.rule, SloRule::RoundWallP90Below { baseline_rounds, .. } if self.evaluated_rounds == baseline_rounds))
            && self.baseline_p90.is_none()
        {
            self.baseline_p90 = Some(inputs.wall_p90);
        }
        let baseline = self.baseline_p90;
        let mut breaches = Vec::new();
        for state in &mut self.rules {
            let outcome: Option<(f64, f64)> = match state.rule {
                SloRule::RoundWallP90Below {
                    factor,
                    baseline_rounds,
                } => {
                    if self.evaluated_rounds <= baseline_rounds {
                        None // still establishing the baseline
                    } else {
                        let base = baseline.unwrap_or(inputs.wall_p90);
                        let limit = factor * base.max(1e-12);
                        Some((inputs.wall_p90, limit))
                            .filter(|(v, l)| v >= l)
                    }
                }
                SloRule::AcceptRatioAtLeast { min } => {
                    // Breach when the measured ratio falls below min.
                    Some((snap.accept_ratio(), min)).filter(|(v, l)| v < l)
                }
                SloRule::RecoveriesAtMost { max } => Some((inputs.recoveries as f64, max as f64))
                    .filter(|(v, l)| v > l),
            };
            state.evaluations += 1;
            if let Some((value, limit)) = outcome {
                state.breaches += 1;
                state.offending_rounds.push(snap.round);
                breaches.push(Breach {
                    rule: state.rule.name(),
                    value,
                    limit,
                });
            }
        }
        HealthVerdict {
            round: snap.round,
            healthy: breaches.is_empty(),
            breaches,
        }
    }

    /// Per-rule burn rates: `breached evaluations / total evaluations`
    /// (0 when never evaluated).
    pub fn burn_rates(&self) -> Vec<(&'static str, f64)> {
        self.rules
            .iter()
            .map(|s| {
                let rate = if s.evaluations == 0 {
                    0.0
                } else {
                    s.breaches as f64 / s.evaluations as f64
                };
                (s.rule.name(), rate)
            })
            .collect()
    }

    /// Rounds on which `rule` breached, oldest first.
    pub fn offending_rounds(&self, rule: &str) -> Vec<u64> {
        self.rules
            .iter()
            .find(|s| s.rule.name() == rule)
            .map(|s| s.offending_rounds.clone())
            .unwrap_or_default()
    }

    /// Total breaches across all rules.
    pub fn total_breaches(&self) -> u64 {
        self.rules.iter().map(|s| s.breaches).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(round: u64, accepted: u64, dropped: u64) -> RoundSnapshot {
        RoundSnapshot {
            round,
            wall_secs: 1.0,
            accepted,
            dropped,
            ..RoundSnapshot::default()
        }
    }

    #[test]
    fn empty_policy_is_always_healthy() {
        let mut p = SloPolicy::new();
        let v = p.evaluate(&snap(1, 0, 10), SloInputs::default());
        assert!(v.healthy);
        assert!(p.burn_rates().is_empty());
    }

    #[test]
    fn accept_ratio_rule_flags_offending_rounds() {
        let mut p = SloPolicy::new().rule(SloRule::AcceptRatioAtLeast { min: 0.8 });
        assert!(p.evaluate(&snap(1, 8, 2), SloInputs::default()).healthy);
        let v = p.evaluate(&snap(2, 5, 5), SloInputs::default());
        assert!(!v.healthy);
        assert_eq!(v.breaches[0].rule, "accept_ratio");
        assert!((v.breaches[0].value - 0.5).abs() < 1e-12);
        assert!(p.evaluate(&snap(3, 9, 1), SloInputs::default()).healthy);
        assert_eq!(p.offending_rounds("accept_ratio"), vec![2]);
        let rates = p.burn_rates();
        assert_eq!(rates[0].0, "accept_ratio");
        assert!((rates[0].1 - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn wall_p90_rule_freezes_a_baseline_then_compares() {
        let mut p = SloPolicy::new().rule(SloRule::RoundWallP90Below {
            factor: 2.0,
            baseline_rounds: 3,
        });
        // Baseline rounds: p90 ~1s, never flagged.
        for r in 1..=3u64 {
            let v = p.evaluate(
                &snap(r, 8, 0),
                SloInputs {
                    wall_p90: 1.0,
                    recoveries: 0,
                },
            );
            assert!(v.healthy, "baseline rounds never breach");
        }
        // Healthy post-baseline round.
        assert!(p
            .evaluate(
                &snap(4, 8, 0),
                SloInputs {
                    wall_p90: 1.5,
                    recoveries: 0
                }
            )
            .healthy);
        // p90 doubles past 2× baseline.
        let v = p.evaluate(
            &snap(5, 8, 0),
            SloInputs {
                wall_p90: 2.5,
                recoveries: 0,
            },
        );
        assert!(!v.healthy);
        assert_eq!(v.breaches[0].rule, "round_wall_p90");
        assert!((v.breaches[0].limit - 2.0).abs() < 1e-12);
        assert_eq!(p.offending_rounds("round_wall_p90"), vec![5]);
    }

    #[test]
    fn recoveries_rule_tolerates_up_to_the_budget() {
        let mut p = SloPolicy::new().rule(SloRule::RecoveriesAtMost { max: 1 });
        assert!(p
            .evaluate(
                &snap(1, 8, 0),
                SloInputs {
                    wall_p90: 0.0,
                    recoveries: 1
                }
            )
            .healthy);
        let v = p.evaluate(
            &snap(2, 8, 0),
            SloInputs {
                wall_p90: 0.0,
                recoveries: 2,
            },
        );
        assert!(!v.healthy);
        assert_eq!(v.breaches[0].rule, "recoveries");
        assert_eq!(p.total_breaches(), 1);
    }

    #[test]
    fn standard_policy_carries_the_three_headline_rules() {
        let p = SloPolicy::standard();
        let names: Vec<&str> = p.rules.iter().map(|s| s.rule.name()).collect();
        assert_eq!(names, vec!["round_wall_p90", "accept_ratio", "recoveries"]);
    }
}
