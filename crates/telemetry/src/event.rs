//! The event record and its JSONL encoding.
//!
//! Encoding and parsing are hand-rolled (flat objects, string/number/null
//! values only) so the crate carries zero dependencies — telemetry must be
//! emittable from the lowest layers of the workspace (tensor kernels, the
//! transport) without dragging serde into them.

use std::fmt::Write as _;

/// The four per-round phases of a federated round, matching the columns
/// of the paper's Table IV breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Client-side local training (`ClientAlgorithm::update`).
    LocalUpdate,
    /// Message encode/decode on either side.
    Serialize,
    /// Blocking transport time (send, recv wait net of overlapped
    /// compute, backoff sleeps).
    Comm,
    /// Server-side aggregation plus evaluation.
    Aggregate,
}

impl Phase {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::LocalUpdate => "local_update",
            Phase::Serialize => "serialize",
            Phase::Comm => "comm",
            Phase::Aggregate => "aggregate",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<Phase> {
        match s {
            "local_update" => Some(Phase::LocalUpdate),
            "serialize" => Some(Phase::Serialize),
            "comm" => Some(Phase::Comm),
            "aggregate" => Some(Phase::Aggregate),
            _ => None,
        }
    }
}

/// What an [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A timed duration (`secs` is set).
    Span,
    /// A counter increment (`value` is set).
    Count,
    /// A point-in-time occurrence (retry, fault injection, timeout…).
    Mark,
    /// A sampled float measurement (`secs` carries the value — reusing
    /// the span's float slot keeps the wire format flat and old readers
    /// skip the unknown kind). Used for per-client update norms.
    Gauge,
}

impl EventKind {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Span => "span",
            EventKind::Count => "count",
            EventKind::Mark => "mark",
            EventKind::Gauge => "gauge",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<EventKind> {
        match s {
            "span" => Some(EventKind::Span),
            "count" => Some(EventKind::Count),
            "mark" => Some(EventKind::Mark),
            "gauge" => Some(EventKind::Gauge),
            _ => None,
        }
    }
}

/// One telemetry record. Flat by design: every field is optional except
/// the timestamp, kind and name, so the JSONL form stays greppable and
/// the schema can grow without breaking old readers.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Seconds since the owning [`crate::Telemetry`] handle's epoch.
    pub ts: f64,
    /// Span, counter or mark.
    pub kind: EventKind,
    /// What was measured (`"local_update"`, `"retry"`, `"fault"`, …).
    pub name: String,
    /// Phase attribution, when the event belongs to a round phase.
    pub phase: Option<Phase>,
    /// Federation round (1-based), when known.
    pub round: Option<u64>,
    /// Peer rank / client id, when the event concerns one peer.
    pub peer: Option<u64>,
    /// Span duration in seconds ([`EventKind::Span`] only).
    pub secs: Option<f64>,
    /// Counter increment ([`EventKind::Count`] only).
    pub value: Option<u64>,
    /// Free-form annotation (fault kind, retried operation, …).
    pub detail: Option<String>,
    /// Trace span id ([`EventKind::Span`] only; wire key `id`). Spans in
    /// the causal tree carry either a deterministic key (see
    /// [`crate::trace::round_span_id`]) or a handle-allocated unique id.
    pub span_id: Option<u64>,
    /// Trace parent span id (wire key `parent`), linking this span into
    /// the round → client → phase tree.
    pub parent: Option<u64>,
}

impl Event {
    /// A bare event of the given kind; callers fill optional fields.
    pub fn new(ts: f64, kind: EventKind, name: impl Into<String>) -> Self {
        Event {
            ts,
            kind,
            name: name.into(),
            phase: None,
            round: None,
            peer: None,
            secs: None,
            value: None,
            detail: None,
            span_id: None,
            parent: None,
        }
    }

    /// Encodes as one JSON object (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push('{');
        let _ = write!(s, "\"ts\":{}", fmt_f64(self.ts));
        let _ = write!(s, ",\"kind\":\"{}\"", self.kind.as_str());
        s.push_str(",\"name\":\"");
        escape_into(&self.name, &mut s);
        s.push('"');
        if let Some(p) = self.phase {
            let _ = write!(s, ",\"phase\":\"{}\"", p.as_str());
        }
        if let Some(r) = self.round {
            let _ = write!(s, ",\"round\":{r}");
        }
        if let Some(p) = self.peer {
            let _ = write!(s, ",\"peer\":{p}");
        }
        if let Some(d) = self.secs {
            let _ = write!(s, ",\"secs\":{}", fmt_f64(d));
        }
        if let Some(v) = self.value {
            let _ = write!(s, ",\"value\":{v}");
        }
        if let Some(d) = &self.detail {
            s.push_str(",\"detail\":\"");
            escape_into(d, &mut s);
            s.push('"');
        }
        if let Some(id) = self.span_id {
            let _ = write!(s, ",\"id\":{id}");
        }
        if let Some(p) = self.parent {
            let _ = write!(s, ",\"parent\":{p}");
        }
        s.push('}');
        s
    }

    /// Parses one JSON line produced by [`Event::to_json_line`] (or any
    /// flat JSON object with the same keys). Returns `None` on malformed
    /// input or a missing required field — a telemetry reader skips bad
    /// lines rather than aborting a report.
    pub fn from_json_line(line: &str) -> Option<Event> {
        let fields = parse_flat_object(line)?;
        let mut ev = Event::new(f64::NAN, EventKind::Mark, "");
        let mut have_ts = false;
        let mut have_kind = false;
        let mut have_name = false;
        for (key, value) in fields {
            match (key.as_str(), value) {
                ("ts", JsonValue::Num(n)) => {
                    ev.ts = n;
                    have_ts = true;
                }
                ("kind", JsonValue::Str(s)) => {
                    ev.kind = EventKind::parse(&s)?;
                    have_kind = true;
                }
                ("name", JsonValue::Str(s)) => {
                    ev.name = s;
                    have_name = true;
                }
                ("phase", JsonValue::Str(s)) => ev.phase = Some(Phase::parse(&s)?),
                ("round", JsonValue::Num(n)) => ev.round = Some(n as u64),
                ("peer", JsonValue::Num(n)) => ev.peer = Some(n as u64),
                ("secs", JsonValue::Num(n)) => ev.secs = Some(n),
                ("value", JsonValue::Num(n)) => ev.value = Some(n as u64),
                ("detail", JsonValue::Str(s)) => ev.detail = Some(s),
                ("id", JsonValue::Num(n)) => ev.span_id = Some(n as u64),
                ("parent", JsonValue::Num(n)) => ev.parent = Some(n as u64),
                _ => {} // unknown key or null: forward-compatible skip
            }
        }
        (have_ts && have_kind && have_name).then_some(ev)
    }
}

/// Formats a float so it round-trips and never prints as `inf`/`NaN`
/// (JSON has neither; they encode as null-like `0`).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let mut s = format!("{v}");
        if !s.contains('.') && !s.contains('e') {
            s.push_str(".0");
        }
        s
    } else {
        "0.0".to_string()
    }
}

pub(crate) fn escape_into(raw: &str, out: &mut String) {
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

enum JsonValue {
    Str(String),
    Num(f64),
    Other,
}

/// Parses a single flat JSON object (string, number, bool and null
/// values; no nesting). Sufficient for the JSONL format this crate
/// writes; not a general JSON parser.
fn parse_flat_object(line: &str) -> Option<Vec<(String, JsonValue)>> {
    let mut chars = line.trim().chars().peekable();
    if chars.next()? != '{' {
        return None;
    }
    let mut out = Vec::new();
    loop {
        skip_ws(&mut chars);
        match chars.peek()? {
            '}' => {
                chars.next();
                break;
            }
            ',' => {
                chars.next();
                continue;
            }
            '"' => {}
            _ => return None,
        }
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next()? != ':' {
            return None;
        }
        skip_ws(&mut chars);
        let value = match chars.peek()? {
            '"' => JsonValue::Str(parse_string(&mut chars)?),
            't' | 'f' | 'n' => {
                while chars.peek().is_some_and(|c| c.is_ascii_alphabetic()) {
                    chars.next();
                }
                JsonValue::Other
            }
            _ => {
                let mut num = String::new();
                while chars
                    .peek()
                    .is_some_and(|&c| c.is_ascii_digit() || "+-.eE".contains(c))
                {
                    num.push(chars.next().unwrap());
                }
                JsonValue::Num(num.parse().ok()?)
            }
        };
        out.push((key, value));
    }
    Some(out)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.peek().is_some_and(|c| c.is_whitespace()) {
        chars.next();
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<String> {
    if chars.next()? != '"' {
        return None;
    }
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        code = code * 16 + chars.next()?.to_digit(16)?;
                    }
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_event_roundtrips_through_json() {
        let mut ev = Event::new(1.25, EventKind::Span, "local_update");
        ev.phase = Some(Phase::LocalUpdate);
        ev.round = Some(3);
        ev.peer = Some(2);
        ev.secs = Some(0.0125);
        let line = ev.to_json_line();
        assert!(line.contains("\"phase\":\"local_update\""), "{line}");
        assert_eq!(Event::from_json_line(&line).unwrap(), ev);
    }

    #[test]
    fn trace_ids_roundtrip_and_old_readers_skip_them() {
        let mut ev = Event::new(2.0, EventKind::Span, "local_update");
        ev.phase = Some(Phase::LocalUpdate);
        ev.secs = Some(0.5);
        ev.span_id = Some(0x1_0000_0000_0001);
        ev.parent = Some(42);
        let line = ev.to_json_line();
        assert!(line.contains("\"id\":"), "{line}");
        assert!(line.contains("\"parent\":42"), "{line}");
        assert_eq!(Event::from_json_line(&line).unwrap(), ev);
    }

    #[test]
    fn count_and_mark_roundtrip() {
        let mut count = Event::new(0.5, EventKind::Count, "retry");
        count.value = Some(2);
        count.detail = Some("get_weight".into());
        assert_eq!(
            Event::from_json_line(&count.to_json_line()).unwrap(),
            count
        );
        let mut mark = Event::new(0.75, EventKind::Mark, "fault");
        mark.peer = Some(1);
        mark.detail = Some("drop".into());
        assert_eq!(Event::from_json_line(&mark.to_json_line()).unwrap(), mark);
    }

    #[test]
    fn gauge_roundtrips_with_float_payload() {
        let mut gauge = Event::new(1.0, EventKind::Gauge, "update_norm");
        gauge.round = Some(4);
        gauge.peer = Some(7);
        gauge.secs = Some(3.75);
        let line = gauge.to_json_line();
        assert!(line.contains("\"kind\":\"gauge\""), "{line}");
        assert_eq!(Event::from_json_line(&line).unwrap(), gauge);
    }

    #[test]
    fn detail_escaping_survives_roundtrip() {
        let mut ev = Event::new(0.0, EventKind::Mark, "weird \"name\"");
        ev.detail = Some("line\nbreak\tand \\ slash \u{1}".into());
        let back = Event::from_json_line(&ev.to_json_line()).unwrap();
        assert_eq!(back, ev);
    }

    #[test]
    fn malformed_lines_are_rejected_not_panicked() {
        for bad in [
            "",
            "{",
            "not json",
            "{\"ts\":1.0}",                       // missing kind/name
            "{\"ts\":1.0,\"kind\":\"nope\",\"name\":\"x\"}", // bad kind
            "[1,2,3]",
        ] {
            assert!(Event::from_json_line(bad).is_none(), "accepted {bad:?}");
        }
    }

    #[test]
    fn unknown_keys_are_skipped_for_forward_compat() {
        let line = "{\"ts\":2.0,\"kind\":\"mark\",\"name\":\"x\",\"future_field\":true,\"other\":null}";
        let ev = Event::from_json_line(line).unwrap();
        assert_eq!(ev.name, "x");
        assert_eq!(ev.ts, 2.0);
    }

    #[test]
    fn phase_names_are_stable() {
        for p in [
            Phase::LocalUpdate,
            Phase::Serialize,
            Phase::Comm,
            Phase::Aggregate,
        ] {
            assert_eq!(Phase::parse(p.as_str()), Some(p));
        }
        assert_eq!(Phase::parse("bogus"), None);
    }
}
