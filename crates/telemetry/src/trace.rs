//! Causal trace export: the span tree and its Chrome trace-event encoding.
//!
//! Spans emitted through a [`crate::Telemetry`] handle carry an `id` and
//! a `parent` id forming a tree per round: a structural `round` span
//! (deterministic key from [`round_span_id`]) parents one structural
//! `client` span per participating peer ([`client_span_id`]), which in
//! turn parent the phase spans recorded on that peer. Phase spans the
//! server records for the round as a whole (aggregate, gather wait)
//! attach directly to the round span.
//!
//! [`chrome_trace`] renders a recorded event stream as Chrome
//! trace-event JSON — load the file in Perfetto (`ui.perfetto.dev`) or
//! `chrome://tracing`. Tree spans become matched `B`/`E` duration pairs
//! (clients on their own thread tracks, per-round server phases laid out
//! sequentially inside their round so slices always nest), marks become
//! instants, counters become counter tracks, and spans outside the tree
//! (transport retries/backoffs with no round context, legacy streams
//! without ids) become standalone `X` complete events.

use crate::event::{Event, EventKind};
use crate::sink::EventSink;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs::File;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Span ids at or above this value are allocated dynamically (unique per
/// handle); below it they are deterministic tree keys.
pub const TRACE_DYNAMIC_BASE: u64 = 1 << 48;

/// Deterministic id of round `round`'s structural span.
pub fn round_span_id(round: u64) -> u64 {
    ((round & 0xFFFF_FFFF) << 16) | 1
}

/// Deterministic id of the structural span covering peer `peer`'s work
/// in round `round`.
pub fn client_span_id(round: u64, peer: u64) -> u64 {
    ((round & 0xFFFF_FFFF) << 16) | ((peer & 0x3FFF) + 2)
}

/// Whether `id` is a [`round_span_id`] key.
pub fn is_round_key(id: u64) -> bool {
    id < TRACE_DYNAMIC_BASE && (id & 0xFFFF) == 1
}

/// Thread track used for spans that cannot be attributed to a peer or a
/// round (transport backoffs, legacy events).
const ORPHAN_TID: u64 = 999;

struct Node {
    name: String,
    start: f64,
    end: f64,
    round: Option<u64>,
    peer: Option<u64>,
    detail: Option<String>,
    id: Option<u64>,
    parent: Option<u64>,
    children: Vec<usize>,
    // Filled by layout:
    tid: u64,
    depth: u64,
    placed: bool,
}

/// Renders `events` as Chrome trace-event JSON (the
/// `{"traceEvents":[…]}` object form; timestamps in microseconds).
pub fn chrome_trace(events: &[Event]) -> String {
    let mut nodes: Vec<Node> = Vec::new();
    let mut by_id: HashMap<u64, usize> = HashMap::new();
    for ev in events {
        if ev.kind != EventKind::Span {
            continue;
        }
        let Some(secs) = ev.secs else { continue };
        let end = ev.ts;
        let start = (end - secs.max(0.0)).max(0.0);
        let idx = nodes.len();
        nodes.push(Node {
            name: ev.name.clone(),
            start,
            end,
            round: ev.round,
            peer: ev.peer,
            detail: ev.detail.clone(),
            id: ev.span_id,
            parent: ev.parent,
            children: Vec::new(),
            tid: ORPHAN_TID,
            depth: 0,
            placed: false,
        });
        if let Some(id) = ev.span_id {
            by_id.entry(id).or_insert(idx); // duplicates fall back to orphans
        }
    }
    for i in 0..nodes.len() {
        let parent_idx = nodes[i]
            .parent
            .and_then(|p| by_id.get(&p).copied())
            .filter(|&p| p != i);
        if let Some(p) = parent_idx {
            nodes[p].children.push(i);
        }
    }

    // Lay out the trees hanging off round spans. Children on the same
    // thread track as their parent are placed back-to-back from the
    // parent's start (per-round server phase totals have no individual
    // timestamps, so a sequential layout inside the round is the honest
    // rendering); children on another track (a peer's thread) keep their
    // real interval.
    let mut out: Vec<TraceRecord> = Vec::new();
    let roots: Vec<usize> = (0..nodes.len())
        .filter(|&i| nodes[i].id.is_some_and(is_round_key))
        .filter(|&i| nodes[i].parent.and_then(|p| by_id.get(&p)).is_none())
        .collect();
    for &root in &roots {
        nodes[root].tid = 0;
        nodes[root].depth = 0;
        nodes[root].placed = true;
        layout_children(&mut nodes, root);
    }
    let mut stack: Vec<usize> = roots.clone();
    while let Some(i) = stack.pop() {
        let node = &nodes[i];
        out.push(TraceRecord::Begin {
            ts: node.start,
            tid: node.tid,
            depth: node.depth,
            name: node.name.clone(),
            round: node.round,
            peer: node.peer,
            id: node.id,
            parent: node.parent,
            detail: node.detail.clone(),
        });
        out.push(TraceRecord::End {
            ts: node.end,
            tid: node.tid,
            depth: node.depth,
        });
        stack.extend(node.children.iter().copied());
    }
    // Everything not reached through a round tree renders as a
    // standalone complete event on its peer's (or the orphan) track.
    for node in nodes.iter().filter(|n| !n.placed) {
        out.push(TraceRecord::Complete {
            ts: node.start,
            dur: node.end - node.start,
            tid: node.peer.map_or(ORPHAN_TID, |p| p + 1),
            name: node.name.clone(),
            round: node.round,
            peer: node.peer,
            detail: node.detail.clone(),
        });
    }

    let mut counter_totals: HashMap<String, u64> = HashMap::new();
    for ev in events {
        match ev.kind {
            EventKind::Mark => out.push(TraceRecord::Instant {
                ts: ev.ts,
                tid: ev.peer.map_or(0, |p| p + 1),
                name: ev.name.clone(),
                round: ev.round,
                peer: ev.peer,
                detail: ev.detail.clone(),
            }),
            EventKind::Count => {
                let total = counter_totals.entry(ev.name.clone()).or_insert(0);
                *total += ev.value.unwrap_or(0);
                out.push(TraceRecord::Counter {
                    ts: ev.ts,
                    name: ev.name.clone(),
                    value: *total,
                });
            }
            _ => {}
        }
    }

    // Chrome requires per-track stack discipline in timestamp order; at
    // ties, ends come before begins, deeper ends first, shallower begins
    // first.
    out.sort_by(|a, b| {
        a.ts()
            .total_cmp(&b.ts())
            .then_with(|| a.order_rank().cmp(&b.order_rank()))
    });

    let mut s = String::from("{\"traceEvents\":[");
    for (i, rec) in out.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        rec.write_json(&mut s);
    }
    s.push_str("],\"displayTimeUnit\":\"ms\"}");
    s
}

fn layout_children(nodes: &mut [Node], parent: usize) {
    let mut order: Vec<usize> = nodes[parent].children.clone();
    order.sort_by(|&a, &b| nodes[a].start.total_cmp(&nodes[b].start));
    let parent_tid = nodes[parent].tid;
    let parent_depth = nodes[parent].depth;
    let (p_start, p_end) = (nodes[parent].start, nodes[parent].end);
    let mut cursor = p_start;
    for i in order {
        let child_tid = match nodes[i].peer {
            Some(p) => p + 1,
            None => parent_tid,
        };
        if child_tid == parent_tid {
            let dur = (nodes[i].end - nodes[i].start).max(0.0);
            let start = cursor.min(p_end);
            let end = (start + dur).min(p_end).max(start);
            nodes[i].start = start;
            nodes[i].end = end;
            cursor = end;
        }
        nodes[i].tid = child_tid;
        nodes[i].depth = parent_depth + 1;
        nodes[i].placed = true;
        layout_children(nodes, i);
    }
}

enum TraceRecord {
    Begin {
        ts: f64,
        tid: u64,
        depth: u64,
        name: String,
        round: Option<u64>,
        peer: Option<u64>,
        id: Option<u64>,
        parent: Option<u64>,
        detail: Option<String>,
    },
    End {
        ts: f64,
        tid: u64,
        depth: u64,
    },
    Complete {
        ts: f64,
        dur: f64,
        tid: u64,
        name: String,
        round: Option<u64>,
        peer: Option<u64>,
        detail: Option<String>,
    },
    Instant {
        ts: f64,
        tid: u64,
        name: String,
        round: Option<u64>,
        peer: Option<u64>,
        detail: Option<String>,
    },
    Counter {
        ts: f64,
        name: String,
        value: u64,
    },
}

impl TraceRecord {
    fn ts(&self) -> f64 {
        match self {
            TraceRecord::Begin { ts, .. }
            | TraceRecord::End { ts, .. }
            | TraceRecord::Complete { ts, .. }
            | TraceRecord::Instant { ts, .. }
            | TraceRecord::Counter { ts, .. } => *ts,
        }
    }

    /// Tie-break rank at equal timestamps: ends first (deepest first),
    /// then begins (shallowest first), then everything else.
    fn order_rank(&self) -> i64 {
        match self {
            TraceRecord::End { depth, .. } => -1_000_000 - *depth as i64,
            TraceRecord::Begin { depth, .. } => *depth as i64,
            _ => 1_000_000,
        }
    }

    fn write_json(&self, s: &mut String) {
        match self {
            TraceRecord::Begin {
                ts,
                tid,
                name,
                round,
                peer,
                id,
                parent,
                detail,
                ..
            } => {
                let _ = write!(
                    s,
                    "{{\"ph\":\"B\",\"pid\":1,\"tid\":{tid},\"ts\":{:.3},\"name\":\"{}\"",
                    ts * 1e6,
                    json_escape(name)
                );
                write_args(s, *round, *peer, *id, *parent, detail.as_deref());
                s.push('}');
            }
            TraceRecord::End { ts, tid, .. } => {
                let _ = write!(
                    s,
                    "{{\"ph\":\"E\",\"pid\":1,\"tid\":{tid},\"ts\":{:.3}}}",
                    ts * 1e6
                );
            }
            TraceRecord::Complete {
                ts,
                dur,
                tid,
                name,
                round,
                peer,
                detail,
            } => {
                let _ = write!(
                    s,
                    "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{:.3},\"dur\":{:.3},\
                     \"name\":\"{}\"",
                    ts * 1e6,
                    dur * 1e6,
                    json_escape(name)
                );
                write_args(s, *round, *peer, None, None, detail.as_deref());
                s.push('}');
            }
            TraceRecord::Instant {
                ts,
                tid,
                name,
                round,
                peer,
                detail,
            } => {
                let _ = write!(
                    s,
                    "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{tid},\"ts\":{:.3},\
                     \"name\":\"{}\"",
                    ts * 1e6,
                    json_escape(name)
                );
                write_args(s, *round, *peer, None, None, detail.as_deref());
                s.push('}');
            }
            TraceRecord::Counter { ts, name, value } => {
                let _ = write!(
                    s,
                    "{{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":{:.3},\"name\":\"{}\",\
                     \"args\":{{\"value\":{value}}}}}",
                    ts * 1e6,
                    json_escape(name)
                );
            }
        }
    }
}

fn write_args(
    s: &mut String,
    round: Option<u64>,
    peer: Option<u64>,
    id: Option<u64>,
    parent: Option<u64>,
    detail: Option<&str>,
) {
    s.push_str(",\"args\":{");
    let mut first = true;
    let mut field = |s: &mut String, key: &str, value: String| {
        if !first {
            s.push(',');
        }
        first = false;
        let _ = write!(s, "\"{key}\":{value}");
    };
    if let Some(r) = round {
        field(s, "round", r.to_string());
    }
    if let Some(p) = peer {
        field(s, "peer", p.to_string());
    }
    if let Some(i) = id {
        field(s, "id", i.to_string());
    }
    if let Some(p) = parent {
        field(s, "parent", p.to_string());
    }
    if let Some(d) = detail {
        field(s, "detail", format!("\"{}\"", json_escape(d)));
    }
    s.push('}');
}

fn json_escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// An [`EventSink`] that buffers the run's events and writes them out as
/// Chrome trace-event JSON (`trace.json`) on [`EventSink::flush`] — and
/// again on drop, so a panicking run still leaves a loadable trace.
pub struct TraceSink {
    path: PathBuf,
    events: Mutex<Vec<Event>>,
}

impl TraceSink {
    /// Creates (truncating) the trace file at `path` up front, so
    /// permission errors surface at construction rather than at the end
    /// of a run.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        File::create(&path)?;
        Ok(TraceSink {
            path,
            events: Mutex::new(Vec::new()),
        })
    }

    /// Events buffered so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("trace sink poisoned").clone()
    }
}

impl EventSink for TraceSink {
    fn emit(&self, event: Event) {
        self.events.lock().expect("trace sink poisoned").push(event);
    }

    fn flush(&self) {
        let events = self.events.lock().expect("trace sink poisoned");
        if let Ok(mut f) = File::create(&self.path) {
            let _ = f.write_all(chrome_trace(&events).as_bytes());
        }
    }
}

impl Drop for TraceSink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Phase;

    fn span(
        ts: f64,
        secs: f64,
        name: &str,
        round: Option<u64>,
        peer: Option<u64>,
        id: Option<u64>,
        parent: Option<u64>,
        phase: Option<Phase>,
    ) -> Event {
        let mut ev = Event::new(ts, EventKind::Span, name);
        ev.secs = Some(secs);
        ev.round = round;
        ev.peer = peer;
        ev.span_id = id;
        ev.parent = parent;
        ev.phase = phase;
        ev
    }

    #[test]
    fn deterministic_keys_do_not_collide() {
        let mut seen = std::collections::HashSet::new();
        for round in 1..=64 {
            assert!(seen.insert(round_span_id(round)));
            assert!(is_round_key(round_span_id(round)));
            for peer in 0..64 {
                let id = client_span_id(round, peer);
                assert!(seen.insert(id), "collision at r{round} p{peer}");
                assert!(!is_round_key(id));
                assert!(id < TRACE_DYNAMIC_BASE);
            }
        }
    }

    #[test]
    fn chrome_trace_pairs_and_nests_spans() {
        let r1 = round_span_id(1);
        let c0 = client_span_id(1, 0);
        let events = vec![
            // Client 0's structural span and a phase under it.
            span(
                0.9,
                0.6,
                "client",
                Some(1),
                Some(0),
                Some(c0),
                Some(r1),
                None,
            ),
            span(
                0.8,
                0.5,
                "local_update",
                Some(1),
                Some(0),
                Some(TRACE_DYNAMIC_BASE + 1),
                Some(c0),
                Some(Phase::LocalUpdate),
            ),
            // Server-side aggregate attached to the round.
            span(
                1.0,
                0.1,
                "aggregate",
                Some(1),
                None,
                Some(TRACE_DYNAMIC_BASE + 2),
                Some(r1),
                Some(Phase::Aggregate),
            ),
            // The round itself, emitted last.
            span(1.0, 1.0, "round", Some(1), None, Some(r1), None, None),
            // An orphan backoff with no round context.
            span(
                0.5,
                0.05,
                "backoff",
                None,
                None,
                None,
                None,
                Some(Phase::Comm),
            ),
        ];
        let json = chrome_trace(&events);
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 4, "{json}");
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 4, "{json}");
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 1, "orphan:\n{json}");
        assert!(json.contains("\"name\":\"round\""), "{json}");
        assert!(json.contains("\"name\":\"backoff\""), "{json}");
        // Per-tid B/E stack discipline: replay the sorted stream.
        let mut stacks: std::collections::HashMap<u64, u64> = Default::default();
        for chunk in json.split("{\"ph\":").skip(1) {
            let tid: u64 = chunk
                .split("\"tid\":")
                .nth(1)
                .and_then(|r| r.split([',', '}']).next())
                .and_then(|n| n.parse().ok())
                .unwrap_or(0);
            if chunk.starts_with("\"B\"") {
                *stacks.entry(tid).or_insert(0) += 1;
            } else if chunk.starts_with("\"E\"") {
                let depth = stacks.entry(tid).or_insert(0);
                assert!(*depth > 0, "E without open B on tid {tid}:\n{json}");
                *depth -= 1;
            }
        }
        assert!(
            stacks.values().all(|&d| d == 0),
            "unclosed spans: {stacks:?}"
        );
    }

    /// First chunk of the trace JSON (split at record starts) that
    /// contains `needle` — i.e. the record carrying that field, plus
    /// whatever trails it up to the next record.
    fn record_with<'a>(json: &'a str, needle: &str) -> &'a str {
        json.split("{\"ph\":")
            .find(|chunk| chunk.contains(needle))
            .unwrap_or_else(|| panic!("no record containing {needle}:\n{json}"))
    }

    #[test]
    fn hedged_redispatch_spans_nest_under_their_round() {
        use crate::{MemorySink, Telemetry};
        use std::sync::Arc;

        let sink = Arc::new(MemorySink::new());
        let t = Telemetry::new(sink.clone());
        // Round 2: an ordinary round, present to prove hedged spans from
        // round 3 do not leak into a neighbouring round's subtree.
        t.client_span_secs(2, 5, 0.2);
        t.round_span_secs(2, 0.4);
        // Round 3, hedged: cohort peers 0 and 1 upload, peer 1's upload
        // lands after the hedge deadline (the server emits a
        // `late_arrival` phase span, as `run_server_ft` does on
        // `UploadVerdict::Late`), and standby peer 7 is re-dispatched
        // mid-collect and runs a full client loop of its own.
        t.client_span_secs(3, 0, 0.3);
        t.client_span_secs(3, 1, 0.6);
        t.phase_span_secs("late_arrival", 0.15, 3);
        t.client_span_secs(3, 7, 0.25);
        t.round_span_secs(3, 0.9);

        let json = chrome_trace(&sink.events());
        let r2 = round_span_id(2);
        let r3 = round_span_id(3);

        // Every span found a place in the causal tree: nothing fell out
        // as an unplaced "ph":"X" Complete record.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 0, "{json}");
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 7, "{json}");
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 7, "{json}");

        // The late-upload span parents to round 3's structural span.
        let late = record_with(&json, "\"name\":\"late_arrival\"");
        assert!(late.starts_with("\"B\""), "late_arrival must open a B/E pair: {late}");
        assert!(
            late.contains(&format!("\"parent\":{r3}")),
            "late_arrival must nest under round 3: {late}"
        );

        // The hedged standby client keeps its deterministic span id and
        // parents to round 3 — not to the neighbouring round 2.
        let standby = record_with(&json, &format!("\"id\":{}", client_span_id(3, 7)));
        assert!(standby.starts_with("\"B\""), "standby client must open a B/E pair: {standby}");
        assert!(
            standby.contains(&format!("\"parent\":{r3}")),
            "standby client must nest under round 3: {standby}"
        );
        assert!(
            !standby.contains(&format!("\"parent\":{r2}")),
            "standby client leaked into round 2: {standby}"
        );

        // The slow cohort client whose upload arrived late still nests
        // under round 3, and round 2's client stays under round 2.
        let slow = record_with(&json, &format!("\"id\":{}", client_span_id(3, 1)));
        assert!(slow.contains(&format!("\"parent\":{r3}")), "{slow}");
        let other = record_with(&json, &format!("\"id\":{}", client_span_id(2, 5)));
        assert!(other.contains(&format!("\"parent\":{r2}")), "{other}");
    }

    #[test]
    fn marks_and_counts_become_instants_and_counters() {
        let mut mark = Event::new(0.5, EventKind::Mark, "timeout");
        mark.peer = Some(2);
        let mut count = Event::new(0.6, EventKind::Count, "upload_bytes");
        count.value = Some(100);
        let mut count2 = Event::new(0.7, EventKind::Count, "upload_bytes");
        count2.value = Some(50);
        let json = chrome_trace(&[mark, count, count2]);
        assert!(json.contains("\"ph\":\"i\""), "{json}");
        assert!(json.contains("\"ph\":\"C\""), "{json}");
        assert!(
            json.contains("\"value\":150"),
            "counters accumulate: {json}"
        );
    }

    #[test]
    fn trace_sink_writes_loadable_json_on_flush() {
        let path =
            std::env::temp_dir().join(format!("appfl_trace_sink_test_{}.json", std::process::id()));
        {
            let sink = TraceSink::create(&path).unwrap();
            let r1 = round_span_id(1);
            sink.emit(span(1.0, 1.0, "round", Some(1), None, Some(r1), None, None));
            sink.flush();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(text.starts_with("{\"traceEvents\":["), "{text}");
        assert!(text.trim_end().ends_with('}'), "{text}");
    }
}
