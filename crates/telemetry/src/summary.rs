//! Aggregating a recorded event stream back into per-round phase totals.

use crate::event::{Event, EventKind, Phase};
use std::collections::BTreeMap;

/// Seconds attributed to each of the four round phases.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTotals {
    /// Client-side local training.
    pub local_update: f64,
    /// Encode/decode of model payloads.
    pub serialize: f64,
    /// Blocking transport time.
    pub comm: f64,
    /// Server-side aggregation plus evaluation.
    pub aggregate: f64,
}

impl PhaseTotals {
    /// Sum across the four phases.
    pub fn total(&self) -> f64 {
        self.local_update + self.serialize + self.comm + self.aggregate
    }

    fn add(&mut self, phase: Phase, secs: f64) {
        match phase {
            Phase::LocalUpdate => self.local_update += secs,
            Phase::Serialize => self.serialize += secs,
            Phase::Comm => self.comm += secs,
            Phase::Aggregate => self.aggregate += secs,
        }
    }
}

/// Running statistics over one gauge name's samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeStats {
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of samples (mean = `sum / count`).
    pub sum: f64,
    /// Smallest sample seen.
    pub min: f64,
    /// Largest sample seen.
    pub max: f64,
}

impl GaugeStats {
    fn observe(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Mean sample value (0 for an empty gauge).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

impl Default for GaugeStats {
    fn default() -> Self {
        GaugeStats {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

/// A run's telemetry, folded down for reporting: phase seconds per round
/// and overall, plus every counter and mark tallied by name.
#[derive(Debug, Clone, Default)]
pub struct RunSummary {
    /// Phase totals keyed by round (spans with no round tag land in
    /// [`RunSummary::untagged`]).
    pub rounds: BTreeMap<u64, PhaseTotals>,
    /// Phase totals for spans carrying no round tag.
    pub untagged: PhaseTotals,
    /// Counter sums by event name (`count` events) and occurrence counts
    /// by name for `mark` events.
    pub counters: BTreeMap<String, u64>,
    /// The same counter sums, additionally keyed by round for events that
    /// carried a round tag (lets the report show per-round columns like
    /// `update_rejected` / `update_clipped`).
    pub round_counters: BTreeMap<u64, BTreeMap<String, u64>>,
    /// Gauge statistics by name (e.g. `update_norm`).
    pub gauges: BTreeMap<String, GaugeStats>,
    /// Gauge statistics additionally keyed by round, for per-round
    /// diagnostics columns (`primal_residual`, `update_norm`, …).
    pub round_gauges: BTreeMap<u64, BTreeMap<String, GaugeStats>>,
    /// Number of span events that carried no phase tag (skipped).
    pub unphased_spans: usize,
    /// Number of structural trace spans (`round`/`client` tree skeleton:
    /// a span id but no phase). Excluded from phase totals — their time
    /// is already accounted by the phase spans nested under them.
    pub structural_spans: usize,
}

impl RunSummary {
    /// Folds an event stream into a summary.
    pub fn from_events(events: &[Event]) -> Self {
        let mut summary = RunSummary::default();
        for ev in events {
            match ev.kind {
                EventKind::Span => match (ev.phase, ev.secs) {
                    (Some(phase), Some(secs)) => match ev.round {
                        Some(round) => {
                            summary.rounds.entry(round).or_default().add(phase, secs)
                        }
                        None => summary.untagged.add(phase, secs),
                    },
                    _ if ev.span_id.is_some() => summary.structural_spans += 1,
                    _ => summary.unphased_spans += 1,
                },
                EventKind::Count => summary.tally(ev, ev.value.unwrap_or(0)),
                EventKind::Mark => summary.tally(ev, 1),
                EventKind::Gauge => {
                    if let Some(value) = ev.secs {
                        summary
                            .gauges
                            .entry(ev.name.clone())
                            .or_default()
                            .observe(value);
                        if let Some(round) = ev.round {
                            summary
                                .round_gauges
                                .entry(round)
                                .or_default()
                                .entry(ev.name.clone())
                                .or_default()
                                .observe(value);
                        }
                    }
                }
            }
        }
        summary
    }

    fn tally(&mut self, ev: &Event, amount: u64) {
        *self.counters.entry(ev.name.clone()).or_insert(0) += amount;
        if let Some(round) = ev.round {
            *self
                .round_counters
                .entry(round)
                .or_default()
                .entry(ev.name.clone())
                .or_insert(0) += amount;
        }
    }

    /// Phase totals across every round plus untagged spans.
    pub fn totals(&self) -> PhaseTotals {
        let mut t = self.untagged;
        for r in self.rounds.values() {
            t.local_update += r.local_update;
            t.serialize += r.serialize;
            t.comm += r.comm;
            t.aggregate += r.aggregate;
        }
        t
    }

    /// Sum of a counter (0 if never emitted).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sum of a counter within one round (0 if never emitted there).
    pub fn round_counter(&self, round: u64, name: &str) -> u64 {
        self.round_counters
            .get(&round)
            .and_then(|m| m.get(name))
            .copied()
            .unwrap_or(0)
    }

    /// Statistics for a gauge (empty default if never sampled).
    pub fn gauge(&self, name: &str) -> GaugeStats {
        self.gauges.get(name).copied().unwrap_or_default()
    }

    /// Statistics for a gauge within one round (empty default if never
    /// sampled there).
    pub fn round_gauge(&self, round: u64, name: &str) -> GaugeStats {
        self.round_gauges
            .get(&round)
            .and_then(|m| m.get(name))
            .copied()
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(round: Option<u64>, phase: Phase, secs: f64) -> Event {
        let mut ev = Event::new(0.0, EventKind::Span, phase.as_str());
        ev.phase = Some(phase);
        ev.round = round;
        ev.secs = Some(secs);
        ev
    }

    #[test]
    fn summary_groups_phase_seconds_by_round() {
        let events = vec![
            span(Some(1), Phase::LocalUpdate, 0.4),
            span(Some(1), Phase::Serialize, 0.05),
            span(Some(1), Phase::Comm, 0.1),
            span(Some(1), Phase::Aggregate, 0.2),
            span(Some(2), Phase::Comm, 0.3),
            span(None, Phase::Comm, 0.7),
        ];
        let s = RunSummary::from_events(&events);
        let r1 = s.rounds[&1];
        assert!((r1.total() - 0.75).abs() < 1e-9);
        assert!((r1.local_update - 0.4).abs() < 1e-9);
        assert!((s.rounds[&2].comm - 0.3).abs() < 1e-9);
        assert!((s.untagged.comm - 0.7).abs() < 1e-9);
        assert!((s.totals().comm - 1.1).abs() < 1e-9);
    }

    #[test]
    fn summary_tallies_counts_and_marks() {
        let mut retry = Event::new(0.0, EventKind::Count, "retry");
        retry.value = Some(2);
        let mut retry2 = Event::new(0.1, EventKind::Count, "retry");
        retry2.value = Some(3);
        let timeout = Event::new(0.2, EventKind::Mark, "timeout");
        let s = RunSummary::from_events(&[retry, retry2, timeout.clone(), timeout]);
        assert_eq!(s.counter("retry"), 5);
        assert_eq!(s.counter("timeout"), 2);
        assert_eq!(s.counter("absent"), 0);
    }

    #[test]
    fn round_counters_and_gauges_are_folded() {
        let mut rej1 = Event::new(0.0, EventKind::Count, "update_rejected");
        rej1.value = Some(2);
        rej1.round = Some(1);
        let mut rej2 = Event::new(0.1, EventKind::Count, "update_rejected");
        rej2.value = Some(1);
        rej2.round = Some(3);
        let mut clip = Event::new(0.2, EventKind::Mark, "update_clipped");
        clip.round = Some(1);
        let mut norm_a = Event::new(0.3, EventKind::Gauge, "update_norm");
        norm_a.secs = Some(2.0);
        let mut norm_b = Event::new(0.4, EventKind::Gauge, "update_norm");
        norm_b.secs = Some(6.0);
        let s = RunSummary::from_events(&[rej1, rej2, clip, norm_a, norm_b]);
        assert_eq!(s.counter("update_rejected"), 3);
        assert_eq!(s.round_counter(1, "update_rejected"), 2);
        assert_eq!(s.round_counter(3, "update_rejected"), 1);
        assert_eq!(s.round_counter(2, "update_rejected"), 0);
        assert_eq!(s.round_counter(1, "update_clipped"), 1);
        let g = s.gauge("update_norm");
        assert_eq!(g.count, 2);
        assert_eq!(g.min, 2.0);
        assert_eq!(g.max, 6.0);
        assert!((g.mean() - 4.0).abs() < 1e-12);
        assert_eq!(s.gauge("absent").count, 0);
    }

    #[test]
    fn spans_missing_a_phase_are_counted_not_crashed() {
        let bare = Event::new(0.0, EventKind::Span, "odd");
        let s = RunSummary::from_events(&[bare]);
        assert_eq!(s.unphased_spans, 1);
        assert!(s.rounds.is_empty());
    }

    #[test]
    fn structural_trace_spans_stay_out_of_phase_totals() {
        let mut round_span = Event::new(1.0, EventKind::Span, "round");
        round_span.round = Some(1);
        round_span.secs = Some(1.0);
        round_span.span_id = Some(crate::trace::round_span_id(1));
        let mut client_span = Event::new(0.9, EventKind::Span, "client");
        client_span.round = Some(1);
        client_span.peer = Some(0);
        client_span.secs = Some(0.6);
        client_span.span_id = Some(crate::trace::client_span_id(1, 0));
        client_span.parent = Some(crate::trace::round_span_id(1));
        let phase = span(Some(1), Phase::LocalUpdate, 0.5);
        let s = RunSummary::from_events(&[round_span, client_span, phase]);
        assert_eq!(s.structural_spans, 2);
        assert_eq!(s.unphased_spans, 0);
        assert!((s.rounds[&1].total() - 0.5).abs() < 1e-9, "only the phase counts");
    }

    #[test]
    fn failed_spans_still_count_toward_their_phase() {
        let mut failed = span(Some(2), Phase::LocalUpdate, 0.3);
        failed.detail = Some("failed".into());
        let s = RunSummary::from_events(&[failed]);
        assert!((s.rounds[&2].local_update - 0.3).abs() < 1e-9);
    }

    #[test]
    fn round_gauges_are_folded_per_round() {
        let mut r1 = Event::new(0.0, EventKind::Gauge, "primal_residual");
        r1.round = Some(1);
        r1.secs = Some(4.0);
        let mut r2 = Event::new(0.1, EventKind::Gauge, "primal_residual");
        r2.round = Some(2);
        r2.secs = Some(2.0);
        let s = RunSummary::from_events(&[r1, r2]);
        assert_eq!(s.round_gauge(1, "primal_residual").max, 4.0);
        assert_eq!(s.round_gauge(2, "primal_residual").max, 2.0);
        assert_eq!(s.round_gauge(3, "primal_residual").count, 0);
        assert_eq!(s.gauge("primal_residual").count, 2);
    }
}
